"""EXT — progressive meta-blocking (extension, Simonini et al. ICDE 2018 [6]).

Measures the progressive-recall curve: recall of the true matches as a
function of the number of comparisons performed, for the two progressive
strategies and a non-progressive baseline (blocking-collection order).
"""

from __future__ import annotations

from conftest import print_rows

from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.blocking.token_blocking import TokenBlocking
from repro.metablocking.progressive import (
    ProgressiveNodeScheduling,
    ProgressiveSortedComparisons,
    progressive_recall_curve,
)


def _prepared_blocks(dataset):
    raw = TokenBlocking().block(dataset.profiles)
    return BlockFiltering().filter(BlockPurging().purge(raw, len(dataset.profiles)))


def test_ext_progressive_global_sorting(benchmark, abt_buy):
    """Progressive global sorting: recall vs comparison budget."""
    blocks = _prepared_blocks(abt_buy)
    truth = abt_buy.ground_truth.pairs()

    def run():
        ranking = ProgressiveSortedComparisons("cbs").rank(blocks)
        return progressive_recall_curve(ranking, truth, num_points=5)

    curve = benchmark(run)
    print_rows("EXT progressive global sorting (recall vs budget)", curve)
    assert curve[0]["recall"] > 0.5, "the first 20% of comparisons must find most matches"


def test_ext_progressive_node_scheduling(benchmark, abt_buy):
    """Progressive node scheduling: recall vs comparison budget."""
    blocks = _prepared_blocks(abt_buy)
    truth = abt_buy.ground_truth.pairs()

    def run():
        ranking = ProgressiveNodeScheduling("cbs").rank(blocks)
        return progressive_recall_curve(ranking, truth, num_points=5)

    curve = benchmark(run)
    print_rows("EXT progressive node scheduling (recall vs budget)", curve)
    assert curve[-1]["recall"] > 0.9


def test_ext_progressive_vs_baseline(benchmark, abt_buy):
    """Progressive ordering beats the unordered blocking-collection baseline."""
    blocks = _prepared_blocks(abt_buy)
    truth = abt_buy.ground_truth.pairs()

    def run():
        progressive = ProgressiveSortedComparisons("cbs").rank(blocks)
        baseline = sorted(blocks.distinct_comparisons())
        budget = len(progressive) // 10
        return {
            "budget_comparisons": budget,
            "progressive_recall": round(
                len(set(progressive[:budget]) & truth) / len(truth), 4
            ),
            "baseline_recall": round(len(set(baseline[:budget]) & truth) / len(truth), 4),
        }

    row = benchmark(run)
    print_rows("EXT progressive vs unordered baseline (10% budget)", [row])
    assert row["progressive_recall"] > row["baseline_recall"]
