"""ABL-1 — weighting-scheme × pruning-strategy ablation.

The demo lets the user change the meta-blocking weighting scheme and pruning
strategy; this benchmark sweeps every combination on the Abt-Buy stand-in and
reports candidate pairs, recall and precision for each, which is the
information needed to pick a configuration during process debugging.
"""

from __future__ import annotations

import pytest
from conftest import print_rows

from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.blocking.token_blocking import TokenBlocking
from repro.metablocking.metablocker import MetaBlocker

WEIGHTINGS = ["cbs", "js", "arcs", "ecbs", "ejs"]
PRUNINGS = ["wep", "cep", "wnp", "rwnp", "cnp"]


@pytest.fixture(scope="module")
def prepared_blocks(abt_buy):
    raw = TokenBlocking().block(abt_buy.profiles)
    return BlockFiltering().filter(BlockPurging().purge(raw, len(abt_buy.profiles)))


@pytest.mark.parametrize("weighting", WEIGHTINGS)
def test_ablation_weighting_schemes(benchmark, abt_buy, prepared_blocks, weighting):
    """Sweep the weighting scheme with WNP pruning fixed."""
    truth = abt_buy.ground_truth.pairs()

    def run():
        result = MetaBlocker(weighting, "wnp").run(prepared_blocks)
        return {
            "weighting": weighting,
            "pruning": "wnp",
            "candidate_pairs": result.num_candidates,
            "recall": round(len(result.candidate_pairs & truth) / len(truth), 4),
            "precision": round(
                len(result.candidate_pairs & truth) / max(result.num_candidates, 1), 6
            ),
        }

    row = benchmark(run)
    print_rows(f"ABL-1 weighting scheme = {weighting}", [row])
    assert row["recall"] > 0.7


@pytest.mark.parametrize("pruning", PRUNINGS)
def test_ablation_pruning_strategies(benchmark, abt_buy, prepared_blocks, pruning):
    """Sweep the pruning strategy with CBS weighting fixed."""
    truth = abt_buy.ground_truth.pairs()

    def run():
        result = MetaBlocker("cbs", pruning).run(prepared_blocks)
        return {
            "weighting": "cbs",
            "pruning": pruning,
            "candidate_pairs": result.num_candidates,
            "recall": round(len(result.candidate_pairs & truth) / len(truth), 4),
            "precision": round(
                len(result.candidate_pairs & truth) / max(result.num_candidates, 1), 6
            ),
        }

    row = benchmark(run)
    print_rows(f"ABL-1 pruning strategy = {pruning}", [row])
    assert row["candidate_pairs"] > 0


def test_ablation_full_grid(benchmark, abt_buy, prepared_blocks):
    """The full weighting × pruning grid in one table (run once, no timing sweep)."""
    truth = abt_buy.ground_truth.pairs()

    def run():
        rows = []
        for weighting in WEIGHTINGS:
            for pruning in PRUNINGS:
                result = MetaBlocker(weighting, pruning).run(prepared_blocks)
                rows.append(
                    {
                        "weighting": weighting,
                        "pruning": pruning,
                        "candidate_pairs": result.num_candidates,
                        "recall": round(
                            len(result.candidate_pairs & truth) / len(truth), 4
                        ),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows("ABL-1 full weighting × pruning grid", rows)
    # Reciprocal WNP (BLAST's rule) always retains a subset of WNP.
    by_key = {(r["weighting"], r["pruning"]): r for r in rows}
    for weighting in WEIGHTINGS:
        assert (
            by_key[(weighting, "rwnp")]["candidate_pairs"]
            <= by_key[(weighting, "wnp")]["candidate_pairs"]
        )
