"""FIG1 — schema-agnostic token blocking + CBS/WEP meta-blocking (Figure 1).

Regenerates, for the toy dataset of Figure 1 and for the synthetic Abt-Buy
stand-in, the quantities the figure illustrates: the blocks produced by token
blocking, the CBS edge weights, and the comparisons retained by average-weight
(WEP) pruning.
"""

from __future__ import annotations

from conftest import print_rows

from repro.blocking.token_blocking import TokenBlocking
from repro.metablocking.graph import build_blocking_graph
from repro.metablocking.metablocker import MetaBlocker
from repro.metablocking.weights import weight_all_edges


def _toy_rows(toy) -> list[dict[str, object]]:
    blocks = TokenBlocking(remove_stopwords=True).block(toy.profiles)
    graph = build_blocking_graph(blocks)
    weights = weight_all_edges(graph, "cbs")
    result = MetaBlocker("cbs", "wep").run(blocks)
    rows = []
    for pair, weight in sorted(weights.items()):
        rows.append(
            {
                "edge": f"p{pair[0] + 1}-p{pair[1] + 1}",
                "cbs_weight": weight,
                "retained": pair in result.candidate_pairs,
                "true_match": pair in toy.ground_truth,
            }
        )
    return rows


def test_fig1_toy_example(benchmark, toy):
    """The Figure 1(b)/(c) toy run: blocks, weights and pruned comparisons."""
    rows = benchmark(_toy_rows, toy)
    print_rows("FIG1 toy example: CBS weights and WEP pruning", rows)
    retained_true = [r for r in rows if r["true_match"] and r["retained"]]
    assert len(retained_true) == 2, "both true matches must survive the pruning"


def test_fig1_schema_agnostic_blocking_abt_buy(benchmark, abt_buy):
    """Token blocking on the Abt-Buy stand-in: recall ≈ 1, very low precision."""

    def run():
        blocks = TokenBlocking().block(abt_buy.profiles)
        pairs = blocks.distinct_comparisons()
        truth = abt_buy.ground_truth.pairs()
        return {
            "blocks": len(blocks),
            "candidate_pairs": len(pairs),
            "recall": round(len(pairs & truth) / len(truth), 4),
            "precision": round(len(pairs & truth) / len(pairs), 6),
        }

    row = benchmark(run)
    print_rows("FIG1 schema-agnostic token blocking (Abt-Buy stand-in)", [row])
    assert row["recall"] > 0.95
    assert row["precision"] < 0.1


def test_fig1_meta_blocking_prunes_comparisons(benchmark, abt_buy):
    """CBS/WEP meta-blocking removes a large share of the comparisons."""

    def run():
        blocks = TokenBlocking().block(abt_buy.profiles)
        before = len(blocks.distinct_comparisons())
        result = MetaBlocker("cbs", "wep").run(blocks)
        truth = abt_buy.ground_truth.pairs()
        return {
            "edges_before": before,
            "edges_after": result.num_candidates,
            "removed_fraction": round(1 - result.num_candidates / before, 4),
            "recall_after": round(
                len(result.candidate_pairs & truth) / len(truth), 4
            ),
        }

    row = benchmark(run)
    print_rows("FIG1 meta-blocking pruning (Abt-Buy stand-in)", [row])
    assert row["removed_fraction"] > 0.3
    assert row["recall_after"] > 0.9
