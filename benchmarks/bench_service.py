"""SERVICE — ingest throughput and budgeted query latency of the ER service.

The service turns the batch library into a long-lived store; its two
operational figures are how fast profiles stream into the incremental index
(ingest throughput, profiles/s) and how fast budgeted match queries come
back (p50/p95 latency).  Both are measured here at the library level on
:class:`~repro.service.collection.ServiceCollection` — the exact objects the
HTTP handlers call, minus the socket, so the figures isolate engine cost
from network noise.

The query figures split *cold* from *warm*: the first query after an append
pays the full progressive ranking sweep; every later query under any budget
≤ the cached prefix is a slice.  The committed baseline therefore carries
the machine-independent ratio ``cold_over_warm`` (cold sweep seconds over
warm p95 seconds) alongside the absolute timings —
``scripts/bench_guard.py::check_service_against_baseline`` guards the ratio
strictly and the absolutes loosely.

The durability run (``run_wal_benchmark`` → committed
``service_wal_entries``) measures what the write-ahead ingest log costs:
the same batch stream ingested with no WAL, with ``fsync=off`` and with the
default ``fsync=batch``, reported as absolute profiles/s plus the
machine-independent ratios ``off_over_none``/``batch_over_none`` —
``scripts/bench_guard.py::check_service_wal_against_baseline`` holds the
batch-fsync rate at or above 50 percent of the non-WAL rate.

Regenerate the committed ``service_entries`` and ``service_wal_entries``
with::

    PYTHONPATH=src:benchmarks python benchmarks/bench_service.py
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.data.synthetic import generate_scalability_products
from repro.engine.metrics import LatencyHistogram
from repro.service.collection import CollectionConfig, ServiceCollection
from repro.service.wal import WriteAheadLog

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_metablocking.json"

SERVICE_SIZES = (2_000, 10_000)
BATCH_SIZE = 1_000
QUERY_COUNT = 50
BUDGET = 500
WAL_SIZE = 2_000
WAL_POLICIES = ("none", "off", "batch")


def _ingest_batches(num_entities: int, seed: int = 42):
    """The synthetic scalability products as ingest payload batches."""
    dataset = generate_scalability_products(num_entities, seed=seed)
    profiles = sorted(dataset.profiles, key=lambda p: p.profile_id)
    payloads = [
        {
            "id": profile.profile_id,
            "source": profile.source_id,
            "attributes": {
                kv.attribute: profile.values_of(kv.attribute)
                for kv in profile.attributes
            },
        }
        for profile in profiles
    ]
    return [
        {"profiles": payloads[start : start + BATCH_SIZE]}
        for start in range(0, len(payloads), BATCH_SIZE)
    ]


def run_service_benchmark(
    sizes=SERVICE_SIZES, query_count: int = QUERY_COUNT, budget: int = BUDGET
) -> list[dict]:
    """One entry per size: ingest throughput + cold/warm query latency."""
    entries: list[dict] = []
    for num_entities in sizes:
        batches = _ingest_batches(num_entities)
        # The scalability generator emits a two-source (clean-clean) pair.
        collection = ServiceCollection(
            CollectionConfig(name="bench", clean_clean=True)
        )
        try:
            ingest_started = time.perf_counter()
            total_profiles = 0
            for batch in batches:
                summary = collection.ingest(batch)
                total_profiles += summary["appended"]
            ingest_seconds = time.perf_counter() - ingest_started

            # Cold: the first query pays compaction + the full ranking sweep.
            cold_started = time.perf_counter()
            first = collection.matches(0, budget)
            cold_seconds = time.perf_counter() - cold_started
            assert len(first["candidates"]) <= budget

            # Warm: every further query slices the cached prefix.
            histogram = LatencyHistogram()
            profile_ids = collection.index.profile_ids()
            for position in range(query_count):
                profile_id = profile_ids[(position * 37) % len(profile_ids)]
                started = time.perf_counter()
                result = collection.matches(profile_id, budget)
                histogram.observe(time.perf_counter() - started)
                assert len(result["candidates"]) <= budget

            warm_p95 = histogram.quantile(0.95)
            entries.append(
                {
                    "num_entities": num_entities,
                    "profiles": total_profiles,
                    "batch_size": BATCH_SIZE,
                    "budget": budget,
                    "queries": query_count,
                    "ingest_s": round(ingest_seconds, 4),
                    "profiles_per_s": round(total_profiles / ingest_seconds, 1),
                    "cold_query_s": round(cold_seconds, 4),
                    "query_p50_s": round(histogram.quantile(0.50), 6),
                    "query_p95_s": round(warm_p95, 6),
                    "cold_over_warm": round(cold_seconds / max(warm_p95, 1e-9), 1),
                }
            )
        finally:
            collection.close()
    return entries


def run_wal_benchmark(num_entities: int = WAL_SIZE) -> list[dict]:
    """One entry: ingest throughput with no WAL vs ``fsync=off``/``batch``.

    Every policy ingests the identical batch stream into a fresh collection;
    the WAL-backed runs log each batch (pickle + CRC + write + flush) before
    it touches the index, which is exactly the durability overhead the
    committed ratios track.
    """
    batches = _ingest_batches(num_entities)
    rates: dict[str, float] = {}
    wal_bytes = 0
    for policy in WAL_POLICIES:
        with tempfile.TemporaryDirectory(prefix="repro-walbench-") as tmp:
            collection = ServiceCollection(
                CollectionConfig(name="bench", clean_clean=True)
            )
            if policy != "none":
                collection.attach_wal(
                    WriteAheadLog(os.path.join(tmp, "bench.wal"), fsync=policy)
                )
            try:
                started = time.perf_counter()
                total_profiles = 0
                for batch in batches:
                    total_profiles += collection.ingest(batch)["appended"]
                seconds = time.perf_counter() - started
                rates[policy] = total_profiles / seconds
                if collection.wal is not None:
                    wal_bytes = max(wal_bytes, collection.wal.size_bytes())
            finally:
                collection.close()
    return [
        {
            "num_entities": num_entities,
            "profiles": total_profiles,
            "batch_size": BATCH_SIZE,
            "wal_bytes": wal_bytes,
            "none_profiles_per_s": round(rates["none"], 1),
            "off_profiles_per_s": round(rates["off"], 1),
            "batch_profiles_per_s": round(rates["batch"], 1),
            "off_over_none": round(rates["off"] / rates["none"], 3),
            "batch_over_none": round(rates["batch"] / rates["none"], 3),
        }
    ]


def test_service_ingest_query_smoke(benchmark):
    """CI smoke: small ingest + query sweep through the served code path."""
    entries = benchmark.pedantic(
        lambda: run_service_benchmark(sizes=(1_000,), query_count=10), rounds=1,
        iterations=1,
    )
    entry = entries[0]
    # The generator emits a matched counterpart for most source-0 profiles,
    # so the pair holds between 1x and 2x num_entities profiles.
    assert 1_000 <= entry["profiles"] <= 2_000
    assert entry["profiles_per_s"] > 0
    assert entry["query_p95_s"] >= entry["query_p50_s"]


def test_service_wal_overhead_smoke(benchmark):
    """CI smoke: WAL-backed ingest holds a sane fraction of the no-WAL rate."""
    entries = benchmark.pedantic(
        lambda: run_wal_benchmark(num_entities=1_000), rounds=1, iterations=1
    )
    entry = entries[0]
    assert entry["wal_bytes"] > 0
    assert entry["batch_profiles_per_s"] > 0
    # Loose sanity bound for the smoke (the guard holds the committed-size
    # floor against the baseline): logging must not halve throughput.
    assert entry["batch_over_none"] >= 0.5
    assert entry["off_over_none"] >= 0.5


def main(argv=None) -> int:
    """Regenerate the committed ``service_entries`` section of the baseline."""
    import argparse

    from conftest import print_rows

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=list(SERVICE_SIZES))
    parser.add_argument("--output", type=Path, default=BASELINE_PATH)
    parser.add_argument(
        "--dry-run", action="store_true", help="run without writing the baseline file"
    )
    args = parser.parse_args(argv)

    entries = run_service_benchmark(sizes=tuple(args.sizes))
    print_rows("SERVICE ingest/query baseline", entries)
    wal_entries = run_wal_benchmark()
    print_rows("SERVICE WAL durability overhead", wal_entries)
    if not args.dry_run:
        payload = (
            json.loads(args.output.read_text()) if args.output.exists() else {}
        )
        payload["service_entries"] = entries
        payload["service_wal_entries"] = wal_entries
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote service_entries and service_wal_entries to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
