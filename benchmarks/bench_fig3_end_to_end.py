"""FIG3 — the end-to-end SparkER architecture (Figure 3).

Runs the full pipeline (blocker → entity matcher → entity clusterer) on the
Abt-Buy stand-in in the unsupervised default configuration and in the
schema-agnostic configuration, reporting the per-stage metrics of each run.
"""

from __future__ import annotations

from conftest import print_rows

from repro.core.config import SparkERConfig
from repro.core.sparker import SparkER


def _run_pipeline(dataset, config: SparkERConfig) -> dict[str, object]:
    result = SparkER(config).run(dataset.profiles, dataset.ground_truth)
    clusterer = result.report.get("clusterer").metrics
    matcher = result.report.get("matcher").metrics
    return {
        "candidate_pairs": result.summary()["candidate_pairs"],
        "matched_pairs": result.summary()["matched_pairs"],
        "clusters": result.summary()["clusters"],
        "match_precision": matcher["precision"],
        "match_recall": matcher["recall"],
        "cluster_f1": clusterer["f1"],
    }


def test_fig3_unsupervised_default(benchmark, abt_buy):
    """End-to-end run with the unsupervised default (BLAST) configuration."""
    row = benchmark(_run_pipeline, abt_buy, SparkERConfig.unsupervised_default())
    row = {"configuration": "unsupervised default (loose schema + entropy)", **row}
    print_rows("FIG3 end-to-end pipeline", [row])
    assert row["cluster_f1"] > 0.7


def test_fig3_schema_agnostic(benchmark, abt_buy):
    """End-to-end run with the purely schema-agnostic configuration."""
    row = benchmark(_run_pipeline, abt_buy, SparkERConfig.schema_agnostic())
    row = {"configuration": "schema-agnostic", **row}
    print_rows("FIG3 end-to-end pipeline (schema-agnostic)", [row])
    assert row["cluster_f1"] > 0.7


def test_fig3_distributed_engine(benchmark, abt_buy):
    """End-to-end run on the mini engine (the distributed code paths)."""

    def run():
        result = SparkER(SparkERConfig.unsupervised_default(), use_engine=True).run(
            abt_buy.profiles, abt_buy.ground_truth
        )
        return {
            "configuration": "unsupervised default on the engine",
            "candidate_pairs": result.summary()["candidate_pairs"],
            "clusters": result.summary()["clusters"],
            "cluster_f1": result.report.get("clusterer").metrics["f1"],
        }

    row = benchmark(run)
    print_rows("FIG3 end-to-end pipeline (engine-backed)", [row])
    assert row["cluster_f1"] > 0.7
