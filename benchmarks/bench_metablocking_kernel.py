"""Old-vs-new meta-blocking kernel benchmark (perf trajectory entry #1).

Times the hot paths of the meta-blocking kernel, across graph sizes:

* **legacy vs CSR python kernel** — the pre-CSR path materialises each
  neighbour's *full* neighbourhood again per edge to read its degree
  (O(Σ deg²) dict-of-tuples traversals) and emits every edge twice; the
  kernel path materialises each node's neighbourhood exactly once into
  reusable scratch buffers, reads degrees from the cached degree vector and
  emits each edge from its lower endpoint only.  Likewise WNP / CNP voting:
  full edge scan per node vs the incident-edge adjacency index.
* **python vs numpy kernel backend** (``numpy_entries``) — the interpreted
  CSR kernel against the vectorised
  :class:`~repro.metablocking.backends.NumpyKernel` on the same three paths:
  neighbourhood weighing (kernel sweep → weight table), WNP and CNP
  retention.  Output equality is asserted *bit-for-bit* — identical dicts,
  identical floats — before any timing is recorded; the guard enforces the
  ≥3× combined-speedup floor at the largest committed size.

Both comparisons must produce identical results; the benchmark asserts it,
then writes ``BENCH_metablocking.json`` next to the repo root as the
committed baseline that ``scripts/bench_guard.py`` checks regressions
against.

Run directly::

    PYTHONPATH=src python benchmarks/bench_metablocking_kernel.py
    PYTHONPATH=src python benchmarks/bench_metablocking_kernel.py --sizes 100 --dry-run
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.blocking.token_blocking import TokenBlocking
from repro.data.synthetic import SyntheticConfig, generate_abt_buy_like
from repro.engine.context import EngineContext
from repro.metablocking.graph import EdgeInfo
from repro.metablocking.index import CSRBlockIndex
from repro.metablocking.metablocker import MetaBlocker
from repro.metablocking.parallel import (
    CompactBlockIndex,
    ParallelMetaBlocker,
    _CardinalityNodeVotes,
    _sum_votes,
    _WeightedNodeVotes,
    edge_id_incidence,
    incident_edge_index,
)
from repro.metablocking.pruning import default_cnp_k
from repro.metablocking.weights import WeightingScheme, compute_edge_weight

DEFAULT_SIZES = (100, 200, 400)
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_metablocking.json"


def prepare_blocks(num_entities: int):
    dataset = generate_abt_buy_like(SyntheticConfig(num_entities=num_entities, seed=42))
    raw = TokenBlocking().block(dataset.profiles)
    blocks = BlockFiltering().filter(BlockPurging().purge(raw, len(dataset.profiles)))
    return dataset, blocks


# --------------------------------------------------------------------- legacy
def legacy_edge_weights(index: CompactBlockIndex) -> dict[tuple[int, int], float]:
    """The pre-CSR weighing loop: re-materialises each neighbour per edge."""
    scheme = WeightingScheme.CBS
    weights: dict[tuple[int, int], float] = {}
    for node in sorted(index.profile_blocks):
        neighbourhood = index.neighbourhood(node)
        blocks_node = len(index.blocks_of(node))
        degree_node = len(neighbourhood)
        for other, info in neighbourhood.items():
            weight = compute_edge_weight(
                scheme,
                info,
                blocks_a=blocks_node,
                blocks_b=len(index.blocks_of(other)),
                total_blocks=index.num_blocks,
                degree_a=degree_node,
                degree_b=len(index.neighbourhood(other)),
                total_edges=0,
            )
            pair = (node, other) if node <= other else (other, node)
            # Every edge arrives twice (once per endpoint); first write wins,
            # like the old reduceByKey(lambda a, _b: a).
            weights.setdefault(pair, weight)
    return weights


def legacy_wnp(
    weights: dict[tuple[int, int], float], nodes: list[int]
) -> dict[tuple[int, int], float]:
    """The pre-adjacency WNP voting loop: full edge scan per node."""
    votes: dict[tuple[int, int], int] = {}
    for node in nodes:
        incident = [(pair, w) for pair, w in weights.items() if node in pair]
        if not incident:
            continue
        threshold = sum(w for _p, w in incident) / len(incident)
        for pair, w in incident:
            if w >= threshold:
                votes[pair] = votes.get(pair, 0) + 1
    return {pair: weights[pair] for pair, count in votes.items() if count >= 1}


def legacy_cnp(
    weights: dict[tuple[int, int], float], nodes: list[int], k: int
) -> dict[tuple[int, int], float]:
    """The pre-adjacency CNP voting loop: full edge scan per node."""
    votes: dict[tuple[int, int], int] = {}
    for node in nodes:
        incident = [(pair, w) for pair, w in weights.items() if node in pair]
        ranked = sorted(incident, key=lambda item: (-item[1], item[0]))
        for pair, _w in ranked[:k]:
            votes[pair] = votes.get(pair, 0) + 1
    return {pair: weights[pair] for pair, count in votes.items() if count >= 1}


# --------------------------------------------------------------------- kernel
def kernel_edge_weights(index: CSRBlockIndex) -> dict[tuple[int, int], float]:
    """The CSR path: one materialisation per node, one emission per edge.

    Shaped exactly like the parallel weigher's hot loop (EdgeInfo +
    compute_edge_weight per emitted edge) so the measured speedup is the one
    the real pipeline gets.
    """
    scheme = WeightingScheme.CBS
    kernel = index.kernel()
    node_ids = index.node_ids
    block_counts = index.node_block_count
    total_blocks = index.total_blocks
    weights: dict[tuple[int, int], float] = {}
    for node in range(index.num_nodes):
        touched = kernel.neighbours(node)
        common, arcs, entropy = kernel.common_blocks, kernel.arcs, kernel.entropy_sum
        blocks_node = block_counts[node]
        profile_id = node_ids[node]
        for other in touched:
            if other <= node:
                continue
            info = EdgeInfo(
                common_blocks=common[other],
                arcs=arcs[other],
                entropy_sum=entropy[other],
            )
            weights[(profile_id, node_ids[other])] = compute_edge_weight(
                scheme,
                info,
                blocks_a=blocks_node,
                blocks_b=block_counts[other],
                total_blocks=total_blocks,
            )
    return weights


def kernel_wnp(
    weights: dict[tuple[int, int], float], nodes: list[int]
) -> dict[tuple[int, int], float]:
    """WNP voting over the incident-edge adjacency index (built once)."""
    incidence = incident_edge_index(weights)
    votes: dict[tuple[int, int], int] = {}
    for node in nodes:
        incident = incidence.get(node)
        if not incident:
            continue
        threshold = sum(w for _p, w in incident) / len(incident)
        for pair, w in incident:
            if w >= threshold:
                votes[pair] = votes.get(pair, 0) + 1
    return {pair: weights[pair] for pair, count in votes.items() if count >= 1}


def kernel_cnp(
    weights: dict[tuple[int, int], float], nodes: list[int], k: int
) -> dict[tuple[int, int], float]:
    """CNP voting over the incident-edge adjacency index (built once)."""
    incidence = incident_edge_index(weights)
    votes: dict[tuple[int, int], int] = {}
    for node in nodes:
        incident = incidence.get(node)
        if not incident:
            continue
        ranked = sorted(incident, key=lambda item: (-item[1], item[0]))
        for pair, _w in ranked[:k]:
            votes[pair] = votes.get(pair, 0) + 1
    return {pair: weights[pair] for pair, count in votes.items() if count >= 1}


# ------------------------------------------------------------------ harness
def _timed(func, *args, repeats: int = 3):
    """Run ``func`` ``repeats`` times; keep the result and the *best* time.

    Best-of-N damps scheduler jitter, which dominates the kernel-side
    millisecond timings and would otherwise make the regression guard flaky.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func(*args)
        best = min(best, time.perf_counter() - start)
    return result, best


def run_benchmark(sizes=DEFAULT_SIZES) -> list[dict]:
    entries = []
    for num_entities in sizes:
        dataset, blocks = prepare_blocks(num_entities)
        legacy_index = CompactBlockIndex.from_blocks(blocks)
        # Pin the python backend: these entries measure the interpreted CSR
        # kernel against the legacy dict path; the numpy backend has its own
        # comparison pass (run_numpy_benchmark).
        csr_index = CSRBlockIndex.from_blocks(blocks, backend="python")
        csr_index.degree_vector()

        legacy_weights, legacy_neigh_s = _timed(legacy_edge_weights, legacy_index)
        kernel_weights, kernel_neigh_s = _timed(kernel_edge_weights, csr_index)
        assert kernel_weights == legacy_weights, "edge weights diverged"

        nodes = sorted(legacy_index.profile_blocks)
        k = default_cnp_k(sum(csr_index.node_block_count), csr_index.num_nodes)

        legacy_wnp_result, legacy_wnp_s = _timed(legacy_wnp, kernel_weights, nodes)
        kernel_wnp_result, kernel_wnp_s = _timed(kernel_wnp, kernel_weights, nodes)
        assert kernel_wnp_result == legacy_wnp_result, "WNP output diverged"

        legacy_cnp_result, legacy_cnp_s = _timed(legacy_cnp, kernel_weights, nodes, k)
        kernel_cnp_result, kernel_cnp_s = _timed(kernel_cnp, kernel_weights, nodes, k)
        assert kernel_cnp_result == legacy_cnp_result, "CNP output diverged"

        entry = {
            "num_entities": num_entities,
            "profiles": len(dataset.profiles),
            "nodes": csr_index.num_nodes,
            "edges": csr_index.num_edges(),
            "neighbourhood": _ratio_entry(legacy_neigh_s, kernel_neigh_s),
            "wnp": _ratio_entry(legacy_wnp_s, kernel_wnp_s),
            "cnp": _ratio_entry(legacy_cnp_s, kernel_cnp_s),
        }
        entries.append(entry)
        print(
            f"[{num_entities:>4} entities] edges={entry['edges']:>7} | "
            f"neighbourhood {legacy_neigh_s:.3f}s -> {kernel_neigh_s:.3f}s "
            f"({entry['neighbourhood']['speedup']:.1f}x) | "
            f"wnp {legacy_wnp_s:.3f}s -> {kernel_wnp_s:.3f}s "
            f"({entry['wnp']['speedup']:.1f}x) | "
            f"cnp {legacy_cnp_s:.3f}s -> {kernel_cnp_s:.3f}s "
            f"({entry['cnp']['speedup']:.1f}x)"
        )
    return entries


def _ratio_entry(legacy_s: float, kernel_s: float) -> dict:
    return {
        "legacy_s": round(legacy_s, 6),
        "kernel_s": round(kernel_s, 6),
        "speedup": round(legacy_s / kernel_s, 2) if kernel_s > 0 else float("inf"),
    }


# ------------------------------------------------------- vote wire format
# The pre-edge-id vote tasks, kept here as the reference point of the shuffle
# wire-format benchmark: each vote crossed the shuffle as a full
# ((a, b), (weight, count)) tuple instead of a compact (edge id, count) pair.


class _LegacyTupleWnpVotes:
    __slots__ = ("incidence_broadcast",)

    def __init__(self, incidence_broadcast) -> None:
        self.incidence_broadcast = incidence_broadcast

    def __call__(self, node):
        incident = self.incidence_broadcast.value.get(node)
        if not incident:
            return []
        threshold = sum(w for _p, w in incident) / len(incident)
        return [(pair, (w, 1)) for pair, w in incident if w >= threshold]


class _LegacyTupleCnpVotes:
    __slots__ = ("incidence_broadcast", "k")

    def __init__(self, incidence_broadcast, k) -> None:
        self.incidence_broadcast = incidence_broadcast
        self.k = k

    def __call__(self, node):
        incident = self.incidence_broadcast.value.get(node)
        if not incident:
            return []
        ranked = sorted(incident, key=lambda item: (-item[1], item[0]))
        return [(pair, (w, 1)) for pair, w in ranked[: self.k]]


def _legacy_merge_votes(a, b):
    return (a[0], a[1] + b[1])


def _vote_shuffle_volume(node_ids, vote_task, reducer, name):
    """Run one vote job on a fresh serial context; return its shuffle volume.

    The measured quantity is the vote-stage map output — the records and
    pickled bytes that cross the shuffle (and, under a process executor, the
    IPC boundary).  It is deterministic: no timing involved.
    """
    context = EngineContext(4, executor="serial")
    rdd = context.parallelize(node_ids).flatMap(vote_task, name=name)
    rdd.reduceByKey(reducer).collectAsMap()
    map_rows = [
        row
        for row in context.scheduler.stage_table()
        if str(row["description"]).startswith(f"{name}.reduceByKey.shuffle.map")
    ]
    assert map_rows, "vote map stage missing from the stage table"
    return (
        sum(row["shuffle_write"] for row in map_rows),
        sum(row["shuffle_write_bytes"] for row in map_rows),
    )


def run_shuffle_benchmark(sizes=DEFAULT_SIZES) -> list[dict]:
    """Vote-stage shuffle volume: legacy tuple format vs compact edge ids.

    Both formats run the same WNP / CNP vote jobs over the same weights and
    broadcast incidence; only the wire records differ.  Writes the
    ``shuffle_entries`` baseline section guarded by ``scripts/bench_guard.py``.
    """
    entries = []
    for num_entities in sizes:
        _dataset, blocks = prepare_blocks(num_entities)
        csr_index = CSRBlockIndex.from_blocks(blocks, backend="python")
        weights = kernel_edge_weights(csr_index)
        node_ids = list(csr_index.node_ids)
        k = default_cnp_k(sum(csr_index.node_block_count), csr_index.num_nodes)

        # One throwaway context per job keeps the stage tables separable;
        # broadcasts are re-created because they are context-owned.
        legacy_context = EngineContext(4, executor="serial")
        legacy_incidence = legacy_context.broadcast(incident_edge_index(weights))
        compact_context = EngineContext(4, executor="serial")
        _edge_list, incidence = edge_id_incidence(weights)
        compact_incidence = compact_context.broadcast(incidence)

        entry = {"num_entities": num_entities, "edges": len(weights)}
        for job, legacy_task, compact_task in (
            (
                "wnp",
                _LegacyTupleWnpVotes(legacy_incidence),
                _WeightedNodeVotes(compact_incidence),
            ),
            (
                "cnp",
                _LegacyTupleCnpVotes(legacy_incidence, k),
                _CardinalityNodeVotes(compact_incidence, k),
            ),
        ):
            tuple_records, tuple_bytes = _vote_shuffle_volume(
                node_ids, legacy_task, _legacy_merge_votes, f"legacy.{job}.votes"
            )
            edge_records, edge_bytes = _vote_shuffle_volume(
                node_ids, compact_task, _sum_votes, f"{job}.votes"
            )
            entry[job] = {
                "tuple_records": tuple_records,
                "tuple_bytes": tuple_bytes,
                "edge_id_records": edge_records,
                "edge_id_bytes": edge_bytes,
                "bytes_reduction": round(1.0 - edge_bytes / tuple_bytes, 4),
            }
        entries.append(entry)
        print(
            f"[{num_entities:>4} entities] vote shuffle | "
            f"wnp {entry['wnp']['tuple_bytes']:>9}B -> {entry['wnp']['edge_id_bytes']:>8}B "
            f"(-{entry['wnp']['bytes_reduction']:.0%}) | "
            f"cnp {entry['cnp']['tuple_bytes']:>9}B -> {entry['cnp']['edge_id_bytes']:>8}B "
            f"(-{entry['cnp']['bytes_reduction']:.0%})"
        )
    return entries


# ------------------------------------------------------- block store pass
def _vote_blockstore_volume(node_ids, weights, store, workers):
    """Run the WNP vote job under ``process:N`` with the given block store.

    Returns the collected vote map plus the map-stage shuffle volumes split
    by route: ``payload_bytes`` (total pickled bucket payload — identical
    across stores), ``relay_bytes`` (what crossed the driver) and
    ``peer_bytes`` (what moved worker-to-worker through segments / spill
    files).  Deterministic: no timing involved.
    """
    context = EngineContext(4, executor=f"process:{workers}", block_store=store)
    try:
        _edge_list, incidence = edge_id_incidence(weights)
        task = _WeightedNodeVotes(context.broadcast(incidence))
        votes = (
            context.parallelize(node_ids)
            .flatMap(task, name="wnp.votes")
            .reduceByKey(_sum_votes)
            .collectAsMap()
        )
        map_rows = [
            row
            for row in context.scheduler.stage_table()
            if str(row["description"]).startswith("wnp.votes.reduceByKey.shuffle.map")
        ]
        assert map_rows, "vote map stage missing from the stage table"
        volumes = {
            "payload_bytes": sum(row["shuffle_write_bytes"] for row in map_rows),
            "relay_bytes": sum(row["shuffle_relay_bytes"] for row in map_rows),
            "peer_bytes": sum(row["shuffle_peer_bytes"] for row in map_rows),
        }
        return votes, volumes
    finally:
        context.stop()


def run_blockstore_benchmark(sizes=DEFAULT_SIZES, workers=2) -> list[dict]:
    """Driver-relayed shuffle bytes: driver block store vs shared memory.

    Runs the same WNP vote job (the ``shuffle_entries`` scenario) under a
    ``process:N`` executor twice — once relaying every bucket payload through
    the driver, once publishing buckets as named shared-memory segments with
    the driver brokering only block refs.  The vote maps must be identical;
    the guarded quantity is ``relay_reduction`` — the fraction of
    driver-crossed bytes eliminated by the peer-to-peer store.  Writes the
    ``blockstore_entries`` baseline section checked by
    ``scripts/bench_guard.py``.
    """
    entries = []
    for num_entities in sizes:
        _dataset, blocks = prepare_blocks(num_entities)
        csr_index = CSRBlockIndex.from_blocks(blocks, backend="python")
        weights = kernel_edge_weights(csr_index)
        node_ids = list(csr_index.node_ids)

        driver_votes, driver_volumes = _vote_blockstore_volume(
            node_ids, weights, "driver", workers
        )
        shm_votes, shm_volumes = _vote_blockstore_volume(
            node_ids, weights, "shared-memory", workers
        )
        assert shm_votes == driver_votes, "block stores diverged on the vote map"
        assert shm_volumes["payload_bytes"] == driver_volumes["payload_bytes"], (
            "bucket payload bytes diverged between block stores"
        )

        entry = {
            "num_entities": num_entities,
            "edges": len(weights),
            "workers": workers,
            "driver": driver_volumes,
            "shared_memory": shm_volumes,
            "relay_reduction": round(
                1.0 - shm_volumes["relay_bytes"] / driver_volumes["relay_bytes"], 4
            ),
        }
        entries.append(entry)
        print(
            f"[{num_entities:>4} entities] wnp vote relay under process:{workers} | "
            f"driver {driver_volumes['relay_bytes']:>9}B -> "
            f"shared-memory {shm_volumes['relay_bytes']:>6}B "
            f"(-{entry['relay_reduction']:.1%})"
        )
    return entries


# ------------------------------------------------------- numpy backend pass
def _numpy_weight_table(index):
    """One full numpy weighting job: fresh kernel sweep → weight table.

    The cached kernel (and its whole-graph sweep) is dropped first so every
    repeat measures the complete job, not a cache hit.
    """
    from repro.metablocking.weights import WeightingScheme

    index._kernel = None
    plan = index.weight_plan(WeightingScheme.CBS, False)
    return index.kernel().weight_table(plan)


def _numpy_wnp(table):
    from repro.metablocking.backends import wnp_retain

    return wnp_retain(table, 1)


def _numpy_cnp(table, k):
    from repro.metablocking.backends import cnp_retain

    table._canonical_rank = None  # measure the full job, not the rank cache
    return cnp_retain(table, k, 1)


def run_numpy_benchmark(sizes=DEFAULT_SIZES) -> list[dict]:
    """Python vs numpy kernel backend on neighbourhood + WNP + CNP.

    Both backends run the same jobs over the same blocks; the outputs are
    asserted equal — bit-for-bit, float weights included — before any timing
    counts.  Skips cleanly (empty list) when numpy is not importable.
    """
    from repro.metablocking.backends import numpy_available

    if not numpy_available():
        print("numpy not importable — skipping the numpy backend comparison")
        return []
    entries = []
    for num_entities in sizes:
        _dataset, blocks = prepare_blocks(num_entities)
        python_index = CSRBlockIndex.from_blocks(blocks, backend="python")
        numpy_index = CSRBlockIndex.from_blocks(blocks, backend="numpy")

        python_weights, python_neigh_s = _timed(kernel_edge_weights, python_index)
        table, numpy_neigh_s = _timed(_numpy_weight_table, numpy_index)
        assert table.mapping == python_weights, "backend edge weights diverged"
        assert list(table.mapping) == list(python_weights), (
            "backend edge emission order diverged"
        )

        nodes = list(python_index.node_ids)
        k = default_cnp_k(
            sum(python_index.node_block_count), python_index.num_nodes
        )

        python_wnp, python_wnp_s = _timed(kernel_wnp, python_weights, nodes)
        numpy_wnp, numpy_wnp_s = _timed(_numpy_wnp, table)
        assert numpy_wnp == python_wnp, "backend WNP output diverged"

        python_cnp, python_cnp_s = _timed(kernel_cnp, python_weights, nodes, k)
        numpy_cnp, numpy_cnp_s = _timed(_numpy_cnp, table, k)
        assert numpy_cnp == python_cnp, "backend CNP output diverged"

        python_total = python_neigh_s + python_wnp_s + python_cnp_s
        numpy_total = numpy_neigh_s + numpy_wnp_s + numpy_cnp_s
        entry = {
            "num_entities": num_entities,
            "edges": len(python_weights),
            "neighbourhood": _backend_ratio(python_neigh_s, numpy_neigh_s),
            "wnp": _backend_ratio(python_wnp_s, numpy_wnp_s),
            "cnp": _backend_ratio(python_cnp_s, numpy_cnp_s),
            "combined": _backend_ratio(python_total, numpy_total),
        }
        entries.append(entry)
        print(
            f"[{num_entities:>4} entities] python vs numpy backend | "
            f"neighbourhood {python_neigh_s:.3f}s -> {numpy_neigh_s:.3f}s "
            f"({entry['neighbourhood']['speedup']:.1f}x) | "
            f"wnp {python_wnp_s:.3f}s -> {numpy_wnp_s:.3f}s "
            f"({entry['wnp']['speedup']:.1f}x) | "
            f"cnp {python_cnp_s:.3f}s -> {numpy_cnp_s:.3f}s "
            f"({entry['cnp']['speedup']:.1f}x) | "
            f"combined {entry['combined']['speedup']:.1f}x"
        )
    return entries


def _backend_ratio(python_s: float, numpy_s: float) -> dict:
    return {
        "python_s": round(python_s, 6),
        "numpy_s": round(numpy_s, 6),
        "speedup": round(python_s / numpy_s, 2) if numpy_s > 0 else float("inf"),
    }


# --------------------------------------------------------------- end-to-end
def _sequential_metablocking(blocks):
    return MetaBlocker("cbs", "wnp").run(blocks)


def _engine_metablocking(blocks):
    # Pin the serial executor: the committed overhead baseline was recorded
    # with it, and an inherited REPRO_ENGINE_EXECUTOR must not change what
    # the guard measures (or leak an owned worker pool).
    with EngineContext(4, executor="serial") as context:
        return ParallelMetaBlocker(context, "cbs", "wnp").run(blocks)


def run_e2e_benchmark(sizes=DEFAULT_SIZES) -> list[dict]:
    """Wall-clock of the full ``ParallelMetaBlocker`` vs the sequential path.

    The guarded quantity is the *overhead ratio* (engine wall-clock over
    sequential wall-clock on the same blocks, same machine, same moment) —
    machine speed cancels out, so the committed baseline travels across
    hosts.  A regression here means the engine plumbing (stage fusion,
    executor dispatch, broadcast shipping) got more expensive relative to
    the algorithmic work, which no kernel micro-benchmark would notice.
    """
    entries = []
    for num_entities in sizes:
        dataset, blocks = prepare_blocks(num_entities)
        sequential, sequential_s = _timed(_sequential_metablocking, blocks)
        parallel, parallel_s = _timed(_engine_metablocking, blocks)
        assert parallel.retained_edges == sequential.retained_edges, (
            "engine meta-blocking diverged from the sequential path"
        )
        entry = {
            "num_entities": num_entities,
            "profiles": len(dataset.profiles),
            "sequential_s": round(sequential_s, 6),
            "parallel_s": round(parallel_s, 6),
            "overhead": round(parallel_s / sequential_s, 3),
        }
        entries.append(entry)
        print(
            f"[{num_entities:>4} entities] e2e sequential {sequential_s:.3f}s | "
            f"engine {parallel_s:.3f}s | overhead {entry['overhead']:.2f}x"
        )
    return entries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES))
    parser.add_argument("--output", type=Path, default=BASELINE_PATH)
    parser.add_argument(
        "--dry-run", action="store_true", help="run without writing the baseline file"
    )
    parser.add_argument(
        "--skip-kernel", action="store_true",
        help="keep the committed kernel entries; only refresh the e2e section",
    )
    parser.add_argument(
        "--skip-e2e", action="store_true",
        help="keep the committed e2e entries; only refresh the kernel section",
    )
    parser.add_argument(
        "--skip-shuffle", action="store_true",
        help="keep the committed shuffle entries; skip the wire-format section",
    )
    parser.add_argument(
        "--skip-numpy", action="store_true",
        help="keep the committed numpy-backend entries; skip that comparison",
    )
    parser.add_argument(
        "--skip-blockstore", action="store_true",
        help="keep the committed block-store entries; skip the relay comparison",
    )
    args = parser.parse_args(argv)

    any_skip = (
        args.skip_kernel
        or args.skip_e2e
        or args.skip_shuffle
        or args.skip_numpy
        or args.skip_blockstore
    )
    existing = {}
    if any_skip and args.output.exists():
        existing = json.loads(args.output.read_text())
    entries = (
        existing.get("entries", []) if args.skip_kernel else run_benchmark(args.sizes)
    )
    e2e_entries = (
        existing.get("e2e_entries", [])
        if args.skip_e2e
        else run_e2e_benchmark(args.sizes)
    )
    shuffle_entries = (
        existing.get("shuffle_entries", [])
        if args.skip_shuffle
        else run_shuffle_benchmark(args.sizes)
    )
    numpy_entries = (
        existing.get("numpy_entries", [])
        if args.skip_numpy
        else run_numpy_benchmark(args.sizes)
    )
    blockstore_entries = (
        existing.get("blockstore_entries", [])
        if args.skip_blockstore
        else run_blockstore_benchmark(args.sizes)
    )
    if not args.dry_run:
        payload = {
            "benchmark": "metablocking_kernel",
            "entries": entries,
            "e2e_entries": e2e_entries,
            "shuffle_entries": shuffle_entries,
            "numpy_entries": numpy_entries,
            "blockstore_entries": blockstore_entries,
        }
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
