"""SCALE — the scalability structure of the parallel algorithms.

The paper's claim is architectural: SparkER's algorithms are designed for a
MapReduce-like engine, using a broadcast-join structure for meta-blocking so
that the work partitions over the blocking-graph nodes.  Real cluster speedups
cannot be measured in a single Python process, so this benchmark reports the
quantities that determine them:

* task counts and shuffle volume as a function of the partition count,
* load balance (skew) of the broadcast-join meta-blocking,
* wall-clock of the sequential vs engine-backed meta-blocking (same output),
* wall-clock growth as the dataset size grows.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import subprocess
import sys
import time
from pathlib import Path

import pytest
from conftest import print_rows

from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.blocking.token_blocking import TokenBlocking
from repro.data.synthetic import (
    SyntheticConfig,
    generate_abt_buy_like,
    generate_scalability_products,
)
from repro.engine.context import EngineContext
from repro.engine.executors import MultiprocessingExecutor
from repro.metablocking.metablocker import MetaBlocker
from repro.metablocking.parallel import ParallelMetaBlocker


def _prepared_blocks(dataset):
    raw = TokenBlocking().block(dataset.profiles)
    return BlockFiltering().filter(BlockPurging().purge(raw, len(dataset.profiles)))


@pytest.mark.parametrize("partitions", [1, 2, 4, 8, 16])
def test_scale_partition_sweep(benchmark, abt_buy_large, partitions):
    """Task count, shuffle volume and skew of the parallel meta-blocking."""
    blocks = _prepared_blocks(abt_buy_large)

    def run():
        context = EngineContext(default_parallelism=partitions)
        result = ParallelMetaBlocker(context, "cbs", "wnp").run(blocks)
        stages = context.scheduler.stages
        return {
            "partitions": partitions,
            "tasks": context.scheduler.total_tasks,
            "shuffle_records": context.scheduler.total_shuffle_records,
            "fused_narrow": context.scheduler.total_fused_stages,
            "max_stage_skew": round(max((s.skew for s in stages), default=0.0), 3),
            "candidate_pairs": result.num_candidates,
        }

    row = benchmark(run)
    print_rows(f"SCALE parallel meta-blocking, {partitions} partitions", [row])
    assert row["candidate_pairs"] > 0


def test_scale_stage_breakdown(benchmark, abt_buy_large):
    """Per-stage record/shuffle counters of one broadcast-join WNP run.

    The broadcast-join structure shows up directly in the counters: the
    weighting stage emits each edge exactly once with zero shuffle (the CSR
    index travels by broadcast), and only the node-pruning votes cross a
    shuffle boundary.
    """
    blocks = _prepared_blocks(abt_buy_large)

    def run():
        context = EngineContext(default_parallelism=8)
        ParallelMetaBlocker(context, "cbs", "wnp").run(blocks)
        return context.scheduler.stage_table()

    table = benchmark(run)
    print_rows("SCALE per-stage counters (WNP, 8 partitions)", table)
    weight_stages = [r for r in table if "metablocking.weights" in str(r["description"])]
    assert weight_stages, "the edge-weighting stage must appear in the stage table"
    # Each edge is emitted from its lower endpoint only: no weighting shuffle.
    assert all(r["shuffle_write"] == 0 for r in weight_stages)


def test_scale_parallel_equals_sequential(benchmark, abt_buy_large):
    """The broadcast-join meta-blocking returns the sequential result exactly."""
    blocks = _prepared_blocks(abt_buy_large)
    sequential = MetaBlocker("cbs", "wnp").run(blocks)

    def run():
        return ParallelMetaBlocker(EngineContext(8), "cbs", "wnp").run(blocks)

    parallel = benchmark(run)
    print_rows(
        "SCALE sequential vs parallel meta-blocking",
        [
            {
                "sequential_candidates": sequential.num_candidates,
                "parallel_candidates": parallel.num_candidates,
                "identical_output": parallel.candidate_pairs == sequential.candidate_pairs,
            }
        ],
    )
    assert parallel.candidate_pairs == sequential.candidate_pairs


@pytest.mark.parametrize("num_entities", [100, 200, 400])
def test_scale_dataset_growth(benchmark, num_entities):
    """End-to-end blocker cost as the dataset grows (input-size scaling)."""
    dataset = generate_abt_buy_like(SyntheticConfig(num_entities=num_entities, seed=7))

    def run():
        blocks = _prepared_blocks(dataset)
        result = MetaBlocker("cbs", "wnp").run(blocks)
        return {
            "entities": num_entities,
            "profiles": len(dataset.profiles),
            "graph_edges": result.graph_edges,
            "candidate_pairs": result.num_candidates,
        }

    row = benchmark(run)
    print_rows(f"SCALE dataset growth ({num_entities} entities)", [row])
    assert row["candidate_pairs"] > 0


@pytest.mark.parametrize(
    "weighting,pruning,use_entropy",
    [("cbs", "wnp", False), ("ejs", "wep", True)],
    ids=["cbs-wnp", "ejs-entropy-wep"],
)
def test_scale_executor_speedup(benchmark, abt_buy_large, weighting, pruning, use_entropy):
    """Serial vs process-pool executor wall-clock on the largest scenario.

    This is the PR's headline number: the same broadcast-join meta-blocking
    job, once with every stage in the driver and once with the narrow stages
    shipped to a 4-worker process pool.  Output must be bit-for-bit identical
    either way.  The ``ejs``+entropy weighted-edge job is where process
    execution pays: almost all its work sits in the shipped weighting stage
    (CBS/WNP spends a larger fraction in the driver-side vote shuffle, so it
    is reported but not asserted).  The >1.5× speedup assertion is gated on
    the machine actually having 4 cores — a single-core container cannot
    exhibit multi-core speedup and reports the (honest) slowdown instead.
    """
    blocks = _prepared_blocks(abt_buy_large)
    workers = 4

    def run():
        with EngineContext(workers, executor="serial") as serial_context:
            start = time.perf_counter()
            serial_result = ParallelMetaBlocker(
                serial_context, weighting, pruning, use_entropy=use_entropy
            ).run(blocks)
            serial_s = time.perf_counter() - start

        executor = MultiprocessingExecutor(max_workers=workers, on_unpicklable="raise")
        try:
            with EngineContext(workers, executor=executor) as process_context:
                # Warm the pool so fork/start-up cost is not billed to the job.
                process_context.parallelize(range(workers), workers).map(abs).collect()
                start = time.perf_counter()
                process_result = ParallelMetaBlocker(
                    process_context, weighting, pruning, use_entropy=use_entropy
                ).run(blocks)
                process_s = time.perf_counter() - start
        finally:
            executor.close()

        assert process_result.retained_edges == serial_result.retained_edges
        return {
            "job": f"{weighting}/{pruning}",
            "cpus": os.cpu_count(),
            "workers": workers,
            "serial_s": round(serial_s, 3),
            "process_s": round(process_s, 3),
            "speedup": round(serial_s / process_s, 2),
            "identical_output": True,
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows(f"SCALE executor comparison ({weighting}/{pruning}, largest scenario)", [row])
    if weighting == "ejs" and (os.cpu_count() or 1) >= workers:
        assert row["speedup"] > 1.5


SCALE_SIZES = (10_000, 100_000)
SCALE_BUFFER_BACKENDS = ("ram", "memmap")
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_metablocking.json"


def _max_rss_kb() -> int:
    """Process-lifetime peak RSS in KB (``ru_maxrss`` is bytes on darwin)."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak) // 1024 if sys.platform == "darwin" else int(peak)


def scale_run(num_entities: int, buffer_backend: str) -> dict:
    """One out-of-core meta-blocking run on the scalability dataset.

    Streams the retained edges in bounded chunks (no retained-edge dict is
    ever materialised) and fingerprints them with a SHA-256 over the packed
    ``(a, b, weight)`` triples in emission order, so ram and memmap runs can
    be compared bit-for-bit across processes.  Call this in a *fresh*
    process per configuration: ``ru_maxrss`` is a process-lifetime
    high-water mark, so two configurations measured in one process would
    share one meaningless peak.
    """
    start = time.perf_counter()
    dataset = generate_scalability_products(num_entities)
    blocks = _prepared_blocks(dataset)
    build_s = time.perf_counter() - start

    meta_blocker = MetaBlocker("cbs", "wnp", buffer_backend=buffer_backend)
    digest = hashlib.sha256()
    retained = 0
    mb_start = time.perf_counter()
    for chunk in meta_blocker.stream_retained(blocks):
        for (a, b), weight in chunk:
            digest.update(struct.pack("<qqd", a, b, weight))
        retained += len(chunk)
    metablocking_s = time.perf_counter() - mb_start

    return {
        "num_entities": num_entities,
        "buffer_backend": buffer_backend,
        "profiles": len(dataset.profiles),
        "blocks": len(blocks),
        "retained_edges": retained,
        "checksum": digest.hexdigest()[:16],
        "build_s": round(build_s, 3),
        "metablocking_s": round(metablocking_s, 3),
        "max_rss_kb": _max_rss_kb(),
    }


def run_scale_benchmark(
    sizes=SCALE_SIZES, buffer_backends=SCALE_BUFFER_BACKENDS
) -> list[dict]:
    """Run :func:`scale_run` for every size × buffer backend, one subprocess
    each, and fold the results into one entry per size.

    The subprocess isolation is what makes ``max_rss_kb`` comparable across
    backends; the checksum equality check is the out-of-core acceptance
    criterion (memmap output bit-for-bit identical to ram).
    """
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(repo_root / "src"), str(repo_root / "benchmarks")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    entries: list[dict] = []
    for num_entities in sizes:
        per_backend: dict[str, dict] = {}
        for backend in buffer_backends:
            completed = subprocess.run(
                [sys.executable, __file__, "--scale-child", str(num_entities), backend],
                check=True,
                capture_output=True,
                text=True,
                env=env,
            )
            per_backend[backend] = json.loads(completed.stdout.splitlines()[-1])
        checksums = {row["checksum"] for row in per_backend.values()}
        if len(checksums) != 1:
            raise AssertionError(
                f"scale benchmark: buffer backends disagree at {num_entities} "
                f"entities: { {k: v['checksum'] for k, v in per_backend.items()} }"
            )
        reference = per_backend[buffer_backends[0]]
        entry = {
            "num_entities": num_entities,
            "profiles": reference["profiles"],
            "blocks": reference["blocks"],
            "retained_edges": reference["retained_edges"],
            "checksum": reference["checksum"],
        }
        for backend, row in per_backend.items():
            entry[backend] = {
                "build_s": row["build_s"],
                "metablocking_s": row["metablocking_s"],
                "max_rss_kb": row["max_rss_kb"],
            }
        if "ram" in per_backend and "memmap" in per_backend:
            entry["memmap_overhead"] = round(
                per_backend["memmap"]["metablocking_s"]
                / max(per_backend["ram"]["metablocking_s"], 1e-9),
                3,
            )
            entry["memmap_rss_ratio"] = round(
                per_backend["memmap"]["max_rss_kb"]
                / max(per_backend["ram"]["max_rss_kb"], 1),
                3,
            )
        entries.append(entry)
    return entries


def test_scale_out_of_core_smoke(benchmark):
    """CI smoke: ram and memmap agree bit-for-bit on a small scalability run.

    The committed 10⁴/10⁵ baselines are regenerated offline with
    ``python benchmarks/bench_scalability.py``; here a 2 000-entity sweep
    keeps the subprocess-isolated RSS/equivalence machinery exercised on
    every benchmark run.
    """
    entries = benchmark.pedantic(
        lambda: run_scale_benchmark(sizes=(2_000,)), rounds=1, iterations=1
    )
    print_rows("SCALE out-of-core (2000 entities)", entries)
    entry = entries[0]
    assert entry["retained_edges"] > 0
    assert entry["memmap_overhead"] > 0  # checksum equality already enforced


def main(argv=None) -> int:
    """Regenerate the committed ``scale_entries`` section of the baseline."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale-child",
        nargs=2,
        metavar=("NUM_ENTITIES", "BUFFER_BACKEND"),
        default=None,
        help="internal: run one configuration and print its JSON row",
    )
    parser.add_argument("--sizes", type=int, nargs="+", default=list(SCALE_SIZES))
    parser.add_argument("--output", type=Path, default=BASELINE_PATH)
    parser.add_argument(
        "--dry-run", action="store_true", help="run without writing the baseline file"
    )
    args = parser.parse_args(argv)

    if args.scale_child is not None:
        num_entities, backend = args.scale_child
        print(json.dumps(scale_run(int(num_entities), backend)))
        return 0

    entries = run_scale_benchmark(sizes=tuple(args.sizes))
    print_rows("SCALE out-of-core baseline", entries)
    if not args.dry_run:
        payload = (
            json.loads(args.output.read_text()) if args.output.exists() else {}
        )
        payload["scale_entries"] = entries
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"scale baseline written to {args.output}")
    return 0


def test_scale_token_blocking_distributed(benchmark, abt_buy_large):
    """Distributed token blocking produces the same blocks as the local path."""
    local = TokenBlocking().block(abt_buy_large.profiles)

    def run():
        context = EngineContext(8)
        blocks = TokenBlocking(engine=context).block(abt_buy_large.profiles)
        return blocks, context.metrics_summary()

    blocks, summary = benchmark(run)
    print_rows(
        "SCALE distributed token blocking",
        [
            {
                "blocks": len(blocks),
                "same_comparisons_as_local": blocks.distinct_comparisons()
                == local.distinct_comparisons(),
                "engine_tasks": summary["tasks"],
                "shuffle_records": summary["shuffle_records"],
            }
        ],
    )
    assert blocks.distinct_comparisons() == local.distinct_comparisons()


if __name__ == "__main__":
    raise SystemExit(main())
