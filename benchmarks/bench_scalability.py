"""SCALE — the scalability structure of the parallel algorithms.

The paper's claim is architectural: SparkER's algorithms are designed for a
MapReduce-like engine, using a broadcast-join structure for meta-blocking so
that the work partitions over the blocking-graph nodes.  Real cluster speedups
cannot be measured in a single Python process, so this benchmark reports the
quantities that determine them:

* task counts and shuffle volume as a function of the partition count,
* load balance (skew) of the broadcast-join meta-blocking,
* wall-clock of the sequential vs engine-backed meta-blocking (same output),
* wall-clock growth as the dataset size grows.
"""

from __future__ import annotations

import os
import time

import pytest
from conftest import print_rows

from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.blocking.token_blocking import TokenBlocking
from repro.data.synthetic import SyntheticConfig, generate_abt_buy_like
from repro.engine.context import EngineContext
from repro.engine.executors import MultiprocessingExecutor
from repro.metablocking.metablocker import MetaBlocker
from repro.metablocking.parallel import ParallelMetaBlocker


def _prepared_blocks(dataset):
    raw = TokenBlocking().block(dataset.profiles)
    return BlockFiltering().filter(BlockPurging().purge(raw, len(dataset.profiles)))


@pytest.mark.parametrize("partitions", [1, 2, 4, 8, 16])
def test_scale_partition_sweep(benchmark, abt_buy_large, partitions):
    """Task count, shuffle volume and skew of the parallel meta-blocking."""
    blocks = _prepared_blocks(abt_buy_large)

    def run():
        context = EngineContext(default_parallelism=partitions)
        result = ParallelMetaBlocker(context, "cbs", "wnp").run(blocks)
        stages = context.scheduler.stages
        return {
            "partitions": partitions,
            "tasks": context.scheduler.total_tasks,
            "shuffle_records": context.scheduler.total_shuffle_records,
            "fused_narrow": context.scheduler.total_fused_stages,
            "max_stage_skew": round(max((s.skew for s in stages), default=0.0), 3),
            "candidate_pairs": result.num_candidates,
        }

    row = benchmark(run)
    print_rows(f"SCALE parallel meta-blocking, {partitions} partitions", [row])
    assert row["candidate_pairs"] > 0


def test_scale_stage_breakdown(benchmark, abt_buy_large):
    """Per-stage record/shuffle counters of one broadcast-join WNP run.

    The broadcast-join structure shows up directly in the counters: the
    weighting stage emits each edge exactly once with zero shuffle (the CSR
    index travels by broadcast), and only the node-pruning votes cross a
    shuffle boundary.
    """
    blocks = _prepared_blocks(abt_buy_large)

    def run():
        context = EngineContext(default_parallelism=8)
        ParallelMetaBlocker(context, "cbs", "wnp").run(blocks)
        return context.scheduler.stage_table()

    table = benchmark(run)
    print_rows("SCALE per-stage counters (WNP, 8 partitions)", table)
    weight_stages = [r for r in table if "metablocking.weights" in str(r["description"])]
    assert weight_stages, "the edge-weighting stage must appear in the stage table"
    # Each edge is emitted from its lower endpoint only: no weighting shuffle.
    assert all(r["shuffle_write"] == 0 for r in weight_stages)


def test_scale_parallel_equals_sequential(benchmark, abt_buy_large):
    """The broadcast-join meta-blocking returns the sequential result exactly."""
    blocks = _prepared_blocks(abt_buy_large)
    sequential = MetaBlocker("cbs", "wnp").run(blocks)

    def run():
        return ParallelMetaBlocker(EngineContext(8), "cbs", "wnp").run(blocks)

    parallel = benchmark(run)
    print_rows(
        "SCALE sequential vs parallel meta-blocking",
        [
            {
                "sequential_candidates": sequential.num_candidates,
                "parallel_candidates": parallel.num_candidates,
                "identical_output": parallel.candidate_pairs == sequential.candidate_pairs,
            }
        ],
    )
    assert parallel.candidate_pairs == sequential.candidate_pairs


@pytest.mark.parametrize("num_entities", [100, 200, 400])
def test_scale_dataset_growth(benchmark, num_entities):
    """End-to-end blocker cost as the dataset grows (input-size scaling)."""
    dataset = generate_abt_buy_like(SyntheticConfig(num_entities=num_entities, seed=7))

    def run():
        blocks = _prepared_blocks(dataset)
        result = MetaBlocker("cbs", "wnp").run(blocks)
        return {
            "entities": num_entities,
            "profiles": len(dataset.profiles),
            "graph_edges": result.graph_edges,
            "candidate_pairs": result.num_candidates,
        }

    row = benchmark(run)
    print_rows(f"SCALE dataset growth ({num_entities} entities)", [row])
    assert row["candidate_pairs"] > 0


@pytest.mark.parametrize(
    "weighting,pruning,use_entropy",
    [("cbs", "wnp", False), ("ejs", "wep", True)],
    ids=["cbs-wnp", "ejs-entropy-wep"],
)
def test_scale_executor_speedup(benchmark, abt_buy_large, weighting, pruning, use_entropy):
    """Serial vs process-pool executor wall-clock on the largest scenario.

    This is the PR's headline number: the same broadcast-join meta-blocking
    job, once with every stage in the driver and once with the narrow stages
    shipped to a 4-worker process pool.  Output must be bit-for-bit identical
    either way.  The ``ejs``+entropy weighted-edge job is where process
    execution pays: almost all its work sits in the shipped weighting stage
    (CBS/WNP spends a larger fraction in the driver-side vote shuffle, so it
    is reported but not asserted).  The >1.5× speedup assertion is gated on
    the machine actually having 4 cores — a single-core container cannot
    exhibit multi-core speedup and reports the (honest) slowdown instead.
    """
    blocks = _prepared_blocks(abt_buy_large)
    workers = 4

    def run():
        with EngineContext(workers, executor="serial") as serial_context:
            start = time.perf_counter()
            serial_result = ParallelMetaBlocker(
                serial_context, weighting, pruning, use_entropy=use_entropy
            ).run(blocks)
            serial_s = time.perf_counter() - start

        executor = MultiprocessingExecutor(max_workers=workers, on_unpicklable="raise")
        try:
            with EngineContext(workers, executor=executor) as process_context:
                # Warm the pool so fork/start-up cost is not billed to the job.
                process_context.parallelize(range(workers), workers).map(abs).collect()
                start = time.perf_counter()
                process_result = ParallelMetaBlocker(
                    process_context, weighting, pruning, use_entropy=use_entropy
                ).run(blocks)
                process_s = time.perf_counter() - start
        finally:
            executor.close()

        assert process_result.retained_edges == serial_result.retained_edges
        return {
            "job": f"{weighting}/{pruning}",
            "cpus": os.cpu_count(),
            "workers": workers,
            "serial_s": round(serial_s, 3),
            "process_s": round(process_s, 3),
            "speedup": round(serial_s / process_s, 2),
            "identical_output": True,
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows(f"SCALE executor comparison ({weighting}/{pruning}, largest scenario)", [row])
    if weighting == "ejs" and (os.cpu_count() or 1) >= workers:
        assert row["speedup"] > 1.5


def test_scale_token_blocking_distributed(benchmark, abt_buy_large):
    """Distributed token blocking produces the same blocks as the local path."""
    local = TokenBlocking().block(abt_buy_large.profiles)

    def run():
        context = EngineContext(8)
        blocks = TokenBlocking(engine=context).block(abt_buy_large.profiles)
        return blocks, context.metrics_summary()

    blocks, summary = benchmark(run)
    print_rows(
        "SCALE distributed token blocking",
        [
            {
                "blocks": len(blocks),
                "same_comparisons_as_local": blocks.distinct_comparisons()
                == local.distinct_comparisons(),
                "engine_tasks": summary["tasks"],
                "shuffle_records": summary["shuffle_records"],
            }
        ],
    )
    assert blocks.distinct_comparisons() == local.distinct_comparisons()
