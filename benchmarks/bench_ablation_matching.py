"""ABL-3 — entity-matching ablation: similarity functions × thresholds.

Section 3 of the paper: "in the entity matching phase, it is possible to try
different similarity techniques (e.g. Jaccard, cosine, etc.) with different
thresholds".  This benchmark runs that sweep on the candidate pairs produced
by the BLAST blocker, plus the supervised (classifier) matcher for comparison.
"""

from __future__ import annotations

import random

import pytest
from conftest import print_rows

from repro.core.blocker import Blocker
from repro.core.config import BlockerConfig, MatcherConfig
from repro.core.entity_matcher import EntityMatcher
from repro.evaluation.metrics import pair_metrics

# Token- and q-gram-based measures: cheap enough to score every candidate pair
# of the full blocking output.  The character-level measures (Levenshtein,
# Jaro-Winkler) are quadratic in the profile-text length and are exercised on
# per-attribute values in the test-suite instead.
SIMILARITIES = ["jaccard", "cosine", "dice", "overlap", "qgram"]
THRESHOLDS = [0.2, 0.3, 0.4, 0.5, 0.6]


@pytest.fixture(scope="module")
def candidate_pairs(abt_buy):
    report = Blocker(
        BlockerConfig(use_loose_schema=True, attribute_threshold=0.1, use_entropy=True)
    ).run(abt_buy.profiles)
    return sorted(report.candidate_pairs)


@pytest.mark.parametrize("similarity", SIMILARITIES)
def test_ablation_similarity_functions(benchmark, abt_buy, candidate_pairs, similarity):
    """Sweep the similarity function at a fixed threshold of 0.4."""

    def run():
        matcher = EntityMatcher(
            MatcherConfig(mode="threshold", similarity=similarity, threshold=0.4)
        )
        graph = matcher.match(abt_buy.profiles, candidate_pairs)
        metrics = pair_metrics(graph.pairs(), abt_buy.ground_truth)
        return {
            "similarity": similarity,
            "threshold": 0.4,
            "matched_pairs": len(graph),
            "precision": round(metrics.precision, 4),
            "recall": round(metrics.recall, 4),
            "f1": round(metrics.f1, 4),
        }

    row = benchmark(run)
    print_rows(f"ABL-3 similarity = {similarity}", [row])


def test_ablation_threshold_sweep(benchmark, abt_buy, candidate_pairs):
    """Jaccard matcher across thresholds: precision rises, recall falls."""

    def run():
        rows = []
        for threshold in THRESHOLDS:
            matcher = EntityMatcher(
                MatcherConfig(mode="threshold", similarity="jaccard", threshold=threshold)
            )
            graph = matcher.match(abt_buy.profiles, candidate_pairs)
            metrics = pair_metrics(graph.pairs(), abt_buy.ground_truth)
            rows.append(
                {
                    "threshold": threshold,
                    "matched_pairs": len(graph),
                    "precision": round(metrics.precision, 4),
                    "recall": round(metrics.recall, 4),
                    "f1": round(metrics.f1, 4),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows("ABL-3 Jaccard threshold sweep", rows)
    recalls = [row["recall"] for row in rows]
    assert recalls == sorted(recalls, reverse=True), "recall must fall as the threshold rises"


def test_ablation_supervised_classifier(benchmark, abt_buy, candidate_pairs):
    """The supervised (logistic regression) matcher of the supervised mode."""
    rng = random.Random(3)
    positives = [(a, b, True) for a, b in abt_buy.ground_truth]
    ids0 = [p.profile_id for p in abt_buy.profiles.by_source(0)]
    ids1 = [p.profile_id for p in abt_buy.profiles.by_source(1)]
    negatives = []
    while len(negatives) < len(positives):
        a, b = rng.choice(ids0), rng.choice(ids1)
        if (a, b) not in abt_buy.ground_truth:
            negatives.append((a, b, False))

    def run():
        matcher = EntityMatcher(
            MatcherConfig(mode="classifier", classifier_epochs=200),
            labeled_pairs=positives + negatives,
        )
        graph = matcher.match(abt_buy.profiles, candidate_pairs)
        metrics = pair_metrics(graph.pairs(), abt_buy.ground_truth)
        return {
            "matcher": "logistic regression (supervised)",
            "matched_pairs": len(graph),
            "precision": round(metrics.precision, 4),
            "recall": round(metrics.recall, 4),
            "f1": round(metrics.f1, 4),
        }

    row = benchmark(run)
    print_rows("ABL-3 supervised classifier matcher", [row])
    assert row["f1"] > 0.7
