"""FIG2 — loose-schema meta-blocking (Figure 2).

Regenerates the three panels of Figure 2: (a) the attribute partitions and
their entropies produced by the loose-schema generator, (b) the key splitting
(the same token generating different loose-schema keys in different attribute
clusters), and (c) the effect of entropy re-weighting on the pruning.
"""

from __future__ import annotations

from conftest import print_rows

from repro.blocking.loose_schema_blocking import LooseSchemaTokenBlocking
from repro.blocking.token_blocking import TokenBlocking
from repro.looseschema.attribute_partitioning import AttributePartitioner
from repro.looseschema.entropy import EntropyExtractor
from repro.metablocking.metablocker import MetaBlocker


def test_fig2a_attribute_partitioning_and_entropy(benchmark, abt_buy):
    """Figure 2(a): attribute clusters with their entropies."""

    def run():
        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy.profiles)
        entropies = EntropyExtractor().extract(abt_buy.profiles, partitioning)
        rows = []
        for cluster_id in sorted(partitioning.clusters):
            members = partitioning.clusters[cluster_id]
            rows.append(
                {
                    "cluster": "blob" if cluster_id == partitioning.blob_cluster_id else cluster_id,
                    "attributes": ", ".join(sorted(a for _s, a in members)),
                    "entropy": round(entropies[cluster_id], 3),
                }
            )
        return rows

    rows = benchmark(run)
    print_rows("FIG2(a) attribute partitions and entropies", rows)
    named_clusters = [r for r in rows if r["cluster"] != "blob"]
    assert len(named_clusters) >= 1
    assert any("name" in r["attributes"] and "title" in r["attributes"] for r in named_clusters)


def test_fig2b_key_splitting(benchmark, abt_buy):
    """Figure 2(b): loose-schema keys split tokens by attribute cluster."""

    def run():
        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy.profiles)
        agnostic = TokenBlocking().block(abt_buy.profiles)
        loose = LooseSchemaTokenBlocking(partitioning).block(abt_buy.profiles)
        return {
            "schema_agnostic_blocks": len(agnostic),
            "loose_schema_blocks": len(loose),
            "schema_agnostic_comparisons": len(agnostic.distinct_comparisons()),
            "loose_schema_comparisons": len(loose.distinct_comparisons()),
        }

    row = benchmark(run)
    print_rows("FIG2(b) schema-agnostic vs loose-schema blocking", [row])
    assert row["loose_schema_comparisons"] <= row["schema_agnostic_comparisons"]


def test_fig2c_entropy_reweighting(benchmark, abt_buy):
    """Figure 2(c): entropy re-weighting removes more superfluous comparisons."""

    def run():
        profiles = abt_buy.profiles
        truth = abt_buy.ground_truth.pairs()
        partitioning = AttributePartitioner(threshold=0.1).partition(profiles)
        entropies = EntropyExtractor().extract(profiles, partitioning)
        loose_blocks = LooseSchemaTokenBlocking(
            partitioning, cluster_entropies=entropies
        ).block(profiles)
        agnostic_blocks = TokenBlocking().block(profiles)

        rows = []
        for label, blocks, use_entropy in (
            ("schema-agnostic meta-blocking", agnostic_blocks, False),
            ("loose-schema meta-blocking", loose_blocks, False),
            ("loose-schema + entropy (BLAST)", loose_blocks, True),
        ):
            result = MetaBlocker("cbs", "wnp", use_entropy=use_entropy).run(blocks)
            rows.append(
                {
                    "configuration": label,
                    "candidate_pairs": result.num_candidates,
                    "recall": round(len(result.candidate_pairs & truth) / len(truth), 4),
                }
            )
        return rows

    rows = benchmark(run)
    print_rows("FIG2(c) entropy re-weighted meta-blocking", rows)
    agnostic, loose, blast = rows
    assert blast["candidate_pairs"] < agnostic["candidate_pairs"]
    assert blast["recall"] > 0.85
