"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates the rows/series of one of the paper's figures (see
DESIGN.md §4) and *prints* them, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the numbers recorded in EXPERIMENTS.md.  The pytest-benchmark
timings measure the runtime of the underlying algorithm.
"""

from __future__ import annotations

import pytest

from repro.data.synthetic import (
    SyntheticConfig,
    generate_abt_buy_like,
    generate_dirty_persons,
    toy_bibliographic_dataset,
)


@pytest.fixture(scope="session")
def abt_buy():
    """The synthetic Abt-Buy stand-in used by most benchmarks (~370 profiles)."""
    return generate_abt_buy_like(SyntheticConfig(num_entities=200, seed=42))


@pytest.fixture(scope="session")
def abt_buy_large():
    """A larger instance for the scalability benchmark (~750 profiles)."""
    return generate_abt_buy_like(SyntheticConfig(num_entities=400, seed=42))


@pytest.fixture(scope="session")
def dirty_persons():
    """A dirty-ER dataset for the clustering benchmark."""
    return generate_dirty_persons(num_entities=150, seed=11)


@pytest.fixture(scope="session")
def toy():
    """The Figure 1 toy dataset."""
    return toy_bibliographic_dataset()


def print_rows(title: str, rows: list[dict[str, object]]) -> None:
    """Print a result table of one experiment (same formatting everywhere)."""
    from repro.evaluation.report import format_table

    print()
    print(format_table(rows, title=f"== {title} =="))
