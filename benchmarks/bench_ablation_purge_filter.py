"""ABL-2 — purging / filtering aggressiveness ablation.

The demo exposes the aggressiveness of block purging and block filtering as
tunable parameters; this benchmark sweeps both and reports the usual blocking
quality numbers, showing the precision/recall trade-off each knob controls.
"""

from __future__ import annotations

import pytest
from conftest import print_rows

from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.blocking.stats import compute_blocking_stats
from repro.blocking.token_blocking import TokenBlocking


@pytest.fixture(scope="module")
def raw_blocks(abt_buy):
    return TokenBlocking().block(abt_buy.profiles)


@pytest.mark.parametrize("purge_factor", [1.0, 0.75, 0.5, 0.25, 0.1])
def test_ablation_purge_factor(benchmark, abt_buy, raw_blocks, purge_factor):
    """Sweep the purging threshold (fraction of profiles a block may contain)."""

    def run():
        purged = BlockPurging(max_profile_fraction=purge_factor).purge(
            raw_blocks, len(abt_buy.profiles)
        )
        stats = compute_blocking_stats(
            purged, abt_buy.ground_truth, max_comparisons=abt_buy.profiles.max_comparisons()
        )
        return {"purge_factor": purge_factor, **stats.as_dict()}

    row = benchmark(run)
    print_rows(f"ABL-2 block purging, factor = {purge_factor}", [row])
    assert row["recall"] > 0.5


@pytest.mark.parametrize("filter_ratio", [1.0, 0.8, 0.6, 0.4, 0.2])
def test_ablation_filter_ratio(benchmark, abt_buy, raw_blocks, filter_ratio):
    """Sweep the filtering ratio (fraction of each profile's blocks kept)."""

    def run():
        purged = BlockPurging().purge(raw_blocks, len(abt_buy.profiles))
        filtered = BlockFiltering(ratio=filter_ratio).filter(purged)
        stats = compute_blocking_stats(
            filtered,
            abt_buy.ground_truth,
            max_comparisons=abt_buy.profiles.max_comparisons(),
        )
        return {"filter_ratio": filter_ratio, **stats.as_dict()}

    row = benchmark(run)
    print_rows(f"ABL-2 block filtering, ratio = {filter_ratio}", [row])
    assert row["candidate_pairs"] > 0


def test_ablation_filter_tradeoff_shape(benchmark, abt_buy, raw_blocks):
    """Lower keep-ratios must monotonically reduce candidate pairs (the knob works)."""

    def run():
        purged = BlockPurging().purge(raw_blocks, len(abt_buy.profiles))
        rows = []
        for ratio in (1.0, 0.8, 0.6, 0.4, 0.2):
            filtered = BlockFiltering(ratio=ratio).filter(purged)
            stats = compute_blocking_stats(filtered, abt_buy.ground_truth)
            rows.append({"filter_ratio": ratio, **stats.as_dict()})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows("ABL-2 filtering trade-off", rows)
    candidates = [row["candidate_pairs"] for row in rows]
    assert candidates == sorted(candidates, reverse=True)
    # The paper's default (0.8) keeps recall essentially intact.
    default_row = next(row for row in rows if row["filter_ratio"] == 0.8)
    assert default_row["recall"] > 0.9
