"""FIG4 — the blocker sub-module pipeline (Figure 4).

Reports, for every stage of the blocker (token blocking → purging → filtering
→ meta-blocking), the number of blocks, candidate pairs, recall (pair
completeness) and precision (pair quality), in both the schema-agnostic and
the loose-schema configuration.
"""

from __future__ import annotations

from conftest import print_rows

from repro.core.blocker import Blocker
from repro.core.config import BlockerConfig


def _stage_rows(dataset, config: BlockerConfig) -> list[dict[str, object]]:
    report = Blocker(config).run(dataset.profiles, dataset.ground_truth)
    rows = []
    for row in report.stage_rows():
        if row["stage"] == "loose_schema":
            continue
        rows.append(
            {
                "stage": row["stage"],
                "blocks": row.get("blocks", ""),
                "candidate_pairs": row["candidate_pairs"],
                "recall": row["recall"],
                "precision": row["precision"],
            }
        )
    return rows


def test_fig4_schema_agnostic_stages(benchmark, abt_buy):
    """Blocker stages with schema-agnostic token blocking."""
    config = BlockerConfig(use_loose_schema=False, use_entropy=False)
    rows = benchmark(_stage_rows, abt_buy, config)
    print_rows("FIG4 blocker stages (schema-agnostic)", rows)
    pairs = [row["candidate_pairs"] for row in rows]
    assert pairs == sorted(pairs, reverse=True), "every stage must reduce candidates"
    assert rows[0]["recall"] > 0.95
    assert rows[-1]["precision"] > rows[0]["precision"]


def test_fig4_loose_schema_stages(benchmark, abt_buy):
    """Blocker stages with the loose-schema (BLAST) configuration."""
    config = BlockerConfig(use_loose_schema=True, attribute_threshold=0.1, use_entropy=True)
    rows = benchmark(_stage_rows, abt_buy, config)
    print_rows("FIG4 blocker stages (loose schema + entropy)", rows)
    assert rows[-1]["recall"] > 0.85


def test_fig4_final_candidates_blast_vs_agnostic(benchmark, abt_buy):
    """BLAST ends with fewer candidate pairs than the schema-agnostic blocker."""

    def run():
        agnostic = Blocker(BlockerConfig(use_loose_schema=False, use_entropy=False)).run(
            abt_buy.profiles, abt_buy.ground_truth
        )
        blast = Blocker(
            BlockerConfig(use_loose_schema=True, attribute_threshold=0.1, use_entropy=True)
        ).run(abt_buy.profiles, abt_buy.ground_truth)
        truth = abt_buy.ground_truth.pairs()
        return [
            {
                "configuration": "schema-agnostic",
                "candidate_pairs": len(agnostic.candidate_pairs),
                "recall": round(len(agnostic.candidate_pairs & truth) / len(truth), 4),
            },
            {
                "configuration": "loose schema + entropy (BLAST)",
                "candidate_pairs": len(blast.candidate_pairs),
                "recall": round(len(blast.candidate_pairs & truth) / len(truth), 4),
            },
        ]

    rows = benchmark(run)
    print_rows("FIG4 final candidate pairs: BLAST vs schema-agnostic", rows)
    assert rows[1]["candidate_pairs"] <= rows[0]["candidate_pairs"]
