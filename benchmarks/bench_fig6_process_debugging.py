"""FIG6 — the process-debugging storyline (Figure 6(a)–(e)).

Replays the demo's debugging session on a sample of the Abt-Buy stand-in:

* (a) clustering threshold 1.0 — one blob cluster ≡ schema-agnostic blocking,
* (b) threshold 0.3 — attribute clusters appear; candidate pairs drop,
* (c) manual partitioning that splits every attribute — false negatives rise,
* (d) explanation of the lost pairs,
* (e) meta-blocking with entropy — large decrease in candidate pairs vs (b),

and then applies the tuned configuration to the full dataset (batch mode).
"""

from __future__ import annotations

from conftest import print_rows

from repro.core.config import SparkERConfig
from repro.core.debugging import DebugSession


def _build_session(dataset) -> DebugSession:
    config = SparkERConfig.unsupervised_default()
    config.sampling.num_seeds = 30
    config.sampling.per_seed = 10
    return DebugSession(dataset.profiles, dataset.ground_truth, config, sample=True)


def _run_storyline(dataset) -> list[dict[str, object]]:
    session = _build_session(dataset)

    step_a = session.try_threshold(1.0, label="(a) threshold=1.0 (blob)")
    step_b = session.try_threshold(0.3, label="(b) threshold=0.3")

    manual = session.current_partitioning(0.3)
    next_cluster = max(manual.clusters) + 1
    for source, attribute in sorted(set().union(*manual.clusters.values())):
        manual.move_attribute(attribute, source, next_cluster)
        next_cluster += 1
    step_c = session.try_partitioning(manual, label="(c) manual split")

    step_e = session.try_meta_blocking(
        threshold=0.3, use_entropy=True, label="(e) meta-blocking + entropy"
    )

    return [step.as_dict() for step in (step_a, step_b, step_c, step_e)]


def test_fig6_debugging_storyline(benchmark, abt_buy):
    """The (a) → (b) → (c) → (e) sweep of Figure 6."""
    rows = benchmark(_run_storyline, abt_buy)
    print_rows("FIG6 process-debugging sweep (sampled data)", rows)
    a, b, c, e = rows
    # (b) reduces candidates vs (a) without losing precision.
    assert b["candidate_pairs"] <= a["candidate_pairs"]
    assert b["precision"] >= a["precision"]
    # (c) the manual split loses at least as many ground-truth pairs as (b).
    assert c["lost_pairs"] >= b["lost_pairs"]
    # (e) meta-blocking + entropy shows a large decrease in candidate pairs.
    assert e["candidate_pairs"] < b["candidate_pairs"]


def test_fig6d_lost_pair_explanations(benchmark, abt_buy):
    """Figure 6(d): drill-down into the pairs lost by a bad configuration."""

    def run():
        session = _build_session(abt_buy)
        manual = session.current_partitioning(0.3)
        next_cluster = max(manual.clusters) + 1
        for source, attribute in sorted(set().union(*manual.clusters.values())):
            manual.move_attribute(attribute, source, next_cluster)
            next_cluster += 1
        step = session.try_partitioning(manual, label="manual split")
        return session.explain_lost_pairs(step, limit=5)

    explanations = benchmark(run)
    rows = [
        {
            "pair": str(explanation.pair),
            "shared_keys_before_pruning": len(explanation.shared_keys_before),
        }
        for explanation in explanations
    ]
    print_rows("FIG6(d) lost-pair explanations", rows or [{"pair": "none", "shared_keys_before_pruning": 0}])


def test_fig6_batch_mode_application(benchmark, abt_buy):
    """Batch mode: the tuned configuration applied to the full dataset."""

    def run():
        session = _build_session(abt_buy)
        session.try_threshold(0.3)
        result = session.apply_to_full_dataset(threshold=0.3, use_entropy=True)
        return {
            "candidate_pairs": result.summary()["candidate_pairs"],
            "clusters": result.summary()["clusters"],
            "cluster_f1": result.report.get("clusterer").metrics["f1"],
        }

    row = benchmark(run)
    print_rows("FIG6 batch-mode application of the tuned configuration", [row])
    assert row["cluster_f1"] > 0.7
