"""Facade-vs-pipeline overhead benchmark.

Since the stage-graph redesign, ``SparkER.run()`` is a thin wrapper over
``Pipeline.from_spec(SparkER.canonical_spec(config))``.  This benchmark times
both entry points end-to-end on the same synthetic dataset and reports the
*overhead ratio* (pipeline wall-clock / facade wall-clock).  The ratio is the
quantity guarded by ``scripts/bench_guard.py``: the declarative runner must
not cost more than a few percent over the facade (which itself runs through
the same stage graph, so the expected ratio is ~1.0).

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py
"""

from __future__ import annotations

import time

from repro.core.config import SparkERConfig
from repro.core.sparker import SparkER
from repro.data.synthetic import SyntheticConfig, generate_abt_buy_like
from repro.pipeline import Pipeline

DEFAULT_SIZES = (100, 200)
REPEATS = 3


def _best_of(repeats: int, runner) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        runner()
        best = min(best, time.perf_counter() - start)
    return best


def run_pipeline_benchmark(
    sizes: "tuple[int, ...] | list[int]" = DEFAULT_SIZES, repeats: int = REPEATS
) -> list[dict[str, object]]:
    """Time facade vs declarative pipeline end-to-end; return one entry per size."""
    entries: list[dict[str, object]] = []
    for num_entities in sizes:
        dataset = generate_abt_buy_like(
            SyntheticConfig(num_entities=num_entities, seed=7)
        )
        config = SparkERConfig.unsupervised_default()
        spec = SparkER.canonical_spec(config)

        def run_facade() -> None:
            SparkER(config).run(dataset.profiles, dataset.ground_truth)

        def run_pipeline() -> None:
            Pipeline.from_spec(spec).run(dataset.profiles, dataset.ground_truth)

        # Warm both paths once (imports, caches) before timing.
        run_facade()
        run_pipeline()
        facade_seconds = _best_of(repeats, run_facade)
        pipeline_seconds = _best_of(repeats, run_pipeline)
        entries.append(
            {
                "num_entities": num_entities,
                "facade_seconds": round(facade_seconds, 6),
                "pipeline_seconds": round(pipeline_seconds, 6),
                "overhead": round(pipeline_seconds / facade_seconds, 4),
            }
        )
    return entries


def main() -> None:
    for entry in run_pipeline_benchmark():
        print(
            f"entities={entry['num_entities']:>5}  "
            f"facade={entry['facade_seconds']:.4f}s  "
            f"pipeline={entry['pipeline_seconds']:.4f}s  "
            f"overhead={entry['overhead']:.3f}x"
        )


if __name__ == "__main__":
    main()
