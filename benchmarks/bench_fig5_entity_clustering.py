"""FIG5 — the entity clusterer (Figure 5).

Benchmarks the connected-components clusterer (the paper's algorithm, both the
union-find reference and the Pregel-style distributed variant) and the
alternative clustering algorithms on similarity graphs of increasing size.
"""

from __future__ import annotations

import pytest
from conftest import print_rows

from repro.clustering.center_clustering import CenterClustering
from repro.clustering.connected_components import ConnectedComponentsClustering
from repro.clustering.merge_center import MergeCenterClustering
from repro.clustering.unique_mapping import UniqueMappingClustering
from repro.core.config import SparkERConfig
from repro.core.sparker import SparkER
from repro.engine.context import EngineContext
from repro.evaluation.metrics import clustering_metrics
from repro.matching.matcher import ThresholdMatcher


def _similarity_graph(dataset):
    """Build the matcher output the clusterer consumes (Figure 5's input)."""
    from repro.core.blocker import Blocker
    from repro.core.config import BlockerConfig

    report = Blocker(BlockerConfig(use_loose_schema=False)).run(dataset.profiles)
    matcher = ThresholdMatcher("jaccard", 0.35)
    return matcher.match(dataset.profiles, sorted(report.candidate_pairs))


def test_fig5_connected_components(benchmark, dirty_persons):
    """Connected components on the dirty-persons similarity graph."""
    graph = _similarity_graph(dirty_persons)

    def run():
        clusters = ConnectedComponentsClustering().cluster(graph)
        return clusters

    clusters = benchmark(run)
    metrics = clustering_metrics(clusters, dirty_persons.ground_truth)
    print_rows("FIG5 connected-components clustering (dirty persons)", [metrics])
    assert metrics["recall"] > 0.3
    assert metrics["max_cluster_size"] >= 3


def test_fig5_distributed_connected_components(benchmark, dirty_persons):
    """The GraphX-style (Pregel hash-min) variant produces the same clusters."""
    graph = _similarity_graph(dirty_persons)
    reference = ConnectedComponentsClustering().cluster(graph)

    def run():
        return ConnectedComponentsClustering(engine=EngineContext(4)).cluster(graph)

    clusters = benchmark(run)
    assert sorted(map(frozenset, (c.members for c in clusters))) == sorted(
        map(frozenset, (c.members for c in reference))
    )
    print_rows(
        "FIG5 distributed connected components",
        [{"clusters": len(clusters), "same_as_union_find": True}],
    )


@pytest.mark.parametrize(
    "algorithm,label",
    [
        (ConnectedComponentsClustering(), "connected_components"),
        (CenterClustering(), "center"),
        (MergeCenterClustering(), "merge_center"),
        (UniqueMappingClustering(), "unique_mapping"),
    ],
)
def test_fig5_algorithm_comparison(benchmark, abt_buy, algorithm, label):
    """Clustering-algorithm ablation on the clean-clean similarity graph."""
    graph = _similarity_graph(abt_buy)
    clusters = benchmark(algorithm.cluster, graph)
    metrics = clustering_metrics(clusters, abt_buy.ground_truth)
    print_rows(f"FIG5 clustering algorithm = {label}", [{"algorithm": label, **metrics}])
    assert metrics["f1"] > 0.4


def test_fig5_entity_generation(benchmark, abt_buy):
    """Entity generation: merged attribute values per resolved entity."""

    def run():
        result = SparkER(SparkERConfig.unsupervised_default()).run(
            abt_buy.profiles, abt_buy.ground_truth
        )
        return result.entities

    entities = benchmark(run)
    multi_profile = [e for e in entities if len(e["profiles"]) > 1]
    print_rows(
        "FIG5 entity generation",
        [
            {
                "entities": len(entities),
                "multi_profile_entities": len(multi_profile),
                "example_attributes": sorted(multi_profile[0]["attributes"])[:4]
                if multi_profile
                else [],
            }
        ],
    )
    assert multi_profile, "some entities must merge profiles from both sources"
