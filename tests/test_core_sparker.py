"""End-to-end tests of the SparkER pipeline (Figure 3)."""

from repro.core.config import SparkERConfig
from repro.core.sparker import SparkER


class TestSparkERUnsupervised:
    def test_end_to_end_defaults(self, abt_buy_small):
        result = SparkER().run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        summary = result.summary()
        assert summary["candidate_pairs"] > 0
        assert summary["matched_pairs"] > 0
        assert summary["clusters"] > 0
        assert summary["entities"] == summary["clusters"]

    def test_quality_on_synthetic(self, abt_buy_small):
        result = SparkER().run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        clusterer_report = result.report.get("clusterer")
        assert clusterer_report.metrics["recall"] > 0.7
        assert clusterer_report.metrics["precision"] > 0.7

    def test_stage_reports_present(self, abt_buy_small):
        result = SparkER().run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        stages = [s.stage for s in result.report.stages]
        assert "blocker.token_blocking" in stages
        assert "matcher" in stages
        assert "clusterer" in stages

    def test_without_ground_truth(self, abt_buy_small):
        result = SparkER().run(abt_buy_small.profiles)
        assert result.summary()["clusters"] >= 0

    def test_timings_recorded(self, abt_buy_small):
        result = SparkER().run(abt_buy_small.profiles)
        assert set(result.timings.durations) == {"blocker", "matcher", "clusterer"}

    def test_resolved_pairs_from_clusters(self, abt_buy_small):
        result = SparkER().run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        assert result.resolved_pairs >= result.matched_pairs or len(result.resolved_pairs) >= len(
            result.matched_pairs
        )

    def test_schema_agnostic_config_more_candidates(self, abt_buy_small):
        loose = SparkER(SparkERConfig.unsupervised_default()).run(
            abt_buy_small.profiles, abt_buy_small.ground_truth
        )
        agnostic = SparkER(SparkERConfig.schema_agnostic()).run(
            abt_buy_small.profiles, abt_buy_small.ground_truth
        )
        # BLAST (loose schema + entropy) prunes at least as aggressively as the
        # schema-agnostic configuration.
        assert loose.summary()["candidate_pairs"] <= agnostic.summary()["candidate_pairs"]


class TestSparkERWithEngine:
    def test_engine_backed_run(self, abt_buy_small):
        result = SparkER(use_engine=True).run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        assert result.summary()["clusters"] > 0

    def test_engine_and_local_similar_quality(self, abt_buy_small):
        local = SparkER().run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        distributed = SparkER(use_engine=True).run(
            abt_buy_small.profiles, abt_buy_small.ground_truth
        )
        local_f1 = local.report.get("clusterer").metrics["f1"]
        distributed_f1 = distributed.report.get("clusterer").metrics["f1"]
        assert abs(local_f1 - distributed_f1) < 0.05


class TestSparkERDirty:
    def test_dirty_er_pipeline(self, dirty_persons_small):
        config = SparkERConfig.schema_agnostic()
        config.matcher.threshold = 0.5
        result = SparkER(config).run(
            dirty_persons_small.profiles, dirty_persons_small.ground_truth
        )
        assert result.summary()["clusters"] > 0
        clusterer_metrics = result.report.get("clusterer").metrics
        assert clusterer_metrics["recall"] > 0.3
