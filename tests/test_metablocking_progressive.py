"""Tests of the progressive meta-blocking extension."""

import itertools
from collections.abc import Iterator

import pytest

from repro.blocking.token_blocking import TokenBlocking
from repro.metablocking.progressive import (
    ProgressiveNodeScheduling,
    ProgressiveSortedComparisons,
    progressive_recall_curve,
)


class TestProgressiveSortedComparisons:
    def test_ranking_covers_all_comparisons(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        ranking = ProgressiveSortedComparisons("cbs").rank(blocks)
        assert set(ranking) == blocks.distinct_comparisons()

    def test_no_duplicates(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        ranking = ProgressiveSortedComparisons("cbs").rank(blocks)
        assert len(ranking) == len(set(ranking))

    def test_front_loaded_recall(self, abt_buy_small):
        # The defining property of progressive ER: the first X% of the ranked
        # comparisons contain far more than X% of the true matches.
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        ranking = ProgressiveSortedComparisons("cbs").rank(blocks)
        truth = abt_buy_small.ground_truth.pairs()
        budget = len(ranking) // 10
        early = set(ranking[:budget])
        early_recall = len(early & truth) / len(truth)
        assert early_recall > 0.5

    def test_stream_matches_rank(self, toy_dataset):
        blocks = TokenBlocking().block(toy_dataset.profiles)
        strategy = ProgressiveSortedComparisons()
        assert list(strategy.stream(blocks)) == strategy.rank(blocks)

    def test_deterministic(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        strategy = ProgressiveSortedComparisons("js")
        assert strategy.rank(blocks) == strategy.rank(blocks)


class TestProgressiveNodeScheduling:
    def test_ranking_covers_all_comparisons(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        ranking = ProgressiveNodeScheduling("cbs").rank(blocks)
        assert set(ranking) == blocks.distinct_comparisons()
        assert len(ranking) == len(set(ranking))

    def test_stream_matches_rank(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        strategy = ProgressiveNodeScheduling("js")
        assert list(strategy.stream(blocks)) == strategy.rank(blocks)

    def test_better_than_random_order(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        ranking = ProgressiveNodeScheduling("cbs").rank(blocks)
        truth = abt_buy_small.ground_truth.pairs()
        budget = len(ranking) // 5
        early_recall = len(set(ranking[:budget]) & truth) / len(truth)
        random_expectation = budget / len(ranking)
        assert early_recall > random_expectation


class TestStreamLaziness:
    """``stream()`` must be an honest iterator: the ranking is produced
    incrementally (heap merge / node-at-a-time), not materialised upfront."""

    @pytest.mark.parametrize(
        "strategy_cls", [ProgressiveSortedComparisons, ProgressiveNodeScheduling]
    )
    def test_stream_is_a_generator_and_prefix_matches_rank(
        self, abt_buy_small, strategy_cls
    ):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        strategy = strategy_cls("cbs")
        stream = strategy.stream(blocks)
        assert isinstance(stream, Iterator)
        prefix = list(itertools.islice(stream, 25))
        assert prefix == strategy.rank(blocks)[:25]

    @pytest.mark.parametrize(
        "weighting", ["cbs", "js", "arcs", "ecbs", "ejs"]
    )
    def test_all_schemes_rank_deterministically(self, abt_buy_small, weighting):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        for strategy_cls in (ProgressiveSortedComparisons, ProgressiveNodeScheduling):
            strategy = strategy_cls(weighting)
            first = strategy.rank(blocks)
            assert first == strategy.rank(blocks)
            assert set(first) == blocks.distinct_comparisons()


class TestProgressiveRecallCurve:
    def test_curve_monotone_and_complete(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        ranking = ProgressiveSortedComparisons("cbs").rank(blocks)
        curve = progressive_recall_curve(
            ranking, abt_buy_small.ground_truth.pairs(), num_points=5
        )
        recalls = [point["recall"] for point in curve]
        assert recalls == sorted(recalls)
        assert curve[-1]["recall"] > 0.95

    def test_empty_inputs(self):
        assert progressive_recall_curve([], {(1, 2)}) == []
        assert progressive_recall_curve([(1, 2)], set()) == []
