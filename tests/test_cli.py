"""Tests of the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--synthetic", "abt-buy"])
        assert args.command == "run"
        assert args.entities == 200
        assert not args.schema_agnostic

    def test_partition_defaults(self):
        args = build_parser().parse_args(["partition", "--synthetic", "abt-buy"])
        assert args.threshold == 0.3

    def test_unknown_synthetic_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--synthetic", "nope"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRunCommand:
    def test_synthetic_run(self, capsys, tmp_path):
        output = tmp_path / "entities.json"
        config_path = tmp_path / "config.json"
        exit_code = main(
            [
                "run",
                "--synthetic", "abt-buy",
                "--entities", "60",
                "--output", str(output),
                "--save-config", str(config_path),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "pipeline stages" in captured
        assert "summary:" in captured
        entities = json.loads(output.read_text())
        assert isinstance(entities, list) and entities
        config = json.loads(config_path.read_text())
        assert config["blocker"]["use_loose_schema"] is True

    def test_schema_agnostic_flag(self, capsys):
        exit_code = main(
            ["run", "--synthetic", "abt-buy", "--entities", "50", "--schema-agnostic"]
        )
        assert exit_code == 0

    def test_dirty_dataset(self, capsys):
        exit_code = main(
            ["run", "--synthetic", "dirty-persons", "--entities", "50",
             "--schema-agnostic", "--match-threshold", "0.5"]
        )
        assert exit_code == 0

    def test_csv_inputs(self, capsys, tmp_path):
        source0 = tmp_path / "a.csv"
        source0.write_text(
            "id,name,price\n1,sony bravia tv,100\n2,canon eos camera,300\n"
        )
        source1 = tmp_path / "b.csv"
        source1.write_text(
            "id,title,cost\nx,sony bravia television,105\ny,whirlpool fridge,900\n"
        )
        mapping = tmp_path / "gt.csv"
        mapping.write_text("id1,id2\n1,x\n")
        exit_code = main(
            [
                "run",
                "--source0", str(source0),
                "--source1", str(source1),
                "--ground-truth", str(mapping),
                "--id-field", "id",
                "--schema-agnostic",
                "--match-threshold", "0.3",
            ]
        )
        assert exit_code == 0
        assert "pipeline stages" in capsys.readouterr().out

    def test_missing_input_is_error(self, capsys):
        exit_code = main(["run"])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_engine_executor_smoke(self, capsys, executor):
        """Tiny end-to-end pipeline on the mini engine under both executors.

        ``--executor`` implies ``--engine``; the process executor must
        complete the full pipeline (shippable stages on the pool, closure
        stages falling back to the driver) with a zero exit code.
        """
        arguments = ["run", "--synthetic", "abt-buy", "--entities", "40",
                     "--executor", executor]
        if executor == "process":
            arguments += ["--workers", "2"]
        exit_code = main(arguments)
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "pipeline stages" in captured
        assert "summary:" in captured

    def test_executor_flag_parses(self):
        args = build_parser().parse_args(
            ["run", "--synthetic", "abt-buy", "--executor", "process", "--workers", "4"]
        )
        assert args.executor == "process"
        assert args.workers == 4
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--synthetic", "abt-buy", "--executor", "thread"])

    def test_serial_with_workers_is_a_clean_error(self, capsys):
        exit_code = main(
            ["run", "--synthetic", "abt-buy", "--entities", "30",
             "--executor", "serial", "--workers", "2"]
        )
        assert exit_code == 2
        assert "no worker count" in capsys.readouterr().err

    def test_workers_alone_implies_process_executor(self, capsys):
        """--workers without --executor must not be silently ignored."""
        from repro.cli import _executor_spec

        args = build_parser().parse_args(
            ["run", "--synthetic", "abt-buy", "--workers", "2"]
        )
        assert _executor_spec(args) == "process:2"
        exit_code = main(
            ["run", "--synthetic", "abt-buy", "--entities", "30", "--workers", "2"]
        )
        assert exit_code == 0


class TestStagesCommand:
    def test_lists_registered_stages(self, capsys):
        assert main(["stages"]) == 0
        captured = capsys.readouterr().out
        assert "registered pipeline stages" in captured
        for kind in ("token_blocking", "meta_blocking", "matching", "clustering"):
            assert kind in captured

    def test_single_stage_filter(self, capsys):
        assert main(["stages", "--stage", "meta_blocking"]) == 0
        captured = capsys.readouterr().out
        assert "meta_blocking" in captured
        assert "token_blocking" not in captured

    def test_unknown_stage_is_a_clean_error(self, capsys):
        assert main(["stages", "--stage", "nope"]) == 2
        assert "error:" in capsys.readouterr().err


class TestSpecRun:
    def test_run_from_spec_file(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "dataset": {"synthetic": "abt-buy", "entities": 40, "seed": 3},
            "stages": [
                {"stage": "token_blocking"},
                {"stage": "block_purging"},
                {"stage": "block_filtering"},
                {"stage": "meta_blocking"},
                {"stage": "matching"},
                {"stage": "clustering"},
                {"stage": "entity_generation"},
            ],
        }))
        assert main(["run", "--spec", str(spec_path)]) == 0
        captured = capsys.readouterr().out
        assert "pipeline stages" in captured
        assert "stage executions" in captured

    def test_output_config_round_trips(self, capsys, tmp_path):
        resolved = tmp_path / "resolved.json"
        assert main([
            "run", "--synthetic", "abt-buy", "--entities", "40",
            "--output-config", str(resolved),
        ]) == 0
        first = capsys.readouterr().out
        spec = json.loads(resolved.read_text())
        assert spec["dataset"] == {"synthetic": "abt-buy", "entities": 40, "seed": 42}
        assert [entry["stage"] for entry in spec["stages"]] == [
            "loose_schema", "token_blocking", "block_purging", "block_filtering",
            "meta_blocking", "matching", "clustering", "entity_generation",
        ]
        assert spec["stages"][4]["params"]["pruning"] == "wnp"
        assert main(["run", "--spec", str(resolved)]) == 0
        second = capsys.readouterr().out

        def metrics_table(output):
            lines = output.splitlines()
            start = lines.index("pipeline stages")
            return lines[start:lines.index("", start)]

        assert metrics_table(first) == metrics_table(second)

    def test_bad_spec_is_a_clean_error(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"stages": [{"stage": "nope"}]}))
        assert main(["run", "--spec", str(spec_path),
                     "--synthetic", "abt-buy", "--entities", "30"]) == 2
        assert "unknown stage kind" in capsys.readouterr().err


class TestResumeCommand:
    def test_stop_after_then_resume(self, capsys, tmp_path):
        checkpoint = tmp_path / "ckpt"
        assert main([
            "run", "--synthetic", "abt-buy", "--entities", "40",
            "--checkpoint", str(checkpoint), "--stop-after", "meta_blocking",
        ]) == 0
        captured = capsys.readouterr().out
        assert "stopped after 'meta_blocking'" in captured
        output = tmp_path / "entities.json"
        assert main(["resume", "--checkpoint", str(checkpoint),
                     "--output", str(output)]) == 0
        captured = capsys.readouterr().out
        assert "resumed" in captured
        assert "summary:" in captured
        entities = json.loads(output.read_text())
        assert isinstance(entities, list) and entities

    def test_resume_missing_checkpoint_is_a_clean_error(self, capsys, tmp_path):
        assert main(["resume", "--checkpoint", str(tmp_path / "nope")]) == 2
        assert "no checkpoint" in capsys.readouterr().err


class TestPartitionCommand:
    def test_partition_output(self, capsys):
        exit_code = main(
            ["partition", "--synthetic", "abt-buy", "--entities", "60", "--threshold", "0.2"]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "attribute partitioning" in captured
        assert "cluster entropies" in captured

    def test_blob_at_threshold_one(self, capsys):
        exit_code = main(
            ["partition", "--synthetic", "abt-buy", "--entities", "60", "--threshold", "1.0"]
        )
        assert exit_code == 0
        assert "blob" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.collection is None
        assert args.snapshot_dir is None

    def test_serve_collection_is_repeatable(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--collection", "a", "--collection", "b"]
        )
        assert args.port == 0
        assert args.collection == ["a", "b"]

    def test_ping_requires_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ping"])
        args = build_parser().parse_args(["ping", "--port", "1234"])
        assert args.timeout == 5.0

    def test_ping_fails_fast_when_nothing_listens(self, capsys):
        # Port 1 is privileged and unbound: the probe must retry briefly,
        # then give up with exit code 1 and a diagnostic on stderr.
        exit_code = main(["ping", "--port", "1", "--timeout", "0.3"])
        assert exit_code == 1
        assert "not healthy" in capsys.readouterr().err

    def test_serve_and_ping_round_trip(self, tmp_path):
        """Full lifecycle: serve on an ephemeral port, ping, ingest, stop."""
        import json as _json
        import os
        import signal
        import subprocess
        import sys
        import urllib.request

        repo_src = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(repo_src)
        env["REPRO_TMPDIR"] = str(tmp_path)
        spec = tmp_path / "service.json"
        spec.write_text(_json.dumps({
            "defaults": {"weighting": "js"},
            "collections": [{"name": "preloaded", "pruning": "cnp"}],
        }))
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--spec", str(spec), "--collection", "extra"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        )
        try:
            port = None
            seen = []
            for _ in range(200):
                line = process.stdout.readline()
                seen.append(line)
                if line.startswith("serving on "):
                    port = int(line.strip().rsplit(":", 1)[1])
                    break
            assert port, "serve never announced its port"
            assert main(["ping", "--port", str(port), "--timeout", "10"]) == 0
            payload = _json.dumps(
                {"profiles": [{"attributes": {"name": "alpha bravo"}}]}
            ).encode()
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/collections/preloaded/profiles",
                data=payload, method="POST",
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 201
        finally:
            process.send_signal(signal.SIGTERM)
            # Keep draining through the same text wrapper readline() used —
            # communicate() reads the raw fd and would drop its buffer.
            output = "".join(seen) + process.stdout.read()
            process.wait(timeout=30)
        assert process.returncode == 0
        assert "collection: extra" in output
        assert "collection: preloaded" in output
        assert "service stopped" in output
        leaked = [name for name in os.listdir(tmp_path) if name.startswith("repro-")]
        assert leaked == []


class TestServeDurabilityCli:
    def test_wal_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--wal-dir", "/tmp/w", "--wal-fsync", "off"]
        )
        assert args.wal_dir == "/tmp/w"
        assert args.wal_fsync == "off"
        defaults = build_parser().parse_args(["serve"])
        assert defaults.wal_dir is None
        assert defaults.wal_fsync is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--wal-fsync", "sometimes"])

    def test_spec_service_section_rejects_unknown_keys(self, tmp_path, capsys):
        import json as _json

        spec = tmp_path / "svc.json"
        spec.write_text(_json.dumps({"service": {"bogus_knob": 1}}))
        assert main(["serve", "--port", "0", "--spec", str(spec)]) == 2
        assert "bogus_knob" in capsys.readouterr().err

    def test_ping_distinguishes_degraded_from_healthy(self, capsys):
        """A degraded (read-only) service pings with exit code 3, not 0."""
        import asyncio

        from repro.service import ServiceApp

        app = ServiceApp()
        outcome = {}

        async def scenario():
            await app.start()
            loop = asyncio.get_running_loop()
            try:
                outcome["healthy"] = await loop.run_in_executor(
                    None,
                    lambda: main(["ping", "--port", str(app.port), "--timeout", "5"]),
                )
                collection = app.store.get_or_create("demo")
                collection.degraded_reason = "WAL append failed: disk on fire"
                outcome["degraded"] = await loop.run_in_executor(
                    None,
                    lambda: main(["ping", "--port", str(app.port), "--timeout", "5"]),
                )
            finally:
                await app.stop()

        asyncio.run(scenario())
        assert outcome["healthy"] == 0
        assert outcome["degraded"] == 3
        captured = capsys.readouterr()
        assert "up but degraded" in captured.err
        assert "demo" in captured.err

    def test_serve_restart_replays_the_wal(self, tmp_path):
        """Kill -9 a WAL-backed server mid-life; the restart replays."""
        import json as _json
        import os
        import signal
        import subprocess
        import sys
        import urllib.request

        repo_src = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(repo_src)
        env["REPRO_TMPDIR"] = str(tmp_path)
        serve_args = [
            sys.executable, "-m", "repro.cli", "serve", "--port", "0",
            "--wal-dir", str(tmp_path / "wal"),
            "--snapshot-dir", str(tmp_path / "snap"),
            "--wal-fsync", "batch",
        ]

        def start():
            process = subprocess.Popen(
                serve_args, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True, env=env,
            )
            port = None
            lines = []
            for _ in range(200):
                line = process.stdout.readline()
                lines.append(line)
                if line.startswith("serving on "):
                    port = int(line.strip().rsplit(":", 1)[1])
                    break
            assert port, f"serve never announced its port: {lines}"
            return process, port, lines

        process, port, _ = start()
        try:
            payload = _json.dumps(
                {"profiles": [{"id": 0, "attributes": {"name": "alpha bravo"}}]}
            ).encode()
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/collections/demo/profiles",
                data=payload, method="POST",
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 201
        finally:
            process.send_signal(signal.SIGKILL)  # no chance to snapshot
            process.wait(timeout=30)
            process.stdout.close()

        process, port, lines = start()
        try:
            assert any(
                "replayed 1 WAL record(s) into collection 'demo'" in line
                for line in lines
            ), lines
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/collections/demo/matches/0?budget=5",
                timeout=10,
            ) as response:
                assert response.status == 200
        finally:
            process.send_signal(signal.SIGTERM)
            for _ in range(400):
                if not process.stdout.readline():
                    break
            assert process.wait(timeout=30) == 0
            process.stdout.close()
