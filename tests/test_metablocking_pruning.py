"""Tests of the pruning strategies."""

import pytest

from repro.exceptions import MetaBlockingError
from repro.metablocking.graph import BlockingGraph, EdgeInfo
from repro.metablocking.pruning import (
    CardinalityEdgePruning,
    CardinalityNodePruning,
    ReciprocalWeightedNodePruning,
    WeightedEdgePruning,
    WeightedNodePruning,
    make_pruning_strategy,
)


def _graph_and_weights():
    """A small weighted graph: star around node 0 plus an isolated pair."""
    graph = BlockingGraph(
        edges={
            (0, 1): EdgeInfo(common_blocks=3),
            (0, 2): EdgeInfo(common_blocks=1),
            (0, 3): EdgeInfo(common_blocks=1),
            (2, 3): EdgeInfo(common_blocks=2),
            (4, 5): EdgeInfo(common_blocks=5),
        },
        blocks_per_profile={0: 4, 1: 3, 2: 2, 3: 2, 4: 5, 5: 5},
        num_blocks=10,
    )
    weights = {pair: float(info.common_blocks) for pair, info in graph.edges.items()}
    return graph, weights


class TestWeightedEdgePruning:
    def test_keeps_above_average(self):
        graph, weights = _graph_and_weights()
        retained = WeightedEdgePruning().prune(graph, weights)
        mean = sum(weights.values()) / len(weights)
        assert all(w >= mean for w in retained.values())
        assert (4, 5) in retained
        assert (0, 2) not in retained

    def test_empty_weights(self):
        graph, _ = _graph_and_weights()
        assert WeightedEdgePruning().prune(graph, {}) == {}

    def test_uniform_weights_keep_all(self):
        graph, weights = _graph_and_weights()
        uniform = {pair: 1.0 for pair in weights}
        assert WeightedEdgePruning().prune(graph, uniform) == uniform


class TestCardinalityEdgePruning:
    def test_explicit_k(self):
        graph, weights = _graph_and_weights()
        retained = CardinalityEdgePruning(k=2).prune(graph, weights)
        assert len(retained) == 2
        assert (4, 5) in retained
        assert (0, 1) in retained

    def test_default_k_from_block_assignments(self):
        graph, weights = _graph_and_weights()
        retained = CardinalityEdgePruning().prune(graph, weights)
        assert 0 < len(retained) <= len(weights)

    def test_invalid_k(self):
        with pytest.raises(MetaBlockingError):
            CardinalityEdgePruning(k=0)

    def test_deterministic_tie_breaking(self):
        graph, weights = _graph_and_weights()
        first = CardinalityEdgePruning(k=3).prune(graph, weights)
        second = CardinalityEdgePruning(k=3).prune(graph, weights)
        assert first == second


class TestWeightedNodePruning:
    def test_or_semantics_keeps_more_than_reciprocal(self):
        graph, weights = _graph_and_weights()
        wnp = WeightedNodePruning().prune(graph, weights)
        rwnp = ReciprocalWeightedNodePruning().prune(graph, weights)
        assert set(rwnp) <= set(wnp)

    def test_strong_edge_always_kept(self):
        graph, weights = _graph_and_weights()
        retained = WeightedNodePruning().prune(graph, weights)
        assert (0, 1) in retained
        assert (4, 5) in retained

    def test_node_thresholds(self):
        _, weights = _graph_and_weights()
        thresholds = WeightedNodePruning().node_thresholds(weights)
        assert thresholds[0] == (3 + 1 + 1) / 3
        assert thresholds[4] == 5.0

    def test_empty(self):
        graph, _ = _graph_and_weights()
        assert WeightedNodePruning().prune(graph, {}) == {}


class TestCardinalityNodePruning:
    def test_top_k_per_node(self):
        graph, weights = _graph_and_weights()
        retained = CardinalityNodePruning(k=1).prune(graph, weights)
        # Node 0's best edge and the isolated pair must survive.
        assert (0, 1) in retained
        assert (4, 5) in retained

    def test_reciprocal_stricter(self):
        graph, weights = _graph_and_weights()
        or_variant = CardinalityNodePruning(k=1).prune(graph, weights)
        and_variant = CardinalityNodePruning(k=1, reciprocal=True).prune(graph, weights)
        assert set(and_variant) <= set(or_variant)

    def test_invalid_k(self):
        with pytest.raises(MetaBlockingError):
            CardinalityNodePruning(k=-1)


class TestMakePruningStrategy:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("wep", WeightedEdgePruning),
            ("cep", CardinalityEdgePruning),
            ("wnp", WeightedNodePruning),
            ("rwnp", ReciprocalWeightedNodePruning),
            ("cnp", CardinalityNodePruning),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_pruning_strategy(name), cls)

    def test_instance_passthrough(self):
        strategy = WeightedEdgePruning()
        assert make_pruning_strategy(strategy) is strategy

    def test_unknown_name(self):
        with pytest.raises(MetaBlockingError):
            make_pruning_strategy("nope")
