"""Property-based tests (hypothesis) of core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.blocking.block import Block, BlockCollection
from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.data.ground_truth import GroundTruth, canonical_pair
from repro.engine.context import EngineContext
from repro.engine.graphx import connected_components, pregel_connected_components
from repro.evaluation.metrics import pair_metrics
from repro.matching.similarity import (
    dice_similarity,
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_similarity,
)
from repro.metablocking.graph import build_blocking_graph
from repro.metablocking.metablocker import MetaBlocker
from repro.metablocking.pruning import WeightedEdgePruning, WeightedNodePruning
from repro.metablocking.weights import weight_all_edges
from repro.utils.hashing import stable_hash
from repro.utils.text import normalize_text
from repro.utils.tokenize import tokenize

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
short_text = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd", "Zs"), max_codepoint=0x24F),
    max_size=40,
)

pair_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30)),
    max_size=40,
)


def _random_blocks(draw_sets: list[tuple[list[int], list[int]]]) -> BlockCollection:
    collection = BlockCollection(clean_clean=True)
    for index, (source0, source1) in enumerate(draw_sets):
        collection.add(
            Block(
                key=f"k{index}",
                profiles_source0=set(source0),
                profiles_source1={i + 1000 for i in source1},
                clean_clean=True,
            )
        )
    return collection


block_member_lists = st.lists(
    st.tuples(
        st.lists(st.integers(min_value=0, max_value=25), min_size=0, max_size=6),
        st.lists(st.integers(min_value=0, max_value=25), min_size=0, max_size=6),
    ),
    min_size=1,
    max_size=15,
)


# ---------------------------------------------------------------------------
# text / hashing
# ---------------------------------------------------------------------------
class TestTextProperties:
    @given(short_text)
    def test_normalize_idempotent(self, text):
        assert normalize_text(normalize_text(text)) == normalize_text(text)

    @given(short_text)
    def test_tokens_are_normalized(self, text):
        for token in tokenize(text):
            assert token == normalize_text(token)
            assert " " not in token

    @given(short_text)
    def test_stable_hash_deterministic(self, text):
        assert stable_hash(text) == stable_hash(text)


class TestSimilarityProperties:
    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert abs(jaccard_similarity(a, b) - jaccard_similarity(b, a)) < 1e-12
        assert abs(levenshtein_similarity(a, b) - levenshtein_similarity(b, a)) < 1e-12

    @given(short_text)
    def test_identity_upper_bound(self, text):
        for function in (jaccard_similarity, dice_similarity, jaro_winkler_similarity):
            value = function(text, text)
            assert 0.0 <= value <= 1.0
            if tokenize(text):
                assert jaccard_similarity(text, text) == 1.0

    @given(short_text, short_text)
    def test_range(self, a, b):
        for function in (
            jaccard_similarity,
            dice_similarity,
            levenshtein_similarity,
            jaro_winkler_similarity,
        ):
            assert 0.0 <= function(a, b) <= 1.0 + 1e-9


# ---------------------------------------------------------------------------
# ground truth / metrics
# ---------------------------------------------------------------------------
class TestGroundTruthProperties:
    @given(pair_lists)
    def test_canonical_and_symmetric(self, pairs):
        truth = GroundTruth(pairs)
        for a, b in truth:
            assert a < b
            assert (b, a) in truth

    @given(pair_lists, pair_lists)
    def test_pair_metrics_bounds(self, predicted, truth_pairs):
        truth = GroundTruth(truth_pairs)
        predicted_set = {canonical_pair(a, b) for a, b in predicted if a != b}
        metrics = pair_metrics(predicted_set, truth)
        assert 0.0 <= metrics.precision <= 1.0
        assert 0.0 <= metrics.recall <= 1.0
        assert 0.0 <= metrics.f1 <= 1.0
        assert metrics.true_positives + metrics.false_positives == len(predicted_set)
        assert metrics.true_positives + metrics.false_negatives == len(truth)


# ---------------------------------------------------------------------------
# connected components
# ---------------------------------------------------------------------------
class TestConnectedComponentsProperties:
    @given(pair_lists)
    @settings(max_examples=25, deadline=None)
    def test_pregel_matches_union_find(self, edges):
        reference = connected_components(edges)
        distributed = pregel_connected_components(EngineContext(3), edges)
        assert distributed == reference

    @given(pair_lists)
    def test_endpoints_same_component(self, edges):
        assignment = connected_components(edges)
        for a, b in edges:
            assert assignment[a] == assignment[b]


# ---------------------------------------------------------------------------
# blocking invariants
# ---------------------------------------------------------------------------
class TestBlockingProperties:
    @given(block_member_lists)
    @settings(max_examples=40, deadline=None)
    def test_purging_never_adds_comparisons(self, members):
        blocks = _random_blocks(members)
        purged = BlockPurging().purge(blocks)
        assert purged.distinct_comparisons() <= blocks.distinct_comparisons()

    @given(block_member_lists)
    @settings(max_examples=40, deadline=None)
    def test_filtering_never_adds_comparisons(self, members):
        blocks = _random_blocks(members)
        filtered = BlockFiltering(ratio=0.6).filter(blocks)
        assert filtered.distinct_comparisons() <= blocks.distinct_comparisons()

    @given(block_member_lists)
    @settings(max_examples=40, deadline=None)
    def test_filtering_keeps_blocks_valid(self, members):
        filtered = BlockFiltering(ratio=0.5).filter(_random_blocks(members))
        assert all(block.is_valid() for block in filtered)

    @given(block_member_lists)
    @settings(max_examples=40, deadline=None)
    def test_clean_clean_blocks_never_produce_within_source_pairs(self, members):
        blocks = _random_blocks(members)
        for a, b in blocks.distinct_comparisons():
            # Source-0 ids are < 1000, source-1 ids are >= 1000 by construction.
            assert (a < 1000) != (b < 1000)


# ---------------------------------------------------------------------------
# meta-blocking invariants
# ---------------------------------------------------------------------------
class TestMetaBlockingProperties:
    @given(block_member_lists)
    @settings(max_examples=30, deadline=None)
    def test_pruning_output_subset_of_graph(self, members):
        blocks = _random_blocks(members)
        graph = build_blocking_graph(blocks)
        weights = weight_all_edges(graph, "cbs")
        for strategy in (WeightedEdgePruning(), WeightedNodePruning()):
            retained = strategy.prune(graph, weights)
            assert set(retained) <= set(weights)

    @given(block_member_lists)
    @settings(max_examples=30, deadline=None)
    def test_wnp_retains_every_node_best_edge(self, members):
        blocks = _random_blocks(members)
        graph = build_blocking_graph(blocks)
        weights = weight_all_edges(graph, "cbs")
        retained = WeightedNodePruning().prune(graph, weights)
        # Every node's locally heaviest edge is >= its mean, so it must survive.
        best: dict[int, tuple[tuple[int, int], float]] = {}
        for pair, weight in weights.items():
            for node in pair:
                if node not in best or weight > best[node][1]:
                    best[node] = (pair, weight)
        for node, (pair, _weight) in best.items():
            assert pair in retained

    @given(block_member_lists)
    @settings(max_examples=20, deadline=None)
    def test_metablocker_candidates_subset_of_block_comparisons(self, members):
        blocks = _random_blocks(members)
        result = MetaBlocker("cbs", "wep").run(blocks)
        assert result.candidate_pairs <= blocks.distinct_comparisons()
