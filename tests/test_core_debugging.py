"""Tests of the process-debugging session (Section 3 / Figure 6)."""

from repro.core.config import SparkERConfig
from repro.core.debugging import DebugSession


class TestDebugSessionWorkflow:
    def _session(self, dataset, sample: bool = False) -> DebugSession:
        config = SparkERConfig.unsupervised_default()
        config.sampling.num_seeds = 15
        config.sampling.per_seed = 8
        return DebugSession(dataset.profiles, dataset.ground_truth, config, sample=sample)

    def test_threshold_one_single_blob(self, abt_buy_small):
        # Figure 6(a): threshold = 1 → schema-agnostic, every attribute in the blob.
        session = self._session(abt_buy_small)
        step = session.try_threshold(1.0)
        assert step.partitioning.non_blob_clusters() == {}
        assert step.recall > 0.9

    def test_lower_threshold_clusters_and_fewer_candidates(self, abt_buy_small):
        # Figure 6(b): threshold = 0.3 → clusters appear; candidate pairs drop,
        # precision does not decrease.
        session = self._session(abt_buy_small)
        blob_step = session.try_threshold(1.0)
        clustered_step = session.try_threshold(0.3)
        assert len(clustered_step.partitioning.non_blob_clusters()) >= 1
        assert clustered_step.num_candidate_pairs <= blob_step.num_candidate_pairs
        assert clustered_step.precision >= blob_step.precision

    def test_manual_partitioning_can_lose_pairs(self, abt_buy_small):
        # Figure 6(c): manually splitting name from description loses pairs.
        session = self._session(abt_buy_small)
        automatic = session.try_threshold(0.3)
        manual = session.current_partitioning(0.3)
        # Split every attribute into its own cluster — an extreme version of
        # the demo's manual edit.
        next_cluster = max(manual.clusters) + 1
        for source, attribute in sorted(set().union(*manual.clusters.values())):
            manual.move_attribute(attribute, source, next_cluster)
            next_cluster += 1
        manual_step = session.try_partitioning(manual)
        assert len(manual_step.lost_pairs) >= len(automatic.lost_pairs)

    def test_lost_pair_explanations(self, abt_buy_small):
        # Figure 6(d): lost pairs are explained with profiles + shared keys.
        session = self._session(abt_buy_small)
        manual = session.current_partitioning(0.3)
        next_cluster = max(manual.clusters) + 1
        for source, attribute in sorted(set().union(*manual.clusters.values())):
            manual.move_attribute(attribute, source, next_cluster)
            next_cluster += 1
        step = session.try_partitioning(manual)
        explanations = session.explain_lost_pairs(step, limit=3)
        assert len(explanations) <= 3
        for explanation in explanations:
            assert explanation.pair in step.lost_pairs
            assert explanation.left_attributes
            assert "lost pair" in explanation.render()

    def test_meta_blocking_with_entropy_reduces_candidates(self, abt_buy_small):
        # Figure 6(e): meta-blocking + entropy gives a large decrease in
        # candidate pairs w.r.t. the blocking of 6(b).
        session = self._session(abt_buy_small)
        blocking_only = session.try_threshold(0.3, use_meta_blocking=False)
        with_meta = session.try_meta_blocking(threshold=0.3, use_entropy=True)
        assert with_meta.num_candidate_pairs < blocking_only.num_candidate_pairs

    def test_schema_agnostic_step(self, abt_buy_small):
        session = self._session(abt_buy_small)
        step = session.try_schema_agnostic()
        assert step.label == "schema-agnostic"
        assert step.num_candidate_pairs > 0

    def test_history_recorded(self, abt_buy_small):
        session = self._session(abt_buy_small)
        session.try_threshold(1.0)
        session.try_threshold(0.3)
        assert len(session.history) == 2
        table = session.history_table()
        assert "threshold=1.0" in table
        assert "threshold=0.3" in table

    def test_sampling_reduces_work(self, abt_buy_medium):
        session = DebugSession(
            abt_buy_medium.profiles, abt_buy_medium.ground_truth, sample=True
        )
        assert len(session.sample.profiles) < len(abt_buy_medium.profiles)
        assert len(session.sample.ground_truth) > 0

    def test_apply_to_full_dataset(self, abt_buy_small):
        session = self._session(abt_buy_small)
        session.try_threshold(0.3)
        result = session.apply_to_full_dataset(threshold=0.3, use_entropy=True)
        assert result.summary()["clusters"] > 0
        clusterer_metrics = result.report.get("clusterer").metrics
        assert clusterer_metrics["f1"] > 0.6
