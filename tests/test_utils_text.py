"""Tests of the text normalisation helpers."""

from repro.utils.text import (
    STOPWORDS,
    is_numeric_token,
    normalize_text,
    strip_accents,
    strip_punctuation,
)


class TestNormalizeText:
    def test_lowercases(self):
        assert normalize_text("HeLLo World") == "hello world"

    def test_strips_punctuation(self):
        assert normalize_text("meta-blocking, done!") == "meta blocking done"

    def test_collapses_whitespace(self):
        assert normalize_text("  a \t b \n c  ") == "a b c"

    def test_empty_string(self):
        assert normalize_text("") == ""

    def test_none_like_empty(self):
        assert normalize_text("   ") == ""

    def test_idempotent(self):
        once = normalize_text("SparkER: Parallel BLAST!")
        assert normalize_text(once) == once

    def test_accents_removed(self):
        assert normalize_text("café Müller") == "cafe muller"

    def test_numbers_preserved(self):
        assert normalize_text("Price: 12.99 USD") == "price 12 99 usd"

    def test_non_string_input_coerced(self):
        assert normalize_text(2017) == "2017"


class TestStripHelpers:
    def test_strip_punctuation_replaces_with_space(self):
        assert strip_punctuation("a.b,c") == "a b c"

    def test_strip_accents(self):
        assert strip_accents("résumé") == "resume"

    def test_strip_accents_no_change(self):
        assert strip_accents("plain") == "plain"


class TestNumericToken:
    def test_integer(self):
        assert is_numeric_token("42")

    def test_decimal(self):
        assert is_numeric_token("12.99")

    def test_word(self):
        assert not is_numeric_token("sony")

    def test_mixed(self):
        assert not is_numeric_token("mp3")

    def test_empty(self):
        assert not is_numeric_token("")


class TestStopwords:
    def test_common_words_present(self):
        assert "the" in STOPWORDS
        assert "and" in STOPWORDS

    def test_content_words_absent(self):
        assert "camera" not in STOPWORDS
