"""Tests of engine metrics and the scheduler bookkeeping."""

from repro.engine.metrics import JobMetrics, StageMetrics, TaskMetrics
from repro.engine.scheduler import Scheduler


class TestStageMetrics:
    def test_aggregation(self):
        stage = StageMetrics(stage_id=0, description="test")
        stage.tasks.append(TaskMetrics(0, 0, input_records=5, output_records=10))
        stage.tasks.append(TaskMetrics(0, 1, input_records=3, output_records=2))
        assert stage.num_tasks == 2
        assert stage.total_input_records == 8
        assert stage.total_output_records == 12
        assert stage.max_task_records == 10

    def test_skew_balanced(self):
        stage = StageMetrics(stage_id=0, description="balanced")
        for i in range(4):
            stage.tasks.append(TaskMetrics(0, i, output_records=10))
        assert stage.skew == 1.0

    def test_skew_unbalanced(self):
        stage = StageMetrics(stage_id=0, description="skewed")
        stage.tasks.append(TaskMetrics(0, 0, output_records=30))
        stage.tasks.append(TaskMetrics(0, 1, output_records=10))
        assert stage.skew == 1.5

    def test_skew_empty(self):
        assert StageMetrics(stage_id=0, description="empty").skew == 0.0


class TestJobMetrics:
    def test_summary(self):
        job = JobMetrics(job_id=1, description="count")
        stage = StageMetrics(stage_id=0, description="s")
        stage.tasks.append(TaskMetrics(0, 0, shuffle_write_records=7, output_records=5))
        job.stages.append(stage)
        summary = job.summary()
        assert summary["stages"] == 1
        assert summary["tasks"] == 1
        assert summary["shuffle_records"] == 7


class TestScheduler:
    def test_job_stage_nesting(self):
        scheduler = Scheduler()
        scheduler.start_job("job")
        stage = scheduler.new_stage("stage")
        scheduler.record_task(stage, 0, output_records=3)
        scheduler.finish_job()
        assert scheduler.jobs[0].num_stages == 1
        assert scheduler.total_tasks == 1

    def test_stage_outside_job(self):
        scheduler = Scheduler()
        scheduler.new_stage("loose stage")
        assert len(scheduler.stages) == 1
        assert scheduler.jobs == []

    def test_reset(self):
        scheduler = Scheduler()
        scheduler.start_job("job")
        scheduler.new_stage("stage")
        scheduler.reset()
        assert scheduler.stages == []
        assert scheduler.jobs == []

    def test_engine_records_shuffle_volume(self, engine):
        data = [(i % 5, i) for i in range(100)]
        engine.parallelize(data, 4).reduceByKey(lambda a, b: a + b).collect()
        assert engine.scheduler.total_shuffle_records > 0

    def test_engine_records_peak_rss(self, engine):
        import resource

        engine.parallelize(range(100), 4).map(lambda x: x * 2).collect()
        stage = engine.scheduler.stages[-1]
        # getrusage reports a real high-water mark on Linux and macOS; the
        # per-task samples, the stage/scheduler maxima and the summary all
        # carry it.
        expected = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss > 0
        assert all((task.max_rss_bytes > 0) == expected for task in stage.tasks)
        assert (stage.max_rss_bytes > 0) == expected
        assert (engine.scheduler.max_rss_bytes > 0) == expected
        assert engine.scheduler.max_rss_bytes == max(
            s.max_rss_bytes for s in engine.scheduler.stages
        )

    def test_stage_table_reports_max_rss(self, engine):
        engine.parallelize(range(20), 2).collect()
        row = engine.scheduler.stage_table()[-1]
        assert "max_rss_bytes" in row
        assert row["max_rss_bytes"] == engine.scheduler.stages[-1].max_rss_bytes

    def test_metrics_summary_reports_max_rss(self, engine):
        engine.parallelize(range(20), 2).count()
        summary = engine.metrics_summary()
        assert summary["max_rss_bytes"] == engine.scheduler.max_rss_bytes

    def test_more_partitions_more_tasks(self):
        from repro.engine.context import EngineContext

        small = EngineContext(default_parallelism=2)
        large = EngineContext(default_parallelism=8)
        data = [(i % 10, i) for i in range(100)]
        small.parallelize(data).reduceByKey(lambda a, b: a + b).collect()
        large.parallelize(data).reduceByKey(lambda a, b: a + b).collect()
        assert large.scheduler.total_tasks > small.scheduler.total_tasks
