"""Tests of the fault-tolerant execution layer.

Three layers are covered: the :mod:`repro.engine.faults` vocabulary itself
(policy parsing, deterministic backoff, injector clause grammar), the
multiprocessing executor's attempt loop (worker crashes, injected task
exceptions, hung tasks recovered through pool rebuilds, per-partition serial
fallback when the policy is exhausted) and the headline chaos guarantee: a
meta-blocking run whose workers are killed mid-stage — once per phase:
narrow weights, shuffle map, shuffle reduce — still produces retained edges
bit-for-bit identical to the sequential path, under both kernel backends,
with the recovery visible in the stage metrics and no leaked ``/dev/shm``
segments.  Checkpoint checksum/backup verification and the CLI fault flags
ride along.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.core.config import SparkERConfig
from repro.core.sparker import SparkER
from repro.engine.context import EngineContext
from repro.engine.executors import (
    MultiprocessingExecutor,
    SerialExecutor,
    resolve_executor,
)
from repro.engine.faults import (
    CRASH_EXIT_CODE,
    INJECT_ENV_VAR,
    POLICY_ENV_VAR,
    SERVICE_INJECT_ENV_VAR,
    FaultClause,
    FaultInjected,
    FaultInjector,
    FaultPolicy,
    ServicePointInjector,
    _FaultProbe,
    resolve_fault_injector,
    resolve_fault_policy,
    reset_service_faults,
    service_fault,
)
from repro.exceptions import (
    EngineError,
    PipelineError,
    PipelineValidationError,
    SparkERError,
)
from repro.metablocking.backends import numpy_available
from repro.metablocking.metablocker import MetaBlocker
from repro.metablocking.parallel import ParallelMetaBlocker
from repro.pipeline import Pipeline
from repro.pipeline.checkpoint import PipelineCheckpoint

from test_metablocking_equivalence import (
    _make_pruning,
    _random_clean_collection,
    _random_dirty_collection,
)

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend requires numpy"
)


# -- module-level task functions: picklable, unlike test-local closures ------
def _double(x):
    return x * 2


def _is_even(x):
    return x % 2 == 0


def _add(a, b):
    return a + b


class _CountingMap:
    """Map function that also bumps an accumulator once per element."""

    def __init__(self, accumulator):
        self.accumulator = accumulator

    def __call__(self, x):
        self.accumulator.add(1)
        return x


class _FloatWeightMap:
    """Map function accumulating an order-sensitive float sum."""

    def __init__(self, accumulator):
        self.accumulator = accumulator

    def __call__(self, x):
        self.accumulator.add(x * 0.1)
        return x


def _fast_policy(**overrides) -> FaultPolicy:
    """A retrying policy with no backoff pauses (tests should not sleep)."""
    settings = {"max_attempts": 3, "backoff_base": 0.0}
    settings.update(overrides)
    return FaultPolicy(**settings)


# =========================================================================
# FaultPolicy: parsing, validation, deterministic backoff
# =========================================================================
class TestFaultPolicy:
    def test_default_is_fail_fast(self):
        policy = FaultPolicy()
        assert policy.max_attempts == 1
        assert policy.retries == 0
        assert policy.task_timeout is None
        assert policy.on_exhausted == "raise"

    def test_parse_spec_string(self):
        policy = FaultPolicy.parse(
            "retries=2,timeout=30,backoff=0.5,backoff_max=10,seed=7,"
            "on_exhausted=serial-fallback"
        )
        assert policy.max_attempts == 3
        assert policy.task_timeout == 30.0
        assert policy.backoff_base == 0.5
        assert policy.backoff_max == 10.0
        assert policy.jitter_seed == 7
        assert policy.on_exhausted == "serial-fallback"

    def test_parse_mapping(self):
        policy = FaultPolicy.parse({"retries": 1, "timeout": None})
        assert policy.max_attempts == 2
        assert policy.task_timeout is None
        assert FaultPolicy.parse({"max_attempts": 4}).max_attempts == 4

    def test_spec_round_trips(self):
        policy = FaultPolicy(
            max_attempts=3,
            backoff_base=0.25,
            backoff_max=8.0,
            jitter_seed=11,
            task_timeout=60.0,
            on_exhausted="serial-fallback",
        )
        assert FaultPolicy.parse(policy.spec()) == policy
        assert FaultPolicy.parse(FaultPolicy().spec()) == FaultPolicy()

    def test_timeout_none_spelling(self):
        assert FaultPolicy.parse("retries=1,timeout=none").task_timeout is None

    @pytest.mark.parametrize(
        "spec",
        [
            "retries",  # no '='
            "retries=two",
            "frobnicate=1",  # unknown key
            "retries=-1",  # max_attempts == 0
            "timeout=0",
            "backoff=-1",
            "on_exhausted=shrug",
        ],
    )
    def test_invalid_specs_raise(self, spec):
        with pytest.raises(EngineError):
            FaultPolicy.parse(spec)

    def test_constructor_validation(self):
        with pytest.raises(EngineError, match="max_attempts"):
            FaultPolicy(max_attempts=0)
        with pytest.raises(EngineError, match="non-negative"):
            FaultPolicy(backoff_base=-0.1)
        with pytest.raises(EngineError, match="task_timeout"):
            FaultPolicy(task_timeout=-5)
        with pytest.raises(EngineError, match="on_exhausted"):
            FaultPolicy(on_exhausted="retry-forever")

    def test_resolve_default_and_env(self, monkeypatch):
        monkeypatch.delenv(POLICY_ENV_VAR, raising=False)
        assert resolve_fault_policy(None) == FaultPolicy()
        monkeypatch.setenv(POLICY_ENV_VAR, "retries=2,on_exhausted=serial-fallback")
        policy = resolve_fault_policy(None)
        assert policy.max_attempts == 3
        assert policy.on_exhausted == "serial-fallback"

    def test_resolve_passthrough_and_type_error(self):
        policy = _fast_policy()
        assert resolve_fault_policy(policy) is policy
        with pytest.raises(EngineError):
            resolve_fault_policy(42)


class TestBackoffDeterminism:
    def test_no_delay_before_first_retry_or_with_zero_base(self):
        assert FaultPolicy().backoff(0) == 0.0
        assert FaultPolicy(backoff_base=0.0).backoff(3) == 0.0

    def test_same_seed_same_delays(self):
        first = FaultPolicy(max_attempts=6, jitter_seed=9)
        second = FaultPolicy(max_attempts=6, jitter_seed=9)
        waves = range(1, 6)
        assert [first.backoff(n) for n in waves] == [second.backoff(n) for n in waves]

    def test_different_seeds_differ(self):
        a = FaultPolicy(max_attempts=6, jitter_seed=1)
        b = FaultPolicy(max_attempts=6, jitter_seed=2)
        waves = range(1, 6)
        assert [a.backoff(n) for n in waves] != [b.backoff(n) for n in waves]

    def test_exponential_growth_is_bounded_and_jittered(self):
        policy = FaultPolicy(
            max_attempts=10, backoff_base=0.1, backoff_max=1.0, jitter_seed=3
        )
        for waves in range(1, 9):
            ceiling = min(1.0, 0.1 * 2 ** (waves - 1))
            delay = policy.backoff(waves)
            assert 0.5 * ceiling <= delay <= ceiling


# =========================================================================
# FaultInjector: clause grammar and coordinate matching
# =========================================================================
class TestFaultInjector:
    def test_full_clause(self):
        injector = FaultInjector.parse("crash@metablocking.weights:2#3")
        (clause,) = injector.clauses
        assert clause.mode == "crash"
        assert clause.stage == "metablocking.weights"
        assert clause.task == 2
        assert clause.attempt == 3

    def test_defaults_task_zero_attempt_one(self):
        (clause,) = FaultInjector.parse("raise@shuffle").clauses
        assert (clause.task, clause.attempt) == (0, 1)

    def test_wildcards_and_duration(self):
        (clause,) = FaultInjector.parse("hang~0.5@stage:*#*").clauses
        assert clause.mode == "hang"
        assert clause.task is None
        assert clause.attempt is None
        assert clause.seconds == 0.5

    def test_multiple_clauses_split_on_semicolons(self):
        injector = FaultInjector.parse("crash@a:0#1; raise@b:1#2 ;")
        assert [clause.mode for clause in injector.clauses] == ["crash", "raise"]

    def test_plan_matches_stage_substring_and_attempt(self):
        injector = FaultInjector.parse("crash@shuffle.map:0#1;raise@weights:*#*")
        assert [c.mode for c in injector.plan("votes.shuffle.map", 1)] == ["crash"]
        assert injector.plan("votes.shuffle.map", 2) == ()
        assert [c.mode for c in injector.plan("metablocking.weights", 5)] == ["raise"]
        assert injector.plan("unrelated", 1) == ()

    @pytest.mark.parametrize(
        "spec",
        [
            "",  # no clauses
            "crash",  # no '@stage'
            "vanish@stage",  # unknown mode
            "hang~soon@stage",  # bad duration
            "crash@stage:-1",  # negative task
            "crash@stage:0#0",  # attempts are 1-based
            "crash@stage:many",
        ],
    )
    def test_invalid_specs_raise(self, spec):
        with pytest.raises(EngineError):
            FaultInjector.parse(spec)

    def test_resolve_default_env_and_passthrough(self, monkeypatch):
        monkeypatch.delenv(INJECT_ENV_VAR, raising=False)
        assert resolve_fault_injector(None) is None
        monkeypatch.setenv(INJECT_ENV_VAR, "crash@stage:0#1")
        injector = resolve_fault_injector(None)
        assert isinstance(injector, FaultInjector)
        assert resolve_fault_injector(injector) is injector
        with pytest.raises(EngineError):
            resolve_fault_injector(42)

    def test_probe_passes_rows_through_on_task_mismatch(self):
        clause = FaultClause(mode="raise", stage="s", task=0, attempt=1)
        probe = _FaultProbe((clause,), "s", 1)
        assert list(probe(1, iter([1, 2, 3]))) == [1, 2, 3]

    def test_probe_raises_on_matching_task(self):
        clause = FaultClause(mode="raise", stage="s", task=2, attempt=1)
        probe = _FaultProbe((clause,), "s", 1)
        with pytest.raises(FaultInjected, match="task 2"):
            probe(2, iter([1]))

    def test_probe_is_picklable(self):
        probe = _FaultProbe(FaultInjector.parse("crash@s:0#1").clauses, "s", 1)
        clone = pickle.loads(pickle.dumps(probe))
        assert clone.clauses == probe.clauses
        assert CRASH_EXIT_CODE not in (0, 1)  # unambiguous in CI logs


# =========================================================================
# Executor configuration plumbing
# =========================================================================
class TestExecutorConfiguration:
    def test_spec_string_with_policy(self):
        executor = resolve_executor("process:2", fault_policy="retries=1")
        assert isinstance(executor, MultiprocessingExecutor)
        assert executor.fault_policy.max_attempts == 2
        assert "fault_policy=" in repr(executor)

    def test_serial_spec_ignores_fault_kwargs(self):
        executor = resolve_executor("serial", fault_policy="retries=1")
        assert isinstance(executor, SerialExecutor)

    def test_instance_plus_policy_is_an_error(self):
        with pytest.raises(EngineError, match="constructor"):
            resolve_executor(SerialExecutor(), fault_policy="retries=1")
        with pytest.raises(EngineError, match="constructor"):
            resolve_executor(SerialExecutor(), fault_injector="crash@s:0#1")

    def test_context_forwards_policy_to_spec_built_executor(self):
        with EngineContext(
            2, executor="process:2", fault_policy=_fast_policy()
        ) as context:
            assert context.executor.fault_policy.max_attempts == 3

    def test_executor_reads_policy_env(self, monkeypatch):
        monkeypatch.setenv(POLICY_ENV_VAR, "retries=4")
        executor = MultiprocessingExecutor(max_workers=1)
        assert executor.fault_policy.max_attempts == 5


# =========================================================================
# Attempt loop: crash recovery, injected exceptions, exhaustion
# =========================================================================
def _process_stage_rows(context):
    return [
        row
        for row in context.scheduler.stage_table()
        if str(row["executor"]).startswith("process")
    ]


class TestCrashRecovery:
    def test_worker_crash_is_retried_and_recovered(self):
        executor = MultiprocessingExecutor(
            max_workers=2,
            fault_policy=_fast_policy(),
            fault_injector="crash@parallelize.map:0#1",
        )
        try:
            context = EngineContext(4, executor=executor)
            result = context.parallelize(range(20)).map(_double).collect()
            assert result == [x * 2 for x in range(20)]
            (row,) = _process_stage_rows(context)
            assert row["attempts"] > row["tasks"]
            assert row["failures"] >= 1
            assert row["recovered"] >= 1
            summary = context.metrics_summary()
            assert summary["task_attempts"] > summary["tasks"]
            assert summary["tasks_recovered"] >= 1
        finally:
            executor.close()

    def test_executor_is_reusable_after_recovery(self):
        executor = MultiprocessingExecutor(
            max_workers=2,
            fault_policy=_fast_policy(),
            fault_injector="crash@parallelize.map:0#1",
        )
        try:
            first = EngineContext(3, executor=executor)
            assert first.parallelize(range(9)).map(_double).collect() == [
                x * 2 for x in range(9)
            ]
            # Second run: the injector still matches attempt 1, so the fresh
            # stage crashes and recovers again — the rebuilt pool is healthy.
            second = EngineContext(3, executor=executor)
            assert second.parallelize(range(9)).map(_double).collect() == [
                x * 2 for x in range(9)
            ]
            (row,) = _process_stage_rows(second)
            assert row["recovered"] >= 1
        finally:
            executor.close()

    def test_accumulator_counted_once_despite_retries(self):
        executor = MultiprocessingExecutor(
            max_workers=2,
            fault_policy=_fast_policy(),
            fault_injector="crash@parallelize.map:1#1",
        )
        try:
            context = EngineContext(4, executor=executor)
            counter = context.accumulator(0)
            result = (
                context.parallelize(range(24)).map(_CountingMap(counter)).collect()
            )
            assert result == list(range(24))
            # Only final successful outcomes merge accumulator updates: the
            # crashed attempt leaves no trace.
            assert counter.value == 24
        finally:
            executor.close()

    def test_injected_exception_with_fail_fast_policy_raises(self):
        executor = MultiprocessingExecutor(
            max_workers=2, fault_injector="raise@parallelize.map:0#1"
        )
        try:
            context = EngineContext(2, executor=executor)
            with pytest.raises(FaultInjected):
                context.parallelize(range(4)).map(_double).collect()
            # Unrecoverable failure tears the pool down (cancelling any
            # still-queued work) ...
            assert executor._pool is None
            # ... but the executor itself stays usable: attempt 1 of the next
            # stage matches the clause again, attempt 1 is also the last with
            # max_attempts=1, so only a clause-free program can succeed.
            clean = EngineContext(2, executor=executor)
            assert clean.parallelize(range(4)).filter(_is_even).collect() == [0, 2]
        finally:
            executor.close()

    def test_persistent_crash_exhausts_with_clear_error(self):
        executor = MultiprocessingExecutor(
            max_workers=2,
            fault_policy=_fast_policy(max_attempts=2),
            fault_injector="crash@parallelize.map:0#*",
        )
        try:
            context = EngineContext(2, executor=executor)
            with pytest.raises(EngineError, match="still failing after 2 attempt"):
                context.parallelize(range(4)).map(_double).collect()
        finally:
            executor.close()

    def test_retried_exception_succeeds_on_second_attempt(self):
        executor = MultiprocessingExecutor(
            max_workers=2,
            fault_policy=_fast_policy(max_attempts=2),
            fault_injector="raise@parallelize.map:0#1",
        )
        try:
            context = EngineContext(4, executor=executor)
            result = context.parallelize(range(12)).map(_double).collect()
            assert result == [x * 2 for x in range(12)]
            (row,) = _process_stage_rows(context)
            assert row["recovered"] >= 1
        finally:
            executor.close()


class TestTimeoutRecovery:
    def test_hung_task_is_killed_and_retried(self):
        executor = MultiprocessingExecutor(
            max_workers=2,
            fault_policy=_fast_policy(max_attempts=2, task_timeout=1.0),
            fault_injector="hang~30@parallelize.map:0#1",
        )
        try:
            context = EngineContext(3, executor=executor)
            result = context.parallelize(range(9)).map(_double).collect()
            assert result == [x * 2 for x in range(9)]
            (row,) = _process_stage_rows(context)
            assert row["recovered"] >= 1
        finally:
            executor.close()

    def test_hang_every_attempt_falls_back_to_driver(self):
        executor = MultiprocessingExecutor(
            max_workers=2,
            fault_policy=_fast_policy(
                max_attempts=1,
                task_timeout=0.75,
                on_exhausted="serial-fallback",
            ),
            fault_injector="hang~30@parallelize.map:0#*",
        )
        try:
            context = EngineContext(3, executor=executor)
            result = context.parallelize(range(9)).map(_double).collect()
            assert result == [x * 2 for x in range(9)]
            stage = context.scheduler.stages[-1]
            assert stage.executor.endswith("serial-fallback")
            assert stage.tasks[0].worker == "driver"
            assert stage.num_recovered >= 1
        finally:
            executor.close()

    def test_hang_every_attempt_with_raise_policy_errors(self):
        executor = MultiprocessingExecutor(
            max_workers=2,
            fault_policy=_fast_policy(max_attempts=1, task_timeout=0.75),
            fault_injector="hang~30@parallelize.map:0#*",
        )
        try:
            context = EngineContext(2, executor=executor)
            with pytest.raises(EngineError, match="still failing"):
                context.parallelize(range(4)).map(_double).collect()
        finally:
            executor.close()


class TestSerialFallbackEquivalence:
    """Partitions replayed in the driver must merge exactly like pool ones."""

    def test_fallback_result_and_float_accumulation_match_serial(self):
        serial_context = EngineContext(4, executor=SerialExecutor())
        serial_counter = serial_context.accumulator(0.0)
        serial = (
            serial_context.parallelize(range(40))
            .map(_FloatWeightMap(serial_counter))
            .collect()
        )

        # Partition 1 fails every pool attempt and is replayed in the driver;
        # partitions 0, 2 and 3 complete on the pool.  The merged accumulator
        # must still equal the serial value bit-for-bit, which requires the
        # fallback updates to be replayed in partition order with the rest.
        executor = MultiprocessingExecutor(
            max_workers=2,
            fault_policy=_fast_policy(
                max_attempts=1, on_exhausted="serial-fallback"
            ),
            fault_injector="raise@parallelize.map:1#*",
        )
        try:
            context = EngineContext(4, executor=executor)
            counter = context.accumulator(0.0)
            result = (
                context.parallelize(range(40))
                .map(_FloatWeightMap(counter))
                .collect()
            )
            assert result == serial
            assert counter.value == serial_counter.value
            stage = context.scheduler.stages[-1]
            assert stage.executor.endswith("serial-fallback")
            assert stage.num_recovered >= 1
        finally:
            executor.close()

    def test_all_partitions_falling_back_matches_serial(self):
        executor = MultiprocessingExecutor(
            max_workers=2,
            fault_policy=_fast_policy(
                max_attempts=1, on_exhausted="serial-fallback"
            ),
            fault_injector="raise@parallelize.map:*#*",
        )
        try:
            context = EngineContext(4, executor=executor)
            result = context.parallelize(range(20)).map(_double).collect()
            assert result == [x * 2 for x in range(20)]
            stage = context.scheduler.stages[-1]
            assert all(task.worker == "driver" for task in stage.tasks)
            assert stage.num_recovered == stage.num_tasks
        finally:
            executor.close()


class TestShuffleRecovery:
    def test_crash_in_both_shuffle_phases_recovers(self):
        executor = MultiprocessingExecutor(
            max_workers=2,
            fault_policy=_fast_policy(),
            fault_injector="crash@shuffle.map:0#1;crash@shuffle.reduce:0#1",
        )
        try:
            serial = EngineContext(4, executor=SerialExecutor())
            expected = sorted(
                serial.parallelize(range(40)).keyBy(_is_even).reduceByKey(_add).collect()
            )
            context = EngineContext(4, executor=executor)
            result = sorted(
                context.parallelize(range(40)).keyBy(_is_even).reduceByKey(_add).collect()
            )
            assert result == expected
            recovered_stages = [
                row
                for row in context.scheduler.stage_table()
                if ".shuffle." in str(row["description"]) and row["recovered"] >= 1
            ]
            # Both phases crashed once and recovered.
            assert len(recovered_stages) == 2
            for row in recovered_stages:
                assert row["attempts"] > row["tasks"]
        finally:
            executor.close()


# =========================================================================
# Headline chaos guarantee: meta-blocking equivalence under injected faults
# =========================================================================
CHAOS_INJECT = (
    "crash@metablocking.weights:0#1;"
    "crash@shuffle.map:0#1;"
    "crash@shuffle.reduce:0#1"
)


def _chaos_executor() -> MultiprocessingExecutor:
    return MultiprocessingExecutor(
        max_workers=2,
        fault_policy=_fast_policy(),
        fault_injector=CHAOS_INJECT,
    )


def _assert_chaos_equivalence(blocks, weighting, pruning, kernel_backend):
    sequential = MetaBlocker(
        weighting, _make_pruning(pruning), kernel_backend=kernel_backend
    ).run(blocks)
    executor = _chaos_executor()
    try:
        context = EngineContext(4, executor=executor)
        parallel = ParallelMetaBlocker(
            context,
            weighting,
            _make_pruning(pruning),
            kernel_backend=kernel_backend,
        ).run(blocks)
        # The chaos must have actually happened — and been recovered.
        assert context.scheduler.total_recovered >= 1
        assert context.scheduler.total_task_failures >= 1
        context.stop()
    finally:
        executor.close()
    # Dict equality covers retained pairs and exact float weights: recovery
    # (re-run partitions, rebuilt pools) must not perturb a single ulp.
    assert parallel.retained_edges == sequential.retained_edges
    assert parallel.candidate_pairs == sequential.candidate_pairs
    assert parallel.graph_edges == sequential.graph_edges
    assert parallel.graph_nodes == sequential.graph_nodes
    assert sequential.num_candidates > 0


class TestChaosEquivalence:
    @pytest.mark.parametrize("pruning", ["wnp", "cnp"])
    @pytest.mark.parametrize("weighting", ["cbs", "js"])
    def test_clean_clean_python_backend(self, weighting, pruning):
        blocks = _random_clean_collection(seed=31)
        _assert_chaos_equivalence(blocks, weighting, pruning, "python")

    @pytest.mark.parametrize("pruning", ["wnp", "cep"])
    @pytest.mark.parametrize("weighting", ["ecbs", "arcs"])
    def test_dirty_python_backend(self, weighting, pruning):
        blocks = _random_dirty_collection(seed=32)
        _assert_chaos_equivalence(blocks, weighting, pruning, "python")

    @needs_numpy
    @pytest.mark.parametrize("pruning", ["wnp", "cnp"])
    @pytest.mark.parametrize("weighting", ["cbs", "ejs"])
    def test_clean_clean_numpy_backend(self, weighting, pruning):
        from repro.metablocking.sharedmem import live_segments

        blocks = _random_clean_collection(seed=33)
        _assert_chaos_equivalence(blocks, weighting, pruning, "numpy")
        # Crashed workers and rebuilt pools must not leak shared segments.
        assert live_segments() == []

    @needs_numpy
    def test_dirty_numpy_backend(self):
        from repro.metablocking.sharedmem import live_segments

        blocks = _random_dirty_collection(seed=34)
        _assert_chaos_equivalence(blocks, "js", "rwnp", "numpy")
        assert live_segments() == []


# =========================================================================
# Chaos: peer-to-peer shuffle block stores under injected faults
# =========================================================================
class TestBlockStoreChaos:
    """Worker crashes mid-shuffle with the peer stores: same results, no leaks.

    A map-phase crash republishes fresh segment names on retry; a
    reduce-phase crash rebuilds the pool while the driver's protected set
    shields the in-flight blocks from the orphan sweep — either way the
    reduced output must match the serial driver-store run bit-for-bit and
    every segment / spill file must be gone afterwards.
    """

    @pytest.mark.parametrize("store", ["shared-memory", "spill"])
    def test_mid_shuffle_crash_recovers(self, store):
        from repro.engine import sharedmem as engine_sharedmem

        executor = MultiprocessingExecutor(
            max_workers=2,
            fault_policy=_fast_policy(),
            fault_injector="crash@shuffle.map:0#1;crash@shuffle.reduce:0#1",
        )
        try:
            serial = EngineContext(4, executor=SerialExecutor())
            expected = sorted(
                serial.parallelize(range(40)).keyBy(_is_even).reduceByKey(_add).collect()
            )
            with EngineContext(4, executor=executor, block_store=store) as context:
                spill_dir = getattr(
                    getattr(context.block_store, "_spill", context.block_store),
                    "directory",
                )
                result = sorted(
                    context.parallelize(range(40))
                    .keyBy(_is_even)
                    .reduceByKey(_add)
                    .collect()
                )
                assert result == expected
                # Both phases crashed and recovered (pool rebuilt in between).
                assert context.scheduler.total_recovered >= 2
        finally:
            executor.close()
        assert engine_sharedmem.live_segments("shuf") == []
        import glob

        assert not glob.glob(f"{spill_dir}/*")

    def test_chaos_metablocking_equivalence_with_shared_memory_store(self):
        from repro.engine import sharedmem as engine_sharedmem

        blocks = _random_clean_collection(seed=41)
        sequential = MetaBlocker("cbs", _make_pruning("wnp")).run(blocks)
        executor = _chaos_executor()
        try:
            with EngineContext(
                4, executor=executor, block_store="shared-memory"
            ) as context:
                parallel = ParallelMetaBlocker(
                    context, "cbs", _make_pruning("wnp")
                ).run(blocks)
                assert context.scheduler.total_recovered >= 1
                assert context.scheduler.total_task_failures >= 1
        finally:
            executor.close()
        assert parallel.retained_edges == sequential.retained_edges
        assert engine_sharedmem.live_segments("shuf") == []

    def _dead_pid_segment(self):
        """A ``repro-shuf`` segment whose naming pid belongs to a dead process."""
        import multiprocessing

        from repro.engine import sharedmem as engine_sharedmem

        worker = multiprocessing.get_context("fork").Process(target=_double, args=(1,))
        worker.start()
        worker.join()
        name = f"repro-shuf-{worker.pid}-0"
        engine_sharedmem.quiet_close(engine_sharedmem.create_untracked(name, 16))
        return name

    def test_sweep_unlinks_dead_worker_shuffle_segment(self):
        from repro.engine import sharedmem as engine_sharedmem

        name = self._dead_pid_segment()
        swept = engine_sharedmem.sweep_orphaned_segments()
        assert name in swept
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_protected_segment_survives_sweep_until_released(self):
        from repro.engine import sharedmem as engine_sharedmem

        name = self._dead_pid_segment()
        engine_sharedmem.protect_segments([name])
        try:
            assert name not in engine_sharedmem.sweep_orphaned_segments()
            assert os.path.exists(f"/dev/shm/{name}")
        finally:
            engine_sharedmem.unlink_segment(name)  # also drops the protection
        assert name not in engine_sharedmem._protected
        assert name in engine_sharedmem.sweep_orphaned_segments() or not os.path.exists(
            f"/dev/shm/{name}"
        )

    def test_executor_close_sweeps_stranded_worker_segments(self):
        from repro.engine import sharedmem as engine_sharedmem

        name = self._dead_pid_segment()
        executor = MultiprocessingExecutor(max_workers=1)
        try:
            context = EngineContext(1, executor=executor)
            context.parallelize([1], 1).map(_double).collect()
        finally:
            executor.close()
        assert not os.path.exists(f"/dev/shm/{name}")
        assert name not in engine_sharedmem.live_segments()


# =========================================================================
# Satellite: orphaned shared-memory segment sweep
# =========================================================================
@needs_numpy
class TestSharedSegmentSweep:
    def _export(self):
        import array

        from repro.metablocking.sharedmem import SharedIndexBuffers

        return SharedIndexBuffers.export(
            {"offsets": (array.array("q", [0, 1, 2]), "q")}
        )

    def test_live_export_is_not_swept(self):
        from repro.metablocking import sharedmem

        buffers = self._export()
        try:
            assert buffers.name not in sharedmem.sweep_orphaned_segments()
            assert buffers.name in sharedmem.live_segments()
        finally:
            buffers.release()
        assert buffers.name not in sharedmem.live_segments()

    def test_abandoned_own_segment_is_swept(self):
        from repro.metablocking import sharedmem

        buffers = self._export()
        # Simulate a registry torn by a crash: the segment exists in /dev/shm
        # but is no longer accounted for as a live export.
        sharedmem._live_owned.discard(buffers.name)
        try:
            swept = sharedmem.sweep_orphaned_segments()
            assert buffers.name in swept
            assert buffers.name not in sharedmem.live_segments()
        finally:
            buffers.release()  # idempotent: unlink already happened

    def test_pool_discard_sweeps_orphans(self):
        from repro.metablocking import sharedmem

        buffers = self._export()
        sharedmem._live_owned.discard(buffers.name)
        executor = MultiprocessingExecutor(max_workers=1)
        try:
            context = EngineContext(1, executor=executor)
            context.parallelize([1], 1).map(_double).collect()
            executor._discard_pool()
            assert buffers.name not in sharedmem.live_segments()
        finally:
            buffers.release()
            executor.close()


# =========================================================================
# Satellite: checkpoint integrity (checksums, backup rotation, fallback)
# =========================================================================
def _state(completed):
    return {
        "completed": list(completed),
        "spec": {"stages": [{"stage": name} for name in completed]},
        "artifact_manifest": {},
    }


class TestCheckpointIntegrity:
    def test_manifest_records_state_checksum(self, tmp_path):
        import hashlib
        import json

        checkpoint = PipelineCheckpoint(tmp_path / "ckpt")
        checkpoint.save(_state(["a"]))
        manifest = json.loads(checkpoint.manifest_path.read_text())
        digest = hashlib.sha256(checkpoint.state_path.read_bytes()).hexdigest()
        assert manifest["checksum"] == digest
        assert manifest["backup_checksum"] is None
        checkpoint.save(_state(["a", "b"]))
        manifest = json.loads(checkpoint.manifest_path.read_text())
        assert manifest["backup_checksum"] == digest

    def test_save_rotates_previous_state_into_backup(self, tmp_path):
        checkpoint = PipelineCheckpoint(tmp_path / "ckpt")
        checkpoint.save(_state(["a"]))
        assert not checkpoint.backup_path.is_file()
        checkpoint.save(_state(["a", "b"]))
        assert checkpoint.backup_path.is_file()
        assert checkpoint.load()["completed"] == ["a", "b"]

    def test_corrupt_state_falls_back_to_backup(self, tmp_path):
        checkpoint = PipelineCheckpoint(tmp_path / "ckpt")
        checkpoint.save(_state(["a"]))
        checkpoint.save(_state(["a", "b"]))
        checkpoint.state_path.write_bytes(b"torn write garbage")
        state = checkpoint.load()
        # One stage behind, never garbage: the resume restarts from 'a'.
        assert state["completed"] == ["a"]

    def test_corrupt_state_without_backup_raises(self, tmp_path):
        checkpoint = PipelineCheckpoint(tmp_path / "ckpt")
        checkpoint.save(_state(["a"]))
        checkpoint.state_path.write_bytes(b"garbage")
        with pytest.raises(PipelineError, match="no backup"):
            checkpoint.load()

    def test_corrupt_state_and_backup_raise(self, tmp_path):
        checkpoint = PipelineCheckpoint(tmp_path / "ckpt")
        checkpoint.save(_state(["a"]))
        checkpoint.save(_state(["a", "b"]))
        checkpoint.state_path.write_bytes(b"garbage")
        checkpoint.backup_path.write_bytes(b"also garbage")
        with pytest.raises(PipelineError, match="backup failed verification"):
            checkpoint.load()

    def test_checksum_detects_valid_pickle_with_wrong_content(self, tmp_path):
        """Corruption that still unpickles must be caught by the checksum."""
        checkpoint = PipelineCheckpoint(tmp_path / "ckpt")
        checkpoint.save(_state(["a"]))
        checkpoint.save(_state(["a", "b"]))
        forged = dict(_state(["a", "b", "c"]), version=1)
        checkpoint.state_path.write_bytes(pickle.dumps(forged))
        assert checkpoint.load()["completed"] == ["a"]

    def test_missing_manifest_degrades_to_unverified_load(self, tmp_path):
        checkpoint = PipelineCheckpoint(tmp_path / "ckpt")
        checkpoint.save(_state(["a"]))
        checkpoint.manifest_path.unlink()
        assert checkpoint.load()["completed"] == ["a"]

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(PipelineError, match="no checkpoint"):
            PipelineCheckpoint(tmp_path / "nope").load()


# =========================================================================
# Satellite: CLI and spec plumbing
# =========================================================================
class TestFaultPolicyPlumbing:
    def test_cli_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--synthetic", "abt-buy", "--task-retries", "2",
             "--task-timeout", "30"]
        )
        assert args.task_retries == 2
        assert args.task_timeout == 30.0

    def test_cli_builds_policy_spec(self):
        from repro.cli import _fault_policy_spec, build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["run", "--synthetic", "abt-buy", "--task-retries", "2",
             "--task-timeout", "30"]
        )
        assert _fault_policy_spec(args) == "retries=2,timeout=30"
        args = parser.parse_args(["run", "--synthetic", "abt-buy"])
        assert _fault_policy_spec(args) is None
        args = parser.parse_args(
            ["run", "--synthetic", "abt-buy", "--task-retries", "-1"]
        )
        with pytest.raises(SparkERError, match="task-retries"):
            _fault_policy_spec(args)

    def test_canonical_spec_records_fault_policy(self):
        spec = SparkER.canonical_spec(
            SparkERConfig.unsupervised_default(),
            use_engine=True,
            executor="process:2",
            fault_policy="retries=2,timeout=30",
        )
        assert spec["engine"]["fault_policy"] == "retries=2,timeout=30"
        pipeline = Pipeline.from_spec(spec)
        try:
            assert pipeline.engine.executor.fault_policy.max_attempts == 3
            assert pipeline.engine.executor.fault_policy.task_timeout == 30.0
        finally:
            pipeline.shutdown()

    def test_from_spec_rejects_bad_fault_policy_type(self):
        spec = SparkER.canonical_spec(
            SparkERConfig.unsupervised_default(), use_engine=True, executor="serial"
        )
        spec["engine"]["fault_policy"] = 7
        with pytest.raises(PipelineValidationError, match="fault_policy"):
            Pipeline.from_spec(spec)

    def test_cli_chaos_smoke(self, capsys, monkeypatch):
        """End-to-end: one injected worker crash, recovered, exit code 0."""
        from repro.cli import main

        monkeypatch.setenv(INJECT_ENV_VAR, "crash@metablocking.weights:0#1")
        exit_code = main(
            ["run", "--synthetic", "abt-buy", "--entities", "40",
             "--executor", "process", "--workers", "2", "--task-retries", "2"]
        )
        assert exit_code == 0
        assert "summary:" in capsys.readouterr().out


# =========================================================================
# Service-layer fault points
# =========================================================================
class TestServiceFaultPoints:
    @pytest.fixture(autouse=True)
    def _fresh_injector_cache(self):
        reset_service_faults()
        yield
        reset_service_faults()

    def test_noop_without_spec(self, monkeypatch):
        monkeypatch.delenv(SERVICE_INJECT_ENV_VAR, raising=False)
        service_fault("wal.append")  # must not raise

    def test_raise_mode_counts_hits_per_point(self, monkeypatch):
        monkeypatch.setenv(SERVICE_INJECT_ENV_VAR, "raise@wal.append#3")
        service_fault("wal.append")  # hit 1
        service_fault("wal.truncate")  # separate counter
        service_fault("wal.append")  # hit 2
        with pytest.raises(FaultInjected, match="hit 3"):
            service_fault("wal.append")
        # Attempt 3 fired; hit 4 passes through again.
        service_fault("wal.append")

    def test_disk_mode_raises_oserror(self, monkeypatch):
        monkeypatch.setenv(SERVICE_INJECT_ENV_VAR, "disk@wal.append")
        with pytest.raises(OSError, match="injected disk fault"):
            service_fault("wal.append")

    def test_stage_substring_scopes_the_point(self, monkeypatch):
        monkeypatch.setenv(SERVICE_INJECT_ENV_VAR, "raise@ingest.apply")
        service_fault("ingest.ack.demo")  # different point family
        with pytest.raises(FaultInjected):
            service_fault("ingest.apply.demo")

    def test_spec_is_cached_until_reset(self, monkeypatch):
        monkeypatch.delenv(SERVICE_INJECT_ENV_VAR, raising=False)
        service_fault("wal.append")  # caches "no injection"
        monkeypatch.setenv(SERVICE_INJECT_ENV_VAR, "raise@wal.append")
        service_fault("wal.append")  # still cached: no raise
        reset_service_faults()
        with pytest.raises(FaultInjected):
            service_fault("wal.append")

    def test_injector_hang_mode_sleeps(self):
        injector = ServicePointInjector(FaultInjector.parse("hang~0.01@point"))
        started = time.perf_counter()
        injector.fire("point")
        assert time.perf_counter() - started >= 0.01

    def test_disk_mode_parses_in_the_engine_grammar(self):
        (clause,) = FaultInjector.parse("disk@shuffle:1#2").clauses
        assert clause.mode == "disk"
        probe = _FaultProbe((clause,), "shuffle", 2)
        with pytest.raises(OSError, match="injected disk fault"):
            probe(1, iter([1]))
