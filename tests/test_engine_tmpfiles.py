"""Managed temp artifacts: root resolution, pid-stamped naming, crash sweep."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.engine import tmpfiles


class TestResolveTmpDir:
    def test_explicit_spec_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(tmpfiles.ENV_VAR, "/somewhere/else")
        assert tmpfiles.resolve_tmp_dir(str(tmp_path)) == str(tmp_path)

    def test_env_var_beats_platform_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(tmpfiles.ENV_VAR, str(tmp_path))
        assert tmpfiles.resolve_tmp_dir() == str(tmp_path)
        assert tmpfiles.resolve_tmp_dir(None) == str(tmp_path)

    def test_blank_env_var_falls_through(self, monkeypatch):
        import tempfile

        monkeypatch.setenv(tmpfiles.ENV_VAR, "   ")
        assert tmpfiles.resolve_tmp_dir() == tempfile.gettempdir()

    def test_path_like_spec(self, tmp_path):
        assert tmpfiles.resolve_tmp_dir(tmp_path) == str(tmp_path)


class TestArtifactCreation:
    def test_path_is_pid_stamped_and_owned(self, tmp_path):
        path = tmpfiles.make_artifact_path("demo", tmp_path)
        try:
            name = os.path.basename(path)
            assert name.startswith(f"repro-demo-{os.getpid()}-")
            assert os.path.dirname(path) == str(tmp_path)
            # Reserved, not created: the caller writes it.
            assert not os.path.exists(path)
            assert path in tmpfiles.live_artifacts("demo")
        finally:
            tmpfiles.discard_artifact(path)

    def test_paths_are_unique(self, tmp_path):
        paths = [tmpfiles.make_artifact_path("demo", tmp_path) for _ in range(5)]
        try:
            assert len(set(paths)) == 5
        finally:
            for path in paths:
                tmpfiles.discard_artifact(path)

    def test_artifact_dir_is_created(self, tmp_path):
        path = tmpfiles.make_artifact_dir("demo", tmp_path)
        assert os.path.isdir(path)
        tmpfiles.discard_artifact(path)
        assert not os.path.exists(path)

    def test_non_alphanumeric_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            tmpfiles.make_artifact_path("bad-kind", tmp_path)

    def test_missing_root_is_created(self, tmp_path):
        root = tmp_path / "nested" / "root"
        path = tmpfiles.make_artifact_path("demo", root)
        try:
            assert os.path.isdir(root)
        finally:
            tmpfiles.discard_artifact(path)

    def test_live_artifacts_filters_by_kind(self, tmp_path):
        demo = tmpfiles.make_artifact_path("demo", tmp_path)
        other = tmpfiles.make_artifact_path("other", tmp_path)
        try:
            assert demo in tmpfiles.live_artifacts("demo")
            assert other not in tmpfiles.live_artifacts("demo")
            everything = tmpfiles.live_artifacts()
            assert demo in everything and other in everything
        finally:
            tmpfiles.discard_artifact(demo)
            tmpfiles.discard_artifact(other)


class TestDiscard:
    def test_removes_file_and_ownership(self, tmp_path):
        path = tmpfiles.make_artifact_path("demo", tmp_path)
        with open(path, "wb") as handle:
            handle.write(b"payload")
        tmpfiles.discard_artifact(path)
        assert not os.path.exists(path)
        assert path not in tmpfiles.live_artifacts()

    def test_idempotent_on_missing_path(self, tmp_path):
        path = tmpfiles.make_artifact_path("demo", tmp_path)
        tmpfiles.discard_artifact(path)
        tmpfiles.discard_artifact(path)  # second call must not raise

    def test_discard_live_artifacts_sweeps_owned_paths(self, tmp_path):
        demo = tmpfiles.make_artifact_path("demo", tmp_path)
        other = tmpfiles.make_artifact_dir("other", tmp_path)
        with open(demo, "wb") as handle:
            handle.write(b"payload")
        try:
            # Kind-filtered sweep leaves the other family untouched.
            removed = tmpfiles.discard_live_artifacts("demo")
            assert removed == [demo]
            assert not os.path.exists(demo)
            assert os.path.isdir(other)
            assert other in tmpfiles.live_artifacts()
            removed = tmpfiles.discard_live_artifacts()
            assert other in removed
            assert not os.path.exists(other)
            assert other not in tmpfiles.live_artifacts()
            # Idempotent: a second sweep finds nothing of ours.
            assert other not in tmpfiles.discard_live_artifacts()
        finally:
            tmpfiles.discard_artifact(demo)
            tmpfiles.discard_artifact(other)


def _dead_pid() -> int:
    """A pid that certainly no longer exists (a reaped child's)."""
    child = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True, text=True, check=True,
    )
    return int(child.stdout)


class TestSweep:
    def test_dead_pid_artifacts_are_removed(self, tmp_path):
        pid = _dead_pid()
        orphan_file = tmp_path / f"repro-csrbuf-{pid}-0"
        orphan_file.write_bytes(b"stale")
        orphan_dir = tmp_path / f"repro-spill-{pid}-1"
        orphan_dir.mkdir()
        (orphan_dir / "bucket").write_bytes(b"stale")
        removed = tmpfiles.sweep_orphaned_artifacts(tmp_path)
        assert sorted(removed) == sorted([str(orphan_file), str(orphan_dir)])
        assert not orphan_file.exists()
        assert not orphan_dir.exists()

    def test_live_pid_artifacts_are_kept(self, tmp_path):
        survivor = tmp_path / f"repro-csrbuf-{os.getpid()}-7"
        survivor.write_bytes(b"in use")
        assert tmpfiles.sweep_orphaned_artifacts(tmp_path) == []
        assert survivor.exists()

    def test_owned_artifacts_are_kept(self, tmp_path):
        path = tmpfiles.make_artifact_path("demo", tmp_path)
        with open(path, "wb") as handle:
            handle.write(b"mine")
        try:
            assert tmpfiles.sweep_orphaned_artifacts(tmp_path) == []
            assert os.path.exists(path)
        finally:
            tmpfiles.discard_artifact(path)

    def test_foreign_names_are_untouched(self, tmp_path):
        pid = _dead_pid()
        foreign = [
            tmp_path / "unrelated.txt",
            tmp_path / "repro-legacy-a1b2c3",  # non-integer pid field
            tmp_path / f"repro-spill-{pid}-3-extra",  # five fields
            tmp_path / f"repro--{pid}-0",  # empty kind
        ]
        for item in foreign:
            item.write_bytes(b"keep")
        assert tmpfiles.sweep_orphaned_artifacts(tmp_path) == []
        assert all(item.exists() for item in foreign)

    def test_missing_root_is_a_noop(self, tmp_path):
        assert tmpfiles.sweep_orphaned_artifacts(tmp_path / "absent") == []


class TestReleaseArtifact:
    def test_release_drops_ownership_but_keeps_the_file(self, tmp_path):
        path = tmpfiles.make_artifact_path("waltmp", tmp_path)
        durable = tmp_path / "log.wal"
        with open(path, "wb") as handle:
            handle.write(b"rewritten")
        os.replace(path, durable)
        tmpfiles.release_artifact(path)
        assert path not in tmpfiles.live_artifacts()
        assert durable.read_bytes() == b"rewritten"
        # The shutdown sweep no longer knows the reserved path.
        tmpfiles.discard_live_artifacts()
        assert durable.exists()

    def test_release_of_unknown_path_is_a_noop(self, tmp_path):
        tmpfiles.release_artifact(str(tmp_path / "never-reserved"))


class TestKindFilteredSweep:
    def test_sweep_only_touches_the_requested_kind(self, tmp_path):
        pid = _dead_pid()
        wal_orphan = tmp_path / f"repro-waltmp-{pid}-0"
        wal_orphan.write_bytes(b"stale rewrite")
        other_orphan = tmp_path / f"repro-csrbuf-{pid}-1"
        other_orphan.write_bytes(b"someone else's")
        removed = tmpfiles.sweep_orphaned_artifacts(tmp_path, kind="waltmp")
        assert removed == [str(wal_orphan)]
        assert not wal_orphan.exists()
        assert other_orphan.exists()
        # An unfiltered sweep still reclaims the rest.
        assert tmpfiles.sweep_orphaned_artifacts(tmp_path) == [str(other_orphan)]
