"""Tests of the Blocker pipeline module (Figure 4)."""

from repro.core.blocker import Blocker
from repro.core.config import BlockerConfig
from repro.looseschema.attribute_partitioning import AttributePartitioner


class TestBlockerSchemaAgnostic:
    def test_stages_executed(self, abt_buy_small):
        config = BlockerConfig(use_loose_schema=False, use_entropy=False)
        report = Blocker(config).run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        stages = [stage.stage for stage in report.pipeline_report.stages]
        assert stages == ["token_blocking", "block_purging", "block_filtering", "meta_blocking"]
        assert report.partitioning is None

    def test_candidate_pairs_decrease_along_pipeline(self, abt_buy_small):
        config = BlockerConfig(use_loose_schema=False, use_entropy=False)
        report = Blocker(config).run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        raw = len(report.raw_blocks.distinct_comparisons())
        filtered = len(report.filtered_blocks.distinct_comparisons())
        final = len(report.candidate_pairs)
        assert final <= filtered <= raw

    def test_no_meta_blocking_mode(self, abt_buy_small):
        config = BlockerConfig(use_loose_schema=False, use_meta_blocking=False)
        report = Blocker(config).run(abt_buy_small.profiles)
        assert report.meta_blocking is None
        assert report.candidate_pairs == report.filtered_blocks.distinct_comparisons()

    def test_works_without_ground_truth(self, abt_buy_small):
        config = BlockerConfig(use_loose_schema=False)
        report = Blocker(config).run(abt_buy_small.profiles)
        assert len(report.candidate_pairs) > 0

    def test_timings_recorded(self, abt_buy_small):
        report = Blocker(BlockerConfig(use_loose_schema=False)).run(abt_buy_small.profiles)
        assert "blocking" in report.timings.durations
        assert "meta_blocking" in report.timings.durations


class TestBlockerLooseSchema:
    def test_partitioning_and_entropies_reported(self, abt_buy_small):
        config = BlockerConfig(use_loose_schema=True, attribute_threshold=0.1)
        report = Blocker(config).run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        assert report.partitioning is not None
        assert len(report.cluster_entropies) == len(report.partitioning.clusters)
        assert report.pipeline_report.get("loose_schema") is not None

    def test_recall_preserved(self, abt_buy_small):
        config = BlockerConfig(use_loose_schema=True, attribute_threshold=0.1)
        report = Blocker(config).run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        truth = abt_buy_small.ground_truth.pairs()
        recall = len(report.candidate_pairs & truth) / len(truth)
        assert recall > 0.85

    def test_user_partitioning_respected(self, abt_buy_small):
        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy_small.profiles)
        report = Blocker(
            BlockerConfig(use_loose_schema=True), partitioning=partitioning
        ).run(abt_buy_small.profiles)
        assert report.partitioning is partitioning

    def test_engine_backed_run_matches_local(self, abt_buy_small, engine):
        config = BlockerConfig(use_loose_schema=False, pruning_strategy="wnp")
        local = Blocker(config).run(abt_buy_small.profiles)
        distributed = Blocker(config, engine=engine).run(abt_buy_small.profiles)
        assert local.candidate_pairs == distributed.candidate_pairs

    def test_stage_rows(self, abt_buy_small):
        report = Blocker(BlockerConfig()).run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        rows = report.stage_rows()
        assert any(row["stage"] == "meta_blocking" for row in rows)
