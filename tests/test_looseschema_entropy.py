"""Tests of the entropy extractor."""

import math

from repro.looseschema.attribute_partitioning import AttributePartitioner
from repro.looseschema.entropy import EntropyExtractor, shannon_entropy


class TestShannonEntropy:
    def test_uniform_two_outcomes(self):
        assert math.isclose(shannon_entropy([5, 5]), 1.0)

    def test_single_outcome_zero(self):
        assert shannon_entropy([10]) == 0.0

    def test_empty_zero(self):
        assert shannon_entropy([]) == 0.0

    def test_zero_counts_ignored(self):
        assert math.isclose(shannon_entropy([5, 5, 0]), 1.0)

    def test_more_outcomes_more_entropy(self):
        assert shannon_entropy([1, 1, 1, 1]) > shannon_entropy([2, 2])

    def test_skew_reduces_entropy(self):
        assert shannon_entropy([99, 1]) < shannon_entropy([50, 50])


class TestEntropyExtractor:
    def test_every_cluster_has_entropy(self, abt_buy_small):
        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy_small.profiles)
        entropies = EntropyExtractor().extract(abt_buy_small.profiles, partitioning)
        assert set(entropies) == set(partitioning.clusters)

    def test_normalized_max_is_one(self, abt_buy_small):
        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy_small.profiles)
        entropies = EntropyExtractor(normalize=True).extract(
            abt_buy_small.profiles, partitioning
        )
        assert math.isclose(max(entropies.values()), 1.0)

    def test_unnormalized_values_positive(self, abt_buy_small):
        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy_small.profiles)
        entropies = EntropyExtractor(normalize=False).extract(
            abt_buy_small.profiles, partitioning
        )
        assert all(value >= 0.0 for value in entropies.values())

    def test_high_variability_cluster_has_higher_entropy(self):
        # The paper's intuition: clusters with high value variability get
        # higher entropy than clusters with few distinct values.
        from repro.data.dataset import ProfileCollection
        from repro.data.profile import EntityProfile
        from repro.looseschema.attribute_partitioning import AttributePartitioning

        profiles = ProfileCollection()
        for i in range(30):
            profile = EntityProfile(profile_id=i, source_id=0)
            profile.add("title", f"unique product title number {i} variant {i * 7}")
            profile.add("condition", "new" if i % 2 else "used")
            profiles.add(profile)
        partitioning = AttributePartitioning(
            clusters={0: set(), 1: {(0, "title")}, 2: {(0, "condition")}}
        )
        entropies = EntropyExtractor(normalize=False).extract(profiles, partitioning)
        assert entropies[1] > entropies[2]

    def test_callable_interface(self, abt_buy_small):
        partitioning = AttributePartitioner(threshold=1.0).partition(abt_buy_small.profiles)
        extractor = EntropyExtractor()
        assert extractor(abt_buy_small.profiles, partitioning) == extractor.extract(
            abt_buy_small.profiles, partitioning
        )
