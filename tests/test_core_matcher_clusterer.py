"""Tests of the EntityMatcher and EntityClusterer pipeline modules."""

import pytest

from repro.core.config import ClustererConfig, MatcherConfig
from repro.core.entity_clusterer import EntityClusterer
from repro.core.entity_matcher import EntityMatcher
from repro.exceptions import ConfigurationError, MatchingError
from repro.matching.matcher import MatchingRule, ThresholdMatcher
from repro.matching.similarity_graph import SimilarityEdge, SimilarityGraph


def _candidate_pairs(dataset, extra_non_matches: int = 30):
    """Ground-truth pairs plus some cross-source non-matches."""
    pairs = set(dataset.ground_truth.pairs())
    ids0 = [p.profile_id for p in dataset.profiles.by_source(0)]
    ids1 = [p.profile_id for p in dataset.profiles.by_source(1)]
    added = 0
    for a in ids0:
        for b in ids1:
            if (a, b) not in dataset.ground_truth:
                pairs.add((a, b))
                added += 1
                if added >= extra_non_matches:
                    return pairs
    return pairs


class TestEntityMatcher:
    def test_threshold_mode(self, abt_buy_small):
        matcher = EntityMatcher(MatcherConfig(mode="threshold", similarity="jaccard", threshold=0.3))
        graph = matcher.match(abt_buy_small.profiles, sorted(_candidate_pairs(abt_buy_small)))
        truth = abt_buy_small.ground_truth.pairs()
        assert len(graph.pairs() & truth) / len(truth) > 0.8

    def test_rules_mode_requires_rules(self, abt_buy_small):
        matcher = EntityMatcher(MatcherConfig(mode="rules"))
        with pytest.raises(ConfigurationError):
            matcher.build_matcher(abt_buy_small.profiles)

    def test_rules_mode(self, abt_buy_small):
        rules = [MatchingRule("jaccard", 0.3)]
        matcher = EntityMatcher(MatcherConfig(mode="rules"), rules=rules)
        graph = matcher.match(abt_buy_small.profiles, sorted(_candidate_pairs(abt_buy_small)))
        assert len(graph) > 0

    def test_classifier_mode_requires_labels(self, abt_buy_small):
        matcher = EntityMatcher(MatcherConfig(mode="classifier"))
        with pytest.raises(MatchingError):
            matcher.build_matcher(abt_buy_small.profiles)

    def test_classifier_mode(self, abt_buy_small):
        import random

        rng = random.Random(1)
        positives = [(a, b, True) for a, b in abt_buy_small.ground_truth]
        ids0 = [p.profile_id for p in abt_buy_small.profiles.by_source(0)]
        ids1 = [p.profile_id for p in abt_buy_small.profiles.by_source(1)]
        negatives = []
        while len(negatives) < 40:
            a, b = rng.choice(ids0), rng.choice(ids1)
            if (a, b) not in abt_buy_small.ground_truth:
                negatives.append((a, b, False))
        matcher = EntityMatcher(
            MatcherConfig(mode="classifier", classifier_epochs=150),
            labeled_pairs=positives + negatives,
        )
        graph = matcher.match(abt_buy_small.profiles, sorted(_candidate_pairs(abt_buy_small)))
        truth = abt_buy_small.ground_truth.pairs()
        recall = len(graph.pairs() & truth) / len(truth)
        assert recall > 0.7

    def test_custom_matcher_overrides_mode(self, abt_buy_small):
        custom = ThresholdMatcher("jaccard", 0.2)
        matcher = EntityMatcher(MatcherConfig(mode="classifier"), matcher=custom)
        assert matcher.build_matcher(abt_buy_small.profiles) is custom


class TestEntityClusterer:
    def _graph(self) -> SimilarityGraph:
        return SimilarityGraph(
            [
                SimilarityEdge(0, 10, 0.9),
                SimilarityEdge(10, 20, 0.4),
                SimilarityEdge(5, 15, 0.8),
            ]
        )

    def test_connected_components_default(self):
        clusterer = EntityClusterer()
        clusters = clusterer.cluster(self._graph())
        sizes = sorted(c.size for c in clusters)
        assert sizes == [2, 3]

    def test_min_score_filters_edges(self):
        clusterer = EntityClusterer(ClustererConfig(min_score=0.5))
        clusters = clusterer.cluster(self._graph())
        sizes = sorted(c.size for c in clusters)
        assert sizes == [2, 2]

    def test_alternative_algorithm(self):
        clusterer = EntityClusterer(ClustererConfig(algorithm="unique_mapping"))
        clusters = clusterer.cluster(self._graph())
        assert max(c.size for c in clusters) == 2

    def test_generate_entities_merges_attributes(self, abt_buy_small):
        a, b = next(iter(abt_buy_small.ground_truth))
        graph = SimilarityGraph([SimilarityEdge(a, b, 1.0)])
        clusterer = EntityClusterer()
        clusters = clusterer.cluster(graph)
        entities = clusterer.generate_entities(clusters, abt_buy_small.profiles)
        assert len(entities) == 1
        entity = entities[0]
        assert sorted(entity["profiles"]) == sorted([a, b])
        # Attributes of both profiles are merged.
        merged_attributes = set(entity["attributes"])
        assert "name" in merged_attributes
        assert "title" in merged_attributes

    def test_generate_entities_with_singletons(self, abt_buy_small):
        clusterer = EntityClusterer()
        entities = clusterer.generate_entities([], abt_buy_small.profiles, include_singletons=True)
        assert len(entities) == len(abt_buy_small.profiles)

    def test_engine_backed_clusterer(self, engine):
        clusterer = EntityClusterer(engine=engine)
        clusters = clusterer.cluster(self._graph())
        assert sorted(c.size for c in clusters) == [2, 3]
