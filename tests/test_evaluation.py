"""Tests of the evaluation metrics and reports."""

import pytest

from repro.clustering.base import EntityCluster
from repro.data.ground_truth import GroundTruth
from repro.evaluation.metrics import blocking_metrics, clustering_metrics, pair_metrics
from repro.evaluation.report import PipelineReport, StageReport, format_table
from repro.exceptions import EvaluationError


class TestPairMetrics:
    def test_perfect(self):
        truth = GroundTruth([(1, 2), (3, 4)])
        metrics = pair_metrics({(1, 2), (3, 4)}, truth)
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert metrics.f1 == 1.0

    def test_partial(self):
        truth = GroundTruth([(1, 2), (3, 4)])
        metrics = pair_metrics({(1, 2), (5, 6)}, truth)
        assert metrics.precision == 0.5
        assert metrics.recall == 0.5
        assert metrics.true_positives == 1
        assert metrics.false_positives == 1
        assert metrics.false_negatives == 1

    def test_order_insensitive(self):
        truth = GroundTruth([(1, 2)])
        assert pair_metrics({(2, 1)}, truth).recall == 1.0

    def test_empty_prediction(self):
        metrics = pair_metrics(set(), GroundTruth([(1, 2)]))
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f1 == 0.0

    def test_empty_truth_recall_one(self):
        metrics = pair_metrics({(1, 2)}, GroundTruth())
        assert metrics.recall == 1.0
        assert metrics.precision == 0.0

    def test_requires_ground_truth(self):
        with pytest.raises(EvaluationError):
            pair_metrics({(1, 2)}, None)  # type: ignore[arg-type]

    def test_as_dict(self):
        metrics = pair_metrics({(1, 2)}, GroundTruth([(1, 2)]))
        assert metrics.as_dict()["f1"] == 1.0


class TestBlockingMetrics:
    def test_pc_pq_rr(self):
        truth = GroundTruth([(1, 2), (3, 4)])
        metrics = blocking_metrics({(1, 2), (5, 6), (7, 8), (9, 10)}, truth, max_comparisons=100)
        assert metrics["pair_completeness"] == 0.5
        assert metrics["pair_quality"] == 0.25
        assert metrics["reduction_ratio"] == 1 - 4 / 100
        assert metrics["candidate_pairs"] == 4

    def test_zero_max_comparisons(self):
        metrics = blocking_metrics({(1, 2)}, GroundTruth([(1, 2)]), max_comparisons=0)
        assert metrics["reduction_ratio"] == 0.0


class TestClusteringMetrics:
    def test_cluster_pairs_evaluated(self):
        truth = GroundTruth([(1, 2), (2, 3), (1, 3)])
        clusters = [EntityCluster(0, {1, 2, 3}), EntityCluster(1, {9})]
        metrics = clustering_metrics(clusters, truth)
        assert metrics["recall"] == 1.0
        assert metrics["precision"] == 1.0
        assert metrics["clusters"] == 2
        assert metrics["max_cluster_size"] == 3

    def test_over_merging_hurts_precision(self):
        truth = GroundTruth([(1, 2)])
        clusters = [EntityCluster(0, {1, 2, 3, 4})]
        metrics = clustering_metrics(clusters, truth)
        assert metrics["recall"] == 1.0
        assert metrics["precision"] < 0.5

    def test_empty(self):
        metrics = clustering_metrics([], GroundTruth())
        assert metrics["clusters"] == 0


class TestReports:
    def test_stage_report_line(self):
        report = StageReport("blocking", {"blocks": 10})
        assert "blocking" in report.line()
        assert "blocks=10" in report.line()

    def test_pipeline_report_add_get(self):
        pipeline = PipelineReport()
        pipeline.add("blocking", {"blocks": 5})
        pipeline.add("matching", {"pairs": 3})
        assert pipeline.get("blocking").metrics["blocks"] == 5
        assert pipeline.get("missing") is None

    def test_pipeline_report_render(self):
        pipeline = PipelineReport()
        pipeline.add("stage", {"x": 1})
        assert "[stage]" in pipeline.render()

    def test_as_rows(self):
        pipeline = PipelineReport()
        pipeline.add("stage", {"x": 1})
        rows = pipeline.as_rows()
        assert rows[0]["stage"] == "stage"
        assert rows[0]["x"] == 1

    def test_format_table(self):
        table = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}], title="t")
        lines = table.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="nothing")
