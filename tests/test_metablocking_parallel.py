"""Tests of the broadcast-join parallel meta-blocking.

The key property is output equivalence with the sequential meta-blocker for
every weighting scheme × pruning strategy combination, on clean-clean and
dirty datasets alike.
"""

import pytest

from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.blocking.token_blocking import TokenBlocking
from repro.engine.context import EngineContext
from repro.metablocking.metablocker import MetaBlocker
from repro.metablocking.parallel import CompactBlockIndex, ParallelMetaBlocker


def _prepared_blocks(dataset):
    raw = TokenBlocking().block(dataset.profiles)
    return BlockFiltering().filter(BlockPurging().purge(raw, len(dataset.profiles)))


class TestCompactBlockIndex:
    def test_profile_blocks_and_members(self, abt_buy_small):
        blocks = _prepared_blocks(abt_buy_small)
        index = CompactBlockIndex.from_blocks(blocks)
        assert index.num_blocks == len([b for b in blocks if b.num_comparisons() > 0])
        assert index.clean_clean
        some_profile = next(iter(index.profile_blocks))
        assert len(index.blocks_of(some_profile)) >= 1

    def test_neighbourhood_matches_graph(self, abt_buy_small):
        from repro.metablocking.graph import build_blocking_graph

        blocks = _prepared_blocks(abt_buy_small)
        index = CompactBlockIndex.from_blocks(blocks)
        graph = build_blocking_graph(blocks)
        node = next(iter(graph.blocks_per_profile))
        expected = graph.neighbors(node)
        actual = index.neighbourhood(node)
        assert set(actual) == set(expected)
        for other, info in actual.items():
            assert info.common_blocks == expected[other].common_blocks

    def test_dirty_neighbourhood_excludes_self(self, dirty_persons_small):
        blocks = _prepared_blocks(dirty_persons_small)
        index = CompactBlockIndex.from_blocks(blocks)
        node = next(iter(index.profile_blocks))
        assert node not in index.neighbourhood(node)


class TestParallelSequentialEquivalence:
    @pytest.mark.parametrize("weighting", ["cbs", "js", "arcs", "ecbs", "ejs"])
    @pytest.mark.parametrize("pruning", ["wep", "cep", "wnp", "rwnp", "cnp"])
    def test_clean_clean(self, abt_buy_small, weighting, pruning):
        blocks = _prepared_blocks(abt_buy_small)
        sequential = MetaBlocker(weighting, pruning).run(blocks)
        parallel = ParallelMetaBlocker(EngineContext(4), weighting, pruning).run(blocks)
        assert parallel.candidate_pairs == sequential.candidate_pairs

    @pytest.mark.parametrize("pruning", ["wep", "wnp", "rwnp"])
    def test_dirty(self, dirty_persons_small, pruning):
        blocks = _prepared_blocks(dirty_persons_small)
        sequential = MetaBlocker("cbs", pruning).run(blocks)
        parallel = ParallelMetaBlocker(EngineContext(4), "cbs", pruning).run(blocks)
        assert parallel.candidate_pairs == sequential.candidate_pairs

    def test_entropy_equivalence(self, abt_buy_small):
        from repro.metablocking.backends import numpy_available

        # Loose-schema blocking runs MinHash LSH, which needs numpy whatever
        # kernel backend meta-blocking itself uses.
        if not numpy_available():
            pytest.skip("loose-schema LSH requires numpy")
        from repro.blocking.loose_schema_blocking import LooseSchemaTokenBlocking
        from repro.looseschema.attribute_partitioning import AttributePartitioner
        from repro.looseschema.entropy import EntropyExtractor

        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy_small.profiles)
        entropies = EntropyExtractor().extract(abt_buy_small.profiles, partitioning)
        blocks = LooseSchemaTokenBlocking(
            partitioning, cluster_entropies=entropies
        ).block(abt_buy_small.profiles)
        blocks = BlockFiltering().filter(
            BlockPurging().purge(blocks, len(abt_buy_small.profiles))
        )
        sequential = MetaBlocker("cbs", "wnp", use_entropy=True).run(blocks)
        parallel = ParallelMetaBlocker(
            EngineContext(4), "cbs", "wnp", use_entropy=True
        ).run(blocks)
        assert parallel.candidate_pairs == sequential.candidate_pairs

    def test_partition_count_does_not_change_result(self, abt_buy_small):
        blocks = _prepared_blocks(abt_buy_small)
        results = [
            ParallelMetaBlocker(EngineContext(p), "cbs", "wnp").run(blocks).candidate_pairs
            for p in (1, 2, 8)
        ]
        assert results[0] == results[1] == results[2]

    def test_empty_blocks(self):
        from repro.blocking.block import BlockCollection

        result = ParallelMetaBlocker(EngineContext(2)).run(BlockCollection(clean_clean=True))
        assert result.num_candidates == 0

    def test_uses_broadcast_and_shuffles(self, abt_buy_small):
        blocks = _prepared_blocks(abt_buy_small)
        context = EngineContext(4)
        ParallelMetaBlocker(context, "cbs", "wnp").run(blocks)
        summary = context.metrics_summary()
        assert summary["broadcasts"] >= 1
        assert summary["shuffle_records"] > 0
