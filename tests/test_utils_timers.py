"""Tests of the timing helpers."""

from repro.utils.timers import StageTimings, Timer


class TestTimer:
    def test_elapsed_non_negative(self):
        with Timer() as timer:
            sum(range(100))
        assert timer.elapsed >= 0.0

    def test_elapsed_zero_before_use(self):
        assert Timer().elapsed == 0.0


class TestStageTimings:
    def test_record_accumulates(self):
        timings = StageTimings()
        timings.record("blocking", 1.0)
        timings.record("blocking", 2.0)
        assert timings.durations["blocking"] == 3.0

    def test_total(self):
        timings = StageTimings()
        timings.record("a", 1.0)
        timings.record("b", 2.0)
        assert timings.total == 3.0

    def test_time_context_manager(self):
        timings = StageTimings()
        with timings.time("stage"):
            sum(range(1000))
        assert timings.durations["stage"] >= 0.0

    def test_as_dict_copy(self):
        timings = StageTimings()
        timings.record("a", 1.0)
        copy = timings.as_dict()
        copy["a"] = 99.0
        assert timings.durations["a"] == 1.0

    def test_empty_total(self):
        assert StageTimings().total == 0.0
