"""Tests of block purging and block filtering."""

import pytest

from repro.blocking.block import Block, BlockCollection
from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.blocking.token_blocking import TokenBlocking
from repro.exceptions import BlockingError


def _block(key: str, source0: set[int], source1: set[int]) -> Block:
    return Block(key=key, profiles_source0=source0, profiles_source1=source1, clean_clean=True)


class TestBlockPurging:
    def test_oversized_block_removed(self):
        # 10 profiles total; the "stopword" block contains 8 of them (> half).
        blocks = BlockCollection(
            [
                _block("the", set(range(4)), set(range(5, 9))),
                _block("sony", {0}, {5}),
            ],
            clean_clean=True,
        )
        purged = BlockPurging(max_profile_fraction=0.5).purge(blocks, num_profiles=10)
        assert [b.key for b in purged] == ["sony"]

    def test_fraction_one_keeps_everything(self):
        blocks = BlockCollection([_block("a", {0, 1}, {2, 3})])
        purged = BlockPurging(max_profile_fraction=1.0).purge(blocks, num_profiles=4)
        assert len(purged) == 1

    def test_invalid_fraction(self):
        with pytest.raises(BlockingError):
            BlockPurging(max_profile_fraction=0.0)

    def test_empty_collection(self):
        purged = BlockPurging().purge(BlockCollection(clean_clean=True))
        assert len(purged) == 0

    def test_purging_never_loses_recall_on_synthetic(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        purged = BlockPurging().purge(blocks, len(abt_buy_small.profiles))
        before = blocks.distinct_comparisons() & abt_buy_small.ground_truth.pairs()
        after = purged.distinct_comparisons() & abt_buy_small.ground_truth.pairs()
        assert len(after) >= 0.98 * len(before)

    def test_comparison_based_purging_smaller_or_equal(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        plain = BlockPurging().purge(blocks, len(abt_buy_small.profiles))
        aggressive = BlockPurging(smoothing=1.0).purge(blocks, len(abt_buy_small.profiles))
        assert aggressive.total_comparisons() <= plain.total_comparisons()

    def test_invalid_smoothing(self):
        with pytest.raises(BlockingError):
            BlockPurging(smoothing=0.0)


class TestBlockFiltering:
    def test_profile_kept_in_smallest_blocks(self):
        blocks = BlockCollection(
            [
                _block("big", {0, 1, 2}, {5, 6, 7}),
                _block("small", {0}, {5}),
            ],
            clean_clean=True,
        )
        filtered = BlockFiltering(ratio=0.5).filter(blocks)
        keys = {b.key for b in filtered}
        # Profile 0 appears in 2 blocks, keeps ceil(0.5*2)=1 → the small one.
        assert "small" in keys
        small = next(b for b in filtered if b.key == "small")
        assert 0 in small.profiles_source0

    def test_ratio_one_is_noop_on_memberships(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        filtered = BlockFiltering(ratio=1.0).filter(blocks)
        assert filtered.distinct_comparisons() == blocks.distinct_comparisons()

    def test_invalid_ratio(self):
        with pytest.raises(BlockingError):
            BlockFiltering(ratio=0.0)

    def test_reduces_comparisons(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        filtered = BlockFiltering(ratio=0.5).filter(blocks)
        assert filtered.total_comparisons() < blocks.total_comparisons()

    def test_preserves_most_recall(self, abt_buy_small):
        # Paper: filtering increases precision "without affecting recall".
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        filtered = BlockFiltering(ratio=0.8).filter(blocks)
        truth = abt_buy_small.ground_truth.pairs()
        before = len(blocks.distinct_comparisons() & truth)
        after = len(filtered.distinct_comparisons() & truth)
        assert after >= 0.9 * before

    def test_no_invalid_blocks_in_output(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        filtered = BlockFiltering(ratio=0.5).filter(blocks)
        assert all(block.is_valid() for block in filtered)

    def test_clean_clean_blocks_stay_clean(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        filtered = BlockFiltering(ratio=0.5).filter(blocks)
        separator = abt_buy_small.profiles.separator_id
        for a, b in filtered.distinct_comparisons():
            assert a <= separator < b, "filtering must not create within-source pairs"

    def test_entropy_preserved(self):
        blocks = BlockCollection(
            [Block(key="k", profiles_source0={0}, profiles_source1={1}, entropy=0.4, clean_clean=True)],
            clean_clean=True,
        )
        filtered = BlockFiltering().filter(blocks)
        assert filtered[0].entropy == 0.4
