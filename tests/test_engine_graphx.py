"""Tests of union-find and the Pregel-style connected components."""

import pytest

from repro.engine.graphx import (
    UnionFind,
    components_as_clusters,
    connected_components,
    pregel_connected_components,
)


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind()
        uf.add("a")
        uf.add("b")
        assert uf.find("a") != uf.find("b")

    def test_union(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.find("a") == uf.find("b")

    def test_transitive_union(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.find(1) == uf.find(3)

    def test_components(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.add(3)
        groups = uf.components()
        sizes = sorted(len(members) for members in groups.values())
        assert sizes == [1, 2]

    def test_len_and_contains(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert len(uf) == 2
        assert "a" in uf
        assert "z" not in uf

    def test_idempotent_union(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(1, 2)
        assert len(uf.components()) == 1


class TestConnectedComponents:
    def test_single_chain(self):
        assignment = connected_components([(1, 2), (2, 3)])
        assert assignment[1] == assignment[2] == assignment[3] == 1

    def test_two_components(self):
        assignment = connected_components([(1, 2), (3, 4)])
        assert assignment[1] == assignment[2]
        assert assignment[3] == assignment[4]
        assert assignment[1] != assignment[3]

    def test_isolated_nodes(self):
        assignment = connected_components([], nodes=[7, 8])
        assert assignment == {7: 7, 8: 8}

    def test_component_label_is_minimum(self):
        assignment = connected_components([(5, 3), (3, 9)])
        assert assignment[5] == 3
        assert assignment[9] == 3

    def test_empty(self):
        assert connected_components([]) == {}


class TestPregelConnectedComponents:
    def test_matches_union_find(self, engine):
        edges = [(1, 2), (2, 3), (5, 6), (8, 9), (9, 10), (10, 11)]
        nodes = list(range(1, 13))
        reference = connected_components(edges, nodes)
        distributed = pregel_connected_components(engine, edges, nodes)
        assert distributed == reference

    def test_single_edge(self, engine):
        assert pregel_connected_components(engine, [(4, 2)]) == {2: 2, 4: 2}

    def test_empty_graph(self, engine):
        assert pregel_connected_components(engine, [], []) == {}

    def test_isolated_nodes_preserved(self, engine):
        result = pregel_connected_components(engine, [(1, 2)], nodes=[1, 2, 3])
        assert result[3] == 3

    def test_long_chain_converges(self, engine):
        edges = [(i, i + 1) for i in range(30)]
        result = pregel_connected_components(engine, edges)
        assert set(result.values()) == {0}

    @pytest.mark.parametrize("num_components", [1, 3, 5])
    def test_random_components(self, engine, num_components):
        edges = []
        nodes = []
        for c in range(num_components):
            base = c * 10
            nodes.extend(range(base, base + 5))
            edges.extend((base + i, base + i + 1) for i in range(4))
        result = pregel_connected_components(engine, edges, nodes)
        assert len(set(result.values())) == num_components


class TestComponentsAsClusters:
    def test_clusters(self):
        clusters = components_as_clusters({1: 1, 2: 1, 3: 3})
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [1, 2]

    def test_empty(self):
        assert components_as_clusters({}) == []
