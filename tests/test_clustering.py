"""Tests of the entity clustering algorithms."""

import pytest

from repro.clustering.base import EntityCluster, clusters_to_pairs
from repro.clustering.center_clustering import CenterClustering
from repro.clustering.connected_components import ConnectedComponentsClustering
from repro.clustering.merge_center import MergeCenterClustering
from repro.clustering.registry import make_clustering_algorithm
from repro.clustering.unique_mapping import UniqueMappingClustering
from repro.exceptions import ClusteringError
from repro.matching.similarity_graph import SimilarityEdge, SimilarityGraph


def _graph(edges):
    return SimilarityGraph(SimilarityEdge(a, b, score) for a, b, score in edges)


class TestEntityCluster:
    def test_pairs(self):
        cluster = EntityCluster(cluster_id=0, members={3, 1, 2})
        assert cluster.pairs() == {(1, 2), (1, 3), (2, 3)}

    def test_contains_and_size(self):
        cluster = EntityCluster(cluster_id=0, members={1, 2})
        assert 1 in cluster
        assert cluster.size == 2

    def test_clusters_to_pairs(self):
        clusters = [EntityCluster(0, {1, 2}), EntityCluster(1, {3, 4, 5})]
        assert clusters_to_pairs(clusters) == {(1, 2), (3, 4), (3, 5), (4, 5)}


class TestConnectedComponents:
    def test_transitivity(self):
        # p1-p2 and p2-p3 matched → all three in one cluster (paper's assumption).
        clusters = ConnectedComponentsClustering().cluster(
            _graph([(1, 2, 0.9), (2, 3, 0.8)])
        )
        assert len(clusters) == 1
        assert clusters[0].members == {1, 2, 3}

    def test_separate_components(self):
        clusters = ConnectedComponentsClustering().cluster(
            _graph([(1, 2, 0.9), (5, 6, 0.7)])
        )
        assert sorted(len(c.members) for c in clusters) == [2, 2]

    def test_empty_graph(self):
        assert ConnectedComponentsClustering().cluster(SimilarityGraph()) == []

    def test_distributed_matches_local(self, engine):
        graph = _graph([(1, 2, 0.9), (2, 3, 0.8), (10, 11, 0.5), (12, 13, 0.4), (13, 14, 0.9)])
        local = ConnectedComponentsClustering().cluster(graph)
        distributed = ConnectedComponentsClustering(engine=engine).cluster(graph)
        assert sorted(map(frozenset, (c.members for c in local))) == sorted(
            map(frozenset, (c.members for c in distributed))
        )


class TestCenterClustering:
    def test_no_long_chains(self):
        # A chain 1-2, 2-3, 3-4: center clustering splits it, connected
        # components would merge it entirely.
        clusters = CenterClustering().cluster(
            _graph([(1, 2, 0.9), (2, 3, 0.5), (3, 4, 0.8)])
        )
        largest = max(len(c.members) for c in clusters)
        assert largest < 4

    def test_strongest_edge_respected(self):
        clusters = CenterClustering().cluster(_graph([(1, 2, 0.9)]))
        assert any(c.members == {1, 2} for c in clusters)

    def test_every_node_assigned(self):
        graph = _graph([(1, 2, 0.9), (2, 3, 0.4), (4, 5, 0.7)])
        clusters = CenterClustering().cluster(graph)
        assigned = set().union(*(c.members for c in clusters))
        assert assigned == graph.nodes()


class TestMergeCenter:
    def test_merges_connected_centers(self):
        clusters = MergeCenterClustering().cluster(
            _graph([(1, 2, 0.9), (3, 4, 0.8), (2, 3, 0.7)])
        )
        sizes = sorted(len(c.members) for c in clusters)
        assert sizes[-1] >= 3

    def test_every_node_assigned(self):
        graph = _graph([(1, 2, 0.9), (5, 6, 0.3)])
        clusters = MergeCenterClustering().cluster(graph)
        assert set().union(*(c.members for c in clusters)) == graph.nodes()


class TestUniqueMapping:
    def test_one_to_one(self):
        # Node 1 is similar to both 10 and 11; only the strongest pairing is kept.
        clusters = UniqueMappingClustering().cluster(
            _graph([(1, 10, 0.9), (1, 11, 0.8), (2, 11, 0.7)])
        )
        pair_clusters = [c for c in clusters if c.size == 2]
        assert {frozenset(c.members) for c in pair_clusters} == {
            frozenset({1, 10}),
            frozenset({2, 11}),
        }

    def test_max_cluster_size_two(self):
        clusters = UniqueMappingClustering().cluster(
            _graph([(1, 2, 0.9), (2, 3, 0.8), (3, 4, 0.7)])
        )
        assert max(c.size for c in clusters) == 2

    def test_singletons_kept(self):
        clusters = UniqueMappingClustering().cluster(
            _graph([(1, 2, 0.9), (2, 3, 0.8)])
        )
        assert sum(c.size for c in clusters) == 3


class TestRegistry:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("connected_components", ConnectedComponentsClustering),
            ("center", CenterClustering),
            ("merge_center", MergeCenterClustering),
            ("unique_mapping", UniqueMappingClustering),
        ],
    )
    def test_known_algorithms(self, name, cls):
        assert isinstance(make_clustering_algorithm(name), cls)

    def test_instance_passthrough(self):
        algorithm = CenterClustering()
        assert make_clustering_algorithm(algorithm) is algorithm

    def test_unknown(self):
        with pytest.raises(ClusteringError):
            make_clustering_algorithm("nope")
