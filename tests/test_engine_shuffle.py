"""Tests of the parallel shuffle subsystem (map tasks, reduce tasks, driver)."""

import operator

import pytest

from repro.engine.context import EngineContext
from repro.engine.executors import MultiprocessingExecutor, SerialExecutor
from repro.engine.partitioner import HashPartitioner
from repro.engine.shuffle import (
    CoGroupReduceTask,
    ConcatReduceTask,
    GroupByKeyTask,
    MapSideCombiner,
    ReduceByKeyTask,
    ShuffleMapTask,
    ZeroSeededCombiner,
    chunk_bytes,
    execute_shuffle,
)


def _run_map(task, partition):
    """Run one map task over one partition; return its bucket list."""
    (buckets,) = list(task(0, iter(partition)))
    return buckets


class TestShuffleMapTask:
    def test_all_records_kept_and_bucketed_by_key(self):
        task = ShuffleMapTask(HashPartitioner(3))
        buckets = _run_map(task, [("a", 1), ("b", 2), ("a", 3)])
        assert len(buckets) == 3
        flat = [record for bucket in buckets for record in bucket]
        assert sorted(flat) == [("a", 1), ("a", 3), ("b", 2)]

    def test_same_key_same_bucket(self):
        buckets = _run_map(
            ShuffleMapTask(HashPartitioner(4)), [("k", i) for i in range(10)]
        )
        assert len([b for b in buckets if b]) == 1

    def test_empty_partition(self):
        buckets = _run_map(ShuffleMapTask(HashPartitioner(2)), [])
        assert buckets == [[], []]

    def test_map_side_combine_preaggregates(self):
        task = ShuffleMapTask(
            HashPartitioner(2), MapSideCombiner(operator.add)
        )
        buckets = _run_map(task, [("a", 1), ("a", 2), ("b", 5)])
        combined = dict(record for bucket in buckets for record in bucket)
        assert combined == {"a": 3, "b": 5}

    def test_combine_preserves_first_touch_order(self):
        task = ShuffleMapTask(HashPartitioner(1), MapSideCombiner(operator.add))
        buckets = _run_map(task, [("b", 1), ("a", 1), ("b", 1), ("c", 1)])
        assert [key for key, _v in buckets[0]] == ["b", "a", "c"]

    def test_zero_seeded_combiner(self):
        task = ShuffleMapTask(
            HashPartitioner(1),
            MapSideCombiner(
                lambda acc, v: acc + [v], create=ZeroSeededCombiner([], lambda z, v: z + [v])
            ),
        )
        buckets = _run_map(task, [("a", 1), ("a", 2)])
        assert buckets[0] == [("a", [1, 2])]


class TestReduceTasks:
    def test_concat_keeps_chunk_order(self):
        task = ConcatReduceTask()
        merged = list(task(0, iter([[("a", 1)], [("b", 2), ("a", 3)]])))
        assert merged == [("a", 1), ("b", 2), ("a", 3)]

    def test_reduce_by_key_merges_across_chunks(self):
        task = ReduceByKeyTask(operator.add)
        merged = dict(task(0, iter([[("a", 1), ("b", 3)], [("a", 2)]])))
        assert merged == {"a": 3, "b": 3}

    def test_reduce_single_value_untouched(self):
        merged = dict(ReduceByKeyTask(operator.add)(0, iter([[("a", 7)]])))
        assert merged == {"a": 7}

    def test_group_by_key_encounter_order(self):
        task = GroupByKeyTask()
        merged = dict(task(0, iter([[("a", 1), ("b", 2)], [("a", 3)]])))
        assert merged == {"a": [1, 3], "b": [2]}

    def test_cogroup_tags_sides(self):
        task = CoGroupReduceTask()
        merged = dict(
            task(0, iter([(0, [("k", 1), ("j", 9)]), (1, [("k", 2)])]))
        )
        assert merged == {"k": ([1], [2]), "j": ([9], [])}


class TestExecuteShuffle:
    def _context(self, executor=None):
        return EngineContext(2, executor=executor or SerialExecutor())

    def test_end_to_end_reduce(self):
        context = self._context()
        partitions = execute_shuffle(
            context,
            HashPartitioner(3),
            [([[("a", 1), ("b", 2)], [("a", 3)]], MapSideCombiner(operator.add))],
            ReduceByKeyTask(operator.add),
            "test.shuffle",
        )
        assert len(partitions) == 3
        assert dict(r for p in partitions for r in p) == {"a": 4, "b": 2}

    def test_records_map_and_reduce_stages_with_volume(self):
        context = self._context()
        execute_shuffle(
            context,
            HashPartitioner(2),
            [([[("a", 1), ("b", 2), ("a", 3)]], None)],
            GroupByKeyTask(),
            "test.shuffle",
        )
        table = {row["description"]: row for row in context.scheduler.stage_table()}
        map_row = table["test.shuffle.map"]
        reduce_row = table["test.shuffle.reduce"]
        assert map_row["shuffle_write"] == 3
        assert map_row["shuffle_write_bytes"] > 0
        assert reduce_row["shuffle_read"] == 3
        assert reduce_row["shuffle_read_bytes"] == map_row["shuffle_write_bytes"]

    def test_empty_input_still_produces_all_partitions(self):
        context = self._context()
        partitions = execute_shuffle(
            context, HashPartitioner(4), [([], None)], ConcatReduceTask(), "t"
        )
        assert partitions == [[], [], [], []]

    def test_process_executor_matches_serial_and_records_worker_pids(self):
        data = [[(i % 7, i) for i in range(40)], [(i % 5, i * 2) for i in range(30)]]
        serial_context = self._context()
        serial = execute_shuffle(
            serial_context,
            HashPartitioner(3),
            [(data, MapSideCombiner(operator.add))],
            ReduceByKeyTask(operator.add),
            "t.shuffle",
        )
        executor = MultiprocessingExecutor(max_workers=2, on_unpicklable="raise")
        try:
            process_context = self._context(executor)
            process = execute_shuffle(
                process_context,
                HashPartitioner(3),
                [(data, MapSideCombiner(operator.add))],
                ReduceByKeyTask(operator.add),
                "t.shuffle",
            )
        finally:
            executor.close()
        assert process == serial
        shuffle_stages = [
            s for s in process_context.scheduler.stages if ".shuffle." in s.description
        ]
        assert len(shuffle_stages) == 2
        for stage in shuffle_stages:
            assert stage.executor.startswith("process")
            assert all(task.worker.startswith("pid-") for task in stage.tasks)
        # The wire volume is executor-independent.
        serial_rows = [
            (r["description"], r["shuffle_write"], r["shuffle_read"])
            for r in serial_context.scheduler.stage_table()
        ]
        process_rows = [
            (r["description"], r["shuffle_write"], r["shuffle_read"])
            for r in process_context.scheduler.stage_table()
        ]
        assert process_rows == serial_rows


class TestChunkBytes:
    def test_measures_pickled_wire_size(self):
        small = chunk_bytes([(1, 2)])
        large = chunk_bytes([(i, i) for i in range(100)])
        assert 0 < small < large

    def test_compact_records_are_smaller_on_the_wire(self):
        tuples = chunk_bytes([((i, i + 1), (0.5, 1)) for i in range(50)])
        edge_ids = chunk_bytes([(i, 1) for i in range(50)])
        assert edge_ids < tuples * 0.6
