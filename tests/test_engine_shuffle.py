"""Tests of the shuffle helpers."""

from repro.engine.partitioner import HashPartitioner
from repro.engine.shuffle import (
    group_by_key_partition,
    map_side_combine,
    reduce_by_key_partition,
    shuffle_partitions,
)


class TestShufflePartitions:
    def test_all_records_kept(self):
        parents = [[("a", 1), ("b", 2)], [("a", 3)]]
        buckets, shuffled = shuffle_partitions(parents, HashPartitioner(3))
        assert shuffled == 3
        assert sorted(r for bucket in buckets for r in bucket) == [("a", 1), ("a", 3), ("b", 2)]

    def test_same_key_same_bucket(self):
        parents = [[("k", i) for i in range(10)]]
        buckets, _ = shuffle_partitions(parents, HashPartitioner(4))
        non_empty = [b for b in buckets if b]
        assert len(non_empty) == 1

    def test_empty_input(self):
        buckets, shuffled = shuffle_partitions([], HashPartitioner(2))
        assert shuffled == 0
        assert buckets == [[], []]


class TestCombiners:
    def test_map_side_combine(self):
        partition = [("a", 1), ("a", 2), ("b", 5)]
        combined = dict(map_side_combine(partition, lambda v: v, lambda a, b: a + b))
        assert combined == {"a": 3, "b": 5}

    def test_group_by_key_partition(self):
        partition = [("a", 1), ("b", 2), ("a", 3)]
        grouped = dict(group_by_key_partition(partition))
        assert grouped == {"a": [1, 3], "b": [2]}

    def test_reduce_by_key_partition(self):
        partition = [("a", 1), ("a", 2), ("b", 3)]
        reduced = dict(reduce_by_key_partition(partition, lambda a, b: a + b))
        assert reduced == {"a": 3, "b": 3}

    def test_reduce_single_value_untouched(self):
        reduced = dict(reduce_by_key_partition([("a", 7)], lambda a, b: a + b))
        assert reduced == {"a": 7}
