"""End-to-end tests of the ER service: collections, endpoints, snapshots.

The HTTP round-trips run a real :class:`~repro.service.app.ServiceApp` on an
ephemeral port inside one asyncio loop per test, with blocking urllib calls
pushed to the default executor.  The library-level behaviour (ingest
parsing, budgeted match prefixes, snapshot/restore) is additionally tested
directly on :class:`~repro.service.collection.ServiceCollection`, which is
what the acceptance contract is stated against: ``GET .../matches`` under
budget ``B`` must return exactly the progressive ``stream()`` prefix of
length ≤ ``B`` over the union collection.
"""

from __future__ import annotations

import asyncio
import json
import urllib.error
import urllib.request

import pytest

from repro.blocking.token_blocking import TokenBlocking
from repro.data.dataset import ProfileCollection
from repro.exceptions import ConfigurationError, DataError
from repro.metablocking.progressive import ProgressiveSortedComparisons
from repro.service import (
    CollectionConfig,
    CollectionStore,
    ServiceApp,
    ServiceCollection,
)

from tests.test_metablocking_incremental import _random_profiles


def _ingest_payload(profiles):
    return {
        "profiles": [
            {
                "id": profile.profile_id,
                "source": profile.source_id,
                "attributes": {
                    "name": [kv.value for kv in profile.attributes if kv.attribute == "name"],
                    "unique": [kv.value for kv in profile.attributes if kv.attribute == "unique"],
                },
            }
            for profile in profiles
        ]
    }


# --------------------------------------------------------------- collection
class TestServiceCollection:
    def test_matches_is_the_progressive_stream_prefix(self):
        """The acceptance contract, checked at every budget."""
        profiles = _random_profiles(60, clean_clean=False, seed=31)
        collection = ServiceCollection(CollectionConfig(name="c"))
        try:
            collection.ingest(_ingest_payload(profiles[:40]))
            collection.ingest(_ingest_payload(profiles[40:]))
            blocks = TokenBlocking().block(ProfileCollection(profiles))
            full_stream = list(ProgressiveSortedComparisons("cbs").stream(blocks))
            for budget in (0, 1, 5, len(full_stream), len(full_stream) + 50):
                result = collection.matches(0, budget)
                expected = full_stream[:budget]
                assert result["candidates"] == [list(p) for p in expected]
                assert len(result["candidates"]) <= budget
                assert result["matches"] == [
                    list(p) for p in expected if 0 in p
                ]
        finally:
            collection.close()

    def test_repeated_queries_reuse_the_cached_prefix(self):
        profiles = _random_profiles(40, clean_clean=False, seed=13)
        collection = ServiceCollection(CollectionConfig(name="c"))
        try:
            collection.ingest(_ingest_payload(profiles))
            big = collection.matches(0, 50)["candidates"]
            assert collection.stats()["ranked_prefix"] >= len(big[:50])
            small = collection.matches(1, 10)["candidates"]
            assert small == big[:10]
        finally:
            collection.close()

    def test_ingest_assigns_missing_ids_sequentially(self):
        collection = ServiceCollection(CollectionConfig(name="c"))
        try:
            summary = collection.ingest(
                {"profiles": [
                    {"attributes": {"name": "alpha"}},
                    {"id": 10, "attributes": {"name": "alpha"}},
                    {"attributes": {"name": "alpha"}},
                ]}
            )
            assert summary["appended"] == 3
            assert collection.index.profile_ids() == [0, 10, 11]
        finally:
            collection.close()

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"profiles": "nope"},
            {"profiles": [17]},
            {"profiles": [{"id": "x"}]},
            {"profiles": [{"source": 2}]},
            {"profiles": [{"attributes": ["not", "a", "dict"]}]},
            {"profiles": [{"attributes": {"name": [{"nested": True}]}}]},
        ],
    )
    def test_ingest_rejects_malformed_payloads(self, payload):
        collection = ServiceCollection(CollectionConfig(name="c"))
        try:
            with pytest.raises(DataError):
                collection.ingest(payload)
        finally:
            collection.close()

    def test_candidates_refreshes_the_delta_metablocker(self):
        profiles = _random_profiles(50, clean_clean=False, seed=41)
        collection = ServiceCollection(CollectionConfig(name="c"))
        try:
            collection.ingest(_ingest_payload(profiles[:30]))
            first = collection.candidates(0)
            assert first["refresh_mode"] == "full"
            collection.ingest(_ingest_payload(profiles[30:]))
            second = collection.candidates(0)
            assert second["refresh_mode"] in ("local", "full")
            assert collection.delta.local_refreshes + collection.delta.full_refreshes == 2
            for entry in second["candidates"]:
                assert 0 in entry["pair"]
        finally:
            collection.close()

    def test_collection_config_validation(self):
        with pytest.raises(ConfigurationError):
            CollectionConfig(name="bad name!")
        with pytest.raises(ConfigurationError):
            CollectionConfig(name="ok", progressive="bogus")
        with pytest.raises(ConfigurationError):
            CollectionConfig.from_dict({"name": "ok", "unknown_key": 1})
        config = CollectionConfig.from_dict({"name": "ok", "weighting": "js"})
        assert CollectionConfig.from_dict(config.as_dict()) == config


# -------------------------------------------------------------------- store
class TestCollectionStore:
    def test_snapshot_and_restore_round_trip(self, tmp_path):
        profiles = _random_profiles(45, clean_clean=False, seed=29)
        store = CollectionStore(snapshot_dir=str(tmp_path))
        collection = store.get_or_create("demo")
        collection.ingest(_ingest_payload(profiles))
        reference = collection.matches(0, 25)
        collection.candidates(0)
        summary = store.snapshot("demo")
        assert summary["profiles"] == len(profiles)
        store.close_all()

        reloaded = CollectionStore(snapshot_dir=str(tmp_path))
        assert reloaded.load_snapshots() == ["demo"]
        restored = reloaded.get("demo")
        assert restored.index.profile_ids() == sorted(
            p.profile_id for p in profiles
        )
        assert restored.matches(0, 25) == reference
        assert restored.delta.retained == collection.delta.retained
        reloaded.close_all()

    def test_snapshot_without_directory_is_a_configuration_error(self):
        store = CollectionStore()
        store.get_or_create("demo")
        with pytest.raises(ConfigurationError, match="snapshot directory"):
            store.snapshot("demo")
        with pytest.raises(ConfigurationError, match="unknown collection"):
            CollectionStore(snapshot_dir="/tmp").snapshot("missing")
        store.close_all()

    def test_defaults_shape_new_collections(self):
        store = CollectionStore(defaults={"weighting": "js", "pruning": "cnp"})
        collection = store.get_or_create("demo")
        assert collection.config.weighting == "js"
        assert collection.config.pruning == "cnp"
        assert store.get_or_create("demo") is collection
        with pytest.raises(ConfigurationError, match="already exists"):
            store.add(ServiceCollection(CollectionConfig(name="demo")))
        store.close_all()


# ----------------------------------------------------------------- HTTP app
def _request(port, method, path, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _run_against_app(scenario, app=None):
    """Start ``app`` on an ephemeral port and run blocking ``scenario(call)``."""
    app = app or ServiceApp()

    async def main():
        await app.start()
        loop = asyncio.get_running_loop()

        def call(method, path, payload=None):
            return _request(app.port, method, path, payload)

        try:
            await loop.run_in_executor(None, scenario, call)
        finally:
            await app.stop()

    asyncio.run(main())


class TestServiceApp:
    def test_health_ingest_match_candidates_metrics(self):
        profiles = _random_profiles(30, clean_clean=False, seed=3)

        def scenario(call):
            status, health = call("GET", "/healthz")
            assert status == 200 and health["status"] == "ok"

            status, ingested = call(
                "POST", "/collections/demo/profiles", _ingest_payload(profiles)
            )
            assert status == 201
            assert ingested["appended"] == len(profiles)

            status, matches = call("GET", "/collections/demo/matches/0?budget=7")
            assert status == 200
            assert matches["budget"] == 7
            assert len(matches["candidates"]) <= 7
            for pair in matches["matches"]:
                assert 0 in pair

            status, candidates = call("GET", "/collections/demo/candidates/0")
            assert status == 200
            assert candidates["refresh_mode"] == "full"

            status, listing = call("GET", "/collections")
            assert status == 200
            assert set(listing["collections"]) == {"demo"}

            status, metrics = call("GET", "/metrics")
            assert status == 200
            assert metrics["requests"] >= 5
            assert metrics["errors"] == 0
            assert metrics["collections"]["demo"]["profiles"] == len(profiles)
            assert "GET /healthz" in metrics["endpoints"]
            assert metrics["endpoints"]["GET /healthz"]["count"] >= 1

        _run_against_app(scenario)

    def test_error_statuses(self):
        def scenario(call):
            assert call("GET", "/collections/none/matches/0")[0] == 404
            assert call("GET", "/nope")[0] == 404
            assert call("DELETE", "/healthz")[0] == 405
            status, error = call("POST", "/collections/demo/profiles", {"bad": 1})
            assert status == 400 and "profiles" in error["error"]
            call(
                "POST",
                "/collections/demo/profiles",
                {"profiles": [{"attributes": {"name": "alpha"}}]},
            )
            assert call("GET", "/collections/demo/matches/99")[0] == 404
            assert call("GET", "/collections/demo/matches/not-an-int")[0] == 400
            status, _ = call("GET", "/collections/demo/matches/0?budget=-1")
            assert status == 400
            # Ingesting a duplicate id is a DataError → 400, not a 500.
            status, error = call(
                "POST",
                "/collections/demo/profiles",
                {"profiles": [{"id": 0, "attributes": {"name": "alpha"}}]},
            )
            assert status == 400 and "strictly increasing" in error["error"]

        _run_against_app(scenario)

    def test_snapshot_endpoint_and_shutdown_sweep(self, tmp_path):
        from repro.engine import tmpfiles

        store = CollectionStore(snapshot_dir=str(tmp_path))
        app = ServiceApp(store)

        def scenario(call):
            call(
                "POST",
                "/collections/demo/profiles",
                {"profiles": [{"attributes": {"name": "alpha bravo"}}]},
            )
            status, summary = call("POST", "/collections/demo/snapshot")
            assert status == 201
            assert summary["collection"] == "demo"
            assert (tmp_path / "demo" / "pipeline_state.pkl").is_file()
            assert call("POST", "/collections/missing/snapshot")[0] == 400

        _run_against_app(scenario, app)
        # stop() ran the shutdown sweep: no owned tmp artifacts remain.
        assert tmpfiles.live_artifacts() == []
        app.shutdown()  # idempotent
