"""End-to-end tests of the ER service: collections, endpoints, snapshots.

The HTTP round-trips run a real :class:`~repro.service.app.ServiceApp` on an
ephemeral port inside one asyncio loop per test, with blocking urllib calls
pushed to the default executor.  The library-level behaviour (ingest
parsing, budgeted match prefixes, snapshot/restore) is additionally tested
directly on :class:`~repro.service.collection.ServiceCollection`, which is
what the acceptance contract is stated against: ``GET .../matches`` under
budget ``B`` must return exactly the progressive ``stream()`` prefix of
length ≤ ``B`` over the union collection.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.blocking.token_blocking import TokenBlocking
from repro.data.dataset import ProfileCollection
from repro.exceptions import ConfigurationError, DataError
from repro.metablocking.progressive import ProgressiveSortedComparisons
from repro.service import (
    CollectionConfig,
    CollectionStore,
    ServiceApp,
    ServiceCollection,
)

from tests.test_metablocking_incremental import _random_profiles


def _ingest_payload(profiles):
    return {
        "profiles": [
            {
                "id": profile.profile_id,
                "source": profile.source_id,
                "attributes": {
                    "name": [kv.value for kv in profile.attributes if kv.attribute == "name"],
                    "unique": [kv.value for kv in profile.attributes if kv.attribute == "unique"],
                },
            }
            for profile in profiles
        ]
    }


# --------------------------------------------------------------- collection
class TestServiceCollection:
    def test_matches_is_the_progressive_stream_prefix(self):
        """The acceptance contract, checked at every budget."""
        profiles = _random_profiles(60, clean_clean=False, seed=31)
        collection = ServiceCollection(CollectionConfig(name="c"))
        try:
            collection.ingest(_ingest_payload(profiles[:40]))
            collection.ingest(_ingest_payload(profiles[40:]))
            blocks = TokenBlocking().block(ProfileCollection(profiles))
            full_stream = list(ProgressiveSortedComparisons("cbs").stream(blocks))
            for budget in (0, 1, 5, len(full_stream), len(full_stream) + 50):
                result = collection.matches(0, budget)
                expected = full_stream[:budget]
                assert result["candidates"] == [list(p) for p in expected]
                assert len(result["candidates"]) <= budget
                assert result["matches"] == [
                    list(p) for p in expected if 0 in p
                ]
        finally:
            collection.close()

    def test_repeated_queries_reuse_the_cached_prefix(self):
        profiles = _random_profiles(40, clean_clean=False, seed=13)
        collection = ServiceCollection(CollectionConfig(name="c"))
        try:
            collection.ingest(_ingest_payload(profiles))
            big = collection.matches(0, 50)["candidates"]
            assert collection.stats()["ranked_prefix"] >= len(big[:50])
            small = collection.matches(1, 10)["candidates"]
            assert small == big[:10]
        finally:
            collection.close()

    def test_ingest_assigns_missing_ids_sequentially(self):
        collection = ServiceCollection(CollectionConfig(name="c"))
        try:
            summary = collection.ingest(
                {"profiles": [
                    {"attributes": {"name": "alpha"}},
                    {"id": 10, "attributes": {"name": "alpha"}},
                    {"attributes": {"name": "alpha"}},
                ]}
            )
            assert summary["appended"] == 3
            assert collection.index.profile_ids() == [0, 10, 11]
        finally:
            collection.close()

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"profiles": "nope"},
            {"profiles": [17]},
            {"profiles": [{"id": "x"}]},
            {"profiles": [{"source": 2}]},
            {"profiles": [{"attributes": ["not", "a", "dict"]}]},
            {"profiles": [{"attributes": {"name": [{"nested": True}]}}]},
        ],
    )
    def test_ingest_rejects_malformed_payloads(self, payload):
        collection = ServiceCollection(CollectionConfig(name="c"))
        try:
            with pytest.raises(DataError):
                collection.ingest(payload)
        finally:
            collection.close()

    def test_candidates_refreshes_the_delta_metablocker(self):
        profiles = _random_profiles(50, clean_clean=False, seed=41)
        collection = ServiceCollection(CollectionConfig(name="c"))
        try:
            collection.ingest(_ingest_payload(profiles[:30]))
            first = collection.candidates(0)
            assert first["refresh_mode"] == "full"
            collection.ingest(_ingest_payload(profiles[30:]))
            second = collection.candidates(0)
            assert second["refresh_mode"] in ("local", "full")
            assert collection.delta.local_refreshes + collection.delta.full_refreshes == 2
            for entry in second["candidates"]:
                assert 0 in entry["pair"]
        finally:
            collection.close()

    def test_collection_config_validation(self):
        with pytest.raises(ConfigurationError):
            CollectionConfig(name="bad name!")
        with pytest.raises(ConfigurationError):
            CollectionConfig(name="ok", progressive="bogus")
        with pytest.raises(ConfigurationError):
            CollectionConfig.from_dict({"name": "ok", "unknown_key": 1})
        config = CollectionConfig.from_dict({"name": "ok", "weighting": "js"})
        assert CollectionConfig.from_dict(config.as_dict()) == config


# -------------------------------------------------------------------- store
class TestCollectionStore:
    def test_snapshot_and_restore_round_trip(self, tmp_path):
        profiles = _random_profiles(45, clean_clean=False, seed=29)
        store = CollectionStore(snapshot_dir=str(tmp_path))
        collection = store.get_or_create("demo")
        collection.ingest(_ingest_payload(profiles))
        reference = collection.matches(0, 25)
        collection.candidates(0)
        summary = store.snapshot("demo")
        assert summary["profiles"] == len(profiles)
        store.close_all()

        reloaded = CollectionStore(snapshot_dir=str(tmp_path))
        assert reloaded.load_snapshots() == ["demo"]
        restored = reloaded.get("demo")
        assert restored.index.profile_ids() == sorted(
            p.profile_id for p in profiles
        )
        assert restored.matches(0, 25) == reference
        assert restored.delta.retained == collection.delta.retained
        reloaded.close_all()

    def test_snapshot_without_directory_is_a_configuration_error(self):
        store = CollectionStore()
        store.get_or_create("demo")
        with pytest.raises(ConfigurationError, match="snapshot directory"):
            store.snapshot("demo")
        with pytest.raises(ConfigurationError, match="unknown collection"):
            CollectionStore(snapshot_dir="/tmp").snapshot("missing")
        store.close_all()

    def test_defaults_shape_new_collections(self):
        store = CollectionStore(defaults={"weighting": "js", "pruning": "cnp"})
        collection = store.get_or_create("demo")
        assert collection.config.weighting == "js"
        assert collection.config.pruning == "cnp"
        assert store.get_or_create("demo") is collection
        with pytest.raises(ConfigurationError, match="already exists"):
            store.add(ServiceCollection(CollectionConfig(name="demo")))
        store.close_all()


# ----------------------------------------------------------------- HTTP app
def _request(port, method, path, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _run_against_app(scenario, app=None):
    """Start ``app`` on an ephemeral port and run blocking ``scenario(call)``."""
    app = app or ServiceApp()

    async def main():
        await app.start()
        loop = asyncio.get_running_loop()

        def call(method, path, payload=None):
            return _request(app.port, method, path, payload)

        try:
            await loop.run_in_executor(None, scenario, call)
        finally:
            await app.stop()

    asyncio.run(main())


class TestServiceApp:
    def test_health_ingest_match_candidates_metrics(self):
        profiles = _random_profiles(30, clean_clean=False, seed=3)

        def scenario(call):
            status, health = call("GET", "/healthz")
            assert status == 200 and health["status"] == "ok"

            status, ingested = call(
                "POST", "/collections/demo/profiles", _ingest_payload(profiles)
            )
            assert status == 201
            assert ingested["appended"] == len(profiles)

            status, matches = call("GET", "/collections/demo/matches/0?budget=7")
            assert status == 200
            assert matches["budget"] == 7
            assert len(matches["candidates"]) <= 7
            for pair in matches["matches"]:
                assert 0 in pair

            status, candidates = call("GET", "/collections/demo/candidates/0")
            assert status == 200
            assert candidates["refresh_mode"] == "full"

            status, listing = call("GET", "/collections")
            assert status == 200
            assert set(listing["collections"]) == {"demo"}

            status, metrics = call("GET", "/metrics")
            assert status == 200
            assert metrics["requests"] >= 5
            assert metrics["errors"] == 0
            assert metrics["collections"]["demo"]["profiles"] == len(profiles)
            assert "GET /healthz" in metrics["endpoints"]
            assert metrics["endpoints"]["GET /healthz"]["count"] >= 1

        _run_against_app(scenario)

    def test_error_statuses(self):
        def scenario(call):
            assert call("GET", "/collections/none/matches/0")[0] == 404
            assert call("GET", "/nope")[0] == 404
            assert call("DELETE", "/healthz")[0] == 405
            status, error = call("POST", "/collections/demo/profiles", {"bad": 1})
            assert status == 400 and "profiles" in error["error"]
            call(
                "POST",
                "/collections/demo/profiles",
                {"profiles": [{"attributes": {"name": "alpha"}}]},
            )
            assert call("GET", "/collections/demo/matches/99")[0] == 404
            assert call("GET", "/collections/demo/matches/not-an-int")[0] == 400
            status, _ = call("GET", "/collections/demo/matches/0?budget=-1")
            assert status == 400
            # Ingesting a duplicate id is a DataError → 400, not a 500.
            status, error = call(
                "POST",
                "/collections/demo/profiles",
                {"profiles": [{"id": 0, "attributes": {"name": "alpha"}}]},
            )
            assert status == 400 and "strictly increasing" in error["error"]

        _run_against_app(scenario)

    def test_snapshot_endpoint_and_shutdown_sweep(self, tmp_path):
        from repro.engine import tmpfiles

        store = CollectionStore(snapshot_dir=str(tmp_path))
        app = ServiceApp(store)

        def scenario(call):
            call(
                "POST",
                "/collections/demo/profiles",
                {"profiles": [{"attributes": {"name": "alpha bravo"}}]},
            )
            status, summary = call("POST", "/collections/demo/snapshot")
            assert status == 201
            assert summary["collection"] == "demo"
            assert (tmp_path / "demo" / "pipeline_state.pkl").is_file()
            assert call("POST", "/collections/missing/snapshot")[0] == 400

        _run_against_app(scenario, app)
        # stop() ran the shutdown sweep: no owned tmp artifacts remain.
        assert tmpfiles.live_artifacts() == []
        app.shutdown()  # idempotent


# --------------------------------------------- offload, admission, degraded
def _request_headers(port, method, path, payload=None):
    """Like :func:`_request` but also returns the response headers."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def _slow(collection, seconds):
    """Monkeypatch-free slow-down of a collection's matches sweep."""
    original = collection.matches

    def slow_matches(profile_id, budget):
        time.sleep(seconds)
        return original(profile_id, budget)

    collection.matches = slow_matches


class TestServiceConcurrency:
    def test_cold_sweep_does_not_block_probes_or_other_tenants(self):
        """Event-loop liveness: a pinned sweep on one collection leaves
        ``healthz`` and a second collection answering within a bound far
        below the sweep's duration."""
        profiles = _random_profiles(25, clean_clean=False, seed=7)
        app = ServiceApp(workers=2)

        def scenario(call):
            call("POST", "/collections/slow/profiles", _ingest_payload(profiles))
            call("POST", "/collections/fast/profiles", _ingest_payload(profiles))
            call("GET", "/collections/fast/matches/0?budget=5")  # warm cache
            _slow(app.store.get("slow"), 1.5)

            outcome = {}
            pinned = threading.Thread(
                target=lambda: outcome.update(
                    slow=call("GET", "/collections/slow/matches/0?budget=5")
                )
            )
            pinned.start()
            time.sleep(0.2)  # the sweep is now occupying a pool worker
            latencies = []
            for _ in range(3):
                for path in ("/healthz", "/collections/fast/matches/0?budget=5"):
                    started = time.perf_counter()
                    status, _ = call("GET", path)
                    latencies.append(time.perf_counter() - started)
                    assert status == 200
            pinned.join()
            assert outcome["slow"][0] == 200
            assert max(latencies) < 0.75  # far below the 1.5s pinned sweep

            status, metrics = call("GET", "/metrics")
            assert status == 200
            assert metrics["offload"]["peak_queue_depth"] >= 1
            assert metrics["offload"]["wait"]["count"] >= 1

        _run_against_app(scenario, app)

    def test_per_collection_inflight_cap_sheds_429(self):
        app = ServiceApp(workers=1, max_collection_inflight=1)

        def scenario(call):
            call("POST", "/collections/t/profiles", {"profiles": [{"id": 0}]})
            _slow(app.store.get("t"), 1.0)
            pinned = threading.Thread(
                target=lambda: call("GET", "/collections/t/matches/0?budget=5")
            )
            pinned.start()
            time.sleep(0.2)
            status, headers, error = _request_headers(
                app.port, "GET", "/collections/t/matches/0?budget=5"
            )
            assert status == 429
            assert headers.get("Retry-After") == "1"
            assert "in flight" in error["error"]
            pinned.join()
            status, metrics = call("GET", "/metrics")
            assert metrics["counters"]["responses_429"] == 1

        _run_against_app(scenario, app)

    def test_global_queue_depth_cap_sheds_429(self):
        app = ServiceApp(workers=1, max_queue_depth=1)

        def scenario(call):
            call("POST", "/collections/t/profiles", {"profiles": [{"id": 0}]})
            call("POST", "/collections/u/profiles", {"profiles": [{"id": 0}]})
            _slow(app.store.get("t"), 1.0)
            pinned = threading.Thread(
                target=lambda: call("GET", "/collections/t/matches/0?budget=5")
            )
            pinned.start()
            time.sleep(0.2)
            # A *different* collection is shed too: the cap is global.
            status, headers, error = _request_headers(
                app.port, "GET", "/collections/u/matches/0?budget=5"
            )
            assert status == 429
            assert headers.get("Retry-After") == "1"
            assert "queue is full" in error["error"]
            pinned.join()

        _run_against_app(scenario, app)

    def test_request_deadline_expires_with_503(self):
        app = ServiceApp(workers=2, request_timeout=0.3)

        def scenario(call):
            call("POST", "/collections/t/profiles", {"profiles": [{"id": 0}]})
            _slow(app.store.get("t"), 1.0)
            started = time.perf_counter()
            status, error = call("GET", "/collections/t/matches/0?budget=5")
            assert status == 503
            assert "deadline expired" in error["error"]
            assert time.perf_counter() - started < 0.9
            # The zombie sweep finishes in the background and releases the
            # collection gate: the next (fast) request succeeds.
            time.sleep(0.9)
            del app.store.get("t").matches  # restore the real method
            assert call("GET", "/collections/t/matches/0?budget=5")[0] == 200
            status, metrics = call("GET", "/metrics")
            assert metrics["counters"]["responses_503"] >= 1
            assert metrics["offload"]["queue_depth"] == 0

        _run_against_app(scenario, app)

    def test_degraded_collection_serves_reads_rejects_writes(self, tmp_path):
        store = CollectionStore(
            snapshot_dir=str(tmp_path / "snap"), wal_dir=str(tmp_path / "wal")
        )
        app = ServiceApp(store)
        profiles = _random_profiles(15, clean_clean=False, seed=11)

        def scenario(call):
            status, _ = call(
                "POST", "/collections/demo/profiles", _ingest_payload(profiles)
            )
            assert status == 201

            def broken_append(payload):
                raise OSError(28, "No space left on device")

            store.get("demo").wal.append = broken_append
            status, error = call(
                "POST", "/collections/demo/profiles", {"profiles": [{"id": 99}]}
            )
            assert status == 507
            assert "read-only" in error["error"]
            # Subsequent writes are rejected up front (507), snapshots too.
            assert call(
                "POST", "/collections/demo/profiles", {"profiles": [{"id": 99}]}
            )[0] == 507
            assert call("POST", "/collections/demo/snapshot")[0] == 507
            # Reads keep serving.
            assert call("GET", "/collections/demo/matches/0?budget=5")[0] == 200
            status, health = call("GET", "/healthz")
            assert status == 200
            assert health["status"] == "degraded"
            assert "demo" in health["degraded_collections"]
            status, metrics = call("GET", "/metrics")
            assert metrics["counters"]["responses_507"] >= 3
            assert metrics["collections"]["demo"]["degraded"] is not None

        _run_against_app(scenario, app)

    def test_ingest_bumps_the_wal_append_counter(self, tmp_path):
        store = CollectionStore(wal_dir=str(tmp_path / "wal"))
        app = ServiceApp(store)

        def scenario(call):
            call("POST", "/collections/demo/profiles", {"profiles": [{"id": 0}]})
            call("POST", "/collections/demo/profiles", {"profiles": [{"id": 1}]})
            status, metrics = call("GET", "/metrics")
            assert metrics["counters"]["wal_appends"] == 2
            assert metrics["collections"]["demo"]["wal"]["appends"] == 2

        _run_against_app(scenario, app)

    def test_stop_drains_inflight_requests_before_sweeping(self):
        """Graceful shutdown waits for the pinned request to answer."""
        profiles = _random_profiles(15, clean_clean=False, seed=5)
        app = ServiceApp(drain_timeout=5.0)
        outcome = {}

        async def main():
            await app.start()
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None,
                lambda: _request(
                    app.port, "POST", "/collections/demo/profiles",
                    _ingest_payload(profiles),
                ),
            )
            _slow(app.store.get("demo"), 0.6)
            pinned = loop.run_in_executor(
                None,
                lambda: _request(app.port, "GET", "/collections/demo/matches/0?budget=5"),
            )
            await asyncio.sleep(0.2)  # the request is on the worker pool
            await app.stop()  # must drain the pinned request, not kill it
            outcome["pinned"] = await pinned

        asyncio.run(main())
        status, payload = outcome["pinned"]
        assert status == 200
        assert payload["budget"] == 5

    def test_admission_configuration_is_validated(self):
        with pytest.raises(ConfigurationError, match="workers"):
            ServiceApp(workers=0)
        with pytest.raises(ConfigurationError, match="admission caps"):
            ServiceApp(max_queue_depth=0)
        with pytest.raises(ConfigurationError, match="admission caps"):
            ServiceApp(max_collection_inflight=0)
        with pytest.raises(ConfigurationError, match="request_timeout"):
            ServiceApp(request_timeout=0)
        with pytest.raises(ConfigurationError, match="drain_timeout"):
            ServiceApp(drain_timeout=-1)
