"""Tests of JSON round-trip serialization."""

from repro.data.dataset import ProfileCollection
from repro.data.ground_truth import GroundTruth
from repro.data.profile import EntityProfile
from repro.data.serialization import (
    load_collection,
    load_ground_truth,
    profile_from_dict,
    profile_to_dict,
    save_collection,
    save_ground_truth,
)


def _profile(pid: int) -> EntityProfile:
    profile = EntityProfile(profile_id=pid, original_id=f"orig-{pid}", source_id=pid % 2)
    profile.add("name", f"product {pid}")
    profile.add("price", str(pid * 10))
    return profile


class TestProfileSerialization:
    def test_roundtrip(self):
        original = _profile(3)
        rebuilt = profile_from_dict(profile_to_dict(original))
        assert rebuilt.profile_id == original.profile_id
        assert rebuilt.original_id == original.original_id
        assert rebuilt.source_id == original.source_id
        assert list(rebuilt.items()) == list(original.items())


class TestCollectionSerialization:
    def test_roundtrip(self, tmp_path):
        collection = ProfileCollection([_profile(i) for i in range(5)])
        path = tmp_path / "profiles.json"
        save_collection(collection, path)
        rebuilt = load_collection(path)
        assert len(rebuilt) == 5
        assert rebuilt[2].value_of("name") == "product 2"

    def test_preserves_sources(self, tmp_path):
        collection = ProfileCollection([_profile(i) for i in range(4)])
        path = tmp_path / "profiles.json"
        save_collection(collection, path)
        assert load_collection(path).is_clean_clean == collection.is_clean_clean


class TestGroundTruthSerialization:
    def test_roundtrip(self, tmp_path):
        truth = GroundTruth([(1, 2), (3, 4)])
        path = tmp_path / "gt.json"
        save_ground_truth(truth, path)
        rebuilt = load_ground_truth(path)
        assert rebuilt.pairs() == truth.pairs()

    def test_empty(self, tmp_path):
        path = tmp_path / "gt.json"
        save_ground_truth(GroundTruth(), path)
        assert len(load_ground_truth(path)) == 0
