"""Tests of the Leipzig-style benchmark loaders (using locally written files)."""

import pytest

from repro.data.benchmark_loaders import load_abt_buy, load_two_source_benchmark
from repro.exceptions import DataError


def _write_benchmark(tmp_path, *, mapping_rows="id1,id2\na1,b1\na2,b2\n"):
    source0 = tmp_path / "Abt.csv"
    source0.write_text(
        "id,name,description,price\n"
        "a1,sony bravia tv,40 inch lcd television,499\n"
        "a2,canon eos camera,digital slr camera body,899\n"
        "a3,bose headphones,noise cancelling headphones,299\n",
        encoding="latin-1",
    )
    source1 = tmp_path / "Buy.csv"
    source1.write_text(
        "id,name,description,manufacturer,price\n"
        "b1,sony bravia television,40in lcd tv,sony,510\n"
        "b2,canon eos slr,camera body only,canon,905\n",
        encoding="latin-1",
    )
    mapping = tmp_path / "abt_buy_perfectMapping.csv"
    mapping.write_text(mapping_rows, encoding="latin-1")
    return source0, source1, mapping


class TestLoadTwoSourceBenchmark:
    def test_basic_loading(self, tmp_path):
        source0, source1, mapping = _write_benchmark(tmp_path)
        dataset = load_two_source_benchmark(source0, source1, mapping, name="tiny")
        assert len(dataset.profiles) == 5
        assert dataset.profiles.is_clean_clean
        assert len(dataset.ground_truth) == 2
        assert dataset.name == "tiny"

    def test_ids_remapped_to_profile_ids(self, tmp_path):
        source0, source1, mapping = _write_benchmark(tmp_path)
        dataset = load_two_source_benchmark(source0, source1, mapping)
        separator = dataset.profiles.separator_id
        for a, b in dataset.ground_truth:
            assert a <= separator < b

    def test_attributes_parsed(self, tmp_path):
        source0, source1, mapping = _write_benchmark(tmp_path)
        dataset = load_two_source_benchmark(source0, source1, mapping)
        abt_first = dataset.profiles[0]
        assert abt_first.value_of("name") == "sony bravia tv"
        assert "id" not in abt_first.attribute_names()

    def test_unmappable_rows_skipped(self, tmp_path):
        source0, source1, mapping = _write_benchmark(
            tmp_path, mapping_rows="id1,id2\na1,b1\nmissing,b2\n"
        )
        dataset = load_two_source_benchmark(source0, source1, mapping)
        assert len(dataset.ground_truth) == 1

    def test_missing_file_raises(self, tmp_path):
        source0, source1, mapping = _write_benchmark(tmp_path)
        with pytest.raises(DataError):
            load_two_source_benchmark(tmp_path / "nope.csv", source1, mapping)

    def test_empty_mapping_raises(self, tmp_path):
        source0, source1, mapping = _write_benchmark(
            tmp_path, mapping_rows="id1,id2\nzz,yy\n"
        )
        with pytest.raises(DataError):
            load_two_source_benchmark(source0, source1, mapping)

    def test_pipeline_runs_on_loaded_benchmark(self, tmp_path):
        from repro.core.config import SparkERConfig
        from repro.core.sparker import SparkER

        source0, source1, mapping = _write_benchmark(tmp_path)
        dataset = load_two_source_benchmark(source0, source1, mapping)
        config = SparkERConfig.schema_agnostic()
        config.matcher.threshold = 0.3
        result = SparkER(config).run(dataset.profiles, dataset.ground_truth)
        assert result.summary()["clusters"] >= 1


class TestLoadAbtBuy:
    def test_directory_layout(self, tmp_path):
        _write_benchmark(tmp_path)
        dataset = load_abt_buy(tmp_path)
        assert dataset.name == "abt-buy"
        assert len(dataset.ground_truth) == 2

    def test_missing_directory_file(self, tmp_path):
        with pytest.raises(DataError):
            load_abt_buy(tmp_path)
