"""Tests of the edge weighting schemes."""

import pytest

from repro.blocking.block import Block, BlockCollection
from repro.exceptions import MetaBlockingError
from repro.metablocking.graph import EdgeInfo, build_blocking_graph
from repro.metablocking.weights import WeightingScheme, compute_edge_weight, weight_all_edges


def _graph():
    collection = BlockCollection(
        [
            Block(key="a", profiles_source0={0, 1}, profiles_source1={5}, clean_clean=True),
            Block(key="b", profiles_source0={0}, profiles_source1={5}, clean_clean=True),
            Block(key="c", profiles_source0={0}, profiles_source1={5, 6}, clean_clean=True),
        ],
        clean_clean=True,
    )
    return build_blocking_graph(collection)


class TestWeightingSchemeParse:
    def test_parse_names(self):
        assert WeightingScheme.parse("CBS") is WeightingScheme.CBS
        assert WeightingScheme.parse("js") is WeightingScheme.JS

    def test_parse_instance_passthrough(self):
        assert WeightingScheme.parse(WeightingScheme.ARCS) is WeightingScheme.ARCS

    def test_unknown_scheme(self):
        with pytest.raises(MetaBlockingError):
            WeightingScheme.parse("unknown")


class TestComputeEdgeWeight:
    def test_cbs(self):
        info = EdgeInfo(common_blocks=3)
        assert compute_edge_weight(
            WeightingScheme.CBS, info, blocks_a=5, blocks_b=4, total_blocks=10
        ) == 3.0

    def test_arcs(self):
        info = EdgeInfo(common_blocks=2, arcs=0.75)
        assert compute_edge_weight(
            WeightingScheme.ARCS, info, blocks_a=5, blocks_b=4, total_blocks=10
        ) == 0.75

    def test_js(self):
        info = EdgeInfo(common_blocks=2)
        weight = compute_edge_weight(
            WeightingScheme.JS, info, blocks_a=4, blocks_b=3, total_blocks=10
        )
        assert weight == 2 / (4 + 3 - 2)

    def test_js_zero_denominator(self):
        info = EdgeInfo(common_blocks=0)
        assert compute_edge_weight(
            WeightingScheme.JS, info, blocks_a=0, blocks_b=0, total_blocks=10
        ) == 0.0

    def test_ecbs_rarity_boost(self):
        # The same CBS with rarer endpoints gets a larger ECBS weight.
        info = EdgeInfo(common_blocks=2)
        rare = compute_edge_weight(
            WeightingScheme.ECBS, info, blocks_a=2, blocks_b=2, total_blocks=100
        )
        frequent = compute_edge_weight(
            WeightingScheme.ECBS, info, blocks_a=50, blocks_b=50, total_blocks=100
        )
        assert rare > frequent

    def test_ejs_falls_back_to_js_without_degrees(self):
        info = EdgeInfo(common_blocks=2)
        weight = compute_edge_weight(
            WeightingScheme.EJS, info, blocks_a=4, blocks_b=3, total_blocks=10
        )
        assert weight == 2 / 5


class TestWeightAllEdges:
    @pytest.mark.parametrize("scheme", list(WeightingScheme))
    def test_every_edge_weighted(self, scheme):
        graph = _graph()
        weights = weight_all_edges(graph, scheme)
        assert set(weights) == set(graph.edges)
        assert all(w >= 0.0 for w in weights.values())

    def test_cbs_values(self):
        graph = _graph()
        weights = weight_all_edges(graph, "cbs")
        assert weights[(0, 5)] == 3.0
        assert weights[(1, 5)] == 1.0
        assert weights[(0, 6)] == 1.0

    def test_more_shared_blocks_heavier_edge(self, abt_buy_small):
        from repro.blocking.token_blocking import TokenBlocking

        graph = build_blocking_graph(TokenBlocking().block(abt_buy_small.profiles))
        weights = weight_all_edges(graph, "cbs")
        truth = abt_buy_small.ground_truth.pairs()
        matching = [w for pair, w in weights.items() if pair in truth]
        non_matching = [w for pair, w in weights.items() if pair not in truth]
        assert sum(matching) / len(matching) > sum(non_matching) / len(non_matching)
