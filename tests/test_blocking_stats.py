"""Tests of blocking statistics."""

from repro.blocking.block import Block, BlockCollection
from repro.blocking.stats import candidate_pair_stats, compute_blocking_stats
from repro.data.ground_truth import GroundTruth


def _blocks() -> BlockCollection:
    return BlockCollection(
        [
            Block(key="a", profiles_source0={0, 1}, profiles_source1={5}, clean_clean=True),
            Block(key="b", profiles_source0={1}, profiles_source1={6}, clean_clean=True),
        ],
        clean_clean=True,
    )


class TestComputeBlockingStats:
    def test_recall_precision(self):
        truth = GroundTruth([(0, 5), (2, 7)])
        stats = compute_blocking_stats(_blocks(), truth, max_comparisons=20)
        assert stats.num_blocks == 2
        assert stats.num_candidate_pairs == 3
        assert stats.recall == 0.5
        assert stats.precision == 1 / 3
        assert stats.lost_pairs == {(2, 7)}

    def test_reduction_ratio(self):
        truth = GroundTruth([(0, 5)])
        stats = compute_blocking_stats(_blocks(), truth, max_comparisons=30)
        assert stats.reduction_ratio == 1 - 3 / 30

    def test_no_max_comparisons(self):
        stats = compute_blocking_stats(_blocks(), GroundTruth([(0, 5)]))
        assert stats.reduction_ratio == 0.0

    def test_f1(self):
        truth = GroundTruth([(0, 5)])
        stats = compute_blocking_stats(_blocks(), truth)
        assert 0.0 < stats.f1 <= 1.0

    def test_as_dict_keys(self):
        stats = compute_blocking_stats(_blocks(), GroundTruth([(0, 5)]))
        d = stats.as_dict()
        assert {"blocks", "candidate_pairs", "recall", "precision", "lost_pairs"} <= set(d)

    def test_empty_truth_full_recall(self):
        stats = compute_blocking_stats(_blocks(), GroundTruth())
        assert stats.recall == 1.0


class TestCandidatePairStats:
    def test_basic(self):
        truth = GroundTruth([(0, 5), (1, 6)])
        stats = candidate_pair_stats({(0, 5), (9, 10)}, truth, max_comparisons=10)
        assert stats["candidate_pairs"] == 2
        assert stats["recall"] == 0.5
        assert stats["precision"] == 0.5
        assert stats["lost_pairs"] == 1
        assert stats["reduction_ratio"] == 0.8

    def test_empty_candidates(self):
        stats = candidate_pair_stats(set(), GroundTruth([(0, 1)]), max_comparisons=10)
        assert stats["precision"] == 0.0
        assert stats["recall"] == 0.0
