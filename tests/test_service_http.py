"""Unit tests of the service HTTP plumbing: router, request helpers,
latency histograms and the request-metrics aggregation."""

from __future__ import annotations

import json

import pytest

from repro.engine.metrics import LatencyHistogram
from repro.service.http import HttpError, Request, Response, Router
from repro.service.metrics import ServiceMetrics


class TestRouter:
    def _router(self):
        router = Router()
        router.add("GET", "/healthz", lambda r: {"ok": True})
        router.add("POST", "/collections/{name}/profiles", lambda r: r)
        router.add("GET", "/collections/{name}/matches/{profile_id}", lambda r: r)
        return router

    def test_literal_match(self):
        handler, params, label = self._router().match("GET", "/healthz")
        assert handler(None) == {"ok": True}
        assert params == {}
        assert label == "GET /healthz"

    def test_parameter_capture(self):
        _h, params, label = self._router().match(
            "GET", "/collections/demo/matches/42"
        )
        assert params == {"name": "demo", "profile_id": "42"}
        assert label == "GET /collections/{name}/matches/{profile_id}"

    def test_percent_encoded_segments_are_decoded(self):
        _h, params, _l = self._router().match(
            "POST", "/collections/my%2Dset/profiles"
        )
        assert params == {"name": "my-set"}

    def test_unknown_path_raises_404(self):
        with pytest.raises(HttpError) as excinfo:
            self._router().match("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_raises_405(self):
        with pytest.raises(HttpError) as excinfo:
            self._router().match("DELETE", "/healthz")
        assert excinfo.value.status == 405


class TestRequestHelpers:
    def test_json_parses_object_bodies(self):
        request = Request("POST", "/x", body=json.dumps({"a": 1}).encode())
        assert request.json() == {"a": 1}

    @pytest.mark.parametrize("body", [b"", b"not json", b"[1, 2]", b"\xff\xfe"])
    def test_json_rejects_non_objects_with_400(self, body):
        request = Request("POST", "/x", body=body)
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400

    def test_int_query_default_bound_and_errors(self):
        request = Request("GET", "/x", query={"budget": "7", "bad": "x", "neg": "-1"})
        assert request.int_query("budget", 10) == 7
        assert request.int_query("missing", 10) == 10
        with pytest.raises(HttpError):
            request.int_query("bad", 10)
        with pytest.raises(HttpError):
            request.int_query("neg", 10, minimum=0)

    def test_response_encodes_json_with_content_length(self):
        raw = Response({"b": 2, "a": 1}, status=201).encode()
        head, _sep, body = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 201 Created" in head
        assert f"Content-Length: {len(body)}".encode() in head
        assert json.loads(body) == {"a": 1, "b": 2}


class TestLatencyHistogram:
    def test_summary_on_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.summary() == {
            "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
        }

    def test_quantiles_are_conservative_upper_bounds(self):
        histogram = LatencyHistogram()
        samples = [0.001 * step for step in range(1, 101)]
        for sample in samples:
            histogram.observe(sample)
        p50 = histogram.quantile(0.50)
        p95 = histogram.quantile(0.95)
        # Upper bucket edges: at least the true quantile, within one growth
        # factor of it.
        assert samples[49] <= p50 <= samples[49] * histogram.growth
        assert samples[94] <= p95 <= samples[94] * histogram.growth
        assert p50 <= p95 <= histogram.quantile(1.0)
        assert histogram.quantile(1.0) >= histogram.max_seconds

    def test_overflow_bucket_reports_the_maximum(self):
        histogram = LatencyHistogram(num_buckets=4)
        histogram.observe(10_000.0)
        assert histogram.quantile(0.5) == 10_000.0

    def test_negative_observations_clamp_to_zero(self):
        histogram = LatencyHistogram()
        histogram.observe(-1.0)
        assert histogram.count == 1
        assert histogram.total_seconds == 0.0

    def test_invalid_shapes_and_quantiles_are_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(base_seconds=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_mean_tracks_the_running_sum(self):
        histogram = LatencyHistogram()
        for sample in (0.1, 0.2, 0.3):
            histogram.observe(sample)
        assert histogram.mean_seconds == pytest.approx(0.2)


class TestServiceMetrics:
    def test_observe_aggregates_per_label(self):
        metrics = ServiceMetrics()
        metrics.observe("GET /healthz", 0.001, 200)
        metrics.observe("GET /healthz", 0.002, 200)
        metrics.observe("POST /x", 0.1, 500)
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 3
        assert snapshot["errors"] == 1
        assert snapshot["endpoints"]["GET /healthz"]["count"] == 2
        assert snapshot["endpoints"]["GET /healthz"]["errors"] == 0
        assert snapshot["endpoints"]["POST /x"]["errors"] == 1
        assert snapshot["uptime_seconds"] >= 0.0

    def test_client_errors_are_not_service_errors(self):
        metrics = ServiceMetrics()
        metrics.observe("GET /x", 0.001, 404)
        assert metrics.snapshot()["errors"] == 0
