"""Tests of Block and BlockCollection."""

import pytest

from repro.blocking.block import Block, BlockCollection
from repro.exceptions import BlockingError


class TestBlock:
    def test_clean_clean_comparisons(self):
        block = Block(key="sony", profiles_source0={0, 1}, profiles_source1={5, 6})
        assert block.num_comparisons() == 4
        assert set(block.comparisons()) == {(0, 5), (0, 6), (1, 5), (1, 6)}

    def test_dirty_comparisons(self):
        block = Block(key="sony", profiles_source0={1, 2, 3})
        assert block.num_comparisons() == 3
        assert set(block.comparisons()) == {(1, 2), (1, 3), (2, 3)}

    def test_clean_clean_flag_sticks_after_source_loss(self):
        # A clean-clean block that lost every source-1 profile must not start
        # generating within-source comparisons (the block filtering edge case).
        block = Block(key="k", profiles_source0={0, 1}, clean_clean=True)
        assert block.is_clean_clean
        assert block.num_comparisons() == 0
        assert not block.is_valid()

    def test_size_and_all_profiles(self):
        block = Block(key="k", profiles_source0={0}, profiles_source1={1, 2})
        assert block.size == 3
        assert block.all_profiles() == {0, 1, 2}

    def test_contains_and_remove(self):
        block = Block(key="k", profiles_source0={0}, profiles_source1={1})
        assert block.contains(0)
        block.remove(0)
        assert not block.contains(0)

    def test_singleton_invalid(self):
        assert not Block(key="k", profiles_source0={1}).is_valid()

    def test_default_entropy(self):
        assert Block(key="k").entropy == 1.0


class TestBlockCollection:
    def _collection(self) -> BlockCollection:
        return BlockCollection(
            [
                Block(key="a", profiles_source0={0, 1}, profiles_source1={5}),
                Block(key="b", profiles_source0={1}, profiles_source1={5, 6}),
            ],
            clean_clean=True,
        )

    def test_len_and_getitem(self):
        collection = self._collection()
        assert len(collection) == 2
        assert collection[0].key == "a"

    def test_only_blocks_addable(self):
        collection = BlockCollection()
        with pytest.raises(BlockingError):
            collection.add("not a block")  # type: ignore[arg-type]

    def test_total_vs_distinct_comparisons(self):
        collection = self._collection()
        assert collection.total_comparisons() == 4
        # (1, 5) appears in both blocks but is counted once in the distinct set.
        assert collection.distinct_comparisons() == {(0, 5), (1, 5), (1, 6)}

    def test_profile_index(self):
        index = self._collection().profile_index()
        assert index[1] == [0, 1]
        assert index[0] == [0]

    def test_profile_ids(self):
        assert self._collection().profile_ids() == {0, 1, 5, 6}

    def test_purge_invalid(self):
        collection = BlockCollection(
            [Block(key="ok", profiles_source0={1, 2}), Block(key="solo", profiles_source0={3})]
        )
        purged = collection.purge_invalid()
        assert [b.key for b in purged] == ["ok"]

    def test_sorted_by_size(self):
        collection = self._collection()
        keys = [b.key for b in collection.sorted_by_size()]
        assert keys == ["a", "b"] or keys == ["b", "a"]
        sizes = [b.num_comparisons() for b in collection.sorted_by_size()]
        assert sizes == sorted(sizes, reverse=True)
