"""Tests of ProfileCollection, DatasetPair and source merging."""

import pytest

from repro.data.dataset import DatasetPair, ProfileCollection, merge_sources
from repro.data.ground_truth import GroundTruth
from repro.data.profile import EntityProfile
from repro.exceptions import DataError


def _profile(pid: int, source: int = 0, **attrs: str) -> EntityProfile:
    profile = EntityProfile(profile_id=pid, source_id=source)
    for key, value in attrs.items():
        profile.add(key, value)
    return profile


class TestProfileCollection:
    def test_add_and_lookup(self):
        collection = ProfileCollection([_profile(0, name="a")])
        assert collection[0].value_of("name") == "a"

    def test_duplicate_id_rejected(self):
        collection = ProfileCollection([_profile(0)])
        with pytest.raises(DataError):
            collection.add(_profile(0))

    def test_unknown_id_raises(self):
        with pytest.raises(DataError):
            ProfileCollection()[99]

    def test_contains(self):
        collection = ProfileCollection([_profile(3)])
        assert 3 in collection
        assert 4 not in collection

    def test_len_and_iter_order(self):
        collection = ProfileCollection([_profile(2), _profile(0)])
        assert len(collection) == 2
        assert [p.profile_id for p in collection] == [2, 0]

    def test_by_source(self):
        collection = ProfileCollection([_profile(0, 0), _profile(1, 1), _profile(2, 1)])
        assert len(collection.by_source(1)) == 2

    def test_clean_clean_detection(self):
        dirty = ProfileCollection([_profile(0, 0), _profile(1, 0)])
        clean = ProfileCollection([_profile(0, 0), _profile(1, 1)])
        assert not dirty.is_clean_clean
        assert clean.is_clean_clean

    def test_separator_id(self):
        collection = ProfileCollection([_profile(0, 0), _profile(1, 0), _profile(2, 1)])
        assert collection.separator_id == 1

    def test_separator_id_none_for_dirty(self):
        collection = ProfileCollection([_profile(0, 0)])
        assert collection.separator_id is None

    def test_attribute_names(self):
        collection = ProfileCollection([_profile(0, name="a"), _profile(1, price="1")])
        assert collection.attribute_names() == {"name", "price"}

    def test_attribute_names_by_source(self):
        collection = ProfileCollection(
            [_profile(0, 0, name="a"), _profile(1, 1, title="b")]
        )
        names = collection.attribute_names_by_source()
        assert names[0] == {"name"}
        assert names[1] == {"title"}

    def test_max_comparisons_clean_clean(self):
        collection = ProfileCollection(
            [_profile(0, 0), _profile(1, 0), _profile(2, 1), _profile(3, 1), _profile(4, 1)]
        )
        assert collection.max_comparisons() == 2 * 3

    def test_max_comparisons_dirty(self):
        collection = ProfileCollection([_profile(i) for i in range(5)])
        assert collection.max_comparisons() == 10

    def test_subset(self):
        collection = ProfileCollection([_profile(i) for i in range(5)])
        subset = collection.subset([1, 3])
        assert subset.ids() == [1, 3]


class TestMergeSources:
    def test_contiguous_ids(self):
        source0 = [_profile(10, 0, name="a"), _profile(11, 0, name="b")]
        source1 = [_profile(5, 1, title="c")]
        merged = merge_sources(source0, source1)
        assert merged.ids() == [0, 1, 2]
        assert merged[2].source_id == 1
        assert merged.separator_id == 1

    def test_original_ids_preserved(self):
        source0 = [EntityProfile(profile_id=3, original_id="abc", source_id=0)]
        merged = merge_sources(source0, [])
        assert merged[0].original_id == "abc"


class TestDatasetPair:
    def test_summary(self):
        collection = ProfileCollection(
            [_profile(0, 0, name="a"), _profile(1, 1, title="a")]
        )
        pair = DatasetPair(collection, GroundTruth([(0, 1)]), name="tiny")
        summary = pair.summary()
        assert summary["profiles"] == 2
        assert summary["matches"] == 1
        assert summary["max_comparisons"] == 1

    def test_requires_ground_truth_instance(self):
        collection = ProfileCollection([_profile(0)])
        with pytest.raises(DataError):
            DatasetPair(collection, ground_truth={(0, 1)})  # type: ignore[arg-type]
