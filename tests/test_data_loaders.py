"""Tests of the CSV / JSON loaders."""

import json

import pytest

from repro.data.loaders import (
    collection_from_records,
    load_csv,
    load_ground_truth_csv,
    load_json,
    load_jsonl,
)
from repro.exceptions import DataError


class TestLoadCsv:
    def test_basic(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("id,name,price\n1,sony tv,100\n2,lg tv,200\n")
        profiles = load_csv(path, id_field="id")
        assert len(profiles) == 2
        assert profiles[0].original_id == "1"
        assert profiles[0].value_of("name") == "sony tv"
        assert "id" not in profiles[0].attribute_names()

    def test_without_id_field(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("name\nsony\n")
        profiles = load_csv(path)
        assert profiles[0].original_id == "0"
        assert profiles[0].value_of("name") == "sony"

    def test_start_id_and_source(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("name\na\nb\n")
        profiles = load_csv(path, source_id=1, start_id=10)
        assert [p.profile_id for p in profiles] == [10, 11]
        assert all(p.source_id == 1 for p in profiles)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_csv(tmp_path / "missing.csv")

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "data.tsv"
        path.write_text("name\tprice\nsony\t1\n")
        profiles = load_csv(path, delimiter="\t")
        assert profiles[0].value_of("price") == "1"


class TestLoadJson:
    def test_basic(self, tmp_path):
        path = tmp_path / "data.json"
        path.write_text(json.dumps([{"id": "a", "title": "blast"}]))
        profiles = load_json(path, id_field="id")
        assert profiles[0].original_id == "a"
        assert profiles[0].value_of("title") == "blast"

    def test_list_values_flattened(self, tmp_path):
        path = tmp_path / "data.json"
        path.write_text(json.dumps([{"authors": ["simonini", "gagliardelli"]}]))
        profiles = load_json(path)
        assert profiles[0].values_of("authors") == ["simonini", "gagliardelli"]

    def test_non_list_payload_rejected(self, tmp_path):
        path = tmp_path / "data.json"
        path.write_text(json.dumps({"not": "a list"}))
        with pytest.raises(DataError):
            load_json(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_json(tmp_path / "missing.json")


class TestLoadJsonl:
    def test_basic(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"name": "a"}\n\n{"name": "b"}\n')
        profiles = load_jsonl(path)
        assert [p.value_of("name") for p in profiles] == ["a", "b"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_jsonl(tmp_path / "missing.jsonl")


class TestGroundTruthCsv:
    def test_mapping(self, tmp_path):
        path = tmp_path / "gt.csv"
        path.write_text("id1,id2\na,x\nb,missing\n")
        truth = load_ground_truth_csv(
            path, {"a": 0, "b": 1}, {"x": 10}, left_field="id1", right_field="id2"
        )
        assert (0, 10) in truth
        assert len(truth) == 1


class TestCollectionFromRecords:
    def test_two_sources(self):
        collection = collection_from_records(
            [{"name": "a"}], [{"title": "b"}], id_field=None
        )
        assert collection.is_clean_clean
        assert len(collection) == 2
        assert collection[1].source_id == 1

    def test_single_source(self):
        collection = collection_from_records([{"name": "a"}, {"name": "b"}])
        assert not collection.is_clean_clean
