"""Tests of schema-agnostic token blocking."""

from repro.blocking.token_blocking import TokenBlocking
from repro.data.dataset import ProfileCollection
from repro.data.profile import EntityProfile


class TestTokenBlockingToy:
    def test_figure1_blocks(self, toy_dataset):
        blocks = TokenBlocking(remove_stopwords=True).block(toy_dataset.profiles)
        by_key = {block.key: block for block in blocks}
        # "blast" appears in p1 (source 0) and p3, p4 (source 1).
        assert by_key["blast"].profiles_source0 == {0}
        assert by_key["blast"].profiles_source1 == {2, 3}
        # "sparker" appears in p2 and p3.
        assert by_key["sparker"].profiles_source0 == {1}
        assert by_key["sparker"].profiles_source1 == {2}
        # "gagliardelli" appears in p2 and p3.
        assert by_key["gagliardelli"].profiles_source0 == {1}
        assert by_key["gagliardelli"].profiles_source1 == {2}

    def test_schema_ignored(self, toy_dataset):
        # "simonini" appears as author in p1/p4 and inside the abstract of p2:
        # schema-agnostic blocking puts them all in one block.
        blocks = TokenBlocking().block(toy_dataset.profiles)
        simonini = next(block for block in blocks if block.key == "simonini")
        assert simonini.all_profiles() == {0, 1, 3}

    def test_perfect_recall_on_toy(self, toy_dataset):
        blocks = TokenBlocking().block(toy_dataset.profiles)
        pairs = blocks.distinct_comparisons()
        for pair in toy_dataset.ground_truth:
            assert pair in pairs

    def test_keys_only_tokens_with_comparisons(self, toy_dataset):
        blocks = TokenBlocking().block(toy_dataset.profiles)
        for block in blocks:
            assert block.is_valid()


class TestTokenBlockingOptions:
    def _collection(self) -> ProfileCollection:
        p0 = EntityProfile(profile_id=0, source_id=0)
        p0.add("name", "the sony tv x1")
        p1 = EntityProfile(profile_id=1, source_id=1)
        p1.add("title", "the sony tv x1")
        return ProfileCollection([p0, p1])

    def test_stopword_removal_drops_blocks(self):
        with_stop = TokenBlocking().block(self._collection())
        without_stop = TokenBlocking(remove_stopwords=True).block(self._collection())
        assert len(without_stop) < len(with_stop)

    def test_min_token_length(self):
        blocks = TokenBlocking(min_token_length=3).block(self._collection())
        keys = {block.key for block in blocks}
        assert "x1" not in keys
        assert "sony" in keys

    def test_clean_clean_flag_propagated(self):
        blocks = TokenBlocking().block(self._collection())
        assert blocks.clean_clean
        assert all(block.is_clean_clean for block in blocks)

    def test_dirty_er_blocks(self):
        p0 = EntityProfile(profile_id=0, source_id=0)
        p0.add("name", "maria rossi")
        p1 = EntityProfile(profile_id=1, source_id=0)
        p1.add("name", "maria bianchi")
        blocks = TokenBlocking().block(ProfileCollection([p0, p1]))
        maria = next(block for block in blocks if block.key == "maria")
        assert maria.num_comparisons() == 1
        assert not blocks.clean_clean


class TestTokenBlockingDistributed:
    def test_matches_local(self, engine, abt_buy_small):
        local = TokenBlocking().block(abt_buy_small.profiles)
        distributed = TokenBlocking(engine=engine).block(abt_buy_small.profiles)
        assert len(local) == len(distributed)
        assert local.distinct_comparisons() == distributed.distinct_comparisons()

    def test_full_recall_on_synthetic(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        pairs = blocks.distinct_comparisons()
        found = pairs & abt_buy_small.ground_truth.pairs()
        recall = len(found) / len(abt_buy_small.ground_truth)
        assert recall > 0.95

    def test_low_precision_on_synthetic(self, abt_buy_small):
        # Schema-agnostic token blocking is high recall / low precision (paper §1).
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        pairs = blocks.distinct_comparisons()
        found = pairs & abt_buy_small.ground_truth.pairs()
        precision = len(found) / len(pairs)
        assert precision < 0.2
