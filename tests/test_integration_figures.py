"""Integration tests that reproduce the qualitative claims of the paper's figures.

Each test mirrors one experiment of EXPERIMENTS.md / the benchmark harness but
on a smaller dataset so the suite stays fast.  The assertions are about the
*shape* of the results (who wins, what decreases), not absolute numbers.
"""

import pytest

from repro.blocking.filtering import BlockFiltering
from repro.blocking.loose_schema_blocking import LooseSchemaTokenBlocking
from repro.blocking.purging import BlockPurging
from repro.blocking.token_blocking import TokenBlocking
from repro.core.blocker import Blocker
from repro.core.config import BlockerConfig, SparkERConfig
from repro.core.debugging import DebugSession
from repro.core.sparker import SparkER
from repro.engine.context import EngineContext
from repro.looseschema.attribute_partitioning import AttributePartitioner
from repro.looseschema.entropy import EntropyExtractor
from repro.metablocking.metablocker import MetaBlocker
from repro.metablocking.parallel import ParallelMetaBlocker


class TestFigure1SchemaAgnosticMetaBlocking:
    """Figure 1: token blocking then CBS/WEP meta-blocking on the toy data."""

    def test_blocking_then_pruning_keeps_true_matches(self, toy_dataset):
        blocks = TokenBlocking(remove_stopwords=True).block(toy_dataset.profiles)
        result = MetaBlocker("cbs", "wep").run(blocks)
        for pair in toy_dataset.ground_truth:
            assert pair in result.candidate_pairs

    def test_pruning_removes_some_comparisons(self, toy_dataset):
        blocks = TokenBlocking(remove_stopwords=True).block(toy_dataset.profiles)
        result = MetaBlocker("cbs", "wep").run(blocks)
        assert result.num_candidates <= result.graph_edges


class TestFigure2LooseSchemaMetaBlocking:
    """Figure 2: loose-schema keys + entropy remove more superfluous edges."""

    def test_entropy_meta_blocking_prunes_more(self, abt_buy_small):
        profiles = abt_buy_small.profiles
        partitioning = AttributePartitioner(threshold=0.1).partition(profiles)
        entropies = EntropyExtractor().extract(profiles, partitioning)

        agnostic_blocks = TokenBlocking().block(profiles)
        loose_blocks = LooseSchemaTokenBlocking(
            partitioning, cluster_entropies=entropies
        ).block(profiles)

        agnostic = MetaBlocker("cbs", "wnp", use_entropy=False).run(agnostic_blocks)
        blast = MetaBlocker("cbs", "wnp", use_entropy=True).run(loose_blocks)

        assert blast.num_candidates < agnostic.num_candidates

        truth = abt_buy_small.ground_truth.pairs()
        blast_recall = len(blast.candidate_pairs & truth) / len(truth)
        assert blast_recall > 0.85


class TestFigure3EndToEnd:
    """Figure 3: blocker → matcher → clusterer produces correct entities."""

    def test_pipeline_quality(self, abt_buy_medium):
        result = SparkER().run(abt_buy_medium.profiles, abt_buy_medium.ground_truth)
        clusterer_metrics = result.report.get("clusterer").metrics
        assert clusterer_metrics["recall"] > 0.7
        assert clusterer_metrics["precision"] > 0.7

    def test_modules_chained(self, abt_buy_small):
        result = SparkER().run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        assert len(result.matched_pairs) <= len(result.candidate_pairs)
        assert len(result.clusters) <= max(len(result.matched_pairs) * 2, 1)


class TestFigure4BlockerStages:
    """Figure 4: each blocker stage reduces comparisons while keeping recall."""

    def test_monotone_candidate_reduction(self, abt_buy_medium):
        config = BlockerConfig(use_loose_schema=False, use_entropy=False)
        report = Blocker(config).run(abt_buy_medium.profiles, abt_buy_medium.ground_truth)
        rows = {row["stage"]: row for row in report.stage_rows()}
        raw = rows["token_blocking"]["candidate_pairs"]
        purged = rows["block_purging"]["candidate_pairs"]
        filtered = rows["block_filtering"]["candidate_pairs"]
        final = rows["meta_blocking"]["candidate_pairs"]
        assert purged <= raw
        assert filtered <= purged
        assert final < filtered

    def test_recall_stays_high_through_stages(self, abt_buy_medium):
        config = BlockerConfig(use_loose_schema=False, use_entropy=False)
        report = Blocker(config).run(abt_buy_medium.profiles, abt_buy_medium.ground_truth)
        rows = {row["stage"]: row for row in report.stage_rows()}
        assert rows["token_blocking"]["recall"] > 0.95
        assert rows["meta_blocking"]["recall"] > 0.85

    def test_precision_improves_through_stages(self, abt_buy_medium):
        config = BlockerConfig(use_loose_schema=False, use_entropy=False)
        report = Blocker(config).run(abt_buy_medium.profiles, abt_buy_medium.ground_truth)
        rows = {row["stage"]: row for row in report.stage_rows()}
        assert rows["meta_blocking"]["precision"] > rows["token_blocking"]["precision"]


class TestFigure5EntityClustering:
    """Figure 5: graph generation → connected components → entity generation."""

    def test_transitive_entities(self, dirty_persons_small):
        config = SparkERConfig.schema_agnostic()
        config.matcher.threshold = 0.5
        result = SparkER(config).run(
            dirty_persons_small.profiles, dirty_persons_small.ground_truth
        )
        # Some clusters should have size > 2 (duplicate groups), and the
        # resolved pairs must include the transitive closure of the matches.
        assert any(cluster.size > 2 for cluster in result.clusters)
        assert result.resolved_pairs >= result.matched_pairs


class TestFigure6ProcessDebugging:
    """Figure 6: the full debugging storyline on a sample."""

    def test_storyline(self, abt_buy_medium):
        config = SparkERConfig.unsupervised_default()
        config.sampling.num_seeds = 25
        config.sampling.per_seed = 10
        session = DebugSession(
            abt_buy_medium.profiles, abt_buy_medium.ground_truth, config, sample=True
        )
        # (a) threshold = 1.0: blob only.
        step_a = session.try_threshold(1.0)
        assert step_a.partitioning.non_blob_clusters() == {}
        # (b) threshold = 0.3: clusters appear, candidates drop, precision >=.
        step_b = session.try_threshold(0.3)
        assert len(step_b.partitioning.non_blob_clusters()) >= 1
        assert step_b.num_candidate_pairs <= step_a.num_candidate_pairs
        # (e) meta-blocking with entropy: large decrease of candidate pairs.
        step_e = session.try_meta_blocking(threshold=0.3, use_entropy=True)
        assert step_e.num_candidate_pairs < step_b.num_candidate_pairs


class TestScalabilityStructure:
    """The engine-level claim: parallel meta-blocking distributes the work."""

    @pytest.mark.parametrize("partitions", [1, 2, 8])
    def test_same_result_any_parallelism(self, abt_buy_small, partitions):
        blocks = BlockFiltering().filter(
            BlockPurging().purge(
                TokenBlocking().block(abt_buy_small.profiles), len(abt_buy_small.profiles)
            )
        )
        sequential = MetaBlocker("cbs", "wnp").run(blocks)
        parallel = ParallelMetaBlocker(EngineContext(partitions), "cbs", "wnp").run(blocks)
        assert parallel.candidate_pairs == sequential.candidate_pairs

    def test_tasks_scale_with_partitions(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        few = EngineContext(2)
        many = EngineContext(8)
        ParallelMetaBlocker(few, "cbs", "wnp").run(blocks)
        ParallelMetaBlocker(many, "cbs", "wnp").run(blocks)
        assert many.scheduler.total_tasks > few.scheduler.total_tasks
