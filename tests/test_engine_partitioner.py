"""Tests of the partitioners."""

import pytest

from repro.engine.partitioner import HashPartitioner, RangePartitioner
from repro.exceptions import EngineError


class TestHashPartitioner:
    def test_range_of_indices(self):
        partitioner = HashPartitioner(4)
        for key in ["a", "b", 1, (1, "x"), None]:
            assert 0 <= partitioner.partition(key) < 4

    def test_deterministic(self):
        assert HashPartitioner(8).partition("key") == HashPartitioner(8).partition("key")

    def test_invalid_partition_count(self):
        with pytest.raises(EngineError):
            HashPartitioner(0)

    def test_equality(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(8)

    def test_distributes_keys(self):
        partitioner = HashPartitioner(4)
        assignments = {partitioner.partition(f"key{i}") for i in range(200)}
        assert len(assignments) == 4


class TestRangePartitioner:
    def test_sorted_keys_ordered_partitions(self):
        partitioner = RangePartitioner(3, list(range(90)))
        indices = [partitioner.partition(k) for k in range(90)]
        assert indices == sorted(indices)
        assert set(indices) == {0, 1, 2}

    def test_single_partition(self):
        partitioner = RangePartitioner(1, [1, 2, 3])
        assert partitioner.partition(100) == 0

    def test_empty_sample(self):
        partitioner = RangePartitioner(3, [])
        assert partitioner.partition("anything") == 0

    def test_bounds_respected(self):
        partitioner = RangePartitioner(4, list(range(10)))
        assert 0 <= partitioner.partition(99999) < 4
