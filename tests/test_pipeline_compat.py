"""Facade-vs-stage-graph equivalence grid.

``SparkER`` is a thin wrapper over ``Pipeline.from_spec(SparkER.canonical_
spec(config))``; this module asserts the two entry points are bit-for-bit
identical — retained edges, matched pairs, clusters and reports — on
clean-clean and dirty synthetic datasets, under the serial and process
executors, and that a checkpointed run resumed mid-pipeline reproduces the
uninterrupted result.
"""

from __future__ import annotations

import pytest

from repro.core.config import SparkERConfig
from repro.core.sparker import SparkER
from repro.data.synthetic import SyntheticConfig, generate_abt_buy_like, generate_dirty_persons
from repro.pipeline import Pipeline


def _clean_clean_config() -> SparkERConfig:
    return SparkERConfig.unsupervised_default()


def _dirty_config() -> SparkERConfig:
    config = SparkERConfig.schema_agnostic()
    config.matcher.threshold = 0.5
    return config


_DATASETS = {
    "clean_clean": (
        lambda: generate_abt_buy_like(SyntheticConfig(num_entities=50, seed=11)),
        _clean_clean_config,
    ),
    "dirty": (
        lambda: generate_dirty_persons(num_entities=50, seed=11),
        _dirty_config,
    ),
}

_EXECUTORS = {"driver": None, "serial": "serial", "process": "process:2"}


def _assert_equivalent(facade_result, pipeline_result) -> None:
    """Bit-for-bit equality of every artifact the facade exposes."""
    store = pipeline_result.artifacts
    assert facade_result.candidate_pairs == pipeline_result.candidate_pairs
    assert facade_result.matched_pairs == store.get("similarity_graph").pairs()
    assert [c.members for c in facade_result.clusters] == [
        c.members for c in pipeline_result.clusters
    ]
    assert facade_result.resolved_pairs == {
        pair for c in pipeline_result.clusters for pair in _cluster_pairs(c)
    }
    assert facade_result.entities == pipeline_result.entities
    # Retained meta-blocking edges (weights included) must match exactly.
    facade_meta = facade_result.blocker_report.meta_blocking
    pipeline_meta = store.get("meta_blocking")
    if facade_meta is not None or pipeline_meta is not None:
        assert facade_meta.retained_edges == pipeline_meta.retained_edges
    # The facade's own run *is* a pipeline run — the unified reports match.
    assert facade_result.pipeline_result.report.as_rows() == (
        pipeline_result.report.as_rows()
    )


def _cluster_pairs(cluster):
    from repro.clustering.base import clusters_to_pairs

    return clusters_to_pairs([cluster])


class TestFacadePipelineEquivalence:
    @pytest.mark.parametrize("dataset_key", sorted(_DATASETS))
    @pytest.mark.parametrize("executor_key", sorted(_EXECUTORS))
    def test_facade_matches_canonical_spec(self, dataset_key, executor_key):
        make_dataset, make_config = _DATASETS[dataset_key]
        dataset = make_dataset()
        executor = _EXECUTORS[executor_key]
        use_engine = executor is not None

        facade = SparkER(make_config(), use_engine=use_engine, executor=executor)
        try:
            facade_result = facade.run(dataset.profiles, dataset.ground_truth)
        finally:
            facade.shutdown()

        spec = SparkER.canonical_spec(
            make_config(), use_engine=use_engine, executor=executor
        )
        pipeline = Pipeline.from_spec(spec)
        try:
            pipeline_result = pipeline.run(dataset.profiles, dataset.ground_truth)
        finally:
            pipeline.shutdown()

        _assert_equivalent(facade_result, pipeline_result)

    def test_facade_matches_spec_without_meta_blocking(self):
        dataset = generate_abt_buy_like(SyntheticConfig(num_entities=40, seed=11))
        config = _clean_clean_config()
        config.blocker.use_meta_blocking = False
        facade_result = SparkER(config).run(dataset.profiles, dataset.ground_truth)
        pipeline_result = Pipeline.from_spec(SparkER.canonical_spec(config)).run(
            dataset.profiles, dataset.ground_truth
        )
        _assert_equivalent(facade_result, pipeline_result)

    def test_legacy_report_names_preserved(self, abt_buy_small):
        result = SparkER().run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        names = [stage.stage for stage in result.report.stages]
        assert names == [
            "blocker.loose_schema",
            "blocker.token_blocking",
            "blocker.block_purging",
            "blocker.block_filtering",
            "blocker.meta_blocking",
            "matcher",
            "clusterer",
        ]

    def test_facade_summary_includes_engine_metrics(self, abt_buy_small):
        facade = SparkER(use_engine=True)
        try:
            result = facade.run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        finally:
            facade.shutdown()
        assert result.engine_metrics["tasks"] > 0
        assert result.summary()["engine"]["tasks"] > 0
        # Driver-side runs keep the legacy summary shape (no engine key).
        plain = SparkER().run(abt_buy_small.profiles)
        assert "engine" not in plain.summary()

    def test_engine_metrics_are_per_run_not_lifetime(self, abt_buy_small):
        facade = SparkER(use_engine=True)
        try:
            first = facade.run(abt_buy_small.profiles)
            second = facade.run(abt_buy_small.profiles)
        finally:
            facade.shutdown()
        # The context outlives both runs; each report must count its own run.
        assert second.engine_metrics["tasks"] == first.engine_metrics["tasks"]
        assert second.engine_metrics["shuffle_records"] == (
            first.engine_metrics["shuffle_records"]
        )

    def test_schema_agnostic_ignores_user_partitioning(self, abt_buy_small):
        """The legacy Blocker only consulted a partitioning on the
        loose-schema path; a schema-agnostic config must block identically
        with or without one."""
        from repro.looseschema.attribute_partitioning import AttributePartitioner

        partitioning = AttributePartitioner(threshold=0.3).partition(
            abt_buy_small.profiles
        )
        config = SparkERConfig.schema_agnostic()
        plain = SparkER(config).run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        seeded = SparkER(config, partitioning=partitioning).run(
            abt_buy_small.profiles, abt_buy_small.ground_truth
        )
        assert seeded.candidate_pairs == plain.candidate_pairs
        assert seeded.matched_pairs == plain.matched_pairs
        assert seeded.blocker_report.partitioning is None

    def test_engine_run_metrics_keep_gauges(self, abt_buy_small):
        facade = SparkER(use_engine=True)
        try:
            result = facade.run(abt_buy_small.profiles)
        finally:
            facade.shutdown()
        # Counters are per-run deltas; configuration gauges pass through.
        assert result.engine_metrics["default_parallelism"] == 4
        assert result.engine_metrics["tasks"] > 0

    def test_engine_backed_provenance_spec_round_trips(self, abt_buy_small):
        facade = SparkER(use_engine=True, executor="process:2")
        try:
            result = facade.run(abt_buy_small.profiles)
        finally:
            facade.shutdown()
        engine_section = result.pipeline_result.spec["engine"]
        assert engine_section["enabled"] is True
        assert engine_section["executor"] == "process:2"


class TestCheckpointResumeEquivalence:
    @pytest.mark.parametrize("executor_key", ["driver", "process"])
    def test_killed_after_meta_blocking_then_resumed(self, executor_key, tmp_path):
        dataset = generate_abt_buy_like(SyntheticConfig(num_entities=50, seed=11))
        executor = _EXECUTORS[executor_key]
        use_engine = executor is not None
        spec = SparkER.canonical_spec(
            _clean_clean_config(), use_engine=use_engine, executor=executor
        )

        pipeline = Pipeline.from_spec(spec)
        try:
            uninterrupted = pipeline.run(dataset.profiles, dataset.ground_truth)
        finally:
            pipeline.shutdown()

        checkpoint = tmp_path / "ckpt"
        interrupted = Pipeline.from_spec(spec)
        try:
            partial = interrupted.run(
                dataset.profiles,
                dataset.ground_truth,
                checkpoint=checkpoint,
                stop_after="meta_blocking",
            )
        finally:
            interrupted.shutdown()
        assert partial.partial
        assert "similarity_graph" not in partial.artifacts

        resumed = Pipeline.resume(checkpoint)
        assert resumed.candidate_pairs == uninterrupted.candidate_pairs
        assert resumed.artifacts.get("meta_blocking").retained_edges == (
            uninterrupted.artifacts.get("meta_blocking").retained_edges
        )
        assert resumed.similarity_graph.pairs() == (
            uninterrupted.similarity_graph.pairs()
        )
        assert [c.members for c in resumed.clusters] == [
            c.members for c in uninterrupted.clusters
        ]
        assert resumed.entities == uninterrupted.entities
        assert resumed.report.as_rows() == uninterrupted.report.as_rows()
