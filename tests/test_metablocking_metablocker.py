"""Tests of the sequential meta-blocker and the entropy re-weighting."""

from repro.blocking.block import Block, BlockCollection
from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.blocking.token_blocking import TokenBlocking
from repro.metablocking.entropy_weighting import apply_entropy_weights
from repro.metablocking.graph import build_blocking_graph
from repro.metablocking.metablocker import MetaBlocker
from repro.metablocking.weights import weight_all_edges


class TestMetaBlockerToy:
    def test_figure1_pruning_keeps_heaviest_edges(self, toy_dataset):
        # Figure 1(c): edges weighted by common blocks (CBS), retained when the
        # weight is at least the average.
        blocks = TokenBlocking(remove_stopwords=True).block(toy_dataset.profiles)
        result = MetaBlocker("cbs", "wep").run(blocks)
        # The heaviest edge connects p1 (Blast) with p4 (Blast chapter) — a true match.
        assert (0, 3) in result.candidate_pairs
        # Both ground-truth pairs survive the pruning.
        for pair in toy_dataset.ground_truth:
            assert pair in result.candidate_pairs

    def test_prunes_something_on_synthetic(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        result = MetaBlocker("cbs", "wep").run(blocks)
        assert 0 < result.num_candidates < result.graph_edges

    def test_result_as_dict(self, toy_dataset):
        blocks = TokenBlocking().block(toy_dataset.profiles)
        summary = MetaBlocker().run(blocks).as_dict()
        assert {"graph_nodes", "graph_edges", "candidate_pairs"} <= set(summary)

    def test_retained_edges_subset_of_graph(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        graph = build_blocking_graph(blocks)
        result = MetaBlocker("js", "wnp").run(blocks)
        assert set(result.retained_edges) <= set(graph.edges)

    def test_recall_mostly_preserved(self, abt_buy_small):
        blocks = BlockFiltering().filter(
            BlockPurging().purge(
                TokenBlocking().block(abt_buy_small.profiles), len(abt_buy_small.profiles)
            )
        )
        result = MetaBlocker("cbs", "wnp").run(blocks)
        truth = abt_buy_small.ground_truth.pairs()
        before = blocks.distinct_comparisons() & truth
        after = result.candidate_pairs & truth
        assert len(after) >= 0.85 * len(before)

    def test_empty_blocks(self):
        result = MetaBlocker().run(BlockCollection(clean_clean=True))
        assert result.num_candidates == 0


class TestEntropyWeighting:
    def _entropy_blocks(self) -> BlockCollection:
        return BlockCollection(
            [
                Block(key="high_1", profiles_source0={0}, profiles_source1={5},
                      entropy=1.0, clean_clean=True),
                Block(key="low_1", profiles_source0={1}, profiles_source1={5},
                      entropy=0.1, clean_clean=True),
            ],
            clean_clean=True,
        )

    def test_low_entropy_edges_damped(self):
        blocks = self._entropy_blocks()
        graph = build_blocking_graph(blocks)
        weights = weight_all_edges(graph, "cbs")
        reweighted = apply_entropy_weights(graph, weights)
        assert reweighted[(0, 5)] == 1.0
        assert abs(reweighted[(1, 5)] - 0.1) < 1e-12

    def test_default_entropy_is_noop(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        graph = build_blocking_graph(blocks)
        weights = weight_all_edges(graph, "cbs")
        assert apply_entropy_weights(graph, weights) == weights

    def test_entropy_changes_pruning_outcome(self):
        # With entropy, the low-entropy edge drops below the WEP threshold.
        blocks = self._entropy_blocks()
        without = MetaBlocker("cbs", "wep", use_entropy=False).run(blocks)
        with_entropy = MetaBlocker("cbs", "wep", use_entropy=True).run(blocks)
        assert (1, 5) in without.candidate_pairs
        assert (1, 5) not in with_entropy.candidate_pairs
        assert (0, 5) in with_entropy.candidate_pairs

    def test_unknown_edge_factor_one(self):
        graph = build_blocking_graph(self._entropy_blocks())
        weights = {(42, 43): 2.0}
        assert apply_entropy_weights(graph, weights) == {(42, 43): 2.0}
