"""Out-of-core meta-blocking: streamed emission, memmap lifecycle, lazy data.

Three contracts of the out-of-core path:

* :meth:`MetaBlocker.stream_retained` (and the parallel wrapper) yields the
  retained edges in bounded chunks whose concatenation equals
  ``run(blocks).retained_edges.items()`` exactly — same edges, same floats,
  same order — for every strategy, chunk size and buffer backend;
* the ``memmap`` buffer backend's on-disk file follows the managed-artifact
  lifecycle: created under the resolved temp root, unlinked on ``close()``
  (or GC), survivable by pickle as a private ram copy, reclaimed by the
  dead-pid sweep after a crash;
* the lazy synthetic generators (:func:`iter_abt_buy_like`,
  :func:`iter_scalability_products`) replay the eager generators bit-for-bit
  so the committed scalability baselines are reproducible from the stream.
"""

from __future__ import annotations

import gc
import os
import pickle
import random
import subprocess
import sys

import pytest

from repro.blocking.block import Block, BlockCollection
from repro.data.synthetic import (
    SyntheticConfig,
    generate_abt_buy_like,
    generate_scalability_products,
    iter_abt_buy_like,
    iter_scalability_products,
)
from repro.engine import tmpfiles
from repro.engine.context import EngineContext
from repro.exceptions import MetaBlockingError
from repro.metablocking.backends import numpy_available
from repro.metablocking.index import _SHARED_FIELDS, CSRBlockIndex
from repro.metablocking.metablocker import MetaBlocker
from repro.metablocking.parallel import ParallelMetaBlocker
from repro.metablocking.pruning import WeightedNodePruning

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="memmap buffer backend requires numpy"
)

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _collection(seed: int = 11) -> BlockCollection:
    """A small clean-clean collection with entropies and invalid blocks."""
    rng = random.Random(seed)
    collection = BlockCollection(clean_clean=True)
    for index in range(120):
        collection.add(
            Block(
                key=f"b-{index}",
                profiles_source0={rng.randrange(80) for _ in range(rng.randint(0, 5))},
                profiles_source1={500 + rng.randrange(80) for _ in range(rng.randint(0, 5))},
                entropy=rng.uniform(0.1, 2.0),
                clean_clean=True,
            )
        )
    return collection


@pytest.fixture(scope="module")
def blocks():
    return _collection()


class _CustomWNP(WeightedNodePruning):
    """A subclass the vectorised dispatch must refuse (fallback coverage)."""


class TestStreamedEmission:
    @pytest.mark.parametrize("pruning", ["wep", "cep", "wnp", "cnp"])
    @pytest.mark.parametrize("weighting", ["cbs", "js", "arcs", "ecbs", "ejs"])
    def test_stream_equals_run_items(self, blocks, weighting, pruning):
        blocker = MetaBlocker(weighting, pruning, use_entropy=True)
        reference = list(blocker.run(blocks).retained_edges.items())
        streamed = [
            edge
            for chunk in blocker.stream_retained(blocks, chunk_edges=97)
            for edge in chunk
        ]
        assert streamed == reference
        assert reference  # the grid must retain something to mean anything

    @pytest.mark.parametrize("chunk_edges", [1, 13, 65536])
    def test_chunks_are_bounded(self, blocks, chunk_edges):
        blocker = MetaBlocker("cbs", "wnp")
        chunks = list(blocker.stream_retained(blocks, chunk_edges=chunk_edges))
        assert all(len(chunk) <= chunk_edges for chunk in chunks)
        assert all(chunks)  # no empty chunks
        total = sum(len(chunk) for chunk in chunks)
        assert total == len(blocker.run(blocks).retained_edges)

    def test_custom_strategy_falls_back_to_run(self, blocks):
        blocker = MetaBlocker("js", _CustomWNP())
        reference = list(blocker.run(blocks).retained_edges.items())
        streamed = [
            edge
            for chunk in blocker.stream_retained(blocks, chunk_edges=50)
            for edge in chunk
        ]
        assert streamed == reference

    def test_parallel_stream_equals_run_items(self, blocks):
        blocker = ParallelMetaBlocker(EngineContext(4), "ejs", "rwnp")
        reference = list(blocker.run(blocks).retained_edges.items())
        streamed = [
            edge
            for chunk in blocker.stream_retained(blocks, chunk_edges=31)
            for edge in chunk
        ]
        assert streamed == reference

    def test_empty_collection_streams_nothing(self):
        empty = BlockCollection(clean_clean=True)
        assert list(MetaBlocker("cbs", "wep").stream_retained(empty)) == []

    @needs_numpy
    def test_iter_retained_chunks_rejects_nonpositive_chunk(self, blocks):
        from repro.metablocking import backends

        index = CSRBlockIndex.from_blocks(blocks, backend="numpy")
        plan = index.weight_plan("cbs", False)
        table = index.kernel().weight_arrays(plan)
        positions = backends.retained_positions(
            MetaBlocker("cbs", "wep").pruning, table, index
        )
        for bad in (0, -4):
            with pytest.raises(MetaBlockingError):
                next(backends.iter_retained_chunks(table, positions, bad))


@needs_numpy
class TestMemmapLifecycle:
    def test_buffer_file_lives_under_tmp_dir_until_close(self, blocks, tmp_path):
        index = CSRBlockIndex.from_blocks(
            blocks, buffer_backend="memmap", tmp_dir=str(tmp_path)
        )
        path = index.memmap_path
        assert path is not None
        assert os.path.dirname(path) == str(tmp_path)
        assert os.path.basename(path).startswith(f"repro-csrbuf-{os.getpid()}-")
        assert os.path.exists(path)
        assert path in tmpfiles.live_artifacts("csrbuf")
        index.close()
        assert not os.path.exists(path)
        assert path not in tmpfiles.live_artifacts("csrbuf")
        index.close()  # idempotent

    def test_gc_finalizer_removes_file(self, blocks, tmp_path):
        index = CSRBlockIndex.from_blocks(
            blocks, buffer_backend="memmap", tmp_dir=str(tmp_path)
        )
        path = index.memmap_path
        assert os.path.exists(path)
        del index
        gc.collect()
        assert not os.path.exists(path)

    def test_ram_backend_has_no_file(self, blocks):
        index = CSRBlockIndex.from_blocks(blocks, buffer_backend="ram")
        assert index.buffer_backend == "ram"
        assert index.memmap_path is None
        index.close()  # must be a safe no-op

    def test_memmap_vectors_equal_ram_vectors(self, blocks, tmp_path):
        ram = CSRBlockIndex.from_blocks(blocks, buffer_backend="ram")
        memmap = CSRBlockIndex.from_blocks(
            blocks, buffer_backend="memmap", tmp_dir=str(tmp_path)
        )
        try:
            assert memmap.node_ids == ram.node_ids
            for field, _typecode in _SHARED_FIELDS:
                assert list(getattr(memmap, field)) == list(getattr(ram, field))
        finally:
            memmap.close()

    def test_pickle_round_trip_restores_private_ram_copy(self, blocks, tmp_path):
        index = CSRBlockIndex.from_blocks(
            blocks, buffer_backend="memmap", tmp_dir=str(tmp_path)
        )
        try:
            clone = pickle.loads(pickle.dumps(index))
            # The file is local to the building process: the receiver holds
            # bit-identical ram buffers, the label survives, no file path.
            assert clone.buffer_backend == "memmap"
            assert clone.memmap_path is None
            assert clone.node_ids == index.node_ids
            for field, typecode in _SHARED_FIELDS:
                restored = getattr(clone, field)
                assert restored.typecode == typecode
                assert list(restored) == list(getattr(index, field))
        finally:
            index.close()

    def test_shared_memory_round_trip_from_memmap(self, blocks, tmp_path):
        from repro.metablocking import sharedmem

        index = CSRBlockIndex.from_blocks(
            blocks, backend="numpy", buffer_backend="memmap", tmp_dir=str(tmp_path)
        )
        reference = MetaBlocker("cbs", "wnp").run(blocks).retained_edges
        try:
            index.export_shared()
            clone = pickle.loads(pickle.dumps(index))
            assert list(clone.node_ids) == list(index.node_ids)
            for field, _typecode in _SHARED_FIELDS:
                assert list(getattr(clone, field)) == list(getattr(index, field))
            del clone
            gc.collect()
        finally:
            index.close()
        assert sharedmem.live_segments() == []
        assert tmpfiles.live_artifacts("csrbuf") == []

    def test_crash_mid_run_is_reclaimed_by_the_sweep(self, blocks, tmp_path):
        # A process that dies holding an open memmap buffer cannot unlink
        # it; the next session's dead-pid sweep must. Simulate the crash
        # with a child that builds the index and hard-exits.
        script = (
            "import os, random, sys\n"
            "from repro.blocking.block import Block, BlockCollection\n"
            "from repro.metablocking.index import CSRBlockIndex\n"
            "rng = random.Random(3)\n"
            "blocks = BlockCollection(clean_clean=False)\n"
            "for i in range(40):\n"
            "    blocks.add(Block(key=str(i),\n"
            "        profiles_source0={rng.randrange(30) for _ in range(3)}))\n"
            "index = CSRBlockIndex.from_blocks(\n"
            "    blocks, buffer_backend='memmap', tmp_dir=sys.argv[1])\n"
            "print(index.memmap_path, flush=True)\n"
            "os._exit(0)\n"
        )
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        output = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            env=env, capture_output=True, text=True, check=True,
        ).stdout.strip()
        assert os.path.exists(output)  # the crash orphaned the file
        removed = tmpfiles.sweep_orphaned_artifacts(str(tmp_path))
        assert output in removed
        assert not os.path.exists(output)

    def test_run_with_memmap_leaves_no_artifacts(self, blocks, tmp_path):
        result = MetaBlocker(
            "ecbs", "cep", buffer_backend="memmap", tmp_dir=str(tmp_path)
        ).run(blocks)
        assert result.num_candidates > 0
        assert tmpfiles.live_artifacts("csrbuf") == []
        assert list(tmp_path.iterdir()) == []


class TestLazyGenerators:
    @pytest.mark.parametrize("num_entities,seed", [(300, 42), (137, 7), (0, 5), (1, 9)])
    def test_iter_abt_buy_matches_eager(self, num_entities, seed):
        config = SyntheticConfig(num_entities=num_entities, seed=seed)
        dataset = generate_abt_buy_like(config)
        profiles, matches = [], set()
        for profile, match in iter_abt_buy_like(config):
            profiles.append(profile)
            if match is not None:
                matches.add(match)
        assert [
            (p.profile_id, p.original_id, p.source_id, p.attributes)
            for p in profiles
        ] == [
            (p.profile_id, p.original_id, p.source_id, p.attributes)
            for p in dataset.profiles
        ]
        assert {tuple(sorted(pair)) for pair in matches} == dataset.ground_truth.pairs()

    @pytest.mark.parametrize("num_entities,seed", [(500, 42), (64, 3)])
    def test_iter_scalability_matches_eager(self, num_entities, seed):
        dataset = generate_scalability_products(num_entities, seed=seed)
        profiles, matches = [], set()
        for profile, match in iter_scalability_products(num_entities, seed=seed):
            profiles.append(profile)
            if match is not None:
                matches.add(match)
        assert [
            (p.profile_id, p.original_id, p.source_id, p.attributes)
            for p in profiles
        ] == [
            (p.profile_id, p.original_id, p.source_id, p.attributes)
            for p in dataset.profiles
        ]
        assert {tuple(sorted(pair)) for pair in matches} == dataset.ground_truth.pairs()

    def test_scalability_generator_is_deterministic(self):
        first = [
            (p.profile_id, p.original_id, p.attributes, match)
            for p, match in iter_scalability_products(400, seed=11)
        ]
        second = [
            (p.profile_id, p.original_id, p.attributes, match)
            for p, match in iter_scalability_products(400, seed=11)
        ]
        assert first == second
        reseeded = [
            (p.profile_id, p.original_id, p.attributes, match)
            for p, match in iter_scalability_products(400, seed=12)
        ]
        assert first != reseeded

    def test_scalability_generator_shape(self):
        dataset = generate_scalability_products(200, seed=42, match_rate=0.5)
        sources = {p.source_id for p in dataset.profiles}
        assert sources == {0, 1}
        num_source1 = sum(1 for p in dataset.profiles if p.source_id == 1)
        assert num_source1 == len(dataset.ground_truth)
        assert 0 < num_source1 < 200
        for a, b in dataset.ground_truth:
            assert dataset.profiles[a].source_id != dataset.profiles[b].source_id
