"""Tests of loose-schema (BLAST) token blocking."""

from repro.blocking.loose_schema_blocking import LooseSchemaTokenBlocking
from repro.blocking.token_blocking import TokenBlocking
from repro.looseschema.attribute_partitioning import AttributePartitioner, AttributePartitioning


def _toy_partitioning() -> AttributePartitioning:
    """Figure 2(a): {Name, Title, Abstract} and {Authors, Author} clusters."""
    return AttributePartitioning(
        clusters={
            0: {(0, "year")},
            1: {(0, "Authors"), (1, "author")},
            2: {(0, "Name"), (0, "Abstract"), (1, "title")},
        }
    )


class TestLooseSchemaKeys:
    def test_key_format(self, toy_dataset):
        blocker = LooseSchemaTokenBlocking(_toy_partitioning())
        assert blocker.key_for("simonini", "Authors") == "simonini_1"
        assert blocker.key_for("simonini", "Abstract") == "simonini_2"

    def test_unknown_attribute_goes_to_blob(self):
        blocker = LooseSchemaTokenBlocking(_toy_partitioning())
        assert blocker.key_for("token", "unknown_attribute") == "token_0"

    def test_simonini_disambiguated(self, toy_dataset):
        # Figure 2(b): the token "simonini" is split into simonini_1 (author
        # cluster: p1, p4) and simonini_2 (title/abstract cluster: p2).
        blocks = LooseSchemaTokenBlocking(_toy_partitioning()).block(toy_dataset.profiles)
        keys = {block.key: block for block in blocks}
        assert "simonini_1" in keys
        assert keys["simonini_1"].all_profiles() == {0, 3}
        # simonini_2 appears only in p2, so it generates no valid block.
        assert "simonini_2" not in keys

    def test_fewer_or_equal_comparisons_than_schema_agnostic(self, abt_buy_small):
        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy_small.profiles)
        loose = LooseSchemaTokenBlocking(partitioning).block(abt_buy_small.profiles)
        agnostic = TokenBlocking().block(abt_buy_small.profiles)
        assert len(loose.distinct_comparisons()) <= len(agnostic.distinct_comparisons())

    def test_blob_only_equals_schema_agnostic(self, abt_buy_small):
        # With every attribute in the blob, loose-schema keys are token_0 for
        # everyone — the same candidate pairs as schema-agnostic blocking.
        blob_partitioning = AttributePartitioner(threshold=1.0).partition(
            abt_buy_small.profiles
        )
        loose = LooseSchemaTokenBlocking(blob_partitioning).block(abt_buy_small.profiles)
        agnostic = TokenBlocking().block(abt_buy_small.profiles)
        assert loose.distinct_comparisons() == agnostic.distinct_comparisons()

    def test_entropy_attached_to_blocks(self, abt_buy_small):
        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy_small.profiles)
        entropies = {cluster_id: 0.5 for cluster_id in partitioning.clusters}
        entropies[partitioning.blob_cluster_id] = 0.25
        blocks = LooseSchemaTokenBlocking(
            partitioning, cluster_entropies=entropies
        ).block(abt_buy_small.profiles)
        observed = {block.entropy for block in blocks}
        assert observed <= {0.5, 0.25}

    def test_default_entropy_when_not_supplied(self, abt_buy_small):
        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy_small.profiles)
        blocks = LooseSchemaTokenBlocking(partitioning).block(abt_buy_small.profiles)
        assert all(block.entropy == 1.0 for block in blocks)

    def test_clean_clean_preserved(self, abt_buy_small):
        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy_small.profiles)
        blocks = LooseSchemaTokenBlocking(partitioning).block(abt_buy_small.profiles)
        assert blocks.clean_clean

    def test_distributed_matches_local(self, engine, abt_buy_small):
        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy_small.profiles)
        local = LooseSchemaTokenBlocking(partitioning).block(abt_buy_small.profiles)
        distributed = LooseSchemaTokenBlocking(partitioning, engine=engine).block(
            abt_buy_small.profiles
        )
        assert local.distinct_comparisons() == distributed.distinct_comparisons()

    def test_recall_stays_high(self, abt_buy_small):
        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy_small.profiles)
        blocks = LooseSchemaTokenBlocking(partitioning).block(abt_buy_small.profiles)
        pairs = blocks.distinct_comparisons()
        truth = abt_buy_small.ground_truth.pairs()
        recall = len(pairs & truth) / len(truth)
        assert recall > 0.9
