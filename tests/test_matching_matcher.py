"""Tests of threshold / rule-based matchers and the similarity graph."""

import pytest

from repro.data.dataset import ProfileCollection
from repro.data.profile import EntityProfile
from repro.exceptions import MatchingError
from repro.matching.matcher import MatchingRule, RuleBasedMatcher, ThresholdMatcher
from repro.matching.similarity_graph import SimilarityEdge, SimilarityGraph


def _profiles() -> ProfileCollection:
    p0 = EntityProfile(profile_id=0, source_id=0)
    p0.add("name", "sony bravia 40 inch tv")
    p0.add("price", "499")
    p1 = EntityProfile(profile_id=1, source_id=1)
    p1.add("title", "sony bravia 40 inch television")
    p1.add("list_price", "510")
    p2 = EntityProfile(profile_id=2, source_id=1)
    p2.add("title", "whirlpool stainless dishwasher")
    p2.add("list_price", "300")
    return ProfileCollection([p0, p1, p2])


class TestSimilarityGraph:
    def test_add_and_contains(self):
        graph = SimilarityGraph()
        graph.add(2, 1, 0.8)
        assert (1, 2) in graph
        assert (2, 1) in graph
        assert graph.score_of(1, 2) == 0.8

    def test_higher_score_wins(self):
        graph = SimilarityGraph()
        graph.add(1, 2, 0.5)
        graph.add(2, 1, 0.9)
        graph.add(1, 2, 0.3)
        assert graph.score_of(1, 2) == 0.9
        assert len(graph) == 1

    def test_nodes_and_pairs(self):
        graph = SimilarityGraph([SimilarityEdge(1, 2, 0.5), SimilarityEdge(3, 4, 0.6)])
        assert graph.nodes() == {1, 2, 3, 4}
        assert graph.pairs() == {(1, 2), (3, 4)}

    def test_edges_above(self):
        graph = SimilarityGraph([SimilarityEdge(1, 2, 0.5), SimilarityEdge(3, 4, 0.9)])
        filtered = graph.edges_above(0.8)
        assert filtered.pairs() == {(3, 4)}

    def test_missing_score_none(self):
        assert SimilarityGraph().score_of(1, 2) is None


class TestThresholdMatcher:
    def test_matches_similar_pair(self):
        profiles = _profiles()
        matcher = ThresholdMatcher("jaccard", threshold=0.4)
        graph = matcher.match(profiles, [(0, 1), (0, 2)])
        assert (0, 1) in graph
        assert (0, 2) not in graph

    def test_score_in_unit_interval(self):
        profiles = _profiles()
        matcher = ThresholdMatcher("jaccard", threshold=0.0)
        assert 0.0 <= matcher.score(profiles[0], profiles[1]) <= 1.0

    def test_threshold_one_matches_only_identical(self):
        profiles = _profiles()
        graph = ThresholdMatcher("jaccard", threshold=1.0).match(profiles, [(0, 1)])
        assert len(graph) == 0

    def test_invalid_threshold(self):
        with pytest.raises(MatchingError):
            ThresholdMatcher(threshold=1.5)

    def test_unknown_similarity(self):
        with pytest.raises(MatchingError):
            ThresholdMatcher(similarity="nope")

    def test_different_similarities_give_different_graphs(self):
        profiles = _profiles()
        jaccard = ThresholdMatcher("jaccard", 0.3).match(profiles, [(0, 1), (0, 2)])
        levenshtein = ThresholdMatcher("levenshtein", 0.3).match(profiles, [(0, 1), (0, 2)])
        assert isinstance(jaccard, SimilarityGraph)
        assert isinstance(levenshtein, SimilarityGraph)


class TestRuleBasedMatcher:
    def test_conjunction_of_rules(self):
        profiles = _profiles()
        matcher = RuleBasedMatcher(
            [
                MatchingRule("jaccard", 0.4, "name", "title"),
                MatchingRule("numeric", 0.9, "price", "list_price"),
            ]
        )
        graph = matcher.match(profiles, [(0, 1), (0, 2)])
        assert (0, 1) in graph
        assert (0, 2) not in graph

    def test_single_failing_rule_rejects(self):
        profiles = _profiles()
        matcher = RuleBasedMatcher(
            [
                MatchingRule("jaccard", 0.4, "name", "title"),
                MatchingRule("numeric", 0.999, "price", "list_price"),
            ]
        )
        graph = matcher.match(profiles, [(0, 1)])
        assert len(graph) == 0

    def test_whole_profile_rule(self):
        profiles = _profiles()
        matcher = RuleBasedMatcher([MatchingRule("jaccard", 0.3)])
        assert matcher.is_match(profiles[0], profiles[1])

    def test_empty_rules_rejected(self):
        with pytest.raises(MatchingError):
            RuleBasedMatcher([])

    def test_score_is_mean_of_rules(self):
        profiles = _profiles()
        matcher = RuleBasedMatcher(
            [MatchingRule("jaccard", 0.1, "name", "title"), MatchingRule("numeric", 0.1, "price", "list_price")]
        )
        score = matcher.score(profiles[0], profiles[1])
        assert 0.0 <= score <= 1.0
