"""Integration tests of the supervised mode: labeled pairs + custom partitioning.

The demo's supervised mode lets the user (i) inject knowledge into the
attribute partitioning and (ii) train the matcher on labeled pairs.  These
tests exercise the two together through the public API.
"""

import random

import pytest

from repro.core.config import SparkERConfig
from repro.core.sparker import SparkER
from repro.looseschema.attribute_partitioning import AttributePartitioner
from repro.matching.matcher import MatchingRule


def _labeled_pairs(dataset, num_negative=50, seed=2):
    rng = random.Random(seed)
    positives = [(a, b, True) for a, b in dataset.ground_truth]
    ids0 = [p.profile_id for p in dataset.profiles.by_source(0)]
    ids1 = [p.profile_id for p in dataset.profiles.by_source(1)]
    negatives = []
    while len(negatives) < num_negative:
        a, b = rng.choice(ids0), rng.choice(ids1)
        if (a, b) not in dataset.ground_truth:
            negatives.append((a, b, False))
    return positives + negatives


class TestSupervisedPipeline:
    def test_classifier_matcher_end_to_end(self, abt_buy_small):
        config = SparkERConfig.unsupervised_default()
        config.matcher.mode = "classifier"
        config.matcher.classifier_epochs = 150
        pipeline = SparkER(config, labeled_pairs=_labeled_pairs(abt_buy_small))
        result = pipeline.run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        metrics = result.report.get("clusterer").metrics
        assert metrics["f1"] > 0.7

    def test_user_partitioning_end_to_end(self, abt_buy_small):
        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy_small.profiles)
        config = SparkERConfig.unsupervised_default()
        pipeline = SparkER(config, partitioning=partitioning)
        result = pipeline.run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        assert result.blocker_report.partitioning is partitioning
        assert result.report.get("clusterer").metrics["recall"] > 0.6

    def test_rule_matcher_end_to_end(self, abt_buy_small):
        config = SparkERConfig.unsupervised_default()
        config.matcher.mode = "rules"
        rules = [MatchingRule("jaccard", 0.3)]
        pipeline = SparkER(config, rules=rules)
        result = pipeline.run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        assert result.summary()["matched_pairs"] > 0

    def test_supervised_beats_bad_unsupervised_threshold(self, abt_buy_small):
        # A deliberately bad unsupervised threshold loses recall; the trained
        # classifier recovers it — the value proposition of the supervised mode.
        bad = SparkERConfig.unsupervised_default()
        bad.matcher.threshold = 0.9
        bad_result = SparkER(bad).run(abt_buy_small.profiles, abt_buy_small.ground_truth)

        supervised = SparkERConfig.unsupervised_default()
        supervised.matcher.mode = "classifier"
        supervised.matcher.classifier_epochs = 150
        supervised_result = SparkER(
            supervised, labeled_pairs=_labeled_pairs(abt_buy_small)
        ).run(abt_buy_small.profiles, abt_buy_small.ground_truth)

        bad_recall = bad_result.report.get("clusterer").metrics["recall"]
        supervised_recall = supervised_result.report.get("clusterer").metrics["recall"]
        assert supervised_recall > bad_recall

    def test_config_persistence_roundtrip(self, abt_buy_small, tmp_path):
        # The demo stores the tuned configuration and re-applies it in batch
        # mode; here: serialise to JSON, reload, rerun, same candidate count.
        import json

        config = SparkERConfig.unsupervised_default()
        config.blocker.attribute_threshold = 0.25
        first = SparkER(config).run(abt_buy_small.profiles, abt_buy_small.ground_truth)

        path = tmp_path / "config.json"
        path.write_text(json.dumps(config.as_dict()))
        reloaded = SparkERConfig.from_dict(json.loads(path.read_text()))
        second = SparkER(reloaded).run(abt_buy_small.profiles, abt_buy_small.ground_truth)

        assert first.summary()["candidate_pairs"] == second.summary()["candidate_pairs"]


class TestConfigurationErrors:
    def test_classifier_without_labels_fails_cleanly(self, abt_buy_small):
        from repro.exceptions import MatchingError

        config = SparkERConfig.unsupervised_default()
        config.matcher.mode = "classifier"
        with pytest.raises(MatchingError):
            SparkER(config).run(abt_buy_small.profiles)

    def test_rules_without_rules_fails_cleanly(self, abt_buy_small):
        from repro.exceptions import ConfigurationError

        config = SparkERConfig.unsupervised_default()
        config.matcher.mode = "rules"
        with pytest.raises(ConfigurationError):
            SparkER(config).run(abt_buy_small.profiles)
