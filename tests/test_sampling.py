"""Tests of the process-debugging sampler."""

import pytest

from repro.data.dataset import ProfileCollection
from repro.exceptions import DataError
from repro.sampling.debug_sampler import DebugSampler


class TestDebugSampler:
    def test_sample_smaller_than_input(self, abt_buy_medium):
        sample = DebugSampler(num_seeds=10, per_seed=6).sample(
            abt_buy_medium.profiles, abt_buy_medium.ground_truth
        )
        assert 0 < len(sample.profiles) < len(abt_buy_medium.profiles)

    def test_sample_contains_matches(self, abt_buy_medium):
        # The whole point of the Magellan-style sampler: the sample must keep
        # matching pairs, not only random (mostly non-matching) profiles.
        sample = DebugSampler(num_seeds=20, per_seed=10).sample(
            abt_buy_medium.profiles, abt_buy_medium.ground_truth
        )
        assert len(sample.ground_truth) > 0

    def test_deterministic(self, abt_buy_small):
        first = DebugSampler(seed=5).sample(abt_buy_small.profiles, abt_buy_small.ground_truth)
        second = DebugSampler(seed=5).sample(abt_buy_small.profiles, abt_buy_small.ground_truth)
        assert first.profiles.ids() == second.profiles.ids()

    def test_seed_changes_sample(self, abt_buy_medium):
        first = DebugSampler(seed=1).sample(abt_buy_medium.profiles)
        second = DebugSampler(seed=2).sample(abt_buy_medium.profiles)
        assert first.profiles.ids() != second.profiles.ids()

    def test_larger_parameters_larger_sample(self, abt_buy_medium):
        small = DebugSampler(num_seeds=5, per_seed=4).sample(abt_buy_medium.profiles)
        large = DebugSampler(num_seeds=30, per_seed=10).sample(abt_buy_medium.profiles)
        assert len(large.profiles) > len(small.profiles)

    def test_both_sources_present(self, abt_buy_medium):
        sample = DebugSampler(num_seeds=10, per_seed=6).sample(abt_buy_medium.profiles)
        assert sample.profiles.sources() == {0, 1}

    def test_ground_truth_restricted(self, abt_buy_medium):
        sample = DebugSampler().sample(abt_buy_medium.profiles, abt_buy_medium.ground_truth)
        sampled_ids = set(sample.profiles.ids())
        for a, b in sample.ground_truth:
            assert a in sampled_ids and b in sampled_ids

    def test_works_without_ground_truth(self, abt_buy_small):
        sample = DebugSampler().sample(abt_buy_small.profiles)
        assert len(sample.ground_truth) == 0

    def test_dirty_dataset(self, dirty_persons_small):
        sample = DebugSampler(num_seeds=10, per_seed=6).sample(
            dirty_persons_small.profiles, dirty_persons_small.ground_truth
        )
        assert 0 < len(sample.profiles) <= len(dirty_persons_small.profiles)

    def test_empty_collection_raises(self):
        with pytest.raises(DataError):
            DebugSampler().sample(ProfileCollection())

    def test_invalid_parameters(self):
        with pytest.raises(DataError):
            DebugSampler(num_seeds=0)

    def test_summary(self, abt_buy_small):
        sample = DebugSampler(num_seeds=5, per_seed=4).sample(
            abt_buy_small.profiles, abt_buy_small.ground_truth
        )
        summary = sample.summary()
        assert summary["seeds"] == 5
        assert summary["profiles"] == len(sample.profiles)
