"""Tests of tokenization."""

import pytest

from repro.utils.tokenize import character_ngrams, ngrams, token_set, tokenize, tokenize_profile


class TestTokenize:
    def test_basic_split(self):
        assert tokenize("Sony HD camcorder") == ["sony", "hd", "camcorder"]

    def test_punctuation_becomes_separator(self):
        assert tokenize("meta-blocking") == ["meta", "blocking"]

    def test_min_length_filters(self):
        assert tokenize("a bb ccc", min_length=2) == ["bb", "ccc"]

    def test_stopword_removal(self):
        assert tokenize("the sony camera", remove_stopwords=True) == ["sony", "camera"]

    def test_stopwords_kept_by_default(self):
        assert "the" in tokenize("the sony camera")

    def test_empty(self):
        assert tokenize("") == []

    def test_token_set_is_set(self):
        assert token_set("sony sony camera") == {"sony", "camera"}


class TestTokenizeProfile:
    def test_pairs_preserve_attribute(self):
        pairs = tokenize_profile([("name", "Sony TV"), ("price", "99")])
        assert ("name", "sony") in pairs
        assert ("name", "tv") in pairs
        assert ("price", "99") in pairs

    def test_empty_values_skipped(self):
        assert tokenize_profile([("name", "")]) == []


class TestNgrams:
    def test_bigrams(self):
        assert list(ngrams(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]

    def test_n_larger_than_input(self):
        assert list(ngrams(["a"], 3)) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            list(ngrams(["a"], 0))


class TestCharacterNgrams:
    def test_trigrams(self):
        assert character_ngrams("sony", 3) == ["son", "ony"]

    def test_short_string(self):
        assert character_ngrams("so", 3) == ["so"]

    def test_empty_string(self):
        assert character_ngrams("", 3) == []

    def test_padding(self):
        grams = character_ngrams("ab", 3, pad=True)
        assert grams[0].startswith("#")
        assert grams[-1].endswith("#")

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            character_ngrams("abc", 0)

    def test_normalisation_applied(self):
        assert character_ngrams("AB-C", 2) == ["ab", "b ", " c"]
