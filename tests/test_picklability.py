"""Pickle round-trip coverage for everything the process executor ships.

The multiprocessing executor works by pickling (a) the fused per-partition
function chains, (b) the broadcast payloads referenced from them (including
the CSR block index) and (c) the partition data itself.  These tests
round-trip each of those through :mod:`pickle` so a picklability regression
surfaces as a focused unit failure instead of a worker-pool hang or a
cryptic stage error.
"""

from __future__ import annotations

import pickle

import pytest

from repro.blocking.block import Block, BlockCollection
from repro.data.profile import EntityProfile, KeyValue
from repro.engine import accumulators as accumulators_module
from repro.engine import broadcast as broadcast_module
from repro.engine.accumulators import _TaskSideAccumulator
from repro.engine.context import EngineContext
from repro.engine.partitioner import HashPartitioner
from repro.engine.shuffle import (
    CoGroupReduceTask,
    ConcatReduceTask,
    GroupByKeyTask,
    MapSideCombiner,
    ReduceByKeyTask,
    ShuffleMapTask,
    ZeroSeededCombiner,
)
from repro.metablocking.index import CSRBlockIndex
from repro.metablocking.parallel import (
    _CardinalityNodeVotes,
    _EdgeWeigher,
    _NodeDegree,
    _WeightedNodeVotes,
)
from repro.metablocking.weights import WeightingScheme


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _small_blocks() -> BlockCollection:
    collection = BlockCollection(clean_clean=True)
    collection.add(
        Block(
            key="b0",
            profiles_source0={0, 1, 2},
            profiles_source1={10, 11},
            entropy=0.7,
            clean_clean=True,
        )
    )
    collection.add(
        Block(
            key="b1",
            profiles_source0={1, 2},
            profiles_source1={11, 12},
            entropy=1.3,
            clean_clean=True,
        )
    )
    return collection


# -- helpers shipped as user functions ---------------------------------------
def _plus_one(x):
    return x + 1


def _add(a, b):
    return a + b


def _extend(acc, value):
    return acc + [value]


class TestProfilePickling:
    def test_entity_profile_roundtrip(self):
        profile = EntityProfile(profile_id=7, original_id="r7", source_id=1)
        profile.add("name", "sony bravia tv")
        profile.add("price", 499)
        clone = _roundtrip(profile)
        assert clone == profile
        assert clone.attributes == [
            KeyValue("name", "sony bravia tv"),
            KeyValue("price", "499"),
        ]

    def test_profile_partition_roundtrip(self):
        partition = [EntityProfile(profile_id=i, original_id=str(i)) for i in range(5)]
        assert _roundtrip(partition) == partition


class TestBroadcastPickling:
    def test_roundtrip_reuses_process_local_copy(self):
        context = EngineContext(2)
        broadcast = context.broadcast({"a": 1})
        clone = _roundtrip(broadcast)
        # Registry-backed __reduce__: within one process the same live
        # object comes back, exactly what a forked worker observes.
        assert clone is broadcast

    def test_unknown_id_rebuilds_fresh_copy(self):
        rebuilt = broadcast_module._rebuild(10**9, {"x": 2})
        assert rebuilt.value == {"x": 2}
        assert rebuilt.access_count == 1  # the read above
        # A second rebuild with the same id reuses the first copy.
        assert broadcast_module._rebuild(10**9, None) is rebuilt

    def test_destroyed_broadcast_refuses_to_ship(self):
        context = EngineContext(2)
        broadcast = context.broadcast([1, 2, 3])
        broadcast.destroy()
        with pytest.raises(ValueError, match="destroyed"):
            pickle.dumps(broadcast)

    def test_ids_are_process_unique_across_contexts(self):
        a = EngineContext(2).broadcast("left")
        b = EngineContext(2).broadcast("right")
        assert a.id != b.id


class TestAccumulatorPickling:
    def test_rebuilds_as_task_side_replica(self):
        context = EngineContext(2)
        accumulator = context.accumulator(0)
        accumulator.add(5)
        replica = _roundtrip(accumulator)
        assert isinstance(replica, _TaskSideAccumulator)
        assert replica.id == accumulator.id
        assert replica.value == 0  # restarts from the initial value

    def test_replica_records_updates_for_replay(self):
        context = EngineContext(2)
        accumulator = context.accumulator(0)
        replica = _roundtrip(accumulator)
        accumulators_module.begin_task_capture()
        replica.add(3)
        replica.add(4)
        captured = accumulators_module.end_task_capture()
        assert captured == {accumulator.id: [3, 4]}
        assert accumulator.value == 0  # driver object untouched until merge


class TestFusedChainPickling:
    def test_engine_chain_roundtrip_matches_collect(self):
        context = EngineContext(3)
        rdd = (
            context.parallelize(range(12))
            .map(_plus_one)
            .filter(_plus_one)  # truthy for all, exercises _FilterFunc
            .keyBy(_plus_one)
            .values()
        )
        source, funcs = rdd._fused_chain()
        restored = pickle.loads(pickle.dumps(tuple(funcs)))
        replayed = []
        for index, partition in enumerate(source.partitions()):
            rows = iter(partition)
            for func in restored:
                rows = func(index, rows)
            replayed.extend(rows)
        assert replayed == rdd.collect()

    def test_lambda_chain_is_not_picklable(self):
        context = EngineContext(2)
        rdd = context.parallelize(range(4)).map(lambda x: x)
        _source, funcs = rdd._fused_chain()
        with pytest.raises(Exception):
            pickle.dumps(tuple(funcs))

    def test_sample_function_roundtrip(self):
        context = EngineContext(2)
        rdd = context.parallelize(range(100), 2).sample(0.4, seed=3)
        _source, funcs = rdd._fused_chain()
        restored = pickle.loads(pickle.dumps(tuple(funcs)))
        sampled = list(restored[0](0, iter(range(100))))
        direct = list(funcs[0](0, iter(range(100))))
        assert sampled == direct


class TestShuffleTaskPickling:
    """The shuffle map and reduce tasks are what the executor ships for a
    wide stage; each must round-trip and behave identically afterwards."""

    def test_map_task_roundtrip_buckets_identically(self):
        task = ShuffleMapTask(HashPartitioner(3), MapSideCombiner(_add))
        clone = _roundtrip(task)
        partition = [("a", 1), ("b", 2), ("a", 3), ("c", 4)]
        assert list(clone(0, iter(partition))) == list(task(0, iter(partition)))

    def test_map_task_without_combiner_roundtrip(self):
        task = ShuffleMapTask(HashPartitioner(2))
        clone = _roundtrip(task)
        partition = [("x", 1), ("y", 2)]
        assert list(clone(0, iter(partition))) == list(task(0, iter(partition)))

    def test_zero_seeded_combiner_roundtrip(self):
        combiner = MapSideCombiner(_extend, create=ZeroSeededCombiner([], _extend))
        clone = _roundtrip(combiner)
        assert clone.create(1) == [1]
        assert clone.merge([1], 2) == [1, 2]

    def test_reduce_tasks_roundtrip(self):
        chunks = [[("a", 1), ("b", 2)], [("a", 3)]]
        for task in (ReduceByKeyTask(_add), GroupByKeyTask(), ConcatReduceTask()):
            clone = _roundtrip(task)
            assert list(clone(0, iter(chunks))) == list(task(0, iter(chunks)))

    def test_cogroup_task_roundtrip(self):
        task = CoGroupReduceTask()
        clone = _roundtrip(task)
        chunks = [(0, [("k", 1)]), (1, [("k", 2), ("m", 3)])]
        assert list(clone(0, iter(chunks))) == list(task(0, iter(chunks)))

    def test_lambda_reducer_is_not_picklable(self):
        # The shippability contract: a shuffle chain only fails to ship when
        # the *user* reducer does.
        with pytest.raises(Exception):
            pickle.dumps(ReduceByKeyTask(lambda a, b: a + b))


class TestCSRIndexPickling:
    def test_roundtrip_preserves_arrays_and_drops_kernel(self):
        index = CSRBlockIndex.from_blocks(_small_blocks())
        index.degree_vector()
        index.kernel()  # populate the cache the pickle must drop
        clone = _roundtrip(index)
        assert clone._kernel is None
        assert clone.node_ids == index.node_ids
        assert clone.node_block_offsets == index.node_block_offsets
        assert clone.block_nodes == index.block_nodes
        assert clone.degree_vector() == index.degree_vector()
        assert clone.num_edges() == index.num_edges()

    def test_clone_kernel_materialises_identical_neighbourhoods(self):
        index = CSRBlockIndex.from_blocks(_small_blocks())
        clone = _roundtrip(index)
        for node in range(index.num_nodes):
            original = sorted(index.kernel().neighbours(node))
            copied = sorted(clone.kernel().neighbours(node))
            assert copied == original


class TestMetaBlockingTaskFunctions:
    def test_edge_weigher_roundtrip_produces_identical_edges(self):
        context = EngineContext(2)
        index = CSRBlockIndex.from_blocks(_small_blocks())
        index.degree_vector()
        broadcast = context.broadcast(index)
        weigher = _EdgeWeigher(broadcast, WeightingScheme.EJS, True)
        clone = _roundtrip(weigher)
        for profile_id in index.node_ids:
            assert clone(profile_id) == weigher(profile_id)

    def test_vote_functions_roundtrip(self):
        # Compact wire format: the incidence maps nodes to (edge id, weight)
        # entries and the vote tasks emit (edge id, 1) votes.
        context = EngineContext(2)
        incidence = {1: [(0, 0.5), (1, 0.25)], 2: [(0, 0.5)]}
        broadcast = context.broadcast(incidence)
        wnp = _roundtrip(_WeightedNodeVotes(broadcast))
        assert wnp(1) == [(0, 1)]
        cnp = _roundtrip(_CardinalityNodeVotes(broadcast, 1))
        assert cnp(1) == [(0, 1)]
        assert cnp(99) == []

    def test_node_degree_roundtrip(self):
        context = EngineContext(2)
        index = CSRBlockIndex.from_blocks(_small_blocks())
        broadcast = context.broadcast(index)
        degree = _roundtrip(_NodeDegree(broadcast))
        assert [degree(p) for p in index.node_ids] == list(index.degree_vector())
