"""Pickle round-trip coverage for everything the process executor ships.

The multiprocessing executor works by pickling (a) the fused per-partition
function chains, (b) the broadcast payloads referenced from them (including
the CSR block index) and (c) the partition data itself.  These tests
round-trip each of those through :mod:`pickle` so a picklability regression
surfaces as a focused unit failure instead of a worker-pool hang or a
cryptic stage error.
"""

from __future__ import annotations

import pickle

import pytest

from repro.blocking.block import Block, BlockCollection
from repro.data.profile import EntityProfile, KeyValue
from repro.engine import accumulators as accumulators_module
from repro.engine import broadcast as broadcast_module
from repro.engine.accumulators import _TaskSideAccumulator
from repro.engine.context import EngineContext
from repro.engine.partitioner import HashPartitioner
from repro.engine.shuffle import (
    CoGroupReduceTask,
    ConcatReduceTask,
    GroupByKeyTask,
    MapSideCombiner,
    ReduceByKeyTask,
    ShuffleMapTask,
    ZeroSeededCombiner,
)
from repro.metablocking.backends import numpy_available
from repro.metablocking.index import CSRBlockIndex
from repro.metablocking.parallel import (
    _CardinalityNodeVotes,
    _EdgeWeigher,
    _NodeDegree,
    _PartitionEdgeWeigher,
    _WeightedNodeVotes,
)
from repro.metablocking.weights import WeightingScheme


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _small_blocks() -> BlockCollection:
    collection = BlockCollection(clean_clean=True)
    collection.add(
        Block(
            key="b0",
            profiles_source0={0, 1, 2},
            profiles_source1={10, 11},
            entropy=0.7,
            clean_clean=True,
        )
    )
    collection.add(
        Block(
            key="b1",
            profiles_source0={1, 2},
            profiles_source1={11, 12},
            entropy=1.3,
            clean_clean=True,
        )
    )
    return collection


# -- helpers shipped as user functions ---------------------------------------
def _plus_one(x):
    return x + 1


def _add(a, b):
    return a + b


def _extend(acc, value):
    return acc + [value]


class TestProfilePickling:
    def test_entity_profile_roundtrip(self):
        profile = EntityProfile(profile_id=7, original_id="r7", source_id=1)
        profile.add("name", "sony bravia tv")
        profile.add("price", 499)
        clone = _roundtrip(profile)
        assert clone == profile
        assert clone.attributes == [
            KeyValue("name", "sony bravia tv"),
            KeyValue("price", "499"),
        ]

    def test_profile_partition_roundtrip(self):
        partition = [EntityProfile(profile_id=i, original_id=str(i)) for i in range(5)]
        assert _roundtrip(partition) == partition


class TestBroadcastPickling:
    def test_roundtrip_reuses_process_local_copy(self):
        context = EngineContext(2)
        broadcast = context.broadcast({"a": 1})
        clone = _roundtrip(broadcast)
        # Registry-backed __reduce__: within one process the same live
        # object comes back, exactly what a forked worker observes.
        assert clone is broadcast

    def test_unknown_id_rebuilds_fresh_copy(self):
        rebuilt = broadcast_module._rebuild(10**9, {"x": 2})
        assert rebuilt.value == {"x": 2}
        assert rebuilt.access_count == 1  # the read above
        # A second rebuild with the same id reuses the first copy.
        assert broadcast_module._rebuild(10**9, None) is rebuilt

    def test_destroyed_broadcast_refuses_to_ship(self):
        context = EngineContext(2)
        broadcast = context.broadcast([1, 2, 3])
        broadcast.destroy()
        with pytest.raises(ValueError, match="destroyed"):
            pickle.dumps(broadcast)

    def test_ids_are_process_unique_across_contexts(self):
        a = EngineContext(2).broadcast("left")
        b = EngineContext(2).broadcast("right")
        assert a.id != b.id


class TestAccumulatorPickling:
    def test_rebuilds_as_task_side_replica(self):
        context = EngineContext(2)
        accumulator = context.accumulator(0)
        accumulator.add(5)
        replica = _roundtrip(accumulator)
        assert isinstance(replica, _TaskSideAccumulator)
        assert replica.id == accumulator.id
        assert replica.value == 0  # restarts from the initial value

    def test_replica_records_updates_for_replay(self):
        context = EngineContext(2)
        accumulator = context.accumulator(0)
        replica = _roundtrip(accumulator)
        accumulators_module.begin_task_capture()
        replica.add(3)
        replica.add(4)
        captured = accumulators_module.end_task_capture()
        assert captured == {accumulator.id: [3, 4]}
        assert accumulator.value == 0  # driver object untouched until merge


class TestFusedChainPickling:
    def test_engine_chain_roundtrip_matches_collect(self):
        context = EngineContext(3)
        rdd = (
            context.parallelize(range(12))
            .map(_plus_one)
            .filter(_plus_one)  # truthy for all, exercises _FilterFunc
            .keyBy(_plus_one)
            .values()
        )
        source, funcs = rdd._fused_chain()
        restored = pickle.loads(pickle.dumps(tuple(funcs)))
        replayed = []
        for index, partition in enumerate(source.partitions()):
            rows = iter(partition)
            for func in restored:
                rows = func(index, rows)
            replayed.extend(rows)
        assert replayed == rdd.collect()

    def test_lambda_chain_is_not_picklable(self):
        context = EngineContext(2)
        rdd = context.parallelize(range(4)).map(lambda x: x)
        _source, funcs = rdd._fused_chain()
        with pytest.raises(Exception):
            pickle.dumps(tuple(funcs))

    def test_sample_function_roundtrip(self):
        context = EngineContext(2)
        rdd = context.parallelize(range(100), 2).sample(0.4, seed=3)
        _source, funcs = rdd._fused_chain()
        restored = pickle.loads(pickle.dumps(tuple(funcs)))
        sampled = list(restored[0](0, iter(range(100))))
        direct = list(funcs[0](0, iter(range(100))))
        assert sampled == direct


class TestShuffleTaskPickling:
    """The shuffle map and reduce tasks are what the executor ships for a
    wide stage; each must round-trip and behave identically afterwards."""

    def test_map_task_roundtrip_buckets_identically(self):
        task = ShuffleMapTask(HashPartitioner(3), MapSideCombiner(_add))
        clone = _roundtrip(task)
        partition = [("a", 1), ("b", 2), ("a", 3), ("c", 4)]
        assert list(clone(0, iter(partition))) == list(task(0, iter(partition)))

    def test_map_task_without_combiner_roundtrip(self):
        task = ShuffleMapTask(HashPartitioner(2))
        clone = _roundtrip(task)
        partition = [("x", 1), ("y", 2)]
        assert list(clone(0, iter(partition))) == list(task(0, iter(partition)))

    def test_zero_seeded_combiner_roundtrip(self):
        combiner = MapSideCombiner(_extend, create=ZeroSeededCombiner([], _extend))
        clone = _roundtrip(combiner)
        assert clone.create(1) == [1]
        assert clone.merge([1], 2) == [1, 2]

    def test_reduce_tasks_roundtrip(self):
        chunks = [[("a", 1), ("b", 2)], [("a", 3)]]
        for task in (ReduceByKeyTask(_add), GroupByKeyTask(), ConcatReduceTask()):
            clone = _roundtrip(task)
            assert list(clone(0, iter(chunks))) == list(task(0, iter(chunks)))

    def test_cogroup_task_roundtrip(self):
        task = CoGroupReduceTask()
        clone = _roundtrip(task)
        chunks = [(0, [("k", 1)]), (1, [("k", 2), ("m", 3)])]
        assert list(clone(0, iter(chunks))) == list(task(0, iter(chunks)))

    def test_lambda_reducer_is_not_picklable(self):
        # The shippability contract: a shuffle chain only fails to ship when
        # the *user* reducer does.
        with pytest.raises(Exception):
            pickle.dumps(ReduceByKeyTask(lambda a, b: a + b))


class TestCSRIndexPickling:
    def test_roundtrip_preserves_arrays_and_drops_kernel(self):
        index = CSRBlockIndex.from_blocks(_small_blocks())
        index.degree_vector()
        index.kernel()  # populate the cache the pickle must drop
        clone = _roundtrip(index)
        assert clone._kernel is None
        assert clone.node_ids == index.node_ids
        assert clone.node_block_offsets == index.node_block_offsets
        assert clone.block_nodes == index.block_nodes
        assert clone.degree_vector() == index.degree_vector()
        assert clone.num_edges() == index.num_edges()

    def test_cached_degrees_ship_instead_of_being_recomputed(self):
        # The broadcast index must carry its one-pass degree sweep (and the
        # per-block stat vectors) to the workers: a clone arrives with the
        # caches already populated, no re-scan per process.
        index = CSRBlockIndex.from_blocks(_small_blocks())
        index.degree_vector()
        index.num_edges()
        clone = _roundtrip(index)
        assert clone._degrees is not None
        assert clone._degrees == index._degrees
        assert clone._num_edges == index._num_edges
        assert clone.block_cardinality == index.block_cardinality
        assert clone.block_inv_cardinality == index.block_inv_cardinality
        assert clone.block_entropy == index.block_entropy

    def test_clone_kernel_materialises_identical_neighbourhoods(self):
        index = CSRBlockIndex.from_blocks(_small_blocks())
        clone = _roundtrip(index)
        for node in range(index.num_nodes):
            original = sorted(index.kernel().neighbours(node))
            copied = sorted(clone.kernel().neighbours(node))
            assert copied == original

    def test_backend_choice_survives_the_roundtrip(self):
        index = CSRBlockIndex.from_blocks(_small_blocks(), backend="python")
        assert _roundtrip(index).backend == "python"


@pytest.mark.skipif(not numpy_available(), reason="numpy backend requires numpy")
class TestNumpyIndexPickling:
    def test_numpy_backend_roundtrip_matches_python_results(self):
        index = CSRBlockIndex.from_blocks(_small_blocks(), backend="numpy")
        index.degree_vector()
        clone = _roundtrip(index)
        assert clone.backend == "numpy"
        assert clone.degree_vector() == index.degree_vector()
        for node in range(index.num_nodes):
            assert clone.kernel().neighbours(node) == index.kernel().neighbours(node)

    def test_shared_memory_roundtrip_is_zero_copy_and_identical(self):
        import numpy as np

        index = CSRBlockIndex.from_blocks(_small_blocks(), backend="numpy")
        reference = CSRBlockIndex.from_blocks(_small_blocks(), backend="python")
        index.export_shared()
        try:
            payload = pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
            # The buffers must not ride in the pickle: only the segment name
            # and layout do, so the payload stays tiny.
            assert len(payload) < 2048
            clone = pickle.loads(payload)
            assert isinstance(clone.block_nodes, np.ndarray)
            assert clone.node_of == reference.node_of
            assert list(clone.degree_vector()) == list(reference.degree_vector())
            for node in range(reference.num_nodes):
                assert (
                    clone.kernel().neighbours(node)
                    == reference.kernel().neighbours(node)
                )
        finally:
            index.release_shared()

    def test_release_unlinks_the_segment(self):
        from repro.metablocking.sharedmem import live_segments

        index = CSRBlockIndex.from_blocks(_small_blocks(), backend="numpy")
        handle = index.export_shared()
        assert handle.name in live_segments()
        index.release_shared()
        assert handle.name not in live_segments()
        # After release the pickle falls back to shipping the full arrays.
        clone = _roundtrip(index)
        assert clone.node_ids == index.node_ids

    def test_garbage_collected_export_unlinks_the_segment(self):
        # The GC backstop: an exported index abandoned without
        # release_shared() must not leak its /dev/shm segment.
        import gc

        from repro.metablocking.sharedmem import live_segments

        index = CSRBlockIndex.from_blocks(_small_blocks(), backend="numpy")
        name = index.export_shared().name
        assert name in live_segments()
        del index
        gc.collect()
        assert name not in live_segments()

    def test_engine_context_stop_releases_broadcast_segments(self):
        from repro.metablocking.sharedmem import live_segments

        context = EngineContext(2)
        index = CSRBlockIndex.from_blocks(_small_blocks(), backend="numpy")
        index.export_shared()
        context.broadcast(index)
        assert live_segments()
        context.stop()
        assert live_segments() == []

    def test_process_run_ships_via_shared_memory_and_leaves_no_segments(
        self, monkeypatch
    ):
        from repro.blocking.filtering import BlockFiltering
        from repro.blocking.purging import BlockPurging
        from repro.blocking.token_blocking import TokenBlocking
        from repro.data.synthetic import SyntheticConfig, generate_abt_buy_like
        from repro.metablocking.metablocker import MetaBlocker
        from repro.metablocking.parallel import ParallelMetaBlocker
        from repro.metablocking.sharedmem import live_segments

        exported: list[str] = []
        original = CSRBlockIndex.export_shared

        def spy(self):
            handle = original(self)
            exported.append(handle.name)
            return handle

        monkeypatch.setattr(CSRBlockIndex, "export_shared", spy)
        dataset = generate_abt_buy_like(SyntheticConfig(num_entities=40, seed=7))
        raw = TokenBlocking().block(dataset.profiles)
        blocks = BlockFiltering().filter(BlockPurging().purge(raw, len(dataset.profiles)))
        reference = MetaBlocker("cbs", "wnp", kernel_backend="python").run(blocks)
        with EngineContext(4, executor="process:2") as context:
            result = ParallelMetaBlocker(
                context, "cbs", "wnp", kernel_backend="numpy"
            ).run(blocks)
            # Run-scoped lifecycle: the segment is already unlinked when the
            # run returns, not merely at context shutdown.
            assert live_segments() == []
        assert exported, "process run did not ship the index via shared memory"
        assert result.retained_edges == reference.retained_edges
        assert live_segments() == []


class TestMetaBlockingTaskFunctions:
    def test_edge_weigher_roundtrip_produces_identical_edges(self):
        context = EngineContext(2)
        index = CSRBlockIndex.from_blocks(_small_blocks())
        index.degree_vector()
        broadcast = context.broadcast(index)
        weigher = _EdgeWeigher(broadcast, WeightingScheme.EJS, True)
        clone = _roundtrip(weigher)
        for profile_id in index.node_ids:
            assert clone(profile_id) == weigher(profile_id)

    @pytest.mark.skipif(not numpy_available(), reason="numpy backend requires numpy")
    def test_partition_edge_weigher_roundtrip_matches_per_node_emission(self):
        context = EngineContext(2)
        index = CSRBlockIndex.from_blocks(_small_blocks(), backend="numpy")
        index.degree_vector()
        broadcast = context.broadcast(index)
        weigher = _roundtrip(
            _PartitionEdgeWeigher(broadcast, WeightingScheme.EJS, True)
        )
        python_index = CSRBlockIndex.from_blocks(_small_blocks(), backend="python")
        python_broadcast = context.broadcast(python_index)
        per_node = _EdgeWeigher(python_broadcast, WeightingScheme.EJS, True)
        expected = [record for pid in index.node_ids for record in per_node(pid)]
        assert weigher(list(index.node_ids)) == expected
        assert weigher([]) == []

    def test_vote_functions_roundtrip(self):
        # Compact wire format: the incidence maps nodes to (edge id, weight)
        # entries and the vote tasks emit (edge id, 1) votes.
        context = EngineContext(2)
        incidence = {1: [(0, 0.5), (1, 0.25)], 2: [(0, 0.5)]}
        broadcast = context.broadcast(incidence)
        wnp = _roundtrip(_WeightedNodeVotes(broadcast))
        assert wnp(1) == [(0, 1)]
        cnp = _roundtrip(_CardinalityNodeVotes(broadcast, 1))
        assert cnp(1) == [(0, 1)]
        assert cnp(99) == []

    def test_node_degree_roundtrip(self):
        context = EngineContext(2)
        index = CSRBlockIndex.from_blocks(_small_blocks())
        broadcast = context.broadcast(index)
        degree = _roundtrip(_NodeDegree(broadcast))
        assert [degree(p) for p in index.node_ids] == list(index.degree_vector())
