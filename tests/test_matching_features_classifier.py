"""Tests of pair features and the supervised matchers."""

import numpy as np
import pytest

from repro.exceptions import MatchingError
from repro.looseschema.attribute_partitioning import AttributePartitioner
from repro.matching.classifier import LogisticRegressionMatcher, NaiveBayesMatcher
from repro.matching.features import PairFeatureExtractor


def _training_pairs(dataset, num_negative: int = 60):
    """Build labeled pairs: all ground-truth matches + random non-matches."""
    import random

    rng = random.Random(0)
    positives = [(a, b, True) for a, b in dataset.ground_truth]
    ids = dataset.profiles.ids()
    negatives = []
    truth = dataset.ground_truth
    while len(negatives) < num_negative:
        a, b = rng.sample(ids, 2)
        if (a, b) not in truth and dataset.profiles[a].source_id != dataset.profiles[b].source_id:
            negatives.append((a, b, False))
    return positives + negatives


class TestPairFeatureExtractor:
    def test_feature_vector_length(self, abt_buy_small):
        extractor = PairFeatureExtractor(["jaccard", "cosine"])
        a, b = next(iter(abt_buy_small.ground_truth))
        features = extractor.features(abt_buy_small.profiles[a], abt_buy_small.profiles[b])
        assert features.shape == (2,)
        assert list(extractor.feature_names()) == ["profile_jaccard", "profile_cosine"]

    def test_cluster_features_added(self, abt_buy_small):
        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy_small.profiles)
        extractor = PairFeatureExtractor(["jaccard"], partitioning=partitioning)
        a, b = next(iter(abt_buy_small.ground_truth))
        features = extractor.features(abt_buy_small.profiles[a], abt_buy_small.profiles[b])
        expected = 1 + len(partitioning.non_blob_clusters())
        assert features.shape == (expected,)
        assert len(extractor.feature_names()) == expected

    def test_feature_matrix_shape(self, abt_buy_small):
        extractor = PairFeatureExtractor(["jaccard", "levenshtein"])
        pairs = list(abt_buy_small.ground_truth.pairs())[:5]
        matrix = extractor.feature_matrix(abt_buy_small.profiles, pairs)
        assert matrix.shape == (5, 2)

    def test_empty_pairs(self, abt_buy_small):
        extractor = PairFeatureExtractor(["jaccard"])
        assert extractor.feature_matrix(abt_buy_small.profiles, []).shape == (0, 1)

    def test_matching_pairs_score_higher(self, abt_buy_small):
        extractor = PairFeatureExtractor(["jaccard"])
        matches = list(abt_buy_small.ground_truth.pairs())[:10]
        ids0 = [p.profile_id for p in abt_buy_small.profiles.by_source(0)]
        ids1 = [p.profile_id for p in abt_buy_small.profiles.by_source(1)]
        non_matches = [
            (a, b)
            for a in ids0[:5]
            for b in ids1[:5]
            if (a, b) not in abt_buy_small.ground_truth
        ][:10]
        match_scores = extractor.feature_matrix(abt_buy_small.profiles, matches).mean()
        non_match_scores = extractor.feature_matrix(abt_buy_small.profiles, non_matches).mean()
        assert match_scores > non_match_scores


class TestLogisticRegressionMatcher:
    def test_untrained_raises(self, abt_buy_small):
        matcher = LogisticRegressionMatcher()
        a, b = next(iter(abt_buy_small.ground_truth))
        with pytest.raises(MatchingError):
            matcher.score(abt_buy_small.profiles[a], abt_buy_small.profiles[b])

    def test_empty_training_raises(self, abt_buy_small):
        with pytest.raises(MatchingError):
            LogisticRegressionMatcher().fit(abt_buy_small.profiles, [])

    def test_single_class_raises(self, abt_buy_small):
        pairs = [(a, b, True) for a, b in list(abt_buy_small.ground_truth)[:5]]
        with pytest.raises(MatchingError):
            LogisticRegressionMatcher().fit(abt_buy_small.profiles, pairs)

    def test_learns_to_separate(self, abt_buy_small):
        labeled = _training_pairs(abt_buy_small)
        matcher = LogisticRegressionMatcher(epochs=200).fit(abt_buy_small.profiles, labeled)
        assert matcher.is_trained
        correct = 0
        for a, b, label in labeled:
            predicted = matcher.is_match(abt_buy_small.profiles[a], abt_buy_small.profiles[b])
            correct += predicted == label
        assert correct / len(labeled) > 0.85

    def test_probability_in_unit_interval(self, abt_buy_small):
        labeled = _training_pairs(abt_buy_small)
        matcher = LogisticRegressionMatcher(epochs=50).fit(abt_buy_small.profiles, labeled)
        a, b = next(iter(abt_buy_small.ground_truth))
        proba = matcher.predict_proba(abt_buy_small.profiles[a], abt_buy_small.profiles[b])
        assert 0.0 <= proba <= 1.0


class TestNaiveBayesMatcher:
    def test_untrained_raises(self, abt_buy_small):
        a, b = next(iter(abt_buy_small.ground_truth))
        with pytest.raises(MatchingError):
            NaiveBayesMatcher().score(abt_buy_small.profiles[a], abt_buy_small.profiles[b])

    def test_learns_to_separate(self, abt_buy_small):
        labeled = _training_pairs(abt_buy_small)
        matcher = NaiveBayesMatcher().fit(abt_buy_small.profiles, labeled)
        assert matcher.is_trained
        correct = 0
        for a, b, label in labeled:
            predicted = matcher.is_match(abt_buy_small.profiles[a], abt_buy_small.profiles[b])
            correct += predicted == label
        assert correct / len(labeled) > 0.8

    def test_probability_finite(self, abt_buy_small):
        labeled = _training_pairs(abt_buy_small)
        matcher = NaiveBayesMatcher().fit(abt_buy_small.profiles, labeled)
        a, b = next(iter(abt_buy_small.ground_truth))
        proba = matcher.predict_proba(abt_buy_small.profiles[a], abt_buy_small.profiles[b])
        assert np.isfinite(proba)
        assert 0.0 <= proba <= 1.0
