"""Exhaustive sequential ≡ parallel meta-blocking equivalence grid.

The CSR neighbourhood kernel is shared by the sequential
:class:`~repro.metablocking.metablocker.MetaBlocker` and the broadcast-join
:class:`~repro.metablocking.parallel.ParallelMetaBlocker`, with identical
per-edge accumulation order — so the two must agree *bit-for-bit*: the same
retained pairs with float-identical weights, for every weighting scheme ×
pruning strategy × entropy setting, on dirty and clean-clean collections
larger and messier than the fixture datasets (random skewed block sizes,
random non-trivial entropies, overlapping blocks, invalid blocks mixed in).

The same contract holds across *kernel backends*: the vectorised numpy
kernel fixes its accumulation order to the interpreted kernel's, so the
python × numpy axis of the grid asserts dict-identical retained edges —
float weights included — for sequential, parallel serial / process and both
progressive strategies.
"""

from __future__ import annotations

import random

import pytest

from repro.blocking.block import Block, BlockCollection
from repro.engine.context import EngineContext
from repro.engine.executors import MultiprocessingExecutor
from repro.metablocking.backends import numpy_available
from repro.metablocking.metablocker import MetaBlocker
from repro.metablocking.parallel import ParallelMetaBlocker
from repro.metablocking.progressive import (
    ProgressiveNodeScheduling,
    ProgressiveSortedComparisons,
)
from repro.metablocking.pruning import CardinalityNodePruning

WEIGHTINGS = ["cbs", "js", "arcs", "ecbs", "ejs"]
PRUNINGS = ["wep", "cep", "wnp", "rwnp", "cnp", "rcnp"]

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend requires numpy"
)


def _make_pruning(name: str):
    # "rcnp" (reciprocal CNP) has no registry alias; build it directly so the
    # grid covers AND semantics for both node-centric strategies.
    if name == "rcnp":
        return CardinalityNodePruning(reciprocal=True)
    return name


def _random_clean_collection(seed: int) -> BlockCollection:
    """A clean-clean collection with skewed block sizes and random entropies.

    Source-0 ids live in [0, 140), source-1 ids in [1000, 1140); a handful of
    generated blocks are invalid (one side empty) so the grid also exercises
    the total-block normalisation of ECBS on collections with skipped blocks.
    """
    rng = random.Random(seed)
    collection = BlockCollection(clean_clean=True)
    for index in range(220):
        size0 = rng.randint(0, 14) if rng.random() < 0.15 else rng.randint(1, 6)
        size1 = rng.randint(0, 14) if rng.random() < 0.15 else rng.randint(1, 6)
        collection.add(
            Block(
                key=f"clean-{index}",
                profiles_source0={rng.randrange(140) for _ in range(size0)},
                profiles_source1={1000 + rng.randrange(140) for _ in range(size1)},
                entropy=rng.uniform(0.05, 2.5),
                clean_clean=True,
            )
        )
    return collection


def _random_dirty_collection(seed: int) -> BlockCollection:
    """A dirty collection with skewed block sizes and random entropies."""
    rng = random.Random(seed)
    collection = BlockCollection(clean_clean=False)
    for index in range(200):
        size = rng.randint(1, 16) if rng.random() < 0.15 else rng.randint(1, 7)
        collection.add(
            Block(
                key=f"dirty-{index}",
                profiles_source0={rng.randrange(160) for _ in range(size)},
                entropy=rng.uniform(0.05, 2.5),
            )
        )
    return collection


@pytest.fixture(scope="module")
def clean_blocks():
    return _random_clean_collection(seed=101)


@pytest.fixture(scope="module")
def dirty_blocks():
    return _random_dirty_collection(seed=202)


@pytest.fixture(scope="module")
def process_executor():
    """One shared 2-worker pool for the whole multiprocessing grid.

    ``on_unpicklable="raise"`` makes the grid double as a regression guard
    for the picklability of every meta-blocking stage chain: a stage that
    silently stopped shipping would fail loudly here.
    """
    executor = MultiprocessingExecutor(max_workers=2, on_unpicklable="raise")
    yield executor
    executor.close()


def _assert_bit_for_bit(blocks: BlockCollection, weighting, pruning, use_entropy, executor=None):
    sequential = MetaBlocker(
        weighting, _make_pruning(pruning), use_entropy=use_entropy
    ).run(blocks)
    parallel = ParallelMetaBlocker(
        EngineContext(4, executor=executor),
        weighting,
        _make_pruning(pruning),
        use_entropy=use_entropy,
    ).run(blocks)
    # Dict equality covers both the retained pairs and their exact float
    # weights — any accumulation-order divergence between the two paths
    # would show up here as a last-ulp weight mismatch.
    assert parallel.retained_edges == sequential.retained_edges
    assert parallel.candidate_pairs == sequential.candidate_pairs
    assert parallel.graph_edges == sequential.graph_edges
    assert parallel.graph_nodes == sequential.graph_nodes
    assert sequential.num_candidates > 0


class TestFullGridEquivalence:
    @pytest.mark.parametrize("use_entropy", [False, True], ids=["plain", "entropy"])
    @pytest.mark.parametrize("pruning", PRUNINGS)
    @pytest.mark.parametrize("weighting", WEIGHTINGS)
    def test_clean_clean(self, clean_blocks, weighting, pruning, use_entropy):
        _assert_bit_for_bit(clean_blocks, weighting, pruning, use_entropy)

    @pytest.mark.parametrize("use_entropy", [False, True], ids=["plain", "entropy"])
    @pytest.mark.parametrize("pruning", PRUNINGS)
    @pytest.mark.parametrize("weighting", WEIGHTINGS)
    def test_dirty(self, dirty_blocks, weighting, pruning, use_entropy):
        _assert_bit_for_bit(dirty_blocks, weighting, pruning, use_entropy)

    @pytest.mark.parametrize("partitions", [1, 3, 16])
    def test_partition_count_invariant_on_random_blocks(self, clean_blocks, partitions):
        reference = MetaBlocker("ejs", "rwnp", use_entropy=True).run(clean_blocks)
        parallel = ParallelMetaBlocker(
            EngineContext(partitions), "ejs", "rwnp", use_entropy=True
        ).run(clean_blocks)
        assert parallel.retained_edges == reference.retained_edges


class TestProcessExecutorGridEquivalence:
    """The multiprocessing executor must also match bit-for-bit.

    Worker processes rebuild the broadcast CSR index and their own scratch
    kernels from pickles; identical accumulation order plus partition-order
    result collection means the retained edges and their float weights still
    equal the sequential path exactly, for every weighting × pruning combo.
    """

    @pytest.mark.parametrize("pruning", PRUNINGS)
    @pytest.mark.parametrize("weighting", WEIGHTINGS)
    def test_clean_clean_process(self, clean_blocks, process_executor, weighting, pruning):
        _assert_bit_for_bit(
            clean_blocks, weighting, pruning, use_entropy=True, executor=process_executor
        )

    @pytest.mark.parametrize("pruning", PRUNINGS)
    @pytest.mark.parametrize("weighting", WEIGHTINGS)
    def test_dirty_process(self, dirty_blocks, process_executor, weighting, pruning):
        _assert_bit_for_bit(
            dirty_blocks, weighting, pruning, use_entropy=False, executor=process_executor
        )

    @pytest.mark.parametrize("partitions", [1, 3, 16])
    def test_partition_count_invariant_under_process_executor(
        self, clean_blocks, process_executor, partitions
    ):
        reference = MetaBlocker("ejs", "rwnp", use_entropy=True).run(clean_blocks)
        parallel = ParallelMetaBlocker(
            EngineContext(partitions, executor=process_executor),
            "ejs",
            "rwnp",
            use_entropy=True,
        ).run(clean_blocks)
        assert parallel.retained_edges == reference.retained_edges


@needs_numpy
class TestBackendGridEquivalence:
    """python × numpy backend axis: bit-for-bit identical retained edges.

    The reference is always the interpreted kernel (``kernel_backend=
    "python"``); the numpy side runs the vectorised sweep, ufunc weighting
    and array pruning.  Dict equality covers pairs *and* exact float
    weights, so any accumulation-order drift in the vectorised path fails
    here as a last-ulp mismatch.
    """

    @pytest.mark.parametrize("use_entropy", [False, True], ids=["plain", "entropy"])
    @pytest.mark.parametrize("pruning", PRUNINGS)
    @pytest.mark.parametrize("weighting", WEIGHTINGS)
    def test_sequential_clean_clean(self, clean_blocks, weighting, pruning, use_entropy):
        reference = MetaBlocker(
            weighting, _make_pruning(pruning), use_entropy=use_entropy,
            kernel_backend="python",
        ).run(clean_blocks)
        vectorised = MetaBlocker(
            weighting, _make_pruning(pruning), use_entropy=use_entropy,
            kernel_backend="numpy",
        ).run(clean_blocks)
        assert vectorised.retained_edges == reference.retained_edges
        assert vectorised.candidate_pairs == reference.candidate_pairs
        assert vectorised.graph_edges == reference.graph_edges
        assert vectorised.graph_nodes == reference.graph_nodes

    @pytest.mark.parametrize("use_entropy", [False, True], ids=["plain", "entropy"])
    @pytest.mark.parametrize("pruning", PRUNINGS)
    @pytest.mark.parametrize("weighting", WEIGHTINGS)
    def test_sequential_dirty(self, dirty_blocks, weighting, pruning, use_entropy):
        reference = MetaBlocker(
            weighting, _make_pruning(pruning), use_entropy=use_entropy,
            kernel_backend="python",
        ).run(dirty_blocks)
        vectorised = MetaBlocker(
            weighting, _make_pruning(pruning), use_entropy=use_entropy,
            kernel_backend="numpy",
        ).run(dirty_blocks)
        assert vectorised.retained_edges == reference.retained_edges

    @pytest.mark.parametrize("pruning", PRUNINGS)
    @pytest.mark.parametrize("weighting", WEIGHTINGS)
    def test_parallel_serial_numpy_matches_python_reference(
        self, clean_blocks, weighting, pruning
    ):
        reference = MetaBlocker(
            weighting, _make_pruning(pruning), use_entropy=True,
            kernel_backend="python",
        ).run(clean_blocks)
        parallel = ParallelMetaBlocker(
            EngineContext(4),
            weighting,
            _make_pruning(pruning),
            use_entropy=True,
            kernel_backend="numpy",
        ).run(clean_blocks)
        assert parallel.retained_edges == reference.retained_edges

    @pytest.mark.parametrize("pruning", ["wep", "cnp", "rwnp"])
    @pytest.mark.parametrize("weighting", ["cbs", "ejs"])
    def test_parallel_python_backend_on_numpy_machine(
        self, clean_blocks, weighting, pruning
    ):
        # The reverse pin: an explicit python backend must stay available
        # (and equivalent) even when numpy is importable.
        reference = MetaBlocker(
            weighting, _make_pruning(pruning), kernel_backend="python"
        ).run(clean_blocks)
        parallel = ParallelMetaBlocker(
            EngineContext(4), weighting, _make_pruning(pruning),
            kernel_backend="python",
        ).run(clean_blocks)
        assert parallel.retained_edges == reference.retained_edges

    @pytest.mark.parametrize("pruning", PRUNINGS)
    @pytest.mark.parametrize("weighting", ["cbs", "ejs"])
    def test_parallel_process_numpy_matches_python_reference(
        self, dirty_blocks, process_executor, weighting, pruning
    ):
        # Process workers attach the shared-memory index; the retained
        # edges must still equal the interpreted single-process reference.
        reference = MetaBlocker(
            weighting, _make_pruning(pruning), kernel_backend="python"
        ).run(dirty_blocks)
        parallel = ParallelMetaBlocker(
            EngineContext(4, executor=process_executor),
            weighting,
            _make_pruning(pruning),
            kernel_backend="numpy",
        ).run(dirty_blocks)
        assert parallel.retained_edges == reference.retained_edges

    @pytest.mark.parametrize("strategy", ["global", "node"])
    @pytest.mark.parametrize("weighting", WEIGHTINGS)
    def test_progressive_rankings_identical(self, clean_blocks, strategy, weighting):
        cls = (
            ProgressiveSortedComparisons
            if strategy == "global"
            else ProgressiveNodeScheduling
        )
        python_ranking = cls(weighting, kernel_backend="python").rank(clean_blocks)
        numpy_ranking = cls(weighting, kernel_backend="numpy").rank(clean_blocks)
        assert numpy_ranking == python_ranking


@needs_numpy
class TestBufferBackendGridEquivalence:
    """Buffer-backend axis: ram vs memmap CSR buffers, bit-for-bit.

    The memmap backend only changes *where* the index vectors live (one
    file-backed buffer under the managed temp root instead of process RAM);
    both kernels read either representation through the buffer protocol, so
    the retained edges — float weights included — must equal the ram
    reference exactly: sequential and parallel, serial and process workers,
    under both kernel backends, and no buffer file may outlive the run.
    """

    @pytest.mark.parametrize("kernel", ["python", "numpy"])
    @pytest.mark.parametrize("pruning", ["wep", "rcnp"])
    @pytest.mark.parametrize("weighting", ["cbs", "ejs"])
    def test_sequential_clean_clean(self, clean_blocks, kernel, weighting, pruning):
        reference = MetaBlocker(
            weighting, _make_pruning(pruning), use_entropy=True,
            kernel_backend=kernel, buffer_backend="ram",
        ).run(clean_blocks)
        memmap = MetaBlocker(
            weighting, _make_pruning(pruning), use_entropy=True,
            kernel_backend=kernel, buffer_backend="memmap",
        ).run(clean_blocks)
        assert memmap.retained_edges == reference.retained_edges
        assert memmap.candidate_pairs == reference.candidate_pairs
        assert memmap.graph_edges == reference.graph_edges
        assert memmap.graph_nodes == reference.graph_nodes

    @pytest.mark.parametrize("kernel", ["python", "numpy"])
    @pytest.mark.parametrize("pruning", ["wnp", "cep"])
    @pytest.mark.parametrize("weighting", ["js", "ecbs"])
    def test_sequential_dirty(self, dirty_blocks, kernel, weighting, pruning):
        reference = MetaBlocker(
            weighting, _make_pruning(pruning),
            kernel_backend=kernel, buffer_backend="ram",
        ).run(dirty_blocks)
        memmap = MetaBlocker(
            weighting, _make_pruning(pruning),
            kernel_backend=kernel, buffer_backend="memmap",
        ).run(dirty_blocks)
        assert memmap.retained_edges == reference.retained_edges

    @pytest.mark.parametrize("pruning", ["cnp", "rwnp"])
    @pytest.mark.parametrize("weighting", ["arcs", "cbs"])
    def test_parallel_serial(self, clean_blocks, weighting, pruning):
        reference = ParallelMetaBlocker(
            EngineContext(4), weighting, _make_pruning(pruning), use_entropy=True
        ).run(clean_blocks)
        memmap = ParallelMetaBlocker(
            EngineContext(4),
            weighting,
            _make_pruning(pruning),
            use_entropy=True,
            buffer_backend="memmap",
        ).run(clean_blocks)
        assert memmap.retained_edges == reference.retained_edges
        assert memmap.candidate_pairs == reference.candidate_pairs

    @pytest.mark.parametrize("pruning", ["wnp", "rcnp"])
    @pytest.mark.parametrize("weighting", ["cbs", "ejs"])
    def test_parallel_process(self, dirty_blocks, process_executor, weighting, pruning):
        # Process workers receive the broadcast index via pickle / shared
        # memory; the driver-side memmap file must stay private to the
        # driver while the retained edges still match the ram reference.
        reference = MetaBlocker(weighting, _make_pruning(pruning)).run(dirty_blocks)
        parallel = ParallelMetaBlocker(
            EngineContext(4, executor=process_executor),
            weighting,
            _make_pruning(pruning),
            buffer_backend="memmap",
        ).run(dirty_blocks)
        assert parallel.retained_edges == reference.retained_edges

    @pytest.mark.parametrize("chunk_edges", [1, 97, 65536])
    def test_streamed_chunks_match_run_bit_for_bit(self, clean_blocks, chunk_edges):
        reference = list(
            MetaBlocker("ejs", "wnp", use_entropy=True)
            .run(clean_blocks)
            .retained_edges.items()
        )
        streamed = [
            edge
            for chunk in MetaBlocker(
                "ejs", "wnp", use_entropy=True, buffer_backend="memmap"
            ).stream_retained(clean_blocks, chunk_edges=chunk_edges)
            for edge in chunk
        ]
        assert streamed == reference

    def test_no_buffer_files_leak(self, tmp_path):
        from repro.engine import tmpfiles

        blocks = _random_clean_collection(seed=404)
        MetaBlocker(
            "cbs", "wnp", buffer_backend="memmap", tmp_dir=str(tmp_path)
        ).run(blocks)
        assert tmpfiles.live_artifacts("csrbuf") == []
        assert list(tmp_path.iterdir()) == []


class TestBlockStoreGridEquivalence:
    """Block-store axis: driver vs shared-memory vs spill, bit-for-bit.

    The store only changes *how* bucket payloads travel (inline through the
    driver, via named shared-memory segments, or via spill files); the
    pickle round-trip and the fixed chunk order mean the retained edges —
    float weights included — must equal the driver-relay reference exactly,
    under both executors, and no segment or spill file may outlive the run.
    """

    STORES = ["shared-memory", "spill"]

    @pytest.mark.parametrize("store", STORES)
    @pytest.mark.parametrize("pruning", ["wnp", "rcnp"])
    @pytest.mark.parametrize("weighting", ["cbs", "ejs"])
    def test_serial_clean_clean(self, clean_blocks, store, weighting, pruning):
        reference = ParallelMetaBlocker(
            EngineContext(4, block_store="driver"),
            weighting,
            _make_pruning(pruning),
            use_entropy=True,
        ).run(clean_blocks)
        with EngineContext(4, block_store=store) as context:
            peer = ParallelMetaBlocker(
                context, weighting, _make_pruning(pruning), use_entropy=True
            ).run(clean_blocks)
        assert peer.retained_edges == reference.retained_edges
        assert peer.candidate_pairs == reference.candidate_pairs

    @pytest.mark.parametrize("store", STORES)
    @pytest.mark.parametrize("pruning", ["cnp", "rwnp"])
    @pytest.mark.parametrize("weighting", ["js", "arcs"])
    def test_process_dirty(
        self, dirty_blocks, process_executor, store, weighting, pruning
    ):
        reference = ParallelMetaBlocker(
            EngineContext(4), weighting, _make_pruning(pruning)
        ).run(dirty_blocks)
        with EngineContext(
            4, executor=process_executor, block_store=store
        ) as context:
            peer = ParallelMetaBlocker(
                context, weighting, _make_pruning(pruning)
            ).run(dirty_blocks)
        assert peer.retained_edges == reference.retained_edges

    @pytest.mark.parametrize("store", STORES)
    def test_shuffle_payload_volume_is_store_invariant(
        self, clean_blocks, process_executor, store
    ):
        # shuffle_write_bytes records the bucket payloads, a property of the
        # job: the rows must match the driver-store run exactly even though
        # the peer stores relay only refs through the driver.
        driver_context = EngineContext(4, block_store="driver")
        ParallelMetaBlocker(driver_context, "cbs", "wnp").run(clean_blocks)
        with EngineContext(
            4, executor=process_executor, block_store=store
        ) as context:
            ParallelMetaBlocker(context, "cbs", "wnp").run(clean_blocks)
            rows = _shuffle_rows(context)
            assert rows == _shuffle_rows(driver_context)
            summary = context.metrics_summary()
            assert summary["shuffle_peer_bytes"] == summary["shuffle_bytes"]
            assert summary["shuffle_relay_bytes"] < summary["shuffle_bytes"]

    def test_no_segments_or_spill_files_leak(self, process_executor):
        import glob

        from repro.engine import sharedmem as engine_sharedmem

        blocks = _random_clean_collection(seed=303)
        with EngineContext(
            4, executor=process_executor, block_store="shared-memory"
        ) as context:
            spill_dir = context.block_store._spill.directory
            ParallelMetaBlocker(context, "cbs", "wnp").run(blocks)
        assert engine_sharedmem.live_segments("shuf") == []
        assert not glob.glob(f"{spill_dir}/*")


def _shuffle_rows(context):
    """The shuffle-bearing stage_table rows, minus executor/timing noise."""
    return [
        (
            row["description"],
            row["tasks"],
            row["shuffle_write"],
            row["shuffle_read"],
            row["shuffle_write_bytes"],
            row["shuffle_read_bytes"],
        )
        for row in context.scheduler.stage_table()
        if ".shuffle." in str(row["description"])
    ]


class TestShuffleDeterminismSweep:
    """Serial vs process shuffle: same retained edges, same wire volume.

    The shuffle subsystem's map-side combine and reduce-side merge run in
    worker processes under the process executor, yet the recorded shuffle
    record *and* byte counts per stage must equal the serial run exactly —
    the wire format is a property of the job, not of where it executes.
    """

    @pytest.mark.parametrize("pruning", ["wnp", "rwnp", "cnp", "rcnp"])
    @pytest.mark.parametrize("weighting", ["cbs", "ejs"])
    def test_process_shuffle_matches_serial_bit_for_bit(
        self, clean_blocks, process_executor, weighting, pruning
    ):
        serial_context = EngineContext(4)
        serial = ParallelMetaBlocker(
            serial_context, weighting, _make_pruning(pruning)
        ).run(clean_blocks)
        process_context = EngineContext(4, executor=process_executor)
        process = ParallelMetaBlocker(
            process_context, weighting, _make_pruning(pruning)
        ).run(clean_blocks)
        assert process.retained_edges == serial.retained_edges
        assert _shuffle_rows(process_context) == _shuffle_rows(serial_context)

    def test_vote_shuffle_runs_on_worker_processes(self, dirty_blocks, process_executor):
        context = EngineContext(4, executor=process_executor)
        ParallelMetaBlocker(context, "cbs", "wnp").run(dirty_blocks)
        vote_stages = [
            s for s in context.scheduler.stages if "wnp.votes" in s.description
            and ".shuffle." in s.description
        ]
        assert len(vote_stages) == 2  # map + reduce phase
        for stage in vote_stages:
            assert stage.executor.startswith("process")
            assert all(task.worker.startswith("pid-") for task in stage.tasks)
