"""Tests of the RDD API of the mini engine."""

import pytest

from repro.exceptions import EngineError


class TestBasicActions:
    def test_collect_roundtrip(self, engine):
        data = list(range(20))
        assert engine.parallelize(data).collect() == data

    def test_count(self, engine):
        assert engine.parallelize(range(17)).count() == 17

    def test_take(self, engine):
        assert engine.parallelize(range(100)).take(3) == [0, 1, 2]

    def test_first(self, engine):
        assert engine.parallelize([5, 6, 7]).first() == 5

    def test_first_empty_raises(self, engine):
        with pytest.raises(EngineError):
            engine.emptyRDD().first()

    def test_reduce(self, engine):
        assert engine.parallelize(range(1, 6)).reduce(lambda a, b: a + b) == 15

    def test_reduce_empty_raises(self, engine):
        with pytest.raises(EngineError):
            engine.emptyRDD().reduce(lambda a, b: a + b)

    def test_fold(self, engine):
        assert engine.parallelize([1, 2, 3]).fold(10, lambda a, b: a + b) == 16

    def test_sum(self, engine):
        assert engine.parallelize([1, 2, 3]).sum() == 6

    def test_is_empty(self, engine):
        assert engine.emptyRDD().isEmpty()
        assert not engine.parallelize([1]).isEmpty()

    def test_top(self, engine):
        assert engine.parallelize([3, 1, 4, 1, 5]).top(2) == [5, 4]

    def test_count_by_value(self, engine):
        counts = engine.parallelize(["a", "b", "a"]).countByValue()
        assert counts == {"a": 2, "b": 1}

    def test_foreach_side_effects(self, engine):
        seen = []
        engine.parallelize([1, 2, 3]).foreach(seen.append)
        assert seen == [1, 2, 3]


class TestNarrowTransformations:
    def test_map(self, engine):
        assert engine.parallelize([1, 2, 3]).map(lambda x: x * 2).collect() == [2, 4, 6]

    def test_flat_map(self, engine):
        result = engine.parallelize(["a b", "c"]).flatMap(str.split).collect()
        assert result == ["a", "b", "c"]

    def test_filter(self, engine):
        result = engine.parallelize(range(10)).filter(lambda x: x % 2 == 0).collect()
        assert result == [0, 2, 4, 6, 8]

    def test_map_partitions(self, engine):
        result = engine.parallelize(range(8), 4).mapPartitions(lambda it: [sum(it)]).collect()
        assert sum(result) == sum(range(8))
        assert len(result) == 4

    def test_map_partitions_with_index(self, engine):
        result = (
            engine.parallelize(range(4), 2)
            .mapPartitionsWithIndex(lambda i, it: [(i, len(list(it)))])
            .collect()
        )
        assert dict(result) == {0: 2, 1: 2}

    def test_key_by(self, engine):
        assert engine.parallelize([1, 2]).keyBy(lambda x: x % 2).collect() == [(1, 1), (0, 2)]

    def test_map_values(self, engine):
        result = engine.parallelize([("a", 1)]).mapValues(lambda v: v + 1).collect()
        assert result == [("a", 2)]

    def test_flat_map_values(self, engine):
        result = engine.parallelize([("a", [1, 2])]).flatMapValues(lambda v: v).collect()
        assert result == [("a", 1), ("a", 2)]

    def test_keys_values(self, engine):
        pairs = engine.parallelize([("a", 1), ("b", 2)])
        assert pairs.keys().collect() == ["a", "b"]
        assert pairs.values().collect() == [1, 2]

    def test_union(self, engine):
        result = engine.parallelize([1, 2]).union(engine.parallelize([3])).collect()
        assert result == [1, 2, 3]

    def test_zip_with_index(self, engine):
        result = engine.parallelize(["a", "b", "c"]).zipWithIndex().collect()
        assert result == [("a", 0), ("b", 1), ("c", 2)]

    def test_sample_deterministic(self, engine):
        rdd = engine.parallelize(range(1000))
        first = rdd.sample(0.1, seed=3).collect()
        second = engine.parallelize(range(1000)).sample(0.1, seed=3).collect()
        assert first == second
        assert 0 < len(first) < 1000

    def test_sample_invalid_fraction(self, engine):
        with pytest.raises(EngineError):
            engine.parallelize([1]).sample(1.5)

    def test_chained_laziness(self, engine):
        calls = []

        def record(x):
            calls.append(x)
            return x

        rdd = engine.parallelize([1, 2, 3]).map(record)
        assert calls == []  # nothing executed before the action
        rdd.collect()
        assert calls == [1, 2, 3]


class TestWideTransformations:
    def test_reduce_by_key(self, engine):
        data = [("a", 1), ("b", 2), ("a", 3)]
        result = dict(engine.parallelize(data).reduceByKey(lambda a, b: a + b).collect())
        assert result == {"a": 4, "b": 2}

    def test_group_by_key(self, engine):
        data = [("a", 1), ("a", 2), ("b", 3)]
        result = {k: sorted(v) for k, v in engine.parallelize(data).groupByKey().collect()}
        assert result == {"a": [1, 2], "b": [3]}

    def test_aggregate_by_key(self, engine):
        data = [("a", 1), ("a", 2), ("b", 3)]
        result = dict(
            engine.parallelize(data)
            .aggregateByKey(0, lambda acc, v: acc + v, lambda a, b: a + b)
            .collect()
        )
        assert result == {"a": 3, "b": 3}

    def test_distinct(self, engine):
        result = sorted(engine.parallelize([1, 2, 2, 3, 3, 3]).distinct().collect())
        assert result == [1, 2, 3]

    def test_join(self, engine):
        left = engine.parallelize([("a", 1), ("b", 2)])
        right = engine.parallelize([("a", "x"), ("c", "y")])
        assert left.join(right).collect() == [("a", (1, "x"))]

    def test_left_outer_join(self, engine):
        left = engine.parallelize([("a", 1), ("b", 2)])
        right = engine.parallelize([("a", "x")])
        result = dict(left.leftOuterJoin(right).collect())
        assert result == {"a": (1, "x"), "b": (2, None)}

    def test_cogroup(self, engine):
        left = engine.parallelize([("a", 1)])
        right = engine.parallelize([("a", 2), ("b", 3)])
        result = {k: v for k, v in left.cogroup(right).collect()}
        assert result["a"] == ([1], [2])
        assert result["b"] == ([], [3])

    def test_subtract_by_key(self, engine):
        left = engine.parallelize([("a", 1), ("b", 2)])
        right = engine.parallelize([("a", 9)])
        assert left.subtractByKey(right).collect() == [("b", 2)]

    def test_count_by_key(self, engine):
        data = [("a", 1), ("a", 2), ("b", 1)]
        assert engine.parallelize(data).countByKey() == {"a": 2, "b": 1}

    def test_sort_by(self, engine):
        result = engine.parallelize([3, 1, 2]).sortBy(lambda x: x).collect()
        assert result == [1, 2, 3]

    def test_sort_by_descending(self, engine):
        result = engine.parallelize([3, 1, 2]).sortBy(lambda x: x, ascending=False).collect()
        assert result == [3, 2, 1]

    def test_collect_as_map(self, engine):
        assert engine.parallelize([("a", 1)]).collectAsMap() == {"a": 1}

    def test_partition_by(self, engine):
        from repro.engine.partitioner import HashPartitioner

        rdd = engine.parallelize([("a", 1), ("b", 2), ("c", 3)]).partitionBy(
            HashPartitioner(2)
        )
        assert rdd.getNumPartitions() == 2
        assert sorted(rdd.collect()) == [("a", 1), ("b", 2), ("c", 3)]

    def test_repartition(self, engine):
        rdd = engine.parallelize(range(10), 2).repartition(5)
        assert rdd.getNumPartitions() == 5
        assert sorted(rdd.collect()) == list(range(10))

    def test_shuffle_keeps_all_records(self, engine):
        data = [(i % 7, i) for i in range(200)]
        grouped = engine.parallelize(data, 8).groupByKey()
        total = sum(len(values) for _key, values in grouped.collect())
        assert total == 200


class TestCaching:
    def test_cache_memoizes(self, engine):
        calls = []
        rdd = engine.parallelize([1, 2, 3]).map(lambda x: calls.append(x) or x).cache()
        rdd.collect()
        rdd.collect()
        assert len(calls) == 3

    def test_unpersist_allows_recompute(self, engine):
        rdd = engine.parallelize([1, 2, 3]).map(lambda x: x + 1)
        assert rdd.cache().collect() == [2, 3, 4]
        rdd.unpersist()
        assert rdd.collect() == [2, 3, 4]

    def test_glom_partition_structure(self, engine):
        partitions = engine.parallelize(range(10), 3).glom()
        assert len(partitions) == 3
        assert [x for part in partitions for x in part] == list(range(10))

    def test_empty_partition_allowed(self, engine):
        partitions = engine.parallelize([1], 4).glom()
        assert len(partitions) == 4
        assert sum(len(p) for p in partitions) == 1
