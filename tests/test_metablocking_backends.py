"""Unit tests of the kernel backend layer (selection rules + fast paths).

The cross-backend *output* equivalence lives in the grid of
``test_metablocking_equivalence.py``; this module pins the selection
contract (explicit spec > ``REPRO_KERNEL_BACKEND`` > auto), the failure
modes, and the vectorised pruning helpers against their scalar references
on adversarial weight maps (duplicate weights, zeros, tie-heavy).
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import MetaBlockingError
from repro.metablocking import backends
from repro.metablocking.backends import numpy_available, resolve_backend_name
from repro.metablocking.index import CSRBlockIndex
from repro.metablocking.pruning import (
    CardinalityEdgePruning,
    CardinalityNodePruning,
    ReciprocalWeightedNodePruning,
    WeightedEdgePruning,
    WeightedNodePruning,
)

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend requires numpy"
)


class TestBackendResolution:
    def test_explicit_python_always_wins(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "numpy")
        assert resolve_backend_name("python") == "python"

    def test_auto_prefers_numpy_when_available(self):
        expected = "numpy" if numpy_available() else "python"
        assert resolve_backend_name("auto") == expected
        assert resolve_backend_name(None) in ("python", "numpy")

    def test_env_var_is_consulted_when_no_spec_given(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "python")
        assert resolve_backend_name(None) == "python"
        assert resolve_backend_name("") == "python"

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(MetaBlockingError, match="unknown kernel backend"):
            resolve_backend_name("fortran")
        with pytest.raises(MetaBlockingError, match="must be a string"):
            resolve_backend_name(7)  # type: ignore[arg-type]

    def test_numpy_request_fails_loudly_without_numpy(self, monkeypatch):
        monkeypatch.setattr(backends, "_numpy_checked", True)
        monkeypatch.setattr(backends, "_numpy_module", None)
        with pytest.raises(MetaBlockingError, match="not importable"):
            resolve_backend_name("numpy")
        # auto degrades silently to the interpreted kernel instead.
        assert resolve_backend_name("auto") == "python"

    def test_index_resolves_and_exposes_its_backend(self):
        assert CSRBlockIndex(backend="python").backend == "python"
        resolved = CSRBlockIndex().backend
        assert resolved == ("numpy" if numpy_available() else "python")


def _random_weights(seed: int, num_nodes: int = 60, num_edges: int = 400):
    """A weight map with heavy ties: duplicate weights, zeros, dense pairs."""
    rng = random.Random(seed)
    weights: dict[tuple[int, int], float] = {}
    while len(weights) < num_edges:
        a, b = rng.sample(range(num_nodes), 2)
        pair = (a, b) if a < b else (b, a)
        # Few distinct weight values on purpose: the tie-breaks must match.
        weights.setdefault(pair, float(rng.choice([0.0, 1.0, 2.0, 2.0, 3.5])))
    return weights


def _table_from(weights):
    import numpy as np

    pairs = list(weights)
    return backends.EdgeWeights(
        mapping=dict(weights),
        a=np.asarray([a for a, _b in pairs], dtype=np.int64),
        b=np.asarray([b for _a, b in pairs], dtype=np.int64),
        w=np.asarray(list(weights.values()), dtype=np.float64),
        num_nodes=max(x for p in pairs for x in p) + 1,
    )


class _StatsGraph:
    """Just enough of a BlockingGraph for the scalar pruning strategies."""

    def __init__(self, weights, num_nodes):
        nodes = {x for pair in weights for x in pair}
        self.blocks_per_profile = {node: 3 for node in nodes}
        self.num_nodes = num_nodes


@needs_numpy
class TestVectorisedPruningFastPaths:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_wep_matches_scalar(self, seed):
        weights = _random_weights(seed)
        table = _table_from(weights)
        scalar = WeightedEdgePruning().prune(_StatsGraph(weights, 60), weights)
        assert backends.wep_retain(table) == scalar

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("k", [1, 7, 10_000])
    def test_cep_matches_scalar(self, seed, k):
        weights = _random_weights(seed)
        table = _table_from(weights)
        scalar = CardinalityEdgePruning(k=k).prune(_StatsGraph(weights, 60), weights)
        vectorised = backends.cep_retain(table, k)
        assert vectorised == scalar
        # CEP's retained dict is in ranked order in the scalar path; the
        # vectorised path preserves that too.
        assert list(vectorised) == list(scalar)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("required", [1, 2])
    def test_wnp_matches_scalar(self, seed, required):
        weights = _random_weights(seed)
        table = _table_from(weights)
        strategy = (
            ReciprocalWeightedNodePruning() if required == 2 else WeightedNodePruning()
        )
        scalar = strategy.prune(_StatsGraph(weights, 60), weights)
        assert backends.wnp_retain(table, required) == scalar

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("required", [1, 2])
    @pytest.mark.parametrize("k", [1, 4])
    def test_cnp_matches_scalar(self, seed, required, k):
        weights = _random_weights(seed)
        table = _table_from(weights)
        strategy = CardinalityNodePruning(k=k, reciprocal=required == 2)
        scalar = strategy.prune(_StatsGraph(weights, 60), weights)
        assert backends.cnp_retain(table, k, required) == scalar

    def test_empty_table_retains_nothing(self):
        table = _table_from({(0, 1): 1.0})
        empty = _table_from({(0, 1): 1.0})
        empty.mapping = {}
        empty.a = empty.a[:0]
        empty.b = empty.b[:0]
        empty.w = empty.w[:0]
        empty._pairs = None
        assert backends.wep_retain(empty) == {}
        assert backends.cep_retain(empty, 3) == {}
        assert backends.wnp_retain(empty, 1) == {}
        assert backends.cnp_retain(empty, 3, 1) == {}
        assert backends.wep_retain(table)  # sanity: non-empty stays non-empty

    def test_custom_strategy_falls_back_to_scalar_prune(self):
        class Custom(WeightedNodePruning):
            def prune(self, graph, weights):  # pragma: no cover - marker only
                return {}

        weights = _random_weights(5)
        table = _table_from(weights)
        index = CSRBlockIndex(backend="python")
        assert not backends.supports_strategy(Custom())
        assert backends.prune_edge_weights(Custom(), table, index) is None

    def test_hook_only_subclass_is_not_vectorised(self):
        # Overriding only the node_thresholds hook (not prune) must still
        # disqualify the fast path: the stock WNP arrays would silently
        # ignore the customised thresholds otherwise.
        from repro.blocking.block import Block, BlockCollection
        from repro.metablocking.metablocker import MetaBlocker

        class InfThresholds(WeightedNodePruning):
            def node_thresholds(self, weights):
                return {node: float("inf") for pair in weights for node in pair}

        assert not backends.supports_strategy(InfThresholds())
        blocks = BlockCollection(clean_clean=False)
        for i in range(12):
            blocks.add(Block(key=f"b{i}", profiles_source0=set(range(i, i + 4))))
        python_run = MetaBlocker(
            "cbs", InfThresholds(), kernel_backend="python"
        ).run(blocks)
        numpy_run = MetaBlocker(
            "cbs", InfThresholds(), kernel_backend="numpy"
        ).run(blocks)
        assert python_run.retained_edges == numpy_run.retained_edges == {}

    def test_stock_strategies_are_supported(self):
        assert backends.supports_strategy(WeightedEdgePruning())
        assert backends.supports_strategy(CardinalityEdgePruning())
        assert backends.supports_strategy(WeightedNodePruning())
        assert backends.supports_strategy(ReciprocalWeightedNodePruning())
        assert backends.supports_strategy(CardinalityNodePruning(reciprocal=True))
