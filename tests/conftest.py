"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import SparkERConfig
from repro.data.synthetic import (
    SyntheticConfig,
    generate_abt_buy_like,
    generate_bibliographic,
    generate_dirty_persons,
    toy_bibliographic_dataset,
)
from repro.engine.context import EngineContext


@pytest.fixture
def toy_dataset():
    """The 4-profile toy example of the paper's Figure 1."""
    return toy_bibliographic_dataset()


@pytest.fixture(scope="session")
def abt_buy_small():
    """A small synthetic Abt-Buy-like clean-clean dataset (fast, ~100 profiles)."""
    return generate_abt_buy_like(SyntheticConfig(num_entities=60, seed=3))


@pytest.fixture(scope="session")
def abt_buy_medium():
    """A medium synthetic Abt-Buy-like dataset used by integration tests."""
    return generate_abt_buy_like(SyntheticConfig(num_entities=150, seed=5))


@pytest.fixture(scope="session")
def bibliographic_small():
    """A small synthetic bibliographic clean-clean dataset."""
    return generate_bibliographic(num_entities=80, seed=9)


@pytest.fixture(scope="session")
def dirty_persons_small():
    """A small synthetic dirty-ER person dataset."""
    return generate_dirty_persons(num_entities=60, seed=13)


@pytest.fixture
def engine():
    """A fresh engine context with 4 partitions."""
    return EngineContext(default_parallelism=4, app_name="tests")


@pytest.fixture
def default_config():
    """The unsupervised default configuration."""
    return SparkERConfig.unsupervised_default()


# -- opt-in perf-regression guard -------------------------------------------
def pytest_addoption(parser):
    parser.addoption(
        "--bench-guard",
        action="store_true",
        default=False,
        help="run the opt-in kernel perf-regression guard (times real workloads)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench_guard: opt-in perf-regression guard, deselected unless --bench-guard is given",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--bench-guard"):
        return
    skip_guard = pytest.mark.skip(reason="bench guard is opt-in: pass --bench-guard")
    for item in items:
        if "bench_guard" in item.keywords:
            item.add_marker(skip_guard)
