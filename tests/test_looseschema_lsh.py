"""Tests of the attribute LSH of the loose-schema generator."""

from repro.looseschema.lsh import AttributeLSH, build_attribute_profiles


class TestBuildAttributeProfiles:
    def test_one_profile_per_source_attribute(self, abt_buy_small):
        attribute_profiles = build_attribute_profiles(abt_buy_small.profiles)
        assert (0, "name") in attribute_profiles
        assert (1, "title") in attribute_profiles
        assert (0, "title") not in attribute_profiles

    def test_tokens_accumulated(self, toy_dataset):
        attribute_profiles = build_attribute_profiles(toy_dataset.profiles)
        name_tokens = attribute_profiles[(0, "Name")].tokens
        assert "blast" in name_tokens
        assert "sparker" in name_tokens

    def test_value_counts(self, toy_dataset):
        attribute_profiles = build_attribute_profiles(toy_dataset.profiles)
        counts = attribute_profiles[(0, "Authors")].value_counts
        assert counts.get("simonini", 0) >= 1


class TestAttributeLSH:
    def test_similar_attributes_are_candidates(self, abt_buy_small):
        attribute_profiles = build_attribute_profiles(abt_buy_small.profiles)
        lsh = AttributeLSH(num_perm=128, num_bands=64)
        similarities = lsh.similarities(attribute_profiles)
        # name (abt) and title (buy) share most tokens → must be a candidate pair
        # with a reasonably high similarity.
        pair_keys = {frozenset((a[1], b[1])) for a, b in similarities}
        assert frozenset(("name", "title")) in pair_keys

    def test_cross_source_only(self, abt_buy_small):
        attribute_profiles = build_attribute_profiles(abt_buy_small.profiles)
        lsh = AttributeLSH(num_perm=64, num_bands=32)
        similarities = lsh.similarities(attribute_profiles, cross_source_only=True)
        for (a, b) in similarities:
            assert a[0] != b[0]

    def test_within_source_allowed_when_disabled(self, abt_buy_small):
        attribute_profiles = build_attribute_profiles(abt_buy_small.profiles)
        lsh = AttributeLSH(num_perm=64, num_bands=32)
        all_pairs = lsh.similarities(attribute_profiles, cross_source_only=False)
        cross_only = lsh.similarities(attribute_profiles, cross_source_only=True)
        assert len(all_pairs) >= len(cross_only)

    def test_exact_similarity_in_unit_interval(self, abt_buy_small):
        attribute_profiles = build_attribute_profiles(abt_buy_small.profiles)
        similarities = AttributeLSH().similarities(attribute_profiles)
        assert all(0.0 <= s <= 1.0 for s in similarities.values())

    def test_estimate_mode(self, abt_buy_small):
        attribute_profiles = build_attribute_profiles(abt_buy_small.profiles)
        lsh = AttributeLSH(num_perm=128, num_bands=64)
        estimated = lsh.similarities(attribute_profiles, use_exact=False)
        assert all(0.0 <= s <= 1.0 for s in estimated.values())

    def test_signatures_shape(self, toy_dataset):
        attribute_profiles = build_attribute_profiles(toy_dataset.profiles)
        lsh = AttributeLSH(num_perm=32)
        signatures = lsh.signatures(attribute_profiles)
        assert all(sig.shape == (32,) for sig in signatures.values())

    def test_dirty_single_source_pairs(self, dirty_persons_small):
        attribute_profiles = build_attribute_profiles(dirty_persons_small.profiles)
        lsh = AttributeLSH(num_perm=64, num_bands=32)
        # Single-source data: cross_source_only must not suppress every pair.
        similarities = lsh.similarities(attribute_profiles, cross_source_only=True)
        assert isinstance(similarities, dict)
