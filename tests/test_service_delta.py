"""Delta meta-blocker: incremental refresh ≡ batch meta-blocking.

After every append + refresh the :class:`~repro.service.delta.
DeltaMetaBlocker`'s retained edges must equal (dict-identical, floats
included) what a fresh :class:`~repro.metablocking.metablocker.MetaBlocker`
computes on the union collection.  Local-capable configurations (CBS/JS/ARCS
× WNP/RWNP/CNP) must reach that answer through the neighbourhood-local path;
global schemes (ECBS/EJS) and edge-centric prunings must fall back to a full
recompute — equally correct, just not localised.
"""

from __future__ import annotations

import pytest

from repro.blocking.token_blocking import TokenBlocking
from repro.data.dataset import ProfileCollection
from repro.metablocking.backends import numpy_available
from repro.metablocking.index import IncrementalBlockIndex
from repro.metablocking.metablocker import MetaBlocker
from repro.service.delta import DeltaMetaBlocker

from tests.test_metablocking_incremental import _random_profiles

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend requires numpy"
)

KERNELS = ["python", pytest.param("numpy", marks=needs_numpy)]
LOCAL_GRID = [
    (weighting, pruning)
    for weighting in ("cbs", "js", "arcs")
    for pruning in ("wnp", "rwnp", "cnp")
]
GLOBAL_GRID = [("ecbs", "wnp"), ("ejs", "cnp"), ("cbs", "wep"), ("js", "cep")]


def _batch_retained(profiles, weighting, pruning, *, clean_clean, kernel):
    blocks = TokenBlocking().block(ProfileCollection(profiles))
    assert blocks.clean_clean == clean_clean
    return MetaBlocker(weighting, pruning, kernel_backend=kernel).run(
        blocks
    ).retained_edges


def _run_append_sequence(weighting, pruning, *, clean_clean, kernel, seed=19):
    """Three appends with a refresh after each.

    Yields ``(delta, retained_snapshot, expected)`` per refresh — the
    snapshot is copied because the same :class:`DeltaMetaBlocker` instance
    keeps mutating across steps.
    """
    profiles = _random_profiles(75, clean_clean=clean_clean, seed=seed)
    batches = [profiles[:30], profiles[30:55], profiles[55:]]
    incremental = IncrementalBlockIndex(clean_clean=clean_clean, backend=kernel)
    delta = DeltaMetaBlocker(weighting, pruning)
    try:
        ingested = []
        pending: set[int] = set()
        for position, batch in enumerate(batches):
            append = incremental.append_profiles(batch)
            pending.update(append.touched_profile_ids)
            ingested.extend(batch)
            index = incremental.materialise()
            touched = None if position == 0 else frozenset(pending)
            delta.refresh(index, touched)
            pending.clear()
            expected = _batch_retained(
                ingested, weighting, pruning, clean_clean=clean_clean, kernel=kernel
            )
            yield delta, dict(delta.retained), expected
    finally:
        incremental.close()


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("weighting,pruning", LOCAL_GRID)
@pytest.mark.parametrize("clean_clean", [False, True])
def test_local_refresh_matches_batch(weighting, pruning, clean_clean, kernel):
    runs = list(
        _run_append_sequence(weighting, pruning, clean_clean=clean_clean, kernel=kernel)
    )
    for _delta, retained, expected in runs:
        assert retained == expected
    final = runs[-1][0]
    assert final.local_capable
    # The first refresh primes fully; later refreshes must have localised
    # (unless CNP's default k moved, which these sizes keep stable).
    assert final.full_refreshes >= 1
    assert final.local_refreshes >= 1
    if pruning != "cnp":
        assert final.last_mode == "local"
    else:
        # CNP falls back to a full recompute whenever an append moves the
        # resolved default k — correct either way, so only require that the
        # local path ran at least once in the sequence.
        assert final.last_mode in ("local", "full")


@pytest.mark.parametrize("weighting,pruning", GLOBAL_GRID)
def test_global_configurations_fall_back_to_full_recompute(weighting, pruning):
    runs = list(
        _run_append_sequence(weighting, pruning, clean_clean=False, kernel="python")
    )
    for _delta, retained, expected in runs:
        assert retained == expected
    final = runs[-1][0]
    assert not final.local_capable
    assert final.local_refreshes == 0
    assert final.full_refreshes == final.refreshes


def test_refresh_with_none_forces_full_recompute():
    profiles = _random_profiles(40, clean_clean=False, seed=5)
    incremental = IncrementalBlockIndex()
    incremental.append_profiles(profiles)
    index = incremental.materialise()
    delta = DeltaMetaBlocker("cbs", "wnp")
    delta.refresh(index, frozenset(range(40)))  # first call primes fully
    delta.refresh(index, None)
    assert delta.full_refreshes == 2
    assert delta.retained == _batch_retained(
        profiles, "cbs", "wnp", clean_clean=False, kernel="python"
    )
    incremental.close()


def test_empty_touched_set_is_a_no_op_after_priming():
    profiles = _random_profiles(40, clean_clean=False, seed=5)
    incremental = IncrementalBlockIndex()
    incremental.append_profiles(profiles)
    index = incremental.materialise()
    delta = DeltaMetaBlocker("cbs", "wnp")
    delta.refresh(index, None)
    before = dict(delta.retained)
    delta.refresh(index, frozenset())
    assert delta.last_mode == "local"
    assert delta.last_affected == 0
    assert delta.retained == before
    incremental.close()


def test_candidates_of_orders_best_first():
    profiles = _random_profiles(50, clean_clean=False, seed=9)
    incremental = IncrementalBlockIndex()
    incremental.append_profiles(profiles)
    delta = DeltaMetaBlocker("js", "wnp")
    delta.refresh(incremental.materialise(), None)
    some_profile = next(pid for pair in delta.retained for pid in pair)
    incident = delta.candidates_of(some_profile)
    assert incident
    weights = [weight for _pair, weight in incident]
    assert weights == sorted(weights, reverse=True)
    for pair, weight in incident:
        assert some_profile in pair
        assert delta.retained[pair] == weight
    incremental.close()


def test_stats_exposes_refresh_counters():
    delta = DeltaMetaBlocker("cbs", "wnp")
    stats = delta.stats()
    assert stats["local_capable"] is True
    assert stats["refreshes"] == 0
    assert stats["retained_edges"] == 0
    assert stats["weighting"] == "cbs"
    assert stats["pruning"] == "WeightedNodePruning"
