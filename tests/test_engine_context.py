"""Tests of the engine context, broadcast variables and accumulators."""

import pytest

from repro.engine.context import EngineContext
from repro.exceptions import EngineError


class TestContext:
    def test_parallelize_partition_count(self, engine):
        assert engine.parallelize(range(10)).getNumPartitions() == 4

    def test_parallelize_explicit_partitions(self, engine):
        assert engine.parallelize(range(10), 2).getNumPartitions() == 2

    def test_range(self, engine):
        assert engine.range(5).collect() == [0, 1, 2, 3, 4]
        assert engine.range(2, 5).collect() == [2, 3, 4]

    def test_empty_rdd(self, engine):
        assert engine.emptyRDD().collect() == []

    def test_invalid_parallelism(self):
        with pytest.raises(EngineError):
            EngineContext(default_parallelism=0)

    def test_metrics_summary_counts_jobs(self, engine):
        engine.parallelize([1, 2, 3]).count()
        summary = engine.metrics_summary()
        assert summary["jobs"] >= 1
        assert summary["tasks"] >= 1

    def test_reset_metrics(self, engine):
        engine.parallelize([1]).count()
        engine.reset_metrics()
        assert engine.metrics_summary()["jobs"] == 0

    def test_repr(self, engine):
        assert "EngineContext" in repr(engine)


class TestBroadcast:
    def test_value_accessible(self, engine):
        broadcast = engine.broadcast({"a": 1})
        assert broadcast.value == {"a": 1}

    def test_access_count(self, engine):
        broadcast = engine.broadcast(3)
        _ = broadcast.value
        _ = broadcast.value
        assert broadcast.access_count == 2

    def test_destroy(self, engine):
        broadcast = engine.broadcast("x")
        broadcast.destroy()
        with pytest.raises(ValueError):
            _ = broadcast.value

    def test_unique_ids(self, engine):
        a = engine.broadcast(1)
        b = engine.broadcast(2)
        assert a.id != b.id

    def test_usable_inside_tasks(self, engine):
        lookup = engine.broadcast({1: "one", 2: "two"})
        result = engine.parallelize([1, 2]).map(lambda x: lookup.value[x]).collect()
        assert result == ["one", "two"]


class TestAccumulator:
    def test_add(self, engine):
        accumulator = engine.accumulator(0)
        accumulator.add(5)
        accumulator += 3
        assert accumulator.value == 8

    def test_custom_combine(self, engine):
        accumulator = engine.accumulator(set(), combine=lambda a, b: a | b)
        accumulator.add({1})
        accumulator.add({2})
        assert accumulator.value == {1, 2}

    def test_counting_from_tasks(self, engine):
        counter = engine.accumulator(0)
        engine.parallelize(range(10)).foreach(lambda _x: counter.add(1))
        assert counter.value == 10
