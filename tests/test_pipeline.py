"""Tests of the composable stage-graph pipeline API (repro.pipeline)."""

from __future__ import annotations

import json

import pytest

from repro.blocking.token_blocking import TokenBlocking
from repro.exceptions import (
    EvaluationError,
    PipelineError,
    PipelineValidationError,
)
from repro.pipeline import (
    Pipeline,
    PipelineCheckpoint,
    make_stage,
    registered_stages,
    stage_catalog,
    stage_parameters,
)

FULL_SPEC = {
    "stages": [
        {"stage": "token_blocking"},
        {"stage": "block_purging"},
        {"stage": "block_filtering"},
        {"stage": "meta_blocking"},
        {"stage": "matching"},
        {"stage": "clustering"},
        {"stage": "entity_generation"},
    ],
}

EXPECTED_KINDS = {
    "loose_schema",
    "token_blocking",
    "block_purging",
    "block_filtering",
    "meta_blocking",
    "block_comparisons",
    "progressive_meta_blocking",
    "matching",
    "clustering",
    "entity_generation",
    "evaluation",
}


class TestRegistry:
    def test_builtin_stages_registered(self):
        assert EXPECTED_KINDS <= set(registered_stages())

    def test_unknown_stage_rejected(self):
        with pytest.raises(PipelineValidationError, match="unknown stage kind"):
            make_stage("does_not_exist")

    def test_bad_parameters_rejected(self):
        with pytest.raises(PipelineValidationError, match="bad parameters"):
            make_stage("token_blocking", {"nope": 1})

    def test_stage_parameters_expose_defaults(self):
        assert stage_parameters("block_filtering") == {"ratio": 0.8}
        assert stage_parameters("meta_blocking")["pruning"] == "wnp"

    def test_catalog_covers_every_stage(self):
        rows = stage_catalog()
        assert {row["stage"] for row in rows} >= EXPECTED_KINDS
        by_kind = {row["stage"]: row for row in rows}
        assert "blocks" in by_kind["meta_blocking"]["inputs"]
        assert "candidate_pairs" in by_kind["meta_blocking"]["outputs"]


class TestValidation:
    def test_missing_required_input_rejected(self):
        with pytest.raises(PipelineValidationError, match="requires input"):
            Pipeline.from_spec({"stages": [{"stage": "matching"}]})

    def test_kind_mismatch_rejected(self):
        spec = {
            "stages": [
                {"stage": "token_blocking"},
                {"stage": "meta_blocking"},
                # Wires the candidate-pair set into a blocks input.
                {"stage": "block_filtering", "inputs": {"blocks": "candidate_pairs"}},
            ],
        }
        with pytest.raises(PipelineValidationError, match="kind"):
            Pipeline.from_spec(spec)

    def test_duplicate_labels_rejected(self):
        spec = {"stages": [{"stage": "token_blocking"}, {"stage": "token_blocking"}]}
        with pytest.raises(PipelineValidationError, match="duplicate stage label"):
            Pipeline.from_spec(spec)

    def test_distinct_labels_allow_repeated_stages(self):
        spec = {
            "stages": [
                {"stage": "token_blocking"},
                {"stage": "block_filtering", "label": "filter_a"},
                {"stage": "block_filtering", "label": "filter_b",
                 "params": {"ratio": 0.5}},
                {"stage": "block_comparisons"},
            ],
        }
        Pipeline.from_spec(spec)  # must validate

    def test_unknown_port_rejected(self):
        spec = {"stages": [{"stage": "token_blocking", "inputs": {"nope": "x"}}]}
        with pytest.raises(PipelineValidationError, match="no input port"):
            Pipeline.from_spec(spec)

    def test_unknown_entry_keys_rejected(self):
        spec = {"stages": [{"stage": "token_blocking", "parms": {}}]}
        with pytest.raises(PipelineValidationError, match="unknown keys"):
            Pipeline.from_spec(spec)

    def test_unknown_top_level_keys_rejected(self):
        # A typoed engine section must not silently run driver-side.
        spec = {"engines": {"enabled": True}, "stages": [{"stage": "token_blocking"}]}
        with pytest.raises(PipelineValidationError, match="unknown keys in pipeline spec"):
            Pipeline.from_spec(spec)

    def test_empty_spec_rejected(self):
        with pytest.raises(PipelineValidationError, match="non-empty"):
            Pipeline.from_spec({"stages": []})

    def test_stop_after_must_name_a_stage(self, abt_buy_small):
        pipeline = Pipeline.from_spec(FULL_SPEC)
        with pytest.raises(PipelineValidationError, match="stop_after"):
            pipeline.run(abt_buy_small.profiles, stop_after="nope")


class TestExecution:
    def test_string_entries_are_stage_names(self, abt_buy_small):
        pipeline = Pipeline.from_spec(
            {"stages": ["token_blocking", "block_purging", "block_filtering",
                        "block_comparisons"]}
        )
        result = pipeline.run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        assert len(result.candidate_pairs) > 0
        assert result.completed[-1] == "block_comparisons"

    def test_partial_pipeline_from_seeded_blocks(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        pipeline = Pipeline.from_spec(
            {
                "seeds": {"blocks": "blocks"},
                "stages": ["block_filtering", "block_comparisons"],
            }
        )
        result = pipeline.run(
            abt_buy_small.profiles, artifacts={"blocks": blocks}
        )
        assert result.candidate_pairs <= blocks.distinct_comparisons()

    def test_declared_seed_must_be_provided(self, abt_buy_small):
        pipeline = Pipeline.from_spec(
            {
                "seeds": {"blocks": "blocks"},
                "stages": ["block_filtering", "block_comparisons"],
            }
        )
        with pytest.raises(PipelineValidationError, match="requires input"):
            pipeline.run(abt_buy_small.profiles)

    def test_progressive_stage_respects_budget(self, abt_buy_small):
        pipeline = Pipeline.from_spec(
            {
                "stages": [
                    "token_blocking",
                    "block_purging",
                    "block_filtering",
                    {"stage": "progressive_meta_blocking",
                     "params": {"budget": 50, "strategy": "global"}},
                ],
            }
        )
        result = pipeline.run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        assert 0 < len(result.candidate_pairs) <= 50
        row = result.report.get("progressive_meta_blocking")
        assert row.metrics["budget"] == 50

    def test_progressive_bad_strategy_rejected(self):
        with pytest.raises(PipelineValidationError, match="strategy"):
            make_stage("progressive_meta_blocking", {"strategy": "sideways"})

    def test_evaluation_stage_flattens_all_sections(self, abt_buy_small):
        spec = {"stages": FULL_SPEC["stages"] + [{"stage": "evaluation"}]}
        result = Pipeline.from_spec(spec).run(
            abt_buy_small.profiles, abt_buy_small.ground_truth
        )
        evaluation = result.artifacts.get("evaluation")
        assert set(evaluation) == {"blocking", "matching", "clustering"}
        row = result.report.get("evaluation")
        assert any(key.startswith("clustering.") for key in row.metrics)

    def test_evaluation_stage_requires_ground_truth(self, abt_buy_small):
        spec = {"stages": FULL_SPEC["stages"] + [{"stage": "evaluation"}]}
        with pytest.raises(EvaluationError):
            Pipeline.from_spec(spec).run(abt_buy_small.profiles)

    def test_report_and_rows_cover_every_stage(self, abt_buy_small):
        result = Pipeline.from_spec(FULL_SPEC).run(
            abt_buy_small.profiles, abt_buy_small.ground_truth
        )
        labels = [entry["stage"] for entry in FULL_SPEC["stages"]]
        assert [s.stage for s in result.report.stages] == labels
        assert [row["stage"] for row in result.stage_rows()] == labels
        assert all(row["status"] == "run" for row in result.stage_rows())
        assert set(result.timings.durations) == set(labels)

    def test_summary_reports_artifact_counts(self, abt_buy_small):
        result = Pipeline.from_spec(FULL_SPEC).run(
            abt_buy_small.profiles, abt_buy_small.ground_truth
        )
        summary = result.summary()
        assert summary["clusters"] == len(result.clusters)
        assert summary["entities"] == len(result.entities)
        assert summary["stages_run"] == len(FULL_SPEC["stages"])

    def test_engine_metrics_recorded_per_stage(self, abt_buy_small):
        spec = dict(FULL_SPEC, engine={"enabled": True, "parallelism": 2})
        pipeline = Pipeline.from_spec(spec)
        try:
            result = pipeline.run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        finally:
            pipeline.shutdown()
        assert result.engine_metrics["tasks"] > 0
        by_label = {e.label: e for e in result.executions}
        assert by_label["meta_blocking"].engine["tasks"] > 0
        assert by_label["meta_blocking"].engine["shuffle_records"] > 0
        assert sum(e.engine["tasks"] for e in result.executions) == (
            result.engine_metrics["tasks"]
        )
        assert "engine" in result.summary()

    def test_missing_declared_output_is_an_error(self, abt_buy_small):
        from repro.pipeline import Stage, register_stage
        from repro.pipeline.stage import _port

        @register_stage
        class BrokenStage(Stage):
            kind = "broken_test_stage"
            inputs = (_port("profiles"),)
            outputs = (_port("blocks"),)

            def run(self, context, *, profiles):
                return {}

        try:
            pipeline = Pipeline([BrokenStage()])
            with pytest.raises(PipelineError, match="did not produce"):
                pipeline.run(abt_buy_small.profiles)
        finally:
            from repro.pipeline import registry

            registry._REGISTRY.pop("broken_test_stage", None)


class TestSpecRoundTrip:
    def test_resolved_spec_is_json_and_rebuilds_identically(self, abt_buy_small):
        pipeline = Pipeline.from_spec(FULL_SPEC)
        resolved = pipeline.resolved_spec()
        rebuilt = Pipeline.from_spec(json.loads(json.dumps(resolved)))
        first = pipeline.run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        second = rebuilt.run(abt_buy_small.profiles, abt_buy_small.ground_truth)
        assert first.candidate_pairs == second.candidate_pairs
        assert first.similarity_graph.pairs() == second.similarity_graph.pairs()
        assert [c.members for c in first.clusters] == [
            c.members for c in second.clusters
        ]
        assert first.report.as_rows() == second.report.as_rows()
        assert rebuilt.resolved_spec()["stages"] == resolved["stages"]

    def test_resolved_spec_records_all_parameters(self):
        pipeline = Pipeline.from_spec(FULL_SPEC)
        stages = {
            entry["stage"]: entry for entry in pipeline.resolved_spec()["stages"]
        }
        assert stages["meta_blocking"]["params"] == {
            "weighting": "cbs",
            "pruning": "wnp",
            "use_entropy": False,
        }
        assert stages["matching"]["params"]["threshold"] == 0.4


class TestCheckpointResume:
    def test_resume_reproduces_uninterrupted_run(self, abt_buy_small, tmp_path):
        uninterrupted = Pipeline.from_spec(FULL_SPEC).run(
            abt_buy_small.profiles, abt_buy_small.ground_truth
        )
        checkpoint = tmp_path / "ckpt"
        partial = Pipeline.from_spec(FULL_SPEC).run(
            abt_buy_small.profiles,
            abt_buy_small.ground_truth,
            checkpoint=checkpoint,
            stop_after="meta_blocking",
        )
        assert partial.partial
        assert partial.completed == [
            "token_blocking", "block_purging", "block_filtering", "meta_blocking",
        ]
        resumed = Pipeline.resume(checkpoint)
        assert not resumed.partial
        assert resumed.candidate_pairs == uninterrupted.candidate_pairs
        assert resumed.similarity_graph.pairs() == (
            uninterrupted.similarity_graph.pairs()
        )
        assert [c.members for c in resumed.clusters] == [
            c.members for c in uninterrupted.clusters
        ]
        assert resumed.report.as_rows() == uninterrupted.report.as_rows()
        resumed_flags = [e.resumed for e in resumed.executions]
        assert resumed_flags == [True] * 4 + [False] * 3

    def test_checkpoint_written_after_every_stage(self, abt_buy_small, tmp_path):
        checkpoint = PipelineCheckpoint(tmp_path / "ckpt")
        Pipeline.from_spec(FULL_SPEC).run(
            abt_buy_small.profiles,
            abt_buy_small.ground_truth,
            checkpoint=checkpoint,
            stop_after="token_blocking",
        )
        assert checkpoint.exists()
        manifest = json.loads(checkpoint.manifest_path.read_text())
        assert manifest["completed"] == ["token_blocking"]
        assert manifest["artifacts"]["blocks"] == "blocks"

    def test_resume_rejects_a_different_spec(self, abt_buy_small, tmp_path):
        checkpoint = tmp_path / "ckpt"
        Pipeline.from_spec(FULL_SPEC).run(
            abt_buy_small.profiles,
            abt_buy_small.ground_truth,
            checkpoint=checkpoint,
            stop_after="meta_blocking",
        )
        other = Pipeline.from_spec(
            {"stages": FULL_SPEC["stages"][:3] + [{"stage": "block_comparisons"}]}
        )
        with pytest.raises(PipelineError, match="different pipeline spec"):
            other.run(None, checkpoint=checkpoint, resume=True)

    def test_resume_without_checkpoint_is_an_error(self):
        pipeline = Pipeline.from_spec(FULL_SPEC)
        with pytest.raises(PipelineError, match="requires a checkpoint"):
            pipeline.run(None, resume=True)

    def test_missing_checkpoint_is_an_error(self, tmp_path):
        with pytest.raises(PipelineError, match="no checkpoint"):
            Pipeline.resume(tmp_path / "nope")

    def test_unpicklable_extras_do_not_break_checkpointing(
        self, abt_buy_small, tmp_path
    ):
        from repro.matching.matcher import ThresholdMatcher

        class LambdaMatcher(ThresholdMatcher):
            """A custom matcher carrying an unpicklable attribute."""

            def __init__(self):
                super().__init__()
                self.hook = lambda pair: pair

        checkpoint = tmp_path / "ckpt"
        extras = {"matcher": LambdaMatcher()}
        partial = Pipeline.from_spec(FULL_SPEC).run(
            abt_buy_small.profiles,
            abt_buy_small.ground_truth,
            extras=extras,
            checkpoint=checkpoint,
            stop_after="meta_blocking",
        )
        assert partial.partial
        # Extras are not persisted; resuming must accept them again.
        resumed = Pipeline.resume(checkpoint, extras=extras)
        assert not resumed.partial
        assert len(resumed.clusters) > 0
