"""Tests of the synthetic dataset generators."""

from repro.data.synthetic import (
    SyntheticConfig,
    generate_abt_buy_like,
    generate_bibliographic,
    generate_dirty_persons,
    toy_bibliographic_dataset,
)


class TestAbtBuyLike:
    def test_deterministic(self):
        a = generate_abt_buy_like(SyntheticConfig(num_entities=40, seed=1))
        b = generate_abt_buy_like(SyntheticConfig(num_entities=40, seed=1))
        assert a.summary() == b.summary()
        assert a.ground_truth.pairs() == b.ground_truth.pairs()

    def test_seed_changes_data(self):
        a = generate_abt_buy_like(SyntheticConfig(num_entities=40, seed=1))
        b = generate_abt_buy_like(SyntheticConfig(num_entities=40, seed=2))
        assert a.ground_truth.pairs() != b.ground_truth.pairs()

    def test_clean_clean_structure(self):
        dataset = generate_abt_buy_like(SyntheticConfig(num_entities=50))
        assert dataset.profiles.is_clean_clean
        assert dataset.profiles.sources() == {0, 1}

    def test_different_attribute_names_per_source(self):
        dataset = generate_abt_buy_like(SyntheticConfig(num_entities=30))
        names = dataset.profiles.attribute_names_by_source()
        assert "name" in names[0]
        assert "title" in names[1]
        assert names[0].isdisjoint(names[1])

    def test_ground_truth_pairs_cross_source(self):
        dataset = generate_abt_buy_like(SyntheticConfig(num_entities=30))
        separator = dataset.profiles.separator_id
        for a, b in dataset.ground_truth:
            assert a <= separator < b

    def test_matches_share_tokens(self):
        dataset = generate_abt_buy_like(SyntheticConfig(num_entities=30, typo_rate=0.0))
        for a, b in list(dataset.ground_truth)[:10]:
            tokens_a = dataset.profiles[a].tokens()
            tokens_b = dataset.profiles[b].tokens()
            assert len(tokens_a & tokens_b) >= 2

    def test_match_rate_controls_overlap(self):
        low = generate_abt_buy_like(SyntheticConfig(num_entities=100, match_rate=0.2))
        high = generate_abt_buy_like(SyntheticConfig(num_entities=100, match_rate=0.9))
        assert len(high.ground_truth) > len(low.ground_truth)


class TestBibliographic:
    def test_structure(self):
        dataset = generate_bibliographic(num_entities=40)
        assert dataset.profiles.is_clean_clean
        assert len(dataset.ground_truth) > 0

    def test_attribute_heterogeneity(self):
        dataset = generate_bibliographic(num_entities=20)
        names = dataset.profiles.attribute_names_by_source()
        assert "title" in names[0]
        assert "reference" in names[1]


class TestDirtyPersons:
    def test_single_source(self):
        dataset = generate_dirty_persons(num_entities=30)
        assert not dataset.profiles.is_clean_clean

    def test_ground_truth_transitive(self):
        dataset = generate_dirty_persons(num_entities=30, max_duplicates=4)
        pairs = dataset.ground_truth.pairs()
        # If (a,b) and (b,c) are matches then (a,c) must be too.
        by_node: dict[int, set[int]] = {}
        for a, b in pairs:
            by_node.setdefault(a, set()).add(b)
            by_node.setdefault(b, set()).add(a)
        for a, neighbours in by_node.items():
            for b in neighbours:
                for c in by_node[b]:
                    if c != a:
                        assert (min(a, c), max(a, c)) in pairs

    def test_duplicate_clusters_exist(self):
        dataset = generate_dirty_persons(num_entities=50)
        assert len(dataset.ground_truth) > 0


class TestToyDataset:
    def test_four_profiles(self, toy_dataset):
        assert len(toy_dataset.profiles) == 4
        assert toy_dataset.profiles.is_clean_clean

    def test_ground_truth(self, toy_dataset):
        assert (0, 3) in toy_dataset.ground_truth
        assert (1, 2) in toy_dataset.ground_truth
        assert len(toy_dataset.ground_truth) == 2

    def test_attributes_match_figure(self, toy_dataset):
        p1 = toy_dataset.profiles[0]
        assert p1.value_of("Name") == "Blast"
        p3 = toy_dataset.profiles[2]
        assert "parallel" in p3.value_of("title").lower()
