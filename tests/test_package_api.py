"""Tests of the public package surface."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.engine",
            "repro.data",
            "repro.blocking",
            "repro.looseschema",
            "repro.metablocking",
            "repro.matching",
            "repro.clustering",
            "repro.evaluation",
            "repro.sampling",
            "repro.core",
            "repro.cli",
        ],
    )
    def test_subpackages_importable(self, module):
        imported = importlib.import_module(module)
        assert imported is not None

    def test_facade_classes_exported(self):
        assert repro.SparkER is not None
        assert repro.SparkERConfig is not None
        assert repro.DebugSession is not None
        assert repro.EntityProfile is not None


class TestExceptionHierarchy:
    def test_all_errors_derive_from_base(self):
        from repro import exceptions

        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, exceptions.SparkERError)

    def test_base_catchable(self):
        from repro.exceptions import ConfigurationError, SparkERError

        with pytest.raises(SparkERError):
            raise ConfigurationError("bad config")

    def test_specific_errors_distinct(self):
        from repro.exceptions import BlockingError, MatchingError

        assert not issubclass(BlockingError, MatchingError)
