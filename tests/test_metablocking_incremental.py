"""Incremental CSR index: append/compact parity with the batch builder.

The core contract of :class:`~repro.metablocking.index.IncrementalBlockIndex`
is *bit-for-bit* equivalence: appending profiles in any batching and then
compacting must produce exactly the CSR that
``CSRBlockIndex.from_blocks(TokenBlocking(...).block(union))`` builds from
scratch — every shared buffer byte-identical, across kernel backends and
buffer backends — and every downstream consumer (meta-blocking, progressive
streams, the delta refresher) must therefore agree on the union collection.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.blocking.token_blocking import TokenBlocking
from repro.data.dataset import ProfileCollection
from repro.data.profile import EntityProfile
from repro.exceptions import DataError
from repro.metablocking.backends import numpy_available
from repro.metablocking.index import (
    _SHARED_FIELDS,
    AppendDelta,
    CSRBlockIndex,
    IncrementalBlockIndex,
)
from repro.metablocking.metablocker import MetaBlocker
from repro.metablocking.progressive import ProgressiveSortedComparisons

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend requires numpy"
)

KERNELS = ["python", pytest.param("numpy", marks=needs_numpy)]
BUFFERS = ["ram", pytest.param("memmap", marks=needs_numpy)]

_WORDS = [
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliet", "kilo", "lima", "mike", "november",
]


def _random_profiles(count: int, *, clean_clean: bool, seed: int, start_id: int = 0):
    """Messy profiles: shared tokens, singleton tokens, empty profiles."""
    rng = random.Random(seed)
    profiles = []
    for offset in range(count):
        profile_id = start_id + offset
        source = rng.randrange(2) if clean_clean else 0
        profile = EntityProfile(profile_id, f"orig-{profile_id}", source)
        for _ in range(rng.randint(0, 4)):
            profile.add("name", " ".join(rng.sample(_WORDS, rng.randint(1, 3))))
        if rng.random() < 0.3:
            profile.add("unique", f"token{profile_id}only")
        profiles.append(profile)
    return profiles


def _batch_index(profiles, *, clean_clean, backend, buffer_backend, tmp_dir=None):
    union = ProfileCollection(profiles)
    blocks = TokenBlocking().block(union)
    assert blocks.clean_clean == clean_clean or not profiles
    return CSRBlockIndex.from_blocks(
        blocks, backend=backend, buffer_backend=buffer_backend, tmp_dir=tmp_dir
    )


def _assert_bit_identical(built: CSRBlockIndex, reference: CSRBlockIndex):
    assert built.node_ids == reference.node_ids
    assert built.total_blocks == reference.total_blocks
    for field, _typecode in _SHARED_FIELDS:
        assert (
            getattr(built, field).tobytes() == getattr(reference, field).tobytes()
        ), f"buffer {field} differs from the from-scratch build"


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("buffer_backend", BUFFERS)
@pytest.mark.parametrize("clean_clean", [False, True])
class TestCompactionParity:
    def test_append_then_compact_matches_batch_build(
        self, kernel, buffer_backend, clean_clean, tmp_path
    ):
        """Multi-batch append + compact ≡ one from-scratch build (bit-for-bit)."""
        profiles = _random_profiles(90, clean_clean=clean_clean, seed=7)
        incremental = IncrementalBlockIndex(
            clean_clean=clean_clean,
            backend=kernel,
            buffer_backend=buffer_backend,
            tmp_dir=str(tmp_path),
        )
        try:
            for start in range(0, len(profiles), 25):
                incremental.append_profiles(profiles[start : start + 25])
            built = incremental.materialise()
            reference = _batch_index(
                profiles,
                clean_clean=clean_clean,
                backend=kernel,
                buffer_backend=buffer_backend,
                tmp_dir=str(tmp_path),
            )
            try:
                _assert_bit_identical(built, reference)
            finally:
                reference.close()
        finally:
            incremental.close()

    def test_intermediate_compactions_do_not_change_the_result(
        self, kernel, buffer_backend, clean_clean, tmp_path
    ):
        """Compacting after every batch equals compacting once at the end."""
        profiles = _random_profiles(60, clean_clean=clean_clean, seed=11)
        eager = IncrementalBlockIndex(
            clean_clean=clean_clean,
            compact_every=10,
            backend=kernel,
            buffer_backend=buffer_backend,
            tmp_dir=str(tmp_path),
        )
        lazy = IncrementalBlockIndex(
            clean_clean=clean_clean,
            backend=kernel,
            buffer_backend=buffer_backend,
            tmp_dir=str(tmp_path),
        )
        try:
            for start in range(0, len(profiles), 15):
                batch = profiles[start : start + 15]
                eager.append_profiles(batch)
                lazy.append_profiles(batch)
            assert eager.compactions >= 4
            _assert_bit_identical(eager.materialise(), lazy.materialise())
            assert lazy.compactions == 1
        finally:
            eager.close()
            lazy.close()


@pytest.mark.parametrize("kernel", KERNELS)
def test_append_then_query_equals_batch_query_on_union(kernel):
    """Meta-blocking and progressive streams agree with the batch union run."""
    profiles = _random_profiles(80, clean_clean=False, seed=23)
    incremental = IncrementalBlockIndex(backend=kernel)
    try:
        incremental.append_profiles(profiles[:50])
        incremental.materialise()  # query between appends, then grow
        incremental.append_profiles(profiles[50:])
        index = incremental.materialise()

        union = ProfileCollection(profiles)
        blocks = TokenBlocking().block(union)
        batch = MetaBlocker("js", "wnp", kernel_backend=kernel).run(blocks)

        from repro.metablocking.graph import blocking_graph_from_index

        graph = blocking_graph_from_index(
            index, clean_clean=False, num_blocks=index.total_blocks
        )
        served = MetaBlocker("js", "wnp", kernel_backend=kernel).run_on_graph(graph)
        assert served.retained_edges == batch.retained_edges

        progressive = ProgressiveSortedComparisons("cbs", kernel_backend=kernel)
        assert list(progressive.stream_index(index)) == list(
            progressive.stream(blocks)
        )
    finally:
        incremental.close()


class TestIncrementalBehaviour:
    def test_append_returns_the_touched_delta(self):
        incremental = IncrementalBlockIndex()
        first = EntityProfile(0, "a")
        first.add("name", "alpha bravo")
        second = EntityProfile(1, "b")
        second.add("name", "bravo charlie")
        delta = incremental.append_profiles([first, second])
        assert isinstance(delta, AppendDelta)
        assert delta.new_profile_ids == (0, 1)
        assert delta.touched_tokens == frozenset({"alpha", "bravo", "charlie"})
        # Both profiles share "bravo", so both are touched.
        assert delta.touched_profile_ids == frozenset({0, 1})

        third = EntityProfile(2, "c")
        third.add("name", "delta")
        lone = incremental.append_profiles([third])
        assert lone.touched_profile_ids == frozenset({2})
        incremental.close()

    def test_profile_ids_must_strictly_increase(self):
        incremental = IncrementalBlockIndex()
        profile = EntityProfile(5, "x")
        profile.add("name", "alpha")
        incremental.append_profiles([profile])
        with pytest.raises(DataError, match="strictly increasing"):
            incremental.append_profiles([EntityProfile(5, "dup")])
        with pytest.raises(DataError, match="strictly increasing"):
            incremental.append_profiles([EntityProfile(3, "past")])
        assert incremental.has_profile(5)
        assert not incremental.has_profile(3)
        incremental.close()

    def test_materialise_is_cached_until_the_next_append(self):
        incremental = IncrementalBlockIndex()
        profile = EntityProfile(0, "a")
        profile.add("name", "alpha bravo")
        incremental.append_profiles([profile])
        assert incremental.is_stale
        first = incremental.materialise()
        assert incremental.materialise() is first
        assert not incremental.is_stale
        follow = EntityProfile(1, "b")
        follow.add("name", "bravo")
        incremental.append_profiles([follow])
        assert incremental.is_stale
        assert incremental.materialise() is not first
        incremental.close()

    def test_pickle_round_trip_rebuilds_the_same_csr(self):
        profiles = _random_profiles(40, clean_clean=True, seed=3)
        incremental = IncrementalBlockIndex(clean_clean=True)
        incremental.append_profiles(profiles)
        original = incremental.materialise()
        clone = pickle.loads(pickle.dumps(incremental))
        assert clone.is_stale  # the CSR itself is not shipped
        assert clone.profile_ids() == incremental.profile_ids()
        _assert_bit_identical(clone.materialise(), original)
        clone.close()
        incremental.close()


class TestCloseHardening:
    def test_close_is_idempotent(self):
        incremental = IncrementalBlockIndex()
        profile = EntityProfile(0, "a")
        profile.add("name", "alpha bravo")
        incremental.append_profiles([profile])
        index = incremental.materialise()
        index.close()
        index.close()
        incremental.close()
        incremental.close()

    def test_close_on_never_materialised_index_is_safe(self):
        incremental = IncrementalBlockIndex()
        incremental.close()
        # A CSRBlockIndex that never ran _populate (e.g. unpickling target)
        # must also close without touching missing attributes.
        bare = CSRBlockIndex.__new__(CSRBlockIndex)
        bare.close()
        bare.close()

    @needs_numpy
    def test_failed_memmap_build_leaves_no_artifact(self, tmp_path, monkeypatch):
        """A build error mid-materialisation discards the memmap file."""
        from repro.engine import tmpfiles

        incremental = IncrementalBlockIndex(
            buffer_backend="memmap", tmp_dir=str(tmp_path)
        )
        profile = EntityProfile(0, "a")
        profile.add("name", "alpha bravo")
        incremental.append_profiles([profile])

        def boom(*_args, **_kwargs):
            raise RuntimeError("injected build failure")

        monkeypatch.setattr(CSRBlockIndex, "_populate", classmethod(boom))
        with pytest.raises(RuntimeError, match="injected"):
            incremental.materialise()
        monkeypatch.undo()
        assert not [
            path
            for path in tmpfiles.live_artifacts()
            if str(tmp_path) in path
        ]
        # The overlay is intact: a retry after the injected failure succeeds
        # (one lone profile induces no comparisons, so the index is empty).
        index = incremental.materialise()
        assert index.num_nodes == 0
        incremental.close()
