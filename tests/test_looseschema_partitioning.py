"""Tests of attribute partitioning (the BLAST loose-schema generator)."""

import pytest

from repro.exceptions import BlockingError
from repro.looseschema.attribute_partitioning import (
    AttributePartitioner,
    AttributePartitioning,
)


class TestAttributePartitioner:
    def test_threshold_one_gives_blob_only(self, abt_buy_small):
        # Figure 6(a): threshold at the maximum → schema-agnostic behaviour,
        # every attribute falls in the blob cluster.
        partitioning = AttributePartitioner(threshold=1.0).partition(abt_buy_small.profiles)
        assert partitioning.non_blob_clusters() == {}
        blob = partitioning.clusters[partitioning.blob_cluster_id]
        assert len(blob) == len(abt_buy_small.profiles.attribute_names_by_source()[0]) + len(
            abt_buy_small.profiles.attribute_names_by_source()[1]
        )

    def test_lower_threshold_creates_clusters(self, abt_buy_small):
        # Figure 6(b): lowering the threshold produces attribute clusters.
        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy_small.profiles)
        assert len(partitioning.non_blob_clusters()) >= 1

    def test_name_title_clustered_together(self, abt_buy_small):
        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy_small.profiles)
        assert partitioning.cluster_of("name") == partitioning.cluster_of("title")
        assert partitioning.cluster_of("name") != partitioning.blob_cluster_id

    def test_clusters_are_disjoint(self, abt_buy_small):
        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy_small.profiles)
        seen: set = set()
        for members in partitioning.clusters.values():
            assert seen.isdisjoint(members)
            seen.update(members)

    def test_every_attribute_assigned(self, abt_buy_small):
        partitioning = AttributePartitioner(threshold=0.1).partition(abt_buy_small.profiles)
        assigned = set().union(*partitioning.clusters.values())
        names = abt_buy_small.profiles.attribute_names_by_source()
        expected = {(0, a) for a in names[0]} | {(1, a) for a in names[1]}
        assert assigned == expected

    def test_invalid_threshold(self):
        with pytest.raises(BlockingError):
            AttributePartitioner(threshold=1.5)

    def test_deterministic(self, abt_buy_small):
        first = AttributePartitioner(threshold=0.2).partition(abt_buy_small.profiles)
        second = AttributePartitioner(threshold=0.2).partition(abt_buy_small.profiles)
        assert first.clusters == second.clusters

    def test_bibliographic_dataset(self, bibliographic_small):
        partitioning = AttributePartitioner(threshold=0.1).partition(
            bibliographic_small.profiles
        )
        # title (source 0) and reference (source 1) share most tokens.
        assert partitioning.cluster_of("title") == partitioning.cluster_of("reference")


class TestAttributePartitioning:
    def _partitioning(self) -> AttributePartitioning:
        return AttributePartitioning(
            clusters={
                0: {(0, "price")},
                1: {(0, "name"), (1, "title")},
                2: {(0, "description"), (1, "short_descr")},
            }
        )

    def test_cluster_of_known_attribute(self):
        assert self._partitioning().cluster_of("name") == 1
        assert self._partitioning().cluster_of("short_descr") == 2

    def test_cluster_of_unknown_attribute_is_blob(self):
        assert self._partitioning().cluster_of("unknown") == 0

    def test_cluster_of_with_source(self):
        assert self._partitioning().cluster_of("name", source_id=0) == 1

    def test_attribute_to_cluster_mapping(self):
        mapping = self._partitioning().attribute_to_cluster()
        assert mapping["name"] == 1
        assert mapping["price"] == 0

    def test_num_clusters(self):
        assert self._partitioning().num_clusters() == 3

    def test_describe_lines(self):
        lines = self._partitioning().describe()
        assert any("blob" in line for line in lines)
        assert any("cluster 1" in line for line in lines)

    def test_move_attribute(self):
        # The supervised edit of Figure 6(c): move an attribute to another cluster.
        partitioning = self._partitioning()
        partitioning.move_attribute("description", 0, target_cluster=3)
        assert partitioning.cluster_of("description") == 3
        assert (0, "description") not in partitioning.clusters[2]

    def test_move_attribute_creates_cluster(self):
        partitioning = self._partitioning()
        partitioning.move_attribute("price", 0, target_cluster=9)
        assert 9 in partitioning.clusters
