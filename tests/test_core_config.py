"""Tests of the pipeline configuration."""

import pytest

from repro.core.config import (
    BlockerConfig,
    ClustererConfig,
    MatcherConfig,
    SamplingConfig,
    SparkERConfig,
)
from repro.exceptions import ConfigurationError


class TestBlockerConfig:
    def test_defaults_valid(self):
        BlockerConfig().validate()

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            BlockerConfig(attribute_threshold=2.0).validate()

    def test_invalid_purge_factor(self):
        with pytest.raises(ConfigurationError):
            BlockerConfig(purge_factor=0.0).validate()

    def test_invalid_filter_ratio(self):
        with pytest.raises(ConfigurationError):
            BlockerConfig(filter_ratio=1.5).validate()

    def test_invalid_weighting(self):
        with pytest.raises(Exception):
            BlockerConfig(weighting_scheme="nope").validate()

    def test_invalid_token_length(self):
        with pytest.raises(ConfigurationError):
            BlockerConfig(min_token_length=0).validate()


class TestMatcherConfig:
    def test_defaults_valid(self):
        MatcherConfig().validate()

    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            MatcherConfig(mode="magic").validate()

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            MatcherConfig(threshold=-0.1).validate()


class TestClustererConfig:
    def test_defaults_valid(self):
        ClustererConfig().validate()

    def test_invalid_min_score(self):
        with pytest.raises(ConfigurationError):
            ClustererConfig(min_score=2.0).validate()


class TestSamplingConfig:
    def test_defaults_valid(self):
        SamplingConfig().validate()

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            SamplingConfig(per_seed=0).validate()


class TestSparkERConfig:
    def test_default_is_unsupervised(self):
        config = SparkERConfig.unsupervised_default()
        config.validate()
        assert config.blocker.use_loose_schema
        assert config.blocker.use_entropy

    def test_schema_agnostic_preset(self):
        config = SparkERConfig.schema_agnostic()
        assert not config.blocker.use_loose_schema
        assert not config.blocker.use_entropy

    def test_invalid_parallelism(self):
        config = SparkERConfig()
        config.parallelism = 0
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_dict_roundtrip(self):
        config = SparkERConfig.unsupervised_default()
        config.blocker.attribute_threshold = 0.25
        config.matcher.threshold = 0.6
        rebuilt = SparkERConfig.from_dict(config.as_dict())
        assert rebuilt.blocker.attribute_threshold == 0.25
        assert rebuilt.matcher.threshold == 0.6

    def test_nested_validation_runs(self):
        config = SparkERConfig()
        config.matcher.mode = "invalid"
        with pytest.raises(ConfigurationError):
            config.validate()
