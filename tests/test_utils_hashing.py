"""Tests of stable hashing and MinHash."""

import numpy as np
import pytest

from repro.utils.hashing import MinHasher, stable_hash, stable_token_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("sparker") == stable_hash("sparker")

    def test_seed_changes_value(self):
        assert stable_hash("sparker", seed=1) != stable_hash("sparker", seed=2)

    def test_different_values_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_handles_tuples(self):
        assert stable_hash((1, "a")) == stable_hash((1, "a"))

    def test_token_hash_fits_32_bits(self):
        assert 0 <= stable_token_hash("token") < 2**32


class TestMinHasher:
    def test_signature_length(self):
        hasher = MinHasher(num_perm=64)
        assert hasher.signature({"a", "b"}).shape == (64,)

    def test_identical_sets_identical_signatures(self):
        hasher = MinHasher(num_perm=64)
        sig_a = hasher.signature({"a", "b", "c"})
        sig_b = hasher.signature({"c", "b", "a"})
        assert np.array_equal(sig_a, sig_b)

    def test_jaccard_estimate_close_to_truth(self):
        hasher = MinHasher(num_perm=256)
        set_a = {f"token{i}" for i in range(100)}
        set_b = {f"token{i}" for i in range(50, 150)}
        true_jaccard = len(set_a & set_b) / len(set_a | set_b)
        estimate = MinHasher.estimate_jaccard(
            hasher.signature(set_a), hasher.signature(set_b)
        )
        assert abs(estimate - true_jaccard) < 0.15

    def test_disjoint_sets_low_similarity(self):
        hasher = MinHasher(num_perm=128)
        estimate = MinHasher.estimate_jaccard(
            hasher.signature({"a", "b", "c"}), hasher.signature({"x", "y", "z"})
        )
        assert estimate < 0.3

    def test_empty_set_signature(self):
        hasher = MinHasher(num_perm=16)
        signature = hasher.signature(set())
        assert signature.shape == (16,)

    def test_invalid_num_perm(self):
        with pytest.raises(ValueError):
            MinHasher(num_perm=0)

    def test_estimate_requires_same_length(self):
        hasher16 = MinHasher(num_perm=16)
        hasher32 = MinHasher(num_perm=32)
        with pytest.raises(ValueError):
            MinHasher.estimate_jaccard(
                hasher16.signature({"a"}), hasher32.signature({"a"})
            )

    def test_bands_count(self):
        hasher = MinHasher(num_perm=64)
        buckets = hasher.bands(hasher.signature({"a", "b"}), num_bands=16)
        assert len(buckets) == 16

    def test_bands_must_divide(self):
        hasher = MinHasher(num_perm=64)
        with pytest.raises(ValueError):
            hasher.bands(hasher.signature({"a"}), num_bands=7)

    def test_identical_sets_share_every_band(self):
        hasher = MinHasher(num_perm=64)
        buckets_a = hasher.bands(hasher.signature({"a", "b"}), 8)
        buckets_b = hasher.bands(hasher.signature({"a", "b"}), 8)
        assert buckets_a == buckets_b

    def test_deterministic_across_instances(self):
        sig_a = MinHasher(num_perm=32, seed=7).signature({"x", "y"})
        sig_b = MinHasher(num_perm=32, seed=7).signature({"x", "y"})
        assert np.array_equal(sig_a, sig_b)
