"""Opt-in perf-regression guard (see ``scripts/bench_guard.py``).

Deselected by default because it times real workloads; run it with::

    PYTHONPATH=src python -m pytest tests/test_bench_guard.py --bench-guard
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.bench_guard

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_kernel_speedup_within_tolerance_of_baseline():
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    from bench_guard import check_against_baseline

    failures = check_against_baseline(tolerance=0.2)
    assert not failures, "; ".join(failures)


def test_e2e_engine_overhead_within_tolerance_of_baseline():
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    from bench_guard import check_e2e_against_baseline

    failures = check_e2e_against_baseline(tolerance=0.5)
    assert not failures, "; ".join(failures)


def test_vote_shuffle_wire_format_within_tolerance_of_baseline():
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    from bench_guard import check_shuffle_against_baseline

    failures = check_shuffle_against_baseline(tolerance=0.1)
    assert not failures, "; ".join(failures)


def test_blockstore_relay_bytes_within_ceiling_of_baseline():
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    from bench_guard import check_blockstore_against_baseline

    failures = check_blockstore_against_baseline()
    assert not failures, "; ".join(failures)


def test_numpy_backend_speedup_within_tolerance_of_baseline():
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    from bench_guard import check_numpy_against_baseline

    failures = check_numpy_against_baseline(tolerance=0.2)
    assert not failures, "; ".join(failures)


def test_pipeline_runner_overhead_within_ceiling_of_facade():
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    from bench_guard import check_pipeline_against_facade

    failures = check_pipeline_against_facade()
    assert not failures, "; ".join(failures)


def test_out_of_core_scale_within_tolerance_of_baseline():
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    from bench_guard import check_scale_against_baseline

    failures = check_scale_against_baseline(tolerance=0.25)
    assert not failures, "; ".join(failures)


def test_service_ingest_query_within_tolerance_of_baseline():
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    from bench_guard import check_service_against_baseline

    failures = check_service_against_baseline(tolerance=0.5)
    assert not failures, "; ".join(failures)


def test_service_wal_overhead_within_floor_of_baseline():
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    from bench_guard import check_service_wal_against_baseline

    failures = check_service_wal_against_baseline()
    assert not failures, "; ".join(failures)
