"""Durability tests: the write-ahead ingest log and crash recovery.

Three layers, matching the durability contract stated in
:mod:`repro.service.wal`:

* **WAL unit tests** — record round-trips, torn-tail detection and
  truncation (short header / short payload / CRC corruption), sequence
  continuity across snapshot truncation, fsync policy validation;
* **store recovery** — a restarted :class:`~repro.service.store.
  CollectionStore` reconstructs the pre-crash state exactly (profile ids,
  CSR buffers byte-for-byte, query answers) from snapshot + log tail, with
  duplicate replay idempotence and degraded read-only mode on WAL device
  errors;
* **subprocess chaos** — the harness in ``scripts/service_chaos.py`` kills
  a real child process at deterministic fault points and compares the
  recovered state against an uncrashed twin; two scenarios run here as
  tier-1 coverage, CI runs the full matrix.
"""

from __future__ import annotations

import os
import struct
import sys
from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError, DataError
from repro.metablocking.index import _SHARED_FIELDS
from repro.service import (
    CollectionConfig,
    CollectionStore,
    DegradedError,
    ServiceCollection,
    WriteAheadLog,
)

from tests.test_metablocking_incremental import _random_profiles
from tests.test_service_app import _ingest_payload

REPO_ROOT = Path(__file__).resolve().parent.parent


def _chaos():
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    import service_chaos

    return service_chaos


# ---------------------------------------------------------------- WAL units
class TestWriteAheadLog:
    def test_append_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "c.wal")
        payloads = [{"profiles": [{"id": i}]} for i in range(4)]
        assert [wal.append(p) for p in payloads] == [1, 2, 3, 4]
        wal.close()

        fresh = WriteAheadLog(tmp_path / "c.wal")
        replayed = fresh.replay()
        assert [seq for seq, _ in replayed] == [1, 2, 3, 4]
        assert [payload for _, payload in replayed] == payloads
        assert fresh.next_seq == 5
        assert fresh.torn_truncations == 0
        # Appends continue the sequence after a replay.
        assert fresh.append({"profiles": []}) == 5
        fresh.close()

    def test_missing_and_empty_logs_replay_to_nothing(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "missing.wal")
        assert wal.replay() == []
        assert wal.next_seq == 1
        (tmp_path / "empty.wal").write_bytes(b"")
        empty = WriteAheadLog(tmp_path / "empty.wal")
        assert empty.replay() == []
        assert empty.torn_truncations == 0

    @pytest.mark.parametrize("cut", ["header", "payload"])
    def test_torn_tail_is_truncated_not_fatal(self, tmp_path, cut):
        path = tmp_path / "c.wal"
        wal = WriteAheadLog(path)
        for i in range(3):
            wal.append({"batch": i})
        wal.close()
        # Tear the last record: keep a short header, or a short payload.
        data = path.read_bytes()
        record = len(data) // 3
        keep = len(data) - record + (8 if cut == "header" else 20)
        path.write_bytes(data[:keep])

        fresh = WriteAheadLog(path)
        replayed = fresh.replay()
        assert [payload for _, payload in replayed] == [{"batch": 0}, {"batch": 1}]
        assert fresh.torn_truncations == 1
        assert path.stat().st_size == 2 * record
        # The truncated log replays cleanly (and un-torn) a second time.
        again = WriteAheadLog(path)
        assert [p for _, p in again.replay()] == [{"batch": 0}, {"batch": 1}]
        assert again.torn_truncations == 0

    def test_crc_corruption_cuts_the_tail(self, tmp_path):
        path = tmp_path / "c.wal"
        wal = WriteAheadLog(path)
        for i in range(3):
            wal.append({"batch": i})
        wal.close()
        data = bytearray(path.read_bytes())
        record = len(data) // 3
        data[record + 20] ^= 0xFF  # flip a payload byte of record 2
        path.write_bytes(bytes(data))

        fresh = WriteAheadLog(path)
        # Everything from the corrupt record on is dropped, even the intact
        # record behind it — the log is a prefix, not a hole-punched set.
        assert [p for _, p in fresh.replay()] == [{"batch": 0}]
        assert fresh.torn_truncations == 1
        assert path.stat().st_size == record

    def test_truncate_upto_drops_covered_records(self, tmp_path):
        path = tmp_path / "c.wal"
        wal = WriteAheadLog(path)
        for i in range(4):
            wal.append({"batch": i})
        assert wal.truncate_upto(2) == 2
        assert wal.truncated_records == 2
        assert [seq for seq, _ in WriteAheadLog(path).replay()] == [3, 4]
        # Nothing to drop: no rewrite happens at all.
        assert wal.truncate_upto(2) == 0
        # Truncating everything leaves an empty log but keeps the sequence.
        assert wal.truncate_upto(10) == 2
        assert path.stat().st_size == 0
        assert wal.append({"batch": 4}) == 5
        wal.close()

    def test_ensure_next_seq_only_raises_the_floor(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "c.wal")
        wal.ensure_next_seq(7)
        assert wal.next_seq == 7
        wal.ensure_next_seq(3)
        assert wal.next_seq == 7
        assert wal.append({}) == 7

    def test_fsync_policy_is_validated_and_reported(self, tmp_path):
        with pytest.raises(ConfigurationError, match="fsync policy"):
            WriteAheadLog(tmp_path / "c.wal", fsync="sometimes")
        for policy in ("always", "batch", "off"):
            wal = WriteAheadLog(tmp_path / f"{policy}.wal", fsync=policy)
            wal.append({"p": policy})
            wal.sync()
            stats = wal.stats()
            assert stats["fsync"] == policy
            assert stats["appends"] == 1
            assert stats["size_bytes"] > 0
            wal.close()
            assert [p for _, p in WriteAheadLog(wal.path).replay()] == [
                {"p": policy}
            ]


# --------------------------------------------------------- collection + WAL
class TestCollectionWal:
    def test_ingest_logs_before_apply_and_reports_the_seq(self, tmp_path):
        collection = ServiceCollection(CollectionConfig(name="c"))
        collection.attach_wal(WriteAheadLog(tmp_path / "c.wal"))
        try:
            payload = _ingest_payload(_random_profiles(10, clean_clean=False, seed=3))
            summary = collection.ingest(payload)
            assert summary["wal_seq"] == 1
            assert collection.wal_applied_seq == 1
            replayed = WriteAheadLog(tmp_path / "c.wal").replay()
            assert replayed == [(1, payload)]
        finally:
            collection.close()

    def test_invalid_payloads_are_rejected_before_logging(self, tmp_path):
        collection = ServiceCollection(CollectionConfig(name="c"))
        collection.attach_wal(WriteAheadLog(tmp_path / "c.wal"))
        try:
            with pytest.raises(DataError):
                collection.ingest({"profiles": [{"id": "x"}]})
            collection.ingest({"profiles": [{"id": 5, "attributes": {"name": "a"}}]})
            with pytest.raises(DataError, match="strictly increasing"):
                collection.ingest({"profiles": [{"id": 5, "attributes": {"name": "a"}}]})
            # Only the valid batch ever reached the log.
            assert len(WriteAheadLog(tmp_path / "c.wal").replay()) == 1
        finally:
            collection.close()

    def test_replayed_duplicates_are_skipped(self, tmp_path):
        collection = ServiceCollection(CollectionConfig(name="c"))
        collection.attach_wal(WriteAheadLog(tmp_path / "c.wal"))
        try:
            payload = {"profiles": [{"id": 0, "attributes": {"name": "alpha"}}]}
            collection.ingest(payload)
            duplicate = collection.ingest(payload, replay_seq=1)
            assert duplicate["duplicate"] is True
            assert duplicate["appended"] == 0
            assert collection.index.num_profiles == 1
        finally:
            collection.close()

    def test_wal_device_error_flips_read_only_degraded(self, tmp_path, monkeypatch):
        collection = ServiceCollection(CollectionConfig(name="c"))
        collection.attach_wal(WriteAheadLog(tmp_path / "c.wal"))
        try:
            collection.ingest(
                _ingest_payload(_random_profiles(12, clean_clean=False, seed=9))
            )
            warm = collection.matches(0, 10)

            def broken_append(payload):
                raise OSError(28, "No space left on device")

            monkeypatch.setattr(collection.wal, "append", broken_append)
            with pytest.raises(DegradedError, match="read-only"):
                collection.ingest({"profiles": [{"id": 99}]})
            assert "No space left" in collection.degraded_reason
            # Writes stay rejected without touching the (broken) log again...
            with pytest.raises(DegradedError):
                collection.ingest({"profiles": [{"id": 100}]})
            # ...but reads keep serving the last consistent state.
            assert collection.matches(0, 10) == warm
            assert collection.stats()["degraded"] is not None
        finally:
            collection.close()

    def test_wal_fsync_config_plumbs_through_the_store(self, tmp_path):
        store = CollectionStore(
            wal_dir=str(tmp_path / "wal"), defaults={"wal_fsync": "always"}
        )
        collection = store.get_or_create("demo")
        assert collection.wal is not None
        assert collection.wal.fsync == "always"
        store.close_all()
        with pytest.raises(ConfigurationError, match="wal_fsync"):
            CollectionConfig(name="c", wal_fsync="sometimes")
        # Without a wal_dir no log is attached and ingest reports no seq.
        plain = CollectionStore().get_or_create("demo")
        assert plain.wal is None
        assert plain.ingest({"profiles": [{"id": 0}]})["wal_seq"] is None
        plain.close()


# ------------------------------------------------------------ store recovery
def _csr_bytes(collection):
    csr = collection.index.materialise()
    return [getattr(csr, field).tobytes() for field, _tc in _SHARED_FIELDS]


class TestStoreRecovery:
    def _dirs(self, tmp_path):
        return str(tmp_path / "snap"), str(tmp_path / "wal")

    def test_log_only_restart_rebuilds_the_exact_state(self, tmp_path):
        snap, wal = self._dirs(tmp_path)
        profiles = _random_profiles(40, clean_clean=False, seed=17)
        store = CollectionStore(snapshot_dir=snap, wal_dir=wal)
        collection = store.get_or_create("demo")
        for lo in range(0, 40, 10):
            collection.ingest(_ingest_payload(profiles[lo:lo + 10]))
        store.close_all()  # no snapshot was ever taken

        recovered = CollectionStore(snapshot_dir=snap, wal_dir=wal)
        summary = recovered.recover()
        assert summary["restored"] == []
        assert summary["replayed"] == {"demo": 4}
        twin = ServiceCollection(CollectionConfig(name="demo"))
        for lo in range(0, 40, 10):
            twin.ingest(_ingest_payload(profiles[lo:lo + 10]))
        got = recovered.get("demo")
        assert got.index.profile_ids() == twin.index.profile_ids()
        assert _csr_bytes(got) == _csr_bytes(twin)
        assert got.matches(0, 20) == twin.matches(0, 20)
        assert got.candidates(0) == twin.candidates(0)
        twin.close()
        recovered.close_all()

    def test_snapshot_plus_log_tail_recovers_and_is_idempotent(self, tmp_path):
        snap, wal = self._dirs(tmp_path)
        profiles = _random_profiles(30, clean_clean=False, seed=23)
        store = CollectionStore(snapshot_dir=snap, wal_dir=wal)
        collection = store.get_or_create("demo")
        collection.ingest(_ingest_payload(profiles[:20]))
        summary = store.snapshot("demo")
        assert summary["wal_truncated_records"] == 1
        collection.ingest(_ingest_payload(profiles[20:]))  # tail, not snapshotted
        store.close_all()

        recovered = CollectionStore(snapshot_dir=snap, wal_dir=wal)
        outcome = recovered.recover()
        assert outcome["restored"] == ["demo"]
        assert outcome["replayed"] == {"demo": 1}
        got = recovered.get("demo")
        assert got.index.profile_ids() == sorted(p.profile_id for p in profiles)
        # The post-recovery sequence keeps increasing past the replayed tail.
        assert got.ingest({"profiles": [{"id": 1000}]})["wal_seq"] == 3
        recovered.close_all()

        # Double recovery from the same disk state is a no-op on the second
        # replay (records at or below the applied seq are duplicates).
        again = CollectionStore(snapshot_dir=snap, wal_dir=wal)
        assert again.recover()["replayed"] == {"demo": 2}
        assert again.get("demo").index.has_profile(1000)
        again.close_all()

    def test_snapshot_newer_than_log_replays_nothing(self, tmp_path, monkeypatch):
        """A crash between checkpoint.save and the log truncation."""
        snap, wal = self._dirs(tmp_path)
        profiles = _random_profiles(25, clean_clean=False, seed=37)
        store = CollectionStore(snapshot_dir=snap, wal_dir=wal)
        collection = store.get_or_create("demo")
        collection.ingest(_ingest_payload(profiles))
        monkeypatch.setattr(collection.wal, "truncate_upto", lambda seq: 0)
        store.snapshot("demo")  # checkpoint written, log left un-truncated
        store.close_all()

        recovered = CollectionStore(snapshot_dir=snap, wal_dir=wal)
        outcome = recovered.recover()
        assert outcome["restored"] == ["demo"]
        assert outcome["replayed"] == {}  # every record was a duplicate
        got = recovered.get("demo")
        assert got.index.profile_ids() == sorted(p.profile_id for p in profiles)
        assert got.wal.next_seq == 2
        recovered.close_all()

    def test_recovery_truncates_a_torn_tail(self, tmp_path):
        snap, wal_dir = self._dirs(tmp_path)
        profiles = _random_profiles(20, clean_clean=False, seed=41)
        store = CollectionStore(snapshot_dir=snap, wal_dir=wal_dir)
        store.get_or_create("demo").ingest(_ingest_payload(profiles))
        store.close_all()
        with open(os.path.join(wal_dir, "demo.wal"), "ab") as handle:
            handle.write(struct.pack("<QII", 2, 500, 0) + b"mid-write crash")

        recovered = CollectionStore(snapshot_dir=snap, wal_dir=wal_dir)
        outcome = recovered.recover()
        assert outcome["torn_truncations"] == 1
        assert outcome["replayed"] == {"demo": 1}
        got = recovered.get("demo")
        assert got.index.profile_ids() == sorted(p.profile_id for p in profiles)
        recovered.close_all()

    def test_recovery_sweeps_orphaned_rewrite_temps(self, tmp_path):
        snap, wal_dir = self._dirs(tmp_path)
        store = CollectionStore(snapshot_dir=snap, wal_dir=wal_dir)
        store.get_or_create("demo").ingest({"profiles": [{"id": 0}]})
        store.close_all()
        # A crash mid-truncate leaves a pid-stamped rewrite temp behind; a
        # dead pid means it is provably orphaned.
        orphan = os.path.join(wal_dir, "repro-waltmp-999999-0")
        with open(orphan, "wb") as handle:
            handle.write(b"leftover rewrite")

        recovered = CollectionStore(snapshot_dir=snap, wal_dir=wal_dir)
        outcome = recovered.recover()
        assert outcome["swept"] == [orphan]
        assert not os.path.exists(orphan)
        recovered.close_all()


# --------------------------------------------------------- subprocess chaos
class TestServiceChaos:
    """Tier-1 slice of the matrix in ``scripts/service_chaos.py``."""

    def test_kill_mid_ingest_recovers_the_acked_prefix(self, tmp_path):
        chaos = _chaos()
        outcome = chaos.run_scenario("kill-logged-unapplied", str(tmp_path))
        assert outcome["applied_batches"] >= outcome["acked_batches"]
        assert outcome["replayed"] == 2

    def test_kill_mid_snapshot_replays_duplicates_idempotently(self, tmp_path):
        chaos = _chaos()
        outcome = chaos.run_scenario("kill-mid-snapshot", str(tmp_path))
        assert outcome["applied_batches"] == outcome["acked_batches"] == 3
        assert outcome["replayed"] == 0
