"""Tests of the pluggable stage executors (serial vs process pool).

The multiprocessing executor must be a drop-in replacement for the serial
one: identical partition contents and order, accumulator values and broadcast
read counts merged back into the driver objects, and stage metrics that
attribute tasks to real worker processes.  Unshippable stages (unpicklable
closures) must either fail fast with a clear error or fall back to the
driver, never hang.
"""

from __future__ import annotations

import os

import pytest

from repro.engine.context import EngineContext
from repro.engine.executors import (
    ENV_VAR,
    MultiprocessingExecutor,
    SerialExecutor,
    resolve_executor,
)
from repro.exceptions import EngineError


# -- module-level task functions: picklable, unlike test-local closures ------
def _double(x):
    return x * 2


def _is_even(x):
    return x % 2 == 0


def _explode(x):
    return [x, x + 100]


def _add(a, b):
    return a + b


class _CountingMap:
    """Map function that also bumps an accumulator once per element."""

    def __init__(self, accumulator):
        self.accumulator = accumulator

    def __call__(self, x):
        self.accumulator.add(1)
        return x


class _BroadcastLookup:
    """Map function that reads each element through a broadcast dict."""

    def __init__(self, broadcast):
        self.broadcast = broadcast

    def __call__(self, x):
        return self.broadcast.value[x]


@pytest.fixture(scope="module")
def process_executor():
    executor = MultiprocessingExecutor(max_workers=2, on_unpicklable="raise")
    yield executor
    executor.close()


@pytest.fixture(scope="module")
def fallback_executor():
    executor = MultiprocessingExecutor(max_workers=2, on_unpicklable="fallback")
    yield executor
    executor.close()


class TestResolveExecutor:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert isinstance(resolve_executor(None), SerialExecutor)

    def test_spec_strings(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        executor = resolve_executor("process:3")
        assert isinstance(executor, MultiprocessingExecutor)
        assert executor.max_workers == 3

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "process:5")
        executor = resolve_executor(None)
        assert isinstance(executor, MultiprocessingExecutor)
        assert executor.max_workers == 5

    def test_instance_passthrough(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_invalid_specs(self):
        with pytest.raises(EngineError):
            resolve_executor("cluster")
        with pytest.raises(EngineError):
            resolve_executor("process:many")
        with pytest.raises(EngineError, match="no worker count"):
            resolve_executor("serial:4")
        with pytest.raises(EngineError):
            MultiprocessingExecutor(max_workers=0)
        with pytest.raises(EngineError):
            MultiprocessingExecutor(on_unpicklable="ignore")

    def test_context_records_executor_in_summary(self):
        context = EngineContext(2, executor="serial")
        assert context.metrics_summary()["executor"] == "serial"


class TestSerialProcessEquivalence:
    """Every RDD program must return identical results on both executors."""

    def _both(self, process_executor, program):
        serial = program(EngineContext(4, executor=SerialExecutor()))
        process = program(EngineContext(4, executor=process_executor))
        return serial, process

    def test_map_filter_chain(self, process_executor):
        def program(context):
            return (
                context.parallelize(range(50))
                .map(_double)
                .filter(_is_even)
                .collect()
            )

        serial, process = self._both(process_executor, program)
        assert process == serial

    def test_flatmap_and_glom_partition_order(self, process_executor):
        def program(context):
            return context.parallelize(range(20), 5).flatMap(_explode).glom()

        serial, process = self._both(process_executor, program)
        assert process == serial

    def test_reduce_by_key_over_shipped_stage(self, process_executor):
        def program(context):
            pairs = context.parallelize(range(40)).map(_double).keyBy(_is_even)
            return sorted(pairs.mapValues(_double).reduceByKey(_add).collect())

        serial, process = self._both(process_executor, program)
        assert process == serial

    def test_distinct_and_sample(self, process_executor):
        def program(context):
            data = context.parallelize([1, 2, 2, 3, 3, 3] * 5, 3)
            return (
                sorted(data.distinct().collect()),
                data.sample(0.5, seed=7).collect(),
            )

        serial, process = self._both(process_executor, program)
        assert process == serial

    def test_empty_partitions(self, process_executor):
        def program(context):
            return context.parallelize([1], 4).map(_double).glom()

        serial, process = self._both(process_executor, program)
        assert process == serial
        assert sum(len(p) for p in process) == 1


class TestWorkerStateMerging:
    def test_accumulator_updates_merged(self, process_executor):
        context = EngineContext(4, executor=process_executor)
        counter = context.accumulator(0)
        result = context.parallelize(range(10)).map(_CountingMap(counter)).collect()
        assert result == list(range(10))
        assert counter.value == 10

    def test_accumulator_matches_serial_total(self, process_executor):
        totals = []
        for executor in (SerialExecutor(), process_executor):
            context = EngineContext(3, executor=executor)
            counter = context.accumulator(0)
            context.parallelize(range(25)).map(_CountingMap(counter)).collect()
            totals.append(counter.value)
        assert totals[0] == totals[1] == 25

    def test_broadcast_reads_merged(self, process_executor):
        context = EngineContext(4, executor=process_executor)
        lookup = context.broadcast({i: i * i for i in range(12)})
        result = context.parallelize(range(12)).map(_BroadcastLookup(lookup)).collect()
        assert result == [i * i for i in range(12)]
        assert lookup.access_count == 12

    def test_tasks_attributed_to_worker_pids(self, process_executor):
        context = EngineContext(4, executor=process_executor)
        context.parallelize(range(16)).map(_double).collect()
        stage = next(
            s for s in context.scheduler.stages if s.executor.startswith("process")
        )
        assert all(t.worker.startswith("pid-") for t in stage.tasks)
        assert 1 <= stage.num_workers <= 2
        table_row = next(
            r
            for r in context.scheduler.stage_table()
            if str(r["executor"]).startswith("process")
        )
        assert table_row["workers"] == stage.num_workers


class TestUnshippableStages:
    def test_raise_mode_fails_fast_with_clear_error(self, process_executor):
        context = EngineContext(2, executor=process_executor)
        rdd = context.parallelize(range(4)).map(lambda x: x + 1)
        with pytest.raises(EngineError, match="not picklable"):
            rdd.collect()

    def test_fallback_mode_runs_in_driver(self, fallback_executor):
        context = EngineContext(2, executor=fallback_executor)
        result = context.parallelize(range(4)).map(lambda x: x + 1).collect()
        assert result == [1, 2, 3, 4]
        stage = context.scheduler.stages[-1]
        assert stage.executor.endswith("serial-fallback")
        assert all(t.worker == "driver" for t in stage.tasks)

    def test_fallback_preserves_results(self, fallback_executor):
        serial = EngineContext(3, executor=SerialExecutor())
        fallen = EngineContext(3, executor=fallback_executor)
        build = lambda ctx: ctx.parallelize(range(30), 3).map(lambda x: x * 3).collect()
        assert build(fallen) == build(serial)

    def test_destroyed_broadcast_is_a_lifecycle_error_not_a_fallback(
        self, fallback_executor
    ):
        """A destroyed broadcast in the chain must surface, even in fallback mode."""
        context = EngineContext(2, executor=fallback_executor)
        broadcast = context.broadcast({1: "one"})
        rdd = context.parallelize([1]).map(_BroadcastLookup(broadcast))
        broadcast.destroy()
        with pytest.raises(ValueError, match="destroyed"):
            rdd.collect()


class TestLifecycle:
    def test_context_manager_closes_owned_pool(self):
        with EngineContext(2, executor="process:2") as context:
            executor = context.executor
            assert context.parallelize(range(6)).map(_double).collect() == [
                0, 2, 4, 6, 8, 10,
            ]
            assert executor._pool is not None
        assert executor._pool is None

    def test_shared_executor_left_open_by_stop(self, process_executor):
        context = EngineContext(2, executor=process_executor)
        context.parallelize(range(4)).map(_double).collect()
        context.stop()
        # Shared instance: still usable afterwards.
        again = EngineContext(2, executor=process_executor)
        assert again.parallelize(range(4)).map(_double).collect() == [0, 2, 4, 6]

    def test_close_is_idempotent(self):
        executor = MultiprocessingExecutor(max_workers=1)
        executor.close()
        executor.close()

    def test_run_after_close_raises(self):
        """A closed executor must not silently fork a new, unowned pool."""
        executor = MultiprocessingExecutor(max_workers=1)
        context = EngineContext(2, executor=executor)
        executor.close()
        with pytest.raises(EngineError, match="closed"):
            context.parallelize(range(4)).map(_double).collect()

    def test_worker_pid_differs_from_driver(self, process_executor):
        context = EngineContext(1, executor=process_executor)
        context.parallelize(range(2), 1).map(_double).collect()
        stage = next(
            s for s in context.scheduler.stages if s.executor.startswith("process")
        )
        assert stage.tasks[0].worker != f"pid-{os.getpid()}"
