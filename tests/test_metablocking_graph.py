"""Tests of the blocking graph construction."""

from repro.blocking.block import Block, BlockCollection
from repro.blocking.token_blocking import TokenBlocking
from repro.metablocking.graph import build_blocking_graph


def _collection() -> BlockCollection:
    return BlockCollection(
        [
            Block(key="a", profiles_source0={0, 1}, profiles_source1={5}, clean_clean=True),
            Block(key="b", profiles_source0={0}, profiles_source1={5}, clean_clean=True,
                  entropy=0.5),
        ],
        clean_clean=True,
    )


class TestBuildBlockingGraph:
    def test_edges_from_co_occurrence(self):
        graph = build_blocking_graph(_collection())
        assert (0, 5) in graph.edges
        assert (1, 5) in graph.edges
        assert graph.num_edges == 2

    def test_common_blocks_counted(self):
        graph = build_blocking_graph(_collection())
        assert graph.edges[(0, 5)].common_blocks == 2
        assert graph.edges[(1, 5)].common_blocks == 1

    def test_arcs_accumulates_reciprocals(self):
        graph = build_blocking_graph(_collection())
        # block "a" has 2 comparisons, block "b" has 1.
        assert graph.edges[(0, 5)].arcs == 1 / 2 + 1 / 1
        assert graph.edges[(1, 5)].arcs == 1 / 2

    def test_entropy_sum_and_mean(self):
        graph = build_blocking_graph(_collection())
        info = graph.edges[(0, 5)]
        assert info.entropy_sum == 1.0 + 0.5
        assert info.mean_entropy == 0.75

    def test_blocks_per_profile(self):
        graph = build_blocking_graph(_collection())
        assert graph.blocks_per_profile[0] == 2
        assert graph.blocks_per_profile[1] == 1
        assert graph.blocks_per_profile[5] == 2

    def test_num_nodes(self):
        graph = build_blocking_graph(_collection())
        assert graph.num_nodes == 3

    def test_neighbors(self):
        graph = build_blocking_graph(_collection())
        assert set(graph.neighbors(5)) == {0, 1}
        assert set(graph.neighbors(0)) == {5}

    def test_edge_lookup_order_insensitive(self):
        graph = build_blocking_graph(_collection())
        assert graph.edge(5, 0) is graph.edge(0, 5)
        assert graph.edge(0, 99) is None

    def test_adjacency_symmetric(self):
        graph = build_blocking_graph(_collection())
        adjacency = graph.adjacency()
        assert len(adjacency[5]) == 2
        assert len(adjacency[0]) == 1

    def test_invalid_blocks_ignored(self):
        collection = BlockCollection(
            [Block(key="solo", profiles_source0={7}, clean_clean=True)], clean_clean=True
        )
        graph = build_blocking_graph(collection)
        assert graph.num_edges == 0
        assert graph.num_nodes == 0

    def test_edges_match_distinct_comparisons(self, abt_buy_small):
        blocks = TokenBlocking().block(abt_buy_small.profiles)
        graph = build_blocking_graph(blocks)
        assert set(graph.edges) == blocks.distinct_comparisons()
