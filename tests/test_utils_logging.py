"""Tests of the logging helpers."""

import logging

from repro.utils.logging import LOGGER_NAME, configure_logging, get_logger


class TestLogging:
    def test_get_logger_namespaced(self):
        logger = get_logger("blocker")
        assert logger.name == f"{LOGGER_NAME}.blocker"

    def test_get_logger_default(self):
        assert get_logger().name == LOGGER_NAME

    def test_configure_idempotent(self):
        configure_logging(logging.DEBUG)
        handlers_before = len(logging.getLogger(LOGGER_NAME).handlers)
        configure_logging(logging.DEBUG)
        assert len(logging.getLogger(LOGGER_NAME).handlers) == handlers_before

    def test_configure_sets_level(self):
        configure_logging(logging.WARNING)
        assert logging.getLogger(LOGGER_NAME).level == logging.WARNING
