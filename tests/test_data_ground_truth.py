"""Tests of the GroundTruth pair set."""

from repro.data.ground_truth import GroundTruth, canonical_pair


class TestCanonicalPair:
    def test_orders_ascending(self):
        assert canonical_pair(5, 2) == (2, 5)
        assert canonical_pair(2, 5) == (2, 5)

    def test_equal_ids(self):
        assert canonical_pair(3, 3) == (3, 3)


class TestGroundTruth:
    def test_symmetric_membership(self):
        truth = GroundTruth([(1, 2)])
        assert (1, 2) in truth
        assert (2, 1) in truth

    def test_self_pairs_ignored(self):
        truth = GroundTruth([(3, 3)])
        assert len(truth) == 0

    def test_duplicates_collapsed(self):
        truth = GroundTruth([(1, 2), (2, 1)])
        assert len(truth) == 1

    def test_profile_ids(self):
        truth = GroundTruth([(1, 2), (3, 4)])
        assert truth.profile_ids() == {1, 2, 3, 4}

    def test_restricted_to(self):
        truth = GroundTruth([(1, 2), (3, 4)])
        restricted = truth.restricted_to({1, 2, 3})
        assert (1, 2) in restricted
        assert (3, 4) not in restricted

    def test_missing_from(self):
        truth = GroundTruth([(1, 2), (3, 4)])
        lost = truth.missing_from([(2, 1), (5, 6)])
        assert lost == {(3, 4)}

    def test_missing_from_order_insensitive(self):
        truth = GroundTruth([(1, 2)])
        assert truth.missing_from([(2, 1)]) == set()

    def test_pairs_returns_copy(self):
        truth = GroundTruth([(1, 2)])
        pairs = truth.pairs()
        pairs.add((9, 10))
        assert len(truth) == 1

    def test_iteration(self):
        truth = GroundTruth([(1, 2), (3, 4)])
        assert sorted(truth) == [(1, 2), (3, 4)]
