"""Tests of the shuffle block-store layer (peer-to-peer shuffle payloads).

Covers the :class:`~repro.engine.shuffle.BlockStore` contract on all three
stores (driver relay, shared-memory segments, spill files): spec resolution,
publish → fetch round-trips, release/unlink idempotence, the failure paths
(attach to a vanished segment, fetch of a deleted spill block, per-block
spill fallback when POSIX shared memory is unavailable), the relay/peer
byte-split accounting, end-to-end shuffle equality across stores and
executors, context-owned store lifecycle, and the spec / CLI plumbing of
``engine.block_store`` / ``--block-store``.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core.config import SparkERConfig
from repro.core.sparker import SparkER
from repro.engine import sharedmem
from repro.engine.context import EngineContext
from repro.engine.executors import MultiprocessingExecutor
from repro.engine.shuffle import (
    ENV_VAR,
    BlockStore,
    DriverBlockStore,
    FileBlock,
    InlineBlock,
    SegmentBlock,
    SharedMemoryBlockStore,
    ShuffleMapTask,
    SpillFileBlockStore,
    chunk_bytes,
    resolve_block_store,
)
from repro.exceptions import EngineError, PipelineValidationError
from repro.pipeline import Pipeline

BUCKET = [(f"key-{i}", list(range(i % 7))) for i in range(50)]


# -- module-level task functions: picklable, unlike test-local closures ------
def _is_even(x):
    return x % 2 == 0


def _add(a, b):
    return a + b


def _no_shm_leak():
    assert sharedmem.live_segments("shuf") == []


# =========================================================================
# Spec resolution
# =========================================================================
class TestResolveBlockStore:
    def test_default_is_driver(self):
        assert isinstance(resolve_block_store(None), DriverBlockStore)
        assert isinstance(resolve_block_store("driver"), DriverBlockStore)

    def test_env_var_is_consulted(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "spill")
        store = resolve_block_store(None)
        assert isinstance(store, SpillFileBlockStore)
        store.close()

    @pytest.mark.parametrize(
        "alias", ["shared-memory", "shared_memory", "sharedmem", "shm", "SHM"]
    )
    def test_shared_memory_aliases(self, alias):
        store = resolve_block_store(alias)
        assert isinstance(store, SharedMemoryBlockStore)
        store.close()

    @pytest.mark.parametrize("alias", ["spill", "file", "spill-file"])
    def test_spill_aliases(self, alias):
        store = resolve_block_store(alias)
        assert isinstance(store, SpillFileBlockStore)
        store.close()

    def test_instance_passes_through(self):
        store = DriverBlockStore()
        assert resolve_block_store(store) is store

    def test_unknown_spec_raises(self):
        with pytest.raises(EngineError, match="unknown block store"):
            resolve_block_store("carrier-pigeon")

    def test_non_string_spec_raises(self):
        with pytest.raises(EngineError, match="block store spec"):
            resolve_block_store(7)

    def test_negative_spill_threshold_raises(self):
        with pytest.raises(EngineError, match="spill_over_bytes"):
            SharedMemoryBlockStore(spill_over_bytes=0)


# =========================================================================
# Publish / fetch / release per store
# =========================================================================
class TestDriverStore:
    def test_publish_rides_inline(self):
        ref = DriverBlockStore().publish(BUCKET)
        assert isinstance(ref, InlineBlock)
        assert ref.records == len(BUCKET)
        assert ref.payload_bytes == chunk_bytes(BUCKET)
        assert ref.fetch() == BUCKET
        # All bytes cross the driver; none move peer-to-peer.
        assert ref.relay_bytes() == ref.payload_bytes
        assert ref.peer_bytes() == 0
        ref.release()  # no-op, never raises


class TestSharedMemoryStore:
    def test_publish_fetch_release_round_trip(self):
        store = SharedMemoryBlockStore()
        try:
            ref = store.publish(BUCKET)
            assert isinstance(ref, SegmentBlock)
            assert ref.name.startswith("repro-shuf-")
            assert ref.records == len(BUCKET)
            assert ref.payload_bytes == chunk_bytes(BUCKET)
            # The driver relays only the pickled ref — a constant few dozen
            # bytes — while the payload moves peer-to-peer.
            assert ref.relay_bytes() == len(pickle.dumps(ref, protocol=pickle.HIGHEST_PROTOCOL))
            assert ref.relay_bytes() < ref.payload_bytes
            assert ref.peer_bytes() == ref.payload_bytes
            assert ref.fetch() == BUCKET
            assert ref.fetch() == BUCKET  # fetch is repeatable until release
            ref.release()
            ref.release()  # idempotent
            _no_shm_leak()
        finally:
            store.close()

    def test_fetch_after_unlink_raises_engine_error(self):
        store = SharedMemoryBlockStore()
        try:
            ref = store.publish(BUCKET)
            ref.release()
            with pytest.raises(EngineError, match="is gone"):
                ref.fetch()
        finally:
            store.close()

    def test_ref_survives_pickling(self):
        store = SharedMemoryBlockStore()
        try:
            ref = store.publish(BUCKET)
            clone = pickle.loads(pickle.dumps(ref))
            assert clone.fetch() == BUCKET
            clone.release()
            _no_shm_leak()
        finally:
            store.close()

    def test_spill_fallback_when_shm_unavailable(self, monkeypatch):
        def _no_shm(name, size):
            raise OSError("no POSIX shared memory here")

        monkeypatch.setattr(sharedmem, "create_untracked", _no_shm)
        store = SharedMemoryBlockStore()
        try:
            ref = store.publish(BUCKET)
            assert isinstance(ref, FileBlock)
            assert ref.fetch() == BUCKET
            ref.release()
            assert not os.path.exists(ref.path)
        finally:
            store.close()

    def test_oversized_bucket_spills_per_block(self):
        store = SharedMemoryBlockStore(spill_over_bytes=64)
        try:
            small = store.publish([("k", 1)])
            large = store.publish(BUCKET)
            assert isinstance(small, SegmentBlock)
            assert isinstance(large, FileBlock)
            assert small.fetch() == [("k", 1)]
            assert large.fetch() == BUCKET
            small.release()
            large.release()
            _no_shm_leak()
        finally:
            store.close()

    def test_close_unlinks_stranded_segments_and_spill_dir(self):
        store = SharedMemoryBlockStore(spill_over_bytes=64)
        ref = store.publish([("k", 1)])
        spilled = store.publish(BUCKET)
        assert sharedmem.live_segments("shuf") == [ref.name]
        store.close()
        _no_shm_leak()
        assert not os.path.exists(spilled.path)
        assert not os.path.exists(store._spill.directory)


class TestSpillFileStore:
    def test_publish_fetch_release_round_trip(self, tmp_path):
        store = SpillFileBlockStore(str(tmp_path / "spill"))
        try:
            ref = store.publish(BUCKET)
            assert isinstance(ref, FileBlock)
            assert ref.records == len(BUCKET)
            assert ref.payload_bytes == chunk_bytes(BUCKET)
            assert ref.relay_bytes() < ref.payload_bytes
            assert ref.peer_bytes() == ref.payload_bytes
            assert ref.fetch() == BUCKET
            ref.release()
            ref.release()  # idempotent
            assert not os.path.exists(ref.path)
        finally:
            store.close()
        assert not os.path.exists(store.directory)

    def test_fetch_after_delete_raises_engine_error(self, tmp_path):
        store = SpillFileBlockStore(str(tmp_path / "spill"))
        ref = store.publish(BUCKET)
        store.close()
        with pytest.raises(EngineError, match="is gone"):
            ref.fetch()

    def test_run_scoped_directory_is_created_lazily(self):
        store = SpillFileBlockStore()
        assert os.path.basename(store.directory).startswith("repro-spill-")
        store.close()
        assert not os.path.exists(store.directory)


# =========================================================================
# Map task integration
# =========================================================================
class TestShuffleMapTaskStore:
    def test_without_store_yields_raw_buckets(self):
        from repro.engine.partitioner import HashPartitioner

        task = ShuffleMapTask(HashPartitioner(2))
        (buckets,) = list(task(0, iter([(0, "a"), (1, "b"), (2, "c")])))
        assert all(isinstance(bucket, list) for bucket in buckets)
        assert sorted(sum(buckets, [])) == [(0, "a"), (1, "b"), (2, "c")]

    def test_with_store_publishes_non_empty_buckets(self):
        from repro.engine.partitioner import HashPartitioner

        task = ShuffleMapTask(HashPartitioner(4), store=DriverBlockStore())
        (refs,) = list(task(0, iter([(0, "a"), (0, "b")])))
        published = [ref for ref in refs if ref is not None]
        assert len(published) == 1
        assert published[0].fetch() == [(0, "a"), (0, "b")]
        assert refs.count(None) == 3  # empty buckets publish nothing


# =========================================================================
# End-to-end shuffle equality and byte accounting across stores
# =========================================================================
# Fat values: on realistic payloads the pickled refs of the peer stores are
# a small fraction of the bucket bytes (on tiny ones the fixed ref cost can
# exceed the payload, which is why the bench guard anchors at a large size).
_FAT_DATA = [(i % 8, f"payload-{i:04d}-" * 8) for i in range(400)]


def _reduce_with(store_spec, executor=None):
    context = EngineContext(4, executor=executor, block_store=store_spec)
    try:
        result = sorted(
            context.parallelize(_FAT_DATA).reduceByKey(_add).collect()
        )
        return result, context.metrics_summary()
    finally:
        context.stop()


class TestShuffleAcrossStores:
    def test_serial_results_identical_across_stores(self):
        reference, driver_summary = _reduce_with("driver")
        for spec in ("shared-memory", "spill"):
            result, summary = _reduce_with(spec)
            assert result == reference
            # Total payload volume is a property of the job, not the store.
            assert summary["shuffle_bytes"] == driver_summary["shuffle_bytes"]
        _no_shm_leak()

    def test_relay_peer_split_per_store(self):
        _result, driver = _reduce_with("driver")
        assert driver["shuffle_relay_bytes"] == driver["shuffle_bytes"]
        assert driver["shuffle_peer_bytes"] == 0
        _result, shm = _reduce_with("shared-memory")
        assert shm["shuffle_peer_bytes"] == shm["shuffle_bytes"]
        assert 0 < shm["shuffle_relay_bytes"] < shm["shuffle_bytes"]
        _result, spill = _reduce_with("spill")
        assert spill["shuffle_peer_bytes"] == spill["shuffle_bytes"]
        assert 0 < spill["shuffle_relay_bytes"] < spill["shuffle_bytes"]

    def test_metrics_summary_names_the_store(self):
        _result, summary = _reduce_with("shared-memory")
        assert summary["block_store"] == "shared-memory"

    @pytest.mark.parametrize("spec", ["shared-memory", "spill"])
    def test_process_executor_matches_serial(self, spec):
        reference, _ = _reduce_with("driver")
        executor = MultiprocessingExecutor(max_workers=2, on_unpicklable="raise")
        try:
            result, summary = _reduce_with(spec, executor=executor)
            assert result == reference
            assert summary["shuffle_peer_bytes"] == summary["shuffle_bytes"]
            assert summary["shuffle_relay_bytes"] < summary["shuffle_bytes"]
        finally:
            executor.close()
        _no_shm_leak()

    def test_cogroup_join_across_stores(self):
        def run(spec):
            context = EngineContext(3, block_store=spec)
            try:
                left = context.parallelize([(k, k * 2) for k in range(20)])
                right = context.parallelize([(k, k * 3) for k in range(0, 20, 2)])
                return sorted(left.join(right).collect())
            finally:
                context.stop()

        reference = run("driver")
        assert run("shared-memory") == reference
        assert run("spill") == reference
        _no_shm_leak()


# =========================================================================
# Context ownership and lifecycle
# =========================================================================
class TestContextLifecycle:
    def test_context_owns_and_closes_spec_built_store(self):
        context = EngineContext(4, block_store="spill")
        directory = context.block_store.directory
        context.parallelize(range(10)).keyBy(_is_even).reduceByKey(_add).collect()
        context.stop()
        assert not os.path.exists(directory)

    def test_caller_supplied_instance_is_left_open(self, tmp_path):
        store = SpillFileBlockStore(str(tmp_path / "spill"))
        context = EngineContext(4, block_store=store)
        assert context.block_store is store
        context.parallelize(range(10)).keyBy(_is_even).reduceByKey(_add).collect()
        context.stop()
        assert os.path.exists(store.directory)  # still the caller's to close
        store.close()

    def test_context_env_var_selects_store(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "shared-memory")
        context = EngineContext(4)
        try:
            assert isinstance(context.block_store, SharedMemoryBlockStore)
        finally:
            context.stop()
        _no_shm_leak()


# =========================================================================
# Spec / CLI plumbing
# =========================================================================
class TestBlockStorePlumbing:
    def test_cli_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--synthetic", "abt-buy", "--block-store", "shared-memory"]
        )
        assert args.block_store == "shared-memory"
        args = build_parser().parse_args(["run", "--synthetic", "abt-buy"])
        assert args.block_store is None

    def test_canonical_spec_records_block_store(self):
        spec = SparkER.canonical_spec(
            SparkERConfig.unsupervised_default(),
            use_engine=True,
            executor="serial",
            block_store="shared-memory",
        )
        assert spec["engine"]["block_store"] == "shared-memory"
        pipeline = Pipeline.from_spec(spec)
        try:
            assert isinstance(pipeline.engine.block_store, SharedMemoryBlockStore)
        finally:
            pipeline.shutdown()
        _no_shm_leak()

    def test_canonical_spec_omits_block_store_by_default(self):
        spec = SparkER.canonical_spec(
            SparkERConfig.unsupervised_default(), use_engine=True, executor="serial"
        )
        assert "block_store" not in spec["engine"]

    def test_from_spec_rejects_bad_block_store_type(self):
        spec = SparkER.canonical_spec(
            SparkERConfig.unsupervised_default(), use_engine=True, executor="serial"
        )
        spec["engine"]["block_store"] = 7
        with pytest.raises(PipelineValidationError, match="block_store"):
            Pipeline.from_spec(spec)

    def test_sparker_facade_resolves_block_store(self):
        sparker = SparkER(
            SparkERConfig.unsupervised_default(), use_engine=True,
            block_store="spill",
        )
        try:
            assert isinstance(sparker.engine.block_store, SpillFileBlockStore)
            assert sparker._block_store_spec == "spill"
        finally:
            sparker.engine.stop()

    def test_store_base_class_contract(self):
        store = BlockStore()
        with pytest.raises(NotImplementedError):
            store.publish([("k", 1)])
        store.close()  # default close is a no-op
        assert store.spec() == store.name
