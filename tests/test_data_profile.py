"""Tests of the EntityProfile data model."""

import pytest

from repro.data.profile import EntityProfile, KeyValue
from repro.exceptions import DataError


class TestKeyValue:
    def test_frozen(self):
        kv = KeyValue("name", "sony tv")
        with pytest.raises(AttributeError):
            kv.value = "other"  # type: ignore[misc]

    def test_empty_attribute_rejected(self):
        with pytest.raises(DataError):
            KeyValue("", "value")


class TestEntityProfile:
    def test_add_and_values_of(self):
        profile = EntityProfile(profile_id=0)
        profile.add("name", "Sony TV")
        profile.add("name", "Sony Television")
        assert profile.values_of("name") == ["Sony TV", "Sony Television"]

    def test_add_skips_empty_values(self):
        profile = EntityProfile(profile_id=0)
        profile.add("name", "")
        profile.add("name", None)
        profile.add("name", "   ")
        assert len(profile) == 0

    def test_add_coerces_non_strings(self):
        profile = EntityProfile(profile_id=0)
        profile.add("price", 12.5)
        assert profile.value_of("price") == "12.5"

    def test_value_of_default(self):
        profile = EntityProfile(profile_id=0)
        assert profile.value_of("missing", "n/a") == "n/a"

    def test_attribute_names(self):
        profile = EntityProfile(profile_id=0)
        profile.add("name", "a")
        profile.add("price", "1")
        assert profile.attribute_names() == {"name", "price"}

    def test_items_order(self):
        profile = EntityProfile(profile_id=0)
        profile.add("a", "1")
        profile.add("b", "2")
        assert list(profile.items()) == [("a", "1"), ("b", "2")]

    def test_tokens_schema_agnostic(self):
        profile = EntityProfile(profile_id=0)
        profile.add("name", "Sony TV")
        profile.add("description", "sony bravia tv")
        assert profile.tokens() == {"sony", "tv", "bravia"}

    def test_tokens_stopword_removal(self):
        profile = EntityProfile(profile_id=0)
        profile.add("title", "the matrix")
        assert profile.tokens(remove_stopwords=True) == {"matrix"}

    def test_attribute_tokens_provenance(self):
        profile = EntityProfile(profile_id=0)
        profile.add("name", "Blast")
        profile.add("authors", "Simonini")
        assert ("name", "blast") in profile.attribute_tokens()
        assert ("authors", "simonini") in profile.attribute_tokens()

    def test_text_concatenation(self):
        profile = EntityProfile(profile_id=0)
        profile.add("a", "x")
        profile.add("b", "y")
        assert profile.text() == "x y"

    def test_as_dict(self):
        profile = EntityProfile(profile_id=0)
        profile.add("name", "a")
        profile.add("name", "b")
        assert profile.as_dict() == {"name": ["a", "b"]}

    def test_repr_contains_id(self):
        profile = EntityProfile(profile_id=7, source_id=1)
        assert "id=7" in repr(profile)
