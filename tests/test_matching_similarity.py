"""Tests of the similarity functions."""

import math

import pytest

from repro.exceptions import MatchingError
from repro.matching.similarity import (
    SIMILARITY_FUNCTIONS,
    cosine_similarity_tokens,
    dice_similarity,
    document_frequencies,
    edit_distance,
    get_similarity_function,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_similarity,
    numeric_similarity,
    overlap_coefficient,
    qgram_similarity,
    tfidf_cosine_similarity,
)


class TestTokenSetMeasures:
    def test_jaccard_identical(self):
        assert jaccard_similarity("sony tv", "sony tv") == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard_similarity("sony tv", "canon camera") == 0.0

    def test_jaccard_partial(self):
        assert jaccard_similarity("sony hd tv", "sony tv") == 2 / 3

    def test_jaccard_empty(self):
        assert jaccard_similarity("", "") == 0.0

    def test_dice_ge_jaccard(self):
        a, b = "sony hd tv", "sony bravia tv stand"
        assert dice_similarity(a, b) >= jaccard_similarity(a, b)

    def test_overlap_subset_is_one(self):
        assert overlap_coefficient("sony tv", "sony tv hd bravia") == 1.0

    def test_cosine_identical(self):
        assert math.isclose(cosine_similarity_tokens("a b c", "a b c"), 1.0)

    def test_cosine_orthogonal(self):
        assert cosine_similarity_tokens("a b", "c d") == 0.0

    def test_tfidf_without_corpus_equals_cosine(self):
        a, b = "sony tv hd", "sony tv"
        assert math.isclose(
            tfidf_cosine_similarity(a, b), cosine_similarity_tokens(a, b)
        )

    def test_tfidf_downweights_common_tokens(self):
        frequencies, n = document_frequencies(
            ["sony tv", "sony camera", "sony radio", "panasonic zx100 tv"]
        )
        # "sony" appears everywhere → pairs sharing only rare tokens score higher.
        common_only = tfidf_cosine_similarity("sony tv", "sony radio", frequencies, n)
        rare_shared = tfidf_cosine_similarity(
            "panasonic zx100", "panasonic zx100 deluxe", frequencies, n
        )
        assert rare_shared > common_only


class TestCharacterMeasures:
    def test_edit_distance_basic(self):
        assert edit_distance("kitten", "sitting") == 3

    def test_edit_distance_empty(self):
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3

    def test_edit_distance_equal(self):
        assert edit_distance("same", "same") == 0

    def test_levenshtein_similarity_range(self):
        assert 0.0 <= levenshtein_similarity("sony", "sonny") <= 1.0

    def test_levenshtein_similarity_typo_high(self):
        assert levenshtein_similarity("panasonic", "panasonik") > 0.8

    def test_jaro_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_jaro_known_value(self):
        assert abs(jaro_similarity("martha", "marhta") - 0.9444) < 0.01

    def test_jaro_winkler_prefix_bonus(self):
        assert jaro_winkler_similarity("martha", "marhta") >= jaro_similarity(
            "martha", "marhta"
        )

    def test_jaro_empty(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_qgram_similar_strings(self):
        assert qgram_similarity("panasonic", "panasonik") > 0.5

    def test_qgram_different_strings(self):
        assert qgram_similarity("sony", "whirlpool") < 0.2


class TestNumericSimilarity:
    def test_equal_values(self):
        assert numeric_similarity("100", "100") == 1.0

    def test_close_values(self):
        assert numeric_similarity("100", "105") > 0.9

    def test_far_values(self):
        assert numeric_similarity("10", "1000") < 0.1

    def test_non_numeric(self):
        assert numeric_similarity("abc", "100") == 0.0

    def test_zero_values(self):
        assert numeric_similarity("0", "0") == 1.0

    def test_thousands_separator(self):
        assert numeric_similarity("1,000", "1000") == 1.0


class TestRegistry:
    def test_all_functions_callable(self):
        for name, function in SIMILARITY_FUNCTIONS.items():
            value = function("sony tv", "sony television")
            assert isinstance(value, float), name

    def test_lookup(self):
        assert get_similarity_function("Jaccard") is jaccard_similarity

    def test_unknown_function(self):
        with pytest.raises(MatchingError):
            get_similarity_function("nope")

    def test_symmetry(self):
        for name, function in SIMILARITY_FUNCTIONS.items():
            assert math.isclose(
                function("sony hd tv", "sony bravia"),
                function("sony bravia", "sony hd tv"),
            ), name
