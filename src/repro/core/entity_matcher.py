"""The Entity Matcher module.

Takes the candidate pairs produced by the blocker and labels them as match or
non-match, producing the similarity graph.  The module is a thin orchestration
layer over the matchers of :mod:`repro.matching`; any matcher can be plugged
in (the demo uses Magellan's, here we provide threshold, rule-based and
classifier matchers).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.config import MatcherConfig
from repro.data.dataset import ProfileCollection
from repro.exceptions import ConfigurationError, MatchingError
from repro.matching.classifier import LogisticRegressionMatcher
from repro.matching.features import PairFeatureExtractor
from repro.matching.matcher import Matcher, MatchingRule, RuleBasedMatcher, ThresholdMatcher
from repro.matching.similarity_graph import SimilarityGraph
from repro.looseschema.attribute_partitioning import AttributePartitioning


class EntityMatcher:
    """Labels candidate pairs as matches, producing the similarity graph.

    Parameters
    ----------
    config:
        Matcher configuration; ``config.mode`` selects the underlying matcher.
    rules:
        The rule conjunction, required when ``mode == "rules"``.
    labeled_pairs:
        ``(a, b, is_match)`` triples, required when ``mode == "classifier"``
        (supervised mode).
    partitioning:
        Optional loose-schema partitioning used to add per-cluster features to
        the supervised matcher.
    matcher:
        A fully custom matcher instance; overrides ``config.mode`` when given.
    """

    def __init__(
        self,
        config: MatcherConfig | None = None,
        *,
        rules: Sequence[MatchingRule] | None = None,
        labeled_pairs: Sequence[tuple[int, int, bool]] | None = None,
        partitioning: AttributePartitioning | None = None,
        matcher: Matcher | None = None,
    ) -> None:
        self.config = config or MatcherConfig()
        self.config.validate()
        self.rules = list(rules) if rules else []
        self.labeled_pairs = list(labeled_pairs) if labeled_pairs else []
        self.partitioning = partitioning
        self._custom_matcher = matcher

    # ------------------------------------------------------------------ public
    def build_matcher(self, profiles: ProfileCollection) -> Matcher:
        """Instantiate (and, for the classifier, train) the configured matcher."""
        if self._custom_matcher is not None:
            return self._custom_matcher
        mode = self.config.mode
        if mode == "threshold":
            return ThresholdMatcher(
                similarity=self.config.similarity, threshold=self.config.threshold
            )
        if mode == "rules":
            if not self.rules:
                raise ConfigurationError("matcher mode 'rules' requires a rule list")
            return RuleBasedMatcher(self.rules)
        if mode == "classifier":
            if not self.labeled_pairs:
                raise MatchingError(
                    "matcher mode 'classifier' requires labeled pairs for training"
                )
            extractor = PairFeatureExtractor(partitioning=self.partitioning)
            matcher = LogisticRegressionMatcher(
                extractor,
                epochs=self.config.classifier_epochs,
                decision_threshold=self.config.decision_threshold,
            )
            matcher.fit(profiles, self.labeled_pairs)
            return matcher
        raise ConfigurationError(f"unknown matcher mode {mode!r}")

    def match(
        self,
        profiles: ProfileCollection,
        candidate_pairs: Sequence[tuple[int, int]],
    ) -> SimilarityGraph:
        """Score/label every candidate pair and return the similarity graph."""
        matcher = self.build_matcher(profiles)
        return matcher.match(profiles, sorted(candidate_pairs))

    def __call__(
        self,
        profiles: ProfileCollection,
        candidate_pairs: Sequence[tuple[int, int]],
    ) -> SimilarityGraph:
        return self.match(profiles, candidate_pairs)
