"""The end-to-end SparkER facade (Figure 3 of the paper).

``profiles → Blocker → candidate pairs → Entity Matcher → matching pairs →
Entity Clusterer → output entities``.  Since the stage-graph redesign,
:class:`SparkER` is a thin compatibility wrapper over the canonical pipeline
spec (:meth:`SparkER.canonical_spec`): it builds a
:class:`repro.pipeline.Pipeline` from the spec, runs it, and re-packages the
artifacts into the legacy :class:`SparkERResult` shape — bit-for-bit
identical to what the hard-wired facade produced.  New code should use
``repro.pipeline`` directly; this class exists so existing callers (and the
paper's fixed wiring) keep working unchanged.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.clustering.base import EntityCluster, clusters_to_pairs
from repro.core.blocker import BlockerReport
from repro.core.config import SparkERConfig
from repro.data.dataset import ProfileCollection
from repro.data.ground_truth import GroundTruth
from repro.engine.context import EngineContext
from repro.evaluation.report import PipelineReport
from repro.looseschema.attribute_partitioning import AttributePartitioning
from repro.matching.matcher import Matcher, MatchingRule
from repro.matching.similarity_graph import SimilarityGraph
from repro.pipeline import Pipeline, PipelineResult
from repro.utils.timers import StageTimings

# Pipeline stage label → legacy report name of the hard-wired facade.
_BLOCKER_LABELS = (
    "loose_schema",
    "token_blocking",
    "block_purging",
    "block_filtering",
    "meta_blocking",
)
_LEGACY_STAGE_NAMES = {
    **{label: f"blocker.{label}" for label in _BLOCKER_LABELS},
    "matching": "matcher",
    "clustering": "clusterer",
}
# Stage labels whose seconds roll up into the legacy three-bucket timings.
_TIMING_BUCKETS = {
    **{label: "blocker" for label in _BLOCKER_LABELS},
    "block_comparisons": "blocker",
    "matching": "matcher",
    "clustering": "clusterer",
    "entity_generation": "clusterer",
}


@dataclass
class SparkERResult:
    """All outputs of one end-to-end run."""

    blocker_report: BlockerReport
    candidate_pairs: set[tuple[int, int]]
    similarity_graph: SimilarityGraph
    clusters: list[EntityCluster]
    entities: list[dict[str, object]]
    report: PipelineReport = field(default_factory=PipelineReport)
    timings: StageTimings = field(default_factory=StageTimings)
    engine_metrics: dict[str, object] = field(default_factory=dict)
    pipeline_result: PipelineResult | None = None
    kernel_backend: str | None = None

    @property
    def matched_pairs(self) -> set[tuple[int, int]]:
        """The pairs the matcher labeled as matches."""
        return self.similarity_graph.pairs()

    @property
    def resolved_pairs(self) -> set[tuple[int, int]]:
        """The pairs asserted by the final clusters (after transitive closure)."""
        return clusters_to_pairs(self.clusters)

    def summary(self) -> dict[str, object]:
        """Headline numbers of the run, engine metrics included when present."""
        summary: dict[str, object] = {
            "candidate_pairs": len(self.candidate_pairs),
            "matched_pairs": len(self.matched_pairs),
            "clusters": len(self.clusters),
            "entities": len(self.entities),
        }
        if self.kernel_backend is not None:
            summary["kernel_backend"] = self.kernel_backend
        if self.engine_metrics:
            summary["engine"] = dict(self.engine_metrics)
        return summary


class SparkER:
    """The full entity-resolution pipeline (compatibility facade).

    Parameters
    ----------
    config:
        The pipeline configuration (defaults to the unsupervised defaults).
    use_engine:
        When True an :class:`EngineContext` is created with
        ``config.parallelism`` partitions and the distributed code paths are
        used for blocking, meta-blocking and clustering.
    executor:
        Executor spec forwarded to the :class:`EngineContext` (``"serial"``,
        ``"process"``, ``"process:4"`` or an
        :class:`~repro.engine.executors.Executor` instance); only meaningful
        with ``use_engine=True``.  ``None`` consults the
        ``REPRO_ENGINE_EXECUTOR`` environment variable.
    fault_policy:
        Task recovery contract for the process executor (a
        :class:`~repro.engine.faults.FaultPolicy`, spec string or dict, e.g.
        ``"retries=2,timeout=30"``); ``None`` consults
        ``REPRO_FAULT_POLICY``.  Only meaningful with an executor spec
        string — pass the policy to the executor's constructor when
        supplying an instance.
    block_store:
        How shuffle block payloads travel between map and reduce tasks (a
        :class:`~repro.engine.shuffle.BlockStore` instance or a spec string:
        ``"driver"``, ``"shared-memory"``, ``"spill"``); ``None`` consults
        ``REPRO_BLOCK_STORE``.  Only meaningful with ``use_engine=True``.
    partitioning:
        Optional user-supplied attribute partitioning (supervised mode).
    rules / labeled_pairs / matcher:
        Forwarded to the matching stage through the pipeline extras.
    """

    def __init__(
        self,
        config: SparkERConfig | None = None,
        *,
        use_engine: bool = False,
        executor: object | None = None,
        kernel_backend: str | None = None,
        buffer_backend: str | None = None,
        tmp_dir: str | None = None,
        fault_policy: object | None = None,
        block_store: object | None = None,
        partitioning: AttributePartitioning | None = None,
        rules: Sequence[MatchingRule] | None = None,
        labeled_pairs: Sequence[tuple[int, int, bool]] | None = None,
        matcher: Matcher | None = None,
    ) -> None:
        self.config = config or SparkERConfig.unsupervised_default()
        self.config.validate()
        self.engine = (
            EngineContext(
                default_parallelism=self.config.parallelism,
                executor=executor,  # type: ignore[arg-type]
                fault_policy=fault_policy,
                block_store=block_store,  # type: ignore[arg-type]
                tmp_dir=tmp_dir,
            )
            if use_engine
            else None
        )
        # Remember the executor *spec* for provenance: resolved specs must
        # reproduce an engine-backed run as engine-backed.
        if isinstance(executor, str):
            self._executor_spec: str | None = executor
        elif self.engine is not None:
            self._executor_spec = self.engine.executor.name
        else:
            self._executor_spec = None
        # Same provenance treatment for the fault policy: a resolved spec
        # must rebuild the same recovery behaviour.
        if isinstance(fault_policy, (str, dict)):
            self._fault_policy_spec: "str | dict | None" = fault_policy
        elif fault_policy is not None:
            spec_of = getattr(fault_policy, "spec", None)
            self._fault_policy_spec = spec_of() if callable(spec_of) else None
        else:
            self._fault_policy_spec = None
        # And for the block store: a resolved spec of a peer-to-peer shuffle
        # run must rebuild the same block exchange.
        if isinstance(block_store, str):
            self._block_store_spec: str | None = block_store
        elif self.engine is not None and block_store is not None:
            self._block_store_spec = self.engine.block_store.spec()
        else:
            self._block_store_spec = None
        self.kernel_backend = kernel_backend
        self.buffer_backend = buffer_backend
        self.tmp_dir = tmp_dir
        self.partitioning = partitioning
        self.rules = rules
        self.labeled_pairs = labeled_pairs
        self.custom_matcher = matcher

    # -------------------------------------------------------------- the spec
    @classmethod
    def canonical_spec(
        cls,
        config: SparkERConfig | None = None,
        *,
        use_engine: bool = False,
        executor: str | None = None,
        kernel_backend: str | None = None,
        buffer_backend: str | None = None,
        tmp_dir: str | None = None,
        fault_policy: "str | dict | None" = None,
        block_store: str | None = None,
    ) -> dict[str, object]:
        """The declarative stage-graph spec equivalent to this facade.

        ``Pipeline.from_spec(SparkER.canonical_spec(config))`` reproduces
        ``SparkER(config).run(...)`` bit for bit.  The spec is plain data
        (JSON-serialisable), so it can be persisted, diffed and edited.
        """
        config = config or SparkERConfig.unsupervised_default()
        config.validate()
        blocker = config.blocker
        stages: list[dict[str, object]] = []
        if blocker.use_loose_schema:
            stages.append(
                {
                    "stage": "loose_schema",
                    "params": {"threshold": blocker.attribute_threshold},
                }
            )
        stages.append(
            {
                "stage": "token_blocking",
                "params": {
                    "min_token_length": blocker.min_token_length,
                    "remove_stopwords": blocker.remove_stopwords,
                    "use_entropy": blocker.use_entropy,
                },
                "outputs": {"blocks": "raw_blocks"},
            }
        )
        stages.append(
            {
                "stage": "block_purging",
                "params": {"max_profile_fraction": blocker.purge_factor},
                "inputs": {"blocks": "raw_blocks"},
                "outputs": {"blocks": "purged_blocks"},
            }
        )
        stages.append(
            {
                "stage": "block_filtering",
                "params": {"ratio": blocker.filter_ratio},
                "inputs": {"blocks": "purged_blocks"},
                "outputs": {"blocks": "filtered_blocks"},
            }
        )
        if blocker.use_meta_blocking:
            stages.append(
                {
                    "stage": "meta_blocking",
                    "params": {
                        "weighting": blocker.weighting_scheme,
                        "pruning": blocker.pruning_strategy,
                        "use_entropy": blocker.use_entropy,
                    },
                    "inputs": {"blocks": "filtered_blocks"},
                }
            )
        else:
            stages.append(
                {"stage": "block_comparisons", "inputs": {"blocks": "filtered_blocks"}}
            )
        matcher = config.matcher
        stages.append(
            {
                "stage": "matching",
                "params": {
                    "mode": matcher.mode,
                    "similarity": matcher.similarity,
                    "threshold": matcher.threshold,
                    "classifier_epochs": matcher.classifier_epochs,
                    "decision_threshold": matcher.decision_threshold,
                },
            }
        )
        clusterer = config.clusterer
        stages.append(
            {
                "stage": "clustering",
                "params": {
                    "algorithm": clusterer.algorithm,
                    "min_score": clusterer.min_score,
                },
            }
        )
        stages.append({"stage": "entity_generation"})
        engine_section: dict[str, object] = {
            "enabled": use_engine,
            "parallelism": config.parallelism,
            "executor": executor,
        }
        if kernel_backend is not None:
            engine_section["kernel_backend"] = kernel_backend
        if buffer_backend is not None:
            engine_section["buffer_backend"] = buffer_backend
        if tmp_dir is not None:
            engine_section["tmp_dir"] = tmp_dir
        if fault_policy is not None:
            engine_section["fault_policy"] = fault_policy
        if block_store is not None:
            engine_section["block_store"] = block_store
        return {
            "name": "sparker",
            "engine": engine_section,
            "stages": stages,
        }

    def build_pipeline(self) -> Pipeline:
        """The canonical pipeline, wired to this facade's engine context."""
        spec = self.canonical_spec(
            self.config,
            use_engine=self.engine is not None,
            executor=self._executor_spec,
            kernel_backend=self.kernel_backend,
            buffer_backend=self.buffer_backend,
            tmp_dir=self.tmp_dir,
            fault_policy=self._fault_policy_spec,
            block_store=self._block_store_spec,
        )
        return Pipeline.from_spec(spec, engine=self.engine)

    # ------------------------------------------------------------------ public
    def run(
        self,
        profiles: ProfileCollection,
        ground_truth: GroundTruth | None = None,
    ) -> SparkERResult:
        """Run blocker → matcher → clusterer and return every artefact."""
        pipeline = self.build_pipeline()
        artifacts: dict[str, object] = {}
        # The legacy Blocker only consulted a user partitioning on the
        # loose-schema path; seeding it unconditionally would switch
        # schema-agnostic configs to loose-schema blocking.
        if self.partitioning is not None and self.config.blocker.use_loose_schema:
            artifacts["partitioning"] = self.partitioning
        extras: dict[str, object] = {}
        if self.rules is not None:
            extras["rules"] = self.rules
        if self.labeled_pairs is not None:
            extras["labeled_pairs"] = self.labeled_pairs
        if self.custom_matcher is not None:
            extras["matcher"] = self.custom_matcher
        result = pipeline.run(
            profiles, ground_truth, artifacts=artifacts or None, extras=extras or None
        )
        return self._legacy_result(result)

    def _legacy_result(self, result: PipelineResult) -> SparkERResult:
        """Re-package a pipeline result into the legacy facade shape."""
        store = result.artifacts
        blocker_report = BlockerReport(
            partitioning=store.get("partitioning"),  # type: ignore[arg-type]
            cluster_entropies=store.get("cluster_entropies") or {},  # type: ignore[arg-type]
            raw_blocks=store.get("raw_blocks"),  # type: ignore[arg-type]
            purged_blocks=store.get("purged_blocks"),  # type: ignore[arg-type]
            filtered_blocks=store.get("filtered_blocks"),  # type: ignore[arg-type]
            meta_blocking=store.get("meta_blocking"),  # type: ignore[arg-type]
            candidate_pairs=result.candidate_pairs,
        )
        report = PipelineReport()
        timings = StageTimings()
        for stage in result.report.stages:
            if stage.stage in _BLOCKER_LABELS:
                blocker_report.pipeline_report.add(stage.stage, stage.metrics)
            legacy_name = _LEGACY_STAGE_NAMES.get(stage.stage)
            if legacy_name is not None:
                report.add(legacy_name, stage.metrics)
        for execution in result.executions:
            bucket = _TIMING_BUCKETS.get(execution.label)
            if bucket is not None:
                timings.record(bucket, execution.seconds)
            if bucket == "blocker":
                blocker_report.timings.record(execution.label, execution.seconds)
        return SparkERResult(
            blocker_report=blocker_report,
            candidate_pairs=result.candidate_pairs,
            similarity_graph=store.get("similarity_graph"),  # type: ignore[arg-type]
            clusters=result.clusters,
            entities=result.entities,
            report=report,
            timings=timings,
            engine_metrics=result.engine_metrics,
            pipeline_result=result,
            kernel_backend=result.kernel_backend,
        )

    def __call__(
        self, profiles: ProfileCollection, ground_truth: GroundTruth | None = None
    ) -> SparkERResult:
        return self.run(profiles, ground_truth)

    def shutdown(self) -> None:
        """Release engine resources (worker pools); safe without an engine."""
        if self.engine is not None:
            self.engine.stop()
