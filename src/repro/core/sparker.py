"""The end-to-end SparkER pipeline (Figure 3 of the paper).

``profiles → Blocker → candidate pairs → Entity Matcher → matching pairs →
Entity Clusterer → output entities``.  Each module is independent (a black
box); :class:`SparkER` simply wires them together, evaluates every stage when
a ground truth is available, and returns a :class:`SparkERResult` bundling all
intermediate artefacts.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.clustering.base import EntityCluster, clusters_to_pairs
from repro.core.blocker import Blocker, BlockerReport
from repro.core.config import SparkERConfig
from repro.core.entity_clusterer import EntityClusterer
from repro.core.entity_matcher import EntityMatcher
from repro.data.dataset import ProfileCollection
from repro.data.ground_truth import GroundTruth
from repro.engine.context import EngineContext
from repro.evaluation.metrics import clustering_metrics, pair_metrics
from repro.evaluation.report import PipelineReport
from repro.looseschema.attribute_partitioning import AttributePartitioning
from repro.matching.matcher import Matcher, MatchingRule
from repro.matching.similarity_graph import SimilarityGraph
from repro.utils.timers import StageTimings


@dataclass
class SparkERResult:
    """All outputs of one end-to-end run."""

    blocker_report: BlockerReport
    candidate_pairs: set[tuple[int, int]]
    similarity_graph: SimilarityGraph
    clusters: list[EntityCluster]
    entities: list[dict[str, object]]
    report: PipelineReport = field(default_factory=PipelineReport)
    timings: StageTimings = field(default_factory=StageTimings)

    @property
    def matched_pairs(self) -> set[tuple[int, int]]:
        """The pairs the matcher labeled as matches."""
        return self.similarity_graph.pairs()

    @property
    def resolved_pairs(self) -> set[tuple[int, int]]:
        """The pairs asserted by the final clusters (after transitive closure)."""
        return clusters_to_pairs(self.clusters)

    def summary(self) -> dict[str, object]:
        """Headline numbers of the run."""
        return {
            "candidate_pairs": len(self.candidate_pairs),
            "matched_pairs": len(self.matched_pairs),
            "clusters": len(self.clusters),
            "entities": len(self.entities),
        }


class SparkER:
    """The full entity-resolution pipeline.

    Parameters
    ----------
    config:
        The pipeline configuration (defaults to the unsupervised defaults).
    use_engine:
        When True an :class:`EngineContext` is created with
        ``config.parallelism`` partitions and the distributed code paths are
        used for blocking, meta-blocking and clustering.
    executor:
        Executor spec forwarded to the :class:`EngineContext` (``"serial"``,
        ``"process"``, ``"process:4"`` or an
        :class:`~repro.engine.executors.Executor` instance); only meaningful
        with ``use_engine=True``.  ``None`` consults the
        ``REPRO_ENGINE_EXECUTOR`` environment variable.
    partitioning:
        Optional user-supplied attribute partitioning (supervised mode).
    rules / labeled_pairs / matcher:
        Forwarded to :class:`~repro.core.entity_matcher.EntityMatcher`.
    """

    def __init__(
        self,
        config: SparkERConfig | None = None,
        *,
        use_engine: bool = False,
        executor: object | None = None,
        partitioning: AttributePartitioning | None = None,
        rules: Sequence[MatchingRule] | None = None,
        labeled_pairs: Sequence[tuple[int, int, bool]] | None = None,
        matcher: Matcher | None = None,
    ) -> None:
        self.config = config or SparkERConfig.unsupervised_default()
        self.config.validate()
        self.engine = (
            EngineContext(default_parallelism=self.config.parallelism, executor=executor)  # type: ignore[arg-type]
            if use_engine
            else None
        )
        self.partitioning = partitioning
        self.rules = rules
        self.labeled_pairs = labeled_pairs
        self.custom_matcher = matcher

    # ------------------------------------------------------------------ public
    def run(
        self,
        profiles: ProfileCollection,
        ground_truth: GroundTruth | None = None,
    ) -> SparkERResult:
        """Run blocker → matcher → clusterer and return every artefact."""
        timings = StageTimings()
        report = PipelineReport()

        # -- blocker -----------------------------------------------------------
        blocker = Blocker(
            self.config.blocker, engine=self.engine, partitioning=self.partitioning
        )
        with timings.time("blocker"):
            blocker_report = blocker.run(profiles, ground_truth)
        candidate_pairs = blocker_report.candidate_pairs
        for stage in blocker_report.pipeline_report.stages:
            report.add(f"blocker.{stage.stage}", stage.metrics)

        # -- entity matcher ----------------------------------------------------
        entity_matcher = EntityMatcher(
            self.config.matcher,
            rules=self.rules,
            labeled_pairs=self.labeled_pairs,
            partitioning=blocker_report.partitioning,
            matcher=self.custom_matcher,
        )
        with timings.time("matcher"):
            similarity_graph = entity_matcher.match(profiles, sorted(candidate_pairs))
        matcher_metrics: dict[str, object] = {"matched_pairs": len(similarity_graph)}
        if ground_truth is not None:
            matcher_metrics.update(
                pair_metrics(similarity_graph.pairs(), ground_truth).as_dict()
            )
        report.add("matcher", matcher_metrics)

        # -- entity clusterer --------------------------------------------------
        clusterer = EntityClusterer(self.config.clusterer, engine=self.engine)
        with timings.time("clusterer"):
            clusters = clusterer.cluster(similarity_graph)
            entities = clusterer.generate_entities(clusters, profiles)
        clusterer_metrics: dict[str, object] = {"clusters": len(clusters)}
        if ground_truth is not None:
            clusterer_metrics.update(clustering_metrics(clusters, ground_truth))
        report.add("clusterer", clusterer_metrics)

        return SparkERResult(
            blocker_report=blocker_report,
            candidate_pairs=candidate_pairs,
            similarity_graph=similarity_graph,
            clusters=clusters,
            entities=entities,
            report=report,
            timings=timings,
        )

    def __call__(
        self, profiles: ProfileCollection, ground_truth: GroundTruth | None = None
    ) -> SparkERResult:
        return self.run(profiles, ground_truth)

    def shutdown(self) -> None:
        """Release engine resources (worker pools); safe without an engine."""
        if self.engine is not None:
            self.engine.stop()
