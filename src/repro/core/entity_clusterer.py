"""The Entity Clusterer module (Figure 5 of the paper).

Graph generation → connected components → entity generation: the similarity
graph's nodes are partitioned into equivalence clusters; profiles in the same
cluster refer to the same real-world entity.  The connected-components
algorithm (GraphX in the original) is the default; alternative algorithms can
be selected through the configuration.
"""

from __future__ import annotations

from repro.clustering.base import EntityCluster
from repro.clustering.registry import make_clustering_algorithm
from repro.core.config import ClustererConfig
from repro.data.dataset import ProfileCollection
from repro.engine.context import EngineContext
from repro.matching.similarity_graph import SimilarityGraph


class EntityClusterer:
    """Groups matched pairs into entity clusters.

    Parameters
    ----------
    config:
        Clusterer configuration (algorithm name + optional minimum edge score).
    engine:
        Optional engine context; the connected-components algorithm then runs
        with the Pregel-style distributed implementation.
    """

    def __init__(
        self,
        config: ClustererConfig | None = None,
        *,
        engine: EngineContext | None = None,
    ) -> None:
        self.config = config or ClustererConfig()
        self.config.validate()
        self.engine = engine
        self.algorithm = make_clustering_algorithm(self.config.algorithm, engine=engine)

    def cluster(self, similarity_graph: SimilarityGraph) -> list[EntityCluster]:
        """Partition the similarity graph into entity clusters."""
        graph = similarity_graph
        if self.config.min_score > 0.0:
            graph = similarity_graph.edges_above(self.config.min_score)
        return self.algorithm.cluster(graph)

    def generate_entities(
        self,
        clusters: list[EntityCluster],
        profiles: ProfileCollection,
        *,
        include_singletons: bool = False,
    ) -> list[dict[str, object]]:
        """Entity generation: merge the attribute values of each cluster.

        Returns one dictionary per entity with the cluster id, the member
        profile ids and the union of attribute values.  Profiles that matched
        nothing are included as singleton entities when requested.
        """
        entities: list[dict[str, object]] = []
        clustered_ids: set[int] = set()
        for cluster in clusters:
            clustered_ids.update(cluster.members)
            merged: dict[str, list[str]] = {}
            for profile_id in sorted(cluster.members):
                for attribute, value in profiles[profile_id].items():
                    values = merged.setdefault(attribute, [])
                    if value not in values:
                        values.append(value)
            entities.append(
                {
                    "entity_id": cluster.cluster_id,
                    "profiles": sorted(cluster.members),
                    "attributes": merged,
                }
            )
        if include_singletons:
            next_id = len(entities)
            for profile in profiles:
                if profile.profile_id in clustered_ids:
                    continue
                entities.append(
                    {
                        "entity_id": next_id,
                        "profiles": [profile.profile_id],
                        "attributes": {
                            attribute: [value] for attribute, value in profile.items()
                        },
                    }
                )
                next_id += 1
        return entities

    def __call__(self, similarity_graph: SimilarityGraph) -> list[EntityCluster]:
        return self.cluster(similarity_graph)
