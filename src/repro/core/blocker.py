"""The Blocker module (Figure 4 of the paper).

Pipeline: (optional) loose-schema generator → token blocking (schema-agnostic
or loose-schema) → block purging → block filtering → meta-blocking → candidate
pairs.  Every intermediate stage is kept on the report so the process
debugging can show how each step changed the number of blocks, candidate pairs
and recall/precision — exactly the quantities of the demo GUI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocking.block import BlockCollection
from repro.blocking.filtering import BlockFiltering
from repro.blocking.loose_schema_blocking import LooseSchemaTokenBlocking
from repro.blocking.purging import BlockPurging
from repro.blocking.stats import block_stage_metrics, candidate_pair_stats
from repro.blocking.token_blocking import TokenBlocking
from repro.core.config import BlockerConfig
from repro.data.dataset import ProfileCollection
from repro.data.ground_truth import GroundTruth
from repro.engine.context import EngineContext
from repro.evaluation.report import PipelineReport
from repro.looseschema.attribute_partitioning import (
    AttributePartitioner,
    AttributePartitioning,
    loose_schema_metrics,
)
from repro.looseschema.entropy import EntropyExtractor
from repro.metablocking.metablocker import MetaBlockingResult
from repro.metablocking.parallel import make_meta_blocker
from repro.utils.timers import StageTimings


@dataclass
class BlockerReport:
    """Everything the blocker produced, stage by stage."""

    partitioning: AttributePartitioning | None = None
    cluster_entropies: dict[int, float] = field(default_factory=dict)
    raw_blocks: BlockCollection | None = None
    purged_blocks: BlockCollection | None = None
    filtered_blocks: BlockCollection | None = None
    meta_blocking: MetaBlockingResult | None = None
    candidate_pairs: set[tuple[int, int]] = field(default_factory=set)
    pipeline_report: PipelineReport = field(default_factory=PipelineReport)
    timings: StageTimings = field(default_factory=StageTimings)

    def stage_rows(self) -> list[dict[str, object]]:
        """Rows of the per-stage metric table (for reports and benchmarks)."""
        return self.pipeline_report.as_rows()


class Blocker:
    """The blocker module: from profiles to candidate pairs.

    Parameters
    ----------
    config:
        Blocking configuration (see :class:`repro.core.config.BlockerConfig`).
    engine:
        Optional engine context; when given, token blocking and meta-blocking
        run as distributed jobs on the mini engine.
    partitioning:
        Optional user-supplied attribute partitioning (supervised mode,
        Figure 6(c)); when given it overrides the automatic partitioner.
    """

    def __init__(
        self,
        config: BlockerConfig | None = None,
        *,
        engine: EngineContext | None = None,
        partitioning: AttributePartitioning | None = None,
    ) -> None:
        self.config = config or BlockerConfig()
        self.config.validate()
        self.engine = engine
        self.user_partitioning = partitioning

    # ------------------------------------------------------------------ public
    def run(
        self,
        profiles: ProfileCollection,
        ground_truth: GroundTruth | None = None,
    ) -> BlockerReport:
        """Run the full blocking pipeline and return the stage-by-stage report."""
        report = BlockerReport()
        max_comparisons = profiles.max_comparisons()

        # -- loose schema generation ------------------------------------------
        blocking_strategy = self._build_blocking_strategy(profiles, report)

        # -- token blocking ----------------------------------------------------
        with report.timings.time("blocking"):
            report.raw_blocks = blocking_strategy.block(profiles)
        self._record_block_stage(
            report, "token_blocking", report.raw_blocks, ground_truth, max_comparisons
        )

        # -- block purging -----------------------------------------------------
        with report.timings.time("purging"):
            purging = BlockPurging(max_profile_fraction=self.config.purge_factor)
            report.purged_blocks = purging.purge(report.raw_blocks, len(profiles))
        self._record_block_stage(
            report, "block_purging", report.purged_blocks, ground_truth, max_comparisons
        )

        # -- block filtering ---------------------------------------------------
        with report.timings.time("filtering"):
            filtering = BlockFiltering(ratio=self.config.filter_ratio)
            report.filtered_blocks = filtering.filter(report.purged_blocks)
        self._record_block_stage(
            report, "block_filtering", report.filtered_blocks, ground_truth, max_comparisons
        )

        # -- meta-blocking -----------------------------------------------------
        if self.config.use_meta_blocking:
            with report.timings.time("meta_blocking"):
                meta_blocker = self._build_meta_blocker()
                report.meta_blocking = meta_blocker.run(report.filtered_blocks)
                report.candidate_pairs = report.meta_blocking.candidate_pairs
            metrics: dict[str, object] = dict(report.meta_blocking.as_dict())
            if ground_truth is not None:
                metrics.update(
                    candidate_pair_stats(
                        report.candidate_pairs, ground_truth, max_comparisons=max_comparisons
                    )
                )
            report.pipeline_report.add("meta_blocking", metrics)
        else:
            report.candidate_pairs = report.filtered_blocks.distinct_comparisons()

        return report

    def __call__(
        self, profiles: ProfileCollection, ground_truth: GroundTruth | None = None
    ) -> BlockerReport:
        return self.run(profiles, ground_truth)

    # -------------------------------------------------------------- internals
    def _build_blocking_strategy(
        self, profiles: ProfileCollection, report: BlockerReport
    ):
        if not self.config.use_loose_schema:
            return TokenBlocking(
                min_token_length=self.config.min_token_length,
                remove_stopwords=self.config.remove_stopwords,
                engine=self.engine,
            )

        with report.timings.time("attribute_partitioning"):
            if self.user_partitioning is not None:
                partitioning = self.user_partitioning
            else:
                partitioner = AttributePartitioner(
                    threshold=self.config.attribute_threshold
                )
                partitioning = partitioner.partition(profiles)
        report.partitioning = partitioning

        with report.timings.time("entropy_extraction"):
            entropies = EntropyExtractor().extract(profiles, partitioning)
        report.cluster_entropies = entropies
        report.pipeline_report.add(
            "loose_schema", loose_schema_metrics(partitioning, entropies)
        )

        return LooseSchemaTokenBlocking(
            partitioning,
            cluster_entropies=entropies if self.config.use_entropy else None,
            min_token_length=self.config.min_token_length,
            remove_stopwords=self.config.remove_stopwords,
            engine=self.engine,
        )

    def _build_meta_blocker(self):
        return make_meta_blocker(
            self.engine,
            weighting=self.config.weighting_scheme,
            pruning=self.config.pruning_strategy,
            use_entropy=self.config.use_entropy,
        )

    @staticmethod
    def _record_block_stage(
        report: BlockerReport,
        stage: str,
        blocks: BlockCollection,
        ground_truth: GroundTruth | None,
        max_comparisons: int,
    ) -> None:
        report.pipeline_report.add(
            stage,
            block_stage_metrics(blocks, ground_truth, max_comparisons=max_comparisons),
        )
