"""Process debugging (Section 3 and Figure 6 of the paper).

The demo's GUI lets a user iterate on the blocking configuration over a small
but representative sample of the input: change the attribute-partitioning
threshold, manually move attributes between clusters, inspect recall /
precision / #blocks / #candidate pairs, drill into the ground-truth pairs lost
by the current configuration ("false positives" in the demo's terminology,
i.e. false *negatives* of the blocking), and finally apply the tuned
configuration to the whole dataset in batch mode.

:class:`DebugSession` provides the same workflow as a library API:

* :meth:`try_threshold` — Figure 6(a)/(b): rerun the blocker with a given
  attribute-partitioning threshold and report the GUI's numbers.
* :meth:`try_partitioning` — Figure 6(c): rerun with a manually edited
  partitioning.
* :meth:`explain_lost_pairs` — Figure 6(d): for each lost ground-truth pair,
  show the profiles and the blocking keys they shared before pruning.
* :meth:`try_meta_blocking` — Figure 6(e): rerun with meta-blocking + entropy
  and report the candidate-pair reduction.
* :meth:`apply_to_full_dataset` — batch mode: run the chosen configuration on
  the full input.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.core.blocker import Blocker, BlockerReport
from repro.core.config import SparkERConfig
from repro.core.sparker import SparkER, SparkERResult
from repro.data.dataset import ProfileCollection
from repro.data.ground_truth import GroundTruth
from repro.evaluation.report import format_table
from repro.looseschema.attribute_partitioning import AttributePartitioning
from repro.sampling.debug_sampler import DebugSample, DebugSampler


@dataclass
class DebugStepResult:
    """The numbers the demo GUI shows after one configuration attempt."""

    label: str
    num_blocks: int
    num_candidate_pairs: int
    recall: float
    precision: float
    lost_pairs: set[tuple[int, int]] = field(default_factory=set)
    partitioning: AttributePartitioning | None = None
    cluster_entropies: dict[int, float] = field(default_factory=dict)
    blocker_report: BlockerReport | None = None

    def as_dict(self) -> dict[str, object]:
        """Flat summary row."""
        return {
            "label": self.label,
            "blocks": self.num_blocks,
            "candidate_pairs": self.num_candidate_pairs,
            "recall": round(self.recall, 4),
            "precision": round(self.precision, 6),
            "lost_pairs": len(self.lost_pairs),
        }


@dataclass
class LostPairExplanation:
    """Why a ground-truth pair was lost (Figure 6(d))."""

    pair: tuple[int, int]
    left_attributes: dict[str, list[str]]
    right_attributes: dict[str, list[str]]
    shared_keys_before: list[str]

    def render(self) -> str:
        """Human-readable explanation of one lost pair."""
        lines = [f"lost pair {self.pair}"]
        lines.append(f"  left : {self.left_attributes}")
        lines.append(f"  right: {self.right_attributes}")
        if self.shared_keys_before:
            lines.append(f"  shared blocking keys before pruning: {self.shared_keys_before}")
        else:
            lines.append("  the profiles shared no blocking key at all")
        return "\n".join(lines)


class DebugSession:
    """An interactive (programmatic) tuning session on a data sample.

    Parameters
    ----------
    profiles / ground_truth:
        The full dataset; the session itself works on a sample drawn with the
        configured :class:`~repro.sampling.debug_sampler.DebugSampler`.
    config:
        The starting configuration (defaults to the unsupervised defaults).
    sample:
        When False the session operates on the full dataset (useful for tests
        and tiny datasets).
    """

    def __init__(
        self,
        profiles: ProfileCollection,
        ground_truth: GroundTruth,
        config: SparkERConfig | None = None,
        *,
        sample: bool = True,
    ) -> None:
        self.full_profiles = profiles
        self.full_ground_truth = ground_truth
        self.config = config or SparkERConfig.unsupervised_default()
        self.config.validate()
        if sample:
            sampler = DebugSampler(
                num_seeds=self.config.sampling.num_seeds,
                per_seed=self.config.sampling.per_seed,
                seed=self.config.sampling.seed,
            )
            self.sample: DebugSample = sampler.sample(profiles, ground_truth)
        else:
            self.sample = DebugSample(
                profiles=profiles, ground_truth=ground_truth, seed_ids=[]
            )
        self.history: list[DebugStepResult] = []

    # ------------------------------------------------------------------ public
    def try_threshold(
        self, threshold: float, *, use_meta_blocking: bool = False, label: str | None = None
    ) -> DebugStepResult:
        """Rerun blocking with an attribute-partitioning threshold (Fig. 6(a)/(b)).

        With ``threshold=1.0`` every attribute falls in the blob cluster and
        the blocking is schema-agnostic; lower thresholds produce more
        attribute clusters.
        """
        config = copy.deepcopy(self.config.blocker)
        config.use_loose_schema = True
        config.attribute_threshold = threshold
        config.use_meta_blocking = use_meta_blocking
        label = label or f"threshold={threshold}"
        return self._run_blocker(config, label=label)

    def try_partitioning(
        self,
        partitioning: AttributePartitioning,
        *,
        use_meta_blocking: bool = False,
        label: str = "manual partitioning",
    ) -> DebugStepResult:
        """Rerun blocking with a manually edited partitioning (Fig. 6(c))."""
        config = copy.deepcopy(self.config.blocker)
        config.use_loose_schema = True
        config.use_meta_blocking = use_meta_blocking
        return self._run_blocker(config, label=label, partitioning=partitioning)

    def try_meta_blocking(
        self,
        *,
        threshold: float | None = None,
        partitioning: AttributePartitioning | None = None,
        use_entropy: bool = True,
        label: str | None = None,
    ) -> DebugStepResult:
        """Rerun with meta-blocking (+ entropy) enabled (Fig. 6(e))."""
        config = copy.deepcopy(self.config.blocker)
        config.use_loose_schema = True
        config.use_meta_blocking = True
        config.use_entropy = use_entropy
        if threshold is not None:
            config.attribute_threshold = threshold
        label = label or (
            "meta-blocking + entropy" if use_entropy else "meta-blocking"
        )
        return self._run_blocker(config, label=label, partitioning=partitioning)

    def try_schema_agnostic(self, *, use_meta_blocking: bool = False) -> DebugStepResult:
        """Plain schema-agnostic token blocking (no loose schema at all)."""
        config = copy.deepcopy(self.config.blocker)
        config.use_loose_schema = False
        config.use_entropy = False
        config.use_meta_blocking = use_meta_blocking
        return self._run_blocker(config, label="schema-agnostic")

    def explain_lost_pairs(
        self, step: DebugStepResult, *, limit: int | None = None
    ) -> list[LostPairExplanation]:
        """Explain the ground-truth pairs that ``step`` lost (Fig. 6(d)).

        For each lost pair the explanation lists the two profiles' attributes
        and the blocking keys they shared in the *unpruned* block collection,
        so the user understands which configuration choice lost the pair.
        """
        explanations: list[LostPairExplanation] = []
        raw_blocks = step.blocker_report.raw_blocks if step.blocker_report else None
        for pair in sorted(step.lost_pairs):
            if limit is not None and len(explanations) >= limit:
                break
            left, right = pair
            shared: list[str] = []
            if raw_blocks is not None:
                for block in raw_blocks:
                    if block.contains(left) and block.contains(right):
                        shared.append(block.key)
            explanations.append(
                LostPairExplanation(
                    pair=pair,
                    left_attributes=self.sample.profiles[left].as_dict(),
                    right_attributes=self.sample.profiles[right].as_dict(),
                    shared_keys_before=sorted(shared),
                )
            )
        return explanations

    def current_partitioning(self, threshold: float) -> AttributePartitioning:
        """Return the automatic partitioning of the sample at ``threshold``.

        The returned object can be edited with
        :meth:`AttributePartitioning.move_attribute` and passed back through
        :meth:`try_partitioning` — the supervised workflow of Figure 6(c).
        """
        from repro.looseschema.attribute_partitioning import AttributePartitioner

        return AttributePartitioner(threshold=threshold).partition(self.sample.profiles)

    def apply_to_full_dataset(
        self,
        *,
        threshold: float | None = None,
        use_entropy: bool | None = None,
        partitioning: AttributePartitioning | None = None,
    ) -> SparkERResult:
        """Apply the tuned configuration to the full dataset (batch mode)."""
        config = copy.deepcopy(self.config)
        if threshold is not None:
            config.blocker.attribute_threshold = threshold
        if use_entropy is not None:
            config.blocker.use_entropy = use_entropy
        pipeline = SparkER(config, partitioning=partitioning)
        return pipeline.run(self.full_profiles, self.full_ground_truth)

    def history_table(self) -> str:
        """The comparison table of every configuration tried so far."""
        return format_table(
            [step.as_dict() for step in self.history], title="debug session history"
        )

    # -------------------------------------------------------------- internals
    def _run_blocker(
        self,
        blocker_config,
        *,
        label: str,
        partitioning: AttributePartitioning | None = None,
    ) -> DebugStepResult:
        blocker = Blocker(blocker_config, partitioning=partitioning)
        report = blocker.run(self.sample.profiles, self.sample.ground_truth)
        candidate_pairs = report.candidate_pairs
        truth = self.sample.ground_truth.pairs()
        found = candidate_pairs & truth
        recall = len(found) / len(truth) if truth else 1.0
        precision = len(found) / len(candidate_pairs) if candidate_pairs else 0.0
        blocks = report.filtered_blocks if report.filtered_blocks is not None else report.raw_blocks
        step = DebugStepResult(
            label=label,
            num_blocks=len(blocks) if blocks is not None else 0,
            num_candidate_pairs=len(candidate_pairs),
            recall=recall,
            precision=precision,
            lost_pairs=truth - candidate_pairs,
            partitioning=report.partitioning,
            cluster_entropies=report.cluster_entropies,
            blocker_report=report,
        )
        self.history.append(step)
        return step
