"""Pipeline configuration.

The demo distinguishes an *unsupervised* mode (run everything with a default
configuration) from a *supervised* mode (the user tunes a custom configuration
interactively on a sample, then applies it in batch mode).  Both modes are
driven by the same :class:`SparkERConfig`; the default instance is the
unsupervised configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict

from repro.exceptions import ConfigurationError
from repro.metablocking.weights import WeightingScheme


@dataclass
class BlockerConfig:
    """Configuration of the blocker module (Figure 4).

    Parameters
    ----------
    use_loose_schema:
        When True the loose-schema generator runs and blocking keys are
        qualified with attribute-cluster ids (BLAST); otherwise plain
        schema-agnostic token blocking is used.
    attribute_threshold:
        Similarity threshold of the attribute partitioning; 1.0 puts every
        attribute in the blob, reproducing schema-agnostic blocking.
    use_entropy:
        Re-weight meta-blocking edges by attribute-cluster entropy (BLAST).
    purge_factor:
        A block containing more than this fraction of all profiles is purged.
    filter_ratio:
        Fraction of each profile's blocks kept by block filtering.
    weighting_scheme / pruning_strategy:
        Meta-blocking weighting (cbs, ecbs, js, ejs, arcs) and pruning
        (wep, cep, wnp, rwnp, cnp).
    use_meta_blocking:
        When False the candidate pairs are the distinct comparisons of the
        (purged + filtered) blocks, with no graph pruning.
    min_token_length / remove_stopwords:
        Tokenization options.
    """

    use_loose_schema: bool = True
    attribute_threshold: float = 0.3
    use_entropy: bool = True
    purge_factor: float = 0.5
    filter_ratio: float = 0.8
    weighting_scheme: str = "cbs"
    pruning_strategy: str = "wnp"
    use_meta_blocking: bool = True
    min_token_length: int = 1
    remove_stopwords: bool = False

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent values."""
        if not 0.0 <= self.attribute_threshold <= 1.0:
            raise ConfigurationError("attribute_threshold must be in [0, 1]")
        if not 0.0 < self.purge_factor <= 1.0:
            raise ConfigurationError("purge_factor must be in (0, 1]")
        if not 0.0 < self.filter_ratio <= 1.0:
            raise ConfigurationError("filter_ratio must be in (0, 1]")
        if self.min_token_length < 1:
            raise ConfigurationError("min_token_length must be >= 1")
        WeightingScheme.parse(self.weighting_scheme)


@dataclass
class MatcherConfig:
    """Configuration of the entity matcher.

    ``mode`` selects the matcher: ``threshold`` (unsupervised, default),
    ``rules`` (user-provided conjunction of per-attribute rules) or
    ``classifier`` (supervised logistic regression trained on labeled pairs).
    """

    mode: str = "threshold"
    similarity: str = "jaccard"
    threshold: float = 0.4
    classifier_epochs: int = 300
    decision_threshold: float = 0.5

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent values."""
        if self.mode not in {"threshold", "rules", "classifier"}:
            raise ConfigurationError(
                "matcher mode must be one of: threshold, rules, classifier"
            )
        if not 0.0 <= self.threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")
        if not 0.0 <= self.decision_threshold <= 1.0:
            raise ConfigurationError("decision_threshold must be in [0, 1]")


@dataclass
class ClustererConfig:
    """Configuration of the entity clusterer.

    The paper's clusterer is connected components (no parameters); alternative
    algorithms are available for experimentation.
    """

    algorithm: str = "connected_components"
    min_score: float = 0.0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent values."""
        if not 0.0 <= self.min_score <= 1.0:
            raise ConfigurationError("min_score must be in [0, 1]")


@dataclass
class SamplingConfig:
    """Configuration of the process-debugging sampler (K and k of the paper)."""

    num_seeds: int = 20
    per_seed: int = 10
    seed: int = 23

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent values."""
        if self.num_seeds <= 0 or self.per_seed <= 0:
            raise ConfigurationError("num_seeds and per_seed must be positive")


@dataclass
class SparkERConfig:
    """Top-level configuration of a SparkER run."""

    blocker: BlockerConfig = field(default_factory=BlockerConfig)
    matcher: MatcherConfig = field(default_factory=MatcherConfig)
    clusterer: ClustererConfig = field(default_factory=ClustererConfig)
    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    parallelism: int = 4

    def validate(self) -> None:
        """Validate every section."""
        if self.parallelism <= 0:
            raise ConfigurationError("parallelism must be positive")
        self.blocker.validate()
        self.matcher.validate()
        self.clusterer.validate()
        self.sampling.validate()

    def as_dict(self) -> dict[str, object]:
        """Nested dictionary of every configuration value (for persistence)."""
        return asdict(self)

    @classmethod
    def unsupervised_default(cls) -> "SparkERConfig":
        """The out-of-the-box configuration of the unsupervised mode."""
        return cls()

    @classmethod
    def schema_agnostic(cls) -> "SparkERConfig":
        """A configuration that disables the loose-schema generator entirely."""
        config = cls()
        config.blocker.use_loose_schema = False
        config.blocker.use_entropy = False
        return config

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "SparkERConfig":
        """Rebuild a configuration from :meth:`as_dict` output."""
        config = cls()
        blocker = dict(data.get("blocker", {}))
        matcher = dict(data.get("matcher", {}))
        clusterer = dict(data.get("clusterer", {}))
        sampling = dict(data.get("sampling", {}))
        config.blocker = BlockerConfig(**blocker)
        config.matcher = MatcherConfig(**matcher)
        config.clusterer = ClustererConfig(**clusterer)
        config.sampling = SamplingConfig(**sampling)
        config.parallelism = int(data.get("parallelism", config.parallelism))
        config.validate()
        return config
