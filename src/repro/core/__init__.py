"""The SparkER pipeline: Blocker, Entity Matcher, Entity Clusterer, facade."""

from repro.core.config import (
    SparkERConfig,
    BlockerConfig,
    MatcherConfig,
    ClustererConfig,
    SamplingConfig,
)
from repro.core.blocker import Blocker, BlockerReport
from repro.core.entity_matcher import EntityMatcher
from repro.core.entity_clusterer import EntityClusterer
from repro.core.sparker import SparkER, SparkERResult
from repro.core.debugging import DebugSession

__all__ = [
    "SparkERConfig",
    "BlockerConfig",
    "MatcherConfig",
    "ClustererConfig",
    "SamplingConfig",
    "Blocker",
    "BlockerReport",
    "EntityMatcher",
    "EntityClusterer",
    "SparkER",
    "SparkERResult",
    "DebugSession",
]
