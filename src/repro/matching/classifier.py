"""Supervised matchers: logistic regression and naive Bayes over pair features.

The demo's supervised mode uses a Magellan-style classifier trained on labeled
pairs.  Magellan itself is not available offline, so these classifiers are
implemented from scratch on numpy; they consume the feature vectors of
:class:`repro.matching.features.PairFeatureExtractor`.
"""

from __future__ import annotations

from collections.abc import Sequence

try:  # numpy is optional at import time: only training/scoring the
    import numpy as np  # supervised classifiers needs it.
except ImportError:
    np = None  # type: ignore[assignment]

from repro.data.dataset import ProfileCollection
from repro.data.profile import EntityProfile
from repro.exceptions import MatchingError
from repro.matching.features import PairFeatureExtractor, require_numpy
from repro.matching.matcher import Matcher


class LogisticRegressionMatcher(Matcher):
    """Binary logistic regression trained with batch gradient descent.

    Parameters
    ----------
    feature_extractor:
        Produces the numeric features of a pair.
    learning_rate / epochs / l2:
        Gradient-descent hyperparameters.
    decision_threshold:
        Probability above which a pair is labeled a match.
    """

    def __init__(
        self,
        feature_extractor: PairFeatureExtractor | None = None,
        *,
        learning_rate: float = 0.5,
        epochs: int = 300,
        l2: float = 1e-4,
        decision_threshold: float = 0.5,
    ) -> None:
        self.feature_extractor = feature_extractor or PairFeatureExtractor()
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.decision_threshold = decision_threshold
        self._weights: np.ndarray | None = None
        self._bias: float = 0.0

    # ------------------------------------------------------------------ train
    @property
    def is_trained(self) -> bool:
        """True once :meth:`fit` has been called."""
        return self._weights is not None

    def fit(
        self,
        profiles: ProfileCollection,
        labeled_pairs: Sequence[tuple[int, int, bool]],
    ) -> "LogisticRegressionMatcher":
        """Train on ``(profile_a, profile_b, is_match)`` triples."""
        require_numpy()
        if not labeled_pairs:
            raise MatchingError("cannot train on an empty labeled-pair list")
        pairs = [(a, b) for a, b, _label in labeled_pairs]
        labels = np.array([1.0 if label else 0.0 for _a, _b, label in labeled_pairs])
        features = self.feature_extractor.feature_matrix(profiles, pairs)
        if len(set(labels.tolist())) < 2:
            raise MatchingError("training data must contain both matches and non-matches")

        num_features = features.shape[1]
        weights = np.zeros(num_features)
        bias = 0.0
        n = len(labels)
        for _ in range(self.epochs):
            logits = features @ weights + bias
            predictions = 1.0 / (1.0 + np.exp(-logits))
            error = predictions - labels
            gradient_w = features.T @ error / n + self.l2 * weights
            gradient_b = float(error.mean())
            weights -= self.learning_rate * gradient_w
            bias -= self.learning_rate * gradient_b
        self._weights = weights
        self._bias = bias
        return self

    # ------------------------------------------------------------------ score
    def predict_proba(self, left: EntityProfile, right: EntityProfile) -> float:
        """Match probability of one pair."""
        if self._weights is None:
            raise MatchingError("the matcher must be trained with fit() before use")
        features = self.feature_extractor.features(left, right)
        logit = float(features @ self._weights + self._bias)
        return 1.0 / (1.0 + np.exp(-logit))

    def score(self, left: EntityProfile, right: EntityProfile) -> float:
        return self.predict_proba(left, right)

    def is_match(self, left: EntityProfile, right: EntityProfile) -> bool:
        return self.predict_proba(left, right) >= self.decision_threshold


class NaiveBayesMatcher(Matcher):
    """Gaussian naive Bayes over pair features.

    A simpler supervised baseline; useful in the demo to show that the
    matcher module is pluggable.
    """

    def __init__(
        self,
        feature_extractor: PairFeatureExtractor | None = None,
        *,
        decision_threshold: float = 0.5,
        variance_floor: float = 1e-6,
    ) -> None:
        self.feature_extractor = feature_extractor or PairFeatureExtractor()
        self.decision_threshold = decision_threshold
        self.variance_floor = variance_floor
        self._means: dict[int, np.ndarray] = {}
        self._variances: dict[int, np.ndarray] = {}
        self._priors: dict[int, float] = {}

    @property
    def is_trained(self) -> bool:
        """True once :meth:`fit` has been called."""
        return bool(self._priors)

    def fit(
        self,
        profiles: ProfileCollection,
        labeled_pairs: Sequence[tuple[int, int, bool]],
    ) -> "NaiveBayesMatcher":
        """Train on ``(profile_a, profile_b, is_match)`` triples."""
        require_numpy()
        if not labeled_pairs:
            raise MatchingError("cannot train on an empty labeled-pair list")
        pairs = [(a, b) for a, b, _label in labeled_pairs]
        labels = np.array([1 if label else 0 for _a, _b, label in labeled_pairs])
        features = self.feature_extractor.feature_matrix(profiles, pairs)
        for cls in (0, 1):
            mask = labels == cls
            if not mask.any():
                raise MatchingError("training data must contain both classes")
            class_features = features[mask]
            self._means[cls] = class_features.mean(axis=0)
            self._variances[cls] = class_features.var(axis=0) + self.variance_floor
            self._priors[cls] = float(mask.mean())
        return self

    def _log_likelihood(self, features: np.ndarray, cls: int) -> float:
        mean = self._means[cls]
        variance = self._variances[cls]
        log_density = -0.5 * (
            np.log(2 * np.pi * variance) + (features - mean) ** 2 / variance
        )
        return float(log_density.sum() + np.log(self._priors[cls]))

    def predict_proba(self, left: EntityProfile, right: EntityProfile) -> float:
        """Match probability of one pair."""
        if not self._priors:
            raise MatchingError("the matcher must be trained with fit() before use")
        features = self.feature_extractor.features(left, right)
        log_match = self._log_likelihood(features, 1)
        log_non_match = self._log_likelihood(features, 0)
        maximum = max(log_match, log_non_match)
        match_term = np.exp(log_match - maximum)
        non_match_term = np.exp(log_non_match - maximum)
        return float(match_term / (match_term + non_match_term))

    def score(self, left: EntityProfile, right: EntityProfile) -> float:
        return self.predict_proba(left, right)

    def is_match(self, left: EntityProfile, right: EntityProfile) -> bool:
        return self.predict_proba(left, right) >= self.decision_threshold
