"""Similarity and distance functions for entity matching.

The demo lets the user pick among "a wide range of similarity (or distance)
scores, e.g. Jaccard similarity, Edit Distance, CSA"; this module provides the
token-based, character-based and numeric measures the matcher exposes.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Callable, Iterable

from repro.exceptions import MatchingError
from repro.utils.tokenize import character_ngrams, token_set
from repro.utils.text import normalize_text

# --------------------------------------------------------------------------
# token-set measures
# --------------------------------------------------------------------------
def jaccard_similarity(a: str, b: str) -> float:
    """Jaccard similarity of the token sets of two strings."""
    tokens_a, tokens_b = token_set(a), token_set(b)
    if not tokens_a and not tokens_b:
        return 0.0
    union = tokens_a | tokens_b
    return len(tokens_a & tokens_b) / len(union) if union else 0.0


def dice_similarity(a: str, b: str) -> float:
    """Sørensen–Dice coefficient of the token sets of two strings."""
    tokens_a, tokens_b = token_set(a), token_set(b)
    total = len(tokens_a) + len(tokens_b)
    if total == 0:
        return 0.0
    return 2 * len(tokens_a & tokens_b) / total


def overlap_coefficient(a: str, b: str) -> float:
    """Overlap coefficient (intersection / smaller set size)."""
    tokens_a, tokens_b = token_set(a), token_set(b)
    smaller = min(len(tokens_a), len(tokens_b))
    if smaller == 0:
        return 0.0
    return len(tokens_a & tokens_b) / smaller


def cosine_similarity_tokens(a: str, b: str) -> float:
    """Cosine similarity of the token frequency vectors of two strings."""
    counts_a = Counter(normalize_text(a).split())
    counts_b = Counter(normalize_text(b).split())
    counts_a.pop("", None)
    counts_b.pop("", None)
    if not counts_a or not counts_b:
        return 0.0
    dot = sum(counts_a[t] * counts_b.get(t, 0) for t in counts_a)
    norm_a = math.sqrt(sum(c * c for c in counts_a.values()))
    norm_b = math.sqrt(sum(c * c for c in counts_b.values()))
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return dot / (norm_a * norm_b)


def tfidf_cosine_similarity(
    a: str, b: str, document_frequencies: dict[str, int] | None = None, num_documents: int = 1
) -> float:
    """TF-IDF weighted cosine similarity.

    When no corpus statistics are supplied every token gets IDF 1 and the
    measure degenerates to plain cosine similarity.
    """
    counts_a = Counter(normalize_text(a).split())
    counts_b = Counter(normalize_text(b).split())
    counts_a.pop("", None)
    counts_b.pop("", None)
    if not counts_a or not counts_b:
        return 0.0

    def idf(token: str) -> float:
        if not document_frequencies:
            return 1.0
        df = document_frequencies.get(token, 0)
        return math.log((1 + num_documents) / (1 + df)) + 1.0

    vector_a = {t: c * idf(t) for t, c in counts_a.items()}
    vector_b = {t: c * idf(t) for t, c in counts_b.items()}
    dot = sum(vector_a[t] * vector_b.get(t, 0.0) for t in vector_a)
    norm_a = math.sqrt(sum(v * v for v in vector_a.values()))
    norm_b = math.sqrt(sum(v * v for v in vector_b.values()))
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return dot / (norm_a * norm_b)


# --------------------------------------------------------------------------
# character-based measures
# --------------------------------------------------------------------------
def edit_distance(a: str, b: str) -> int:
    """Levenshtein edit distance between two raw strings."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance normalised to a similarity in [0, 1]."""
    a_norm, b_norm = normalize_text(a), normalize_text(b)
    longest = max(len(a_norm), len(b_norm))
    if longest == 0:
        return 0.0
    return 1.0 - edit_distance(a_norm, b_norm) / longest


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity of two strings."""
    a, b = normalize_text(a), normalize_text(b)
    if not a or not b:
        return 0.0
    if a == b:
        return 1.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    matches_a = [False] * len(a)
    matches_b = [False] * len(b)
    matches = 0
    for i, char_a in enumerate(a):
        start = max(0, i - window)
        end = min(i + window + 1, len(b))
        for j in range(start, end):
            if matches_b[j] or b[j] != char_a:
                continue
            matches_a[i] = matches_b[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(matches_a):
        if not matched:
            continue
        while not matches_b[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(a) + matches / len(b) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro–Winkler similarity (prefix bonus up to 4 characters)."""
    jaro = jaro_similarity(a, b)
    a_norm, b_norm = normalize_text(a), normalize_text(b)
    prefix = 0
    for char_a, char_b in zip(a_norm, b_norm):
        if char_a != char_b or prefix == 4:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


def qgram_similarity(a: str, b: str, q: int = 3) -> float:
    """Jaccard similarity of the character q-gram sets of two strings."""
    grams_a = set(character_ngrams(a, q, pad=True))
    grams_b = set(character_ngrams(b, q, pad=True))
    union = grams_a | grams_b
    if not union:
        return 0.0
    return len(grams_a & grams_b) / len(union)


# --------------------------------------------------------------------------
# numeric measure
# --------------------------------------------------------------------------
def numeric_similarity(a: str, b: str) -> float:
    """Similarity of two numeric strings: ``1 - |x-y| / max(|x|, |y|)``.

    Non-numeric inputs yield 0.
    """
    try:
        x = float(str(a).replace(",", "").strip())
        y = float(str(b).replace(",", "").strip())
    except (TypeError, ValueError):
        return 0.0
    denominator = max(abs(x), abs(y))
    if denominator == 0:
        return 1.0
    return max(0.0, 1.0 - abs(x - y) / denominator)


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------
SIMILARITY_FUNCTIONS: dict[str, Callable[[str, str], float]] = {
    "jaccard": jaccard_similarity,
    "dice": dice_similarity,
    "overlap": overlap_coefficient,
    "cosine": cosine_similarity_tokens,
    "tfidf_cosine": tfidf_cosine_similarity,
    "levenshtein": levenshtein_similarity,
    "jaro": jaro_similarity,
    "jaro_winkler": jaro_winkler_similarity,
    "qgram": qgram_similarity,
    "numeric": numeric_similarity,
}


def get_similarity_function(name: str) -> Callable[[str, str], float]:
    """Look up a similarity function by name (raises MatchingError if unknown)."""
    try:
        return SIMILARITY_FUNCTIONS[name.lower()]
    except KeyError as exc:
        valid = ", ".join(sorted(SIMILARITY_FUNCTIONS))
        raise MatchingError(
            f"unknown similarity function {name!r}; valid functions: {valid}"
        ) from exc


def document_frequencies(texts: Iterable[str]) -> tuple[dict[str, int], int]:
    """Corpus token document frequencies for :func:`tfidf_cosine_similarity`."""
    frequencies: dict[str, int] = {}
    count = 0
    for text in texts:
        count += 1
        for token in token_set(text):
            frequencies[token] = frequencies.get(token, 0) + 1
    return frequencies, count
