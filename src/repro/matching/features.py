"""Pair feature extraction for the supervised matcher.

The supervised mode of SparkER (Magellan-style) trains a classifier on labeled
pairs.  A feature vector for a candidate pair is built by applying a set of
similarity functions either to the whole profile text (schema-agnostic) or to
aligned attribute clusters (when a loose-schema partitioning is available).
"""

from __future__ import annotations

from collections.abc import Sequence

try:  # numpy is optional at import time: only the supervised feature
    import numpy as np  # vectors need it, and the no-numpy environment
except ImportError:  # runs the unsupervised (threshold / rule) pipeline.
    np = None  # type: ignore[assignment]

from repro.exceptions import MatchingError

from repro.data.dataset import ProfileCollection
from repro.data.profile import EntityProfile
from repro.looseschema.attribute_partitioning import AttributePartitioning
from repro.matching.similarity import get_similarity_function


def require_numpy() -> None:
    """Fail with an actionable error when supervised paths run without numpy."""
    if np is None:
        raise MatchingError(
            "supervised matching (pair features / classifiers) requires numpy; "
            "install numpy or use the unsupervised threshold/rule matcher"
        )


class PairFeatureExtractor:
    """Builds numeric feature vectors for candidate profile pairs.

    Parameters
    ----------
    similarity_functions:
        Names of the similarity functions to apply (one feature per function
        per text source).
    partitioning:
        Optional loose-schema attribute partitioning; when given, one set of
        features is computed per non-blob attribute cluster (comparing the
        concatenated values each profile has in that cluster) in addition to
        the whole-profile features.
    """

    def __init__(
        self,
        similarity_functions: Sequence[str] = ("jaccard", "cosine", "levenshtein"),
        partitioning: AttributePartitioning | None = None,
    ) -> None:
        self.similarity_names = list(similarity_functions)
        self.similarity_functions = [get_similarity_function(n) for n in similarity_functions]
        self.partitioning = partitioning

    # ------------------------------------------------------------------ public
    def feature_names(self) -> list[str]:
        """Names of the produced features, in vector order."""
        names = [f"profile_{n}" for n in self.similarity_names]
        if self.partitioning is not None:
            for cluster_id in sorted(self.partitioning.non_blob_clusters()):
                names.extend(
                    f"cluster{cluster_id}_{n}" for n in self.similarity_names
                )
        return names

    def features(self, left: EntityProfile, right: EntityProfile) -> np.ndarray:
        """Feature vector of one pair."""
        require_numpy()
        values = [
            function(left.text(), right.text()) for function in self.similarity_functions
        ]
        if self.partitioning is not None:
            for cluster_id, members in sorted(self.partitioning.non_blob_clusters().items()):
                attributes = {attribute for _source, attribute in members}
                left_text = self._cluster_text(left, attributes)
                right_text = self._cluster_text(right, attributes)
                values.extend(
                    function(left_text, right_text) for function in self.similarity_functions
                )
        return np.array(values, dtype=float)

    def feature_matrix(
        self,
        profiles: ProfileCollection,
        pairs: Sequence[tuple[int, int]],
    ) -> np.ndarray:
        """Feature matrix (len(pairs) × num_features) for a pair list."""
        require_numpy()
        if not pairs:
            return np.zeros((0, len(self.feature_names())))
        rows = [
            self.features(profiles[a], profiles[b]) for a, b in pairs
        ]
        return np.vstack(rows)

    # -------------------------------------------------------------- internals
    @staticmethod
    def _cluster_text(profile: EntityProfile, attributes: set[str]) -> str:
        return " ".join(
            value for attribute, value in profile.items() if attribute in attributes
        )
