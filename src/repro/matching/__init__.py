"""Entity matching: similarity functions, matchers and the similarity graph."""

from repro.matching.similarity import (
    jaccard_similarity,
    dice_similarity,
    overlap_coefficient,
    cosine_similarity_tokens,
    tfidf_cosine_similarity,
    edit_distance,
    levenshtein_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    qgram_similarity,
    numeric_similarity,
    SIMILARITY_FUNCTIONS,
    get_similarity_function,
)
from repro.matching.features import PairFeatureExtractor
from repro.matching.matcher import (
    Matcher,
    ThresholdMatcher,
    RuleBasedMatcher,
    MatchingRule,
)
from repro.matching.classifier import LogisticRegressionMatcher, NaiveBayesMatcher
from repro.matching.similarity_graph import SimilarityEdge, SimilarityGraph

__all__ = [
    "jaccard_similarity",
    "dice_similarity",
    "overlap_coefficient",
    "cosine_similarity_tokens",
    "tfidf_cosine_similarity",
    "edit_distance",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "qgram_similarity",
    "numeric_similarity",
    "SIMILARITY_FUNCTIONS",
    "get_similarity_function",
    "PairFeatureExtractor",
    "Matcher",
    "ThresholdMatcher",
    "RuleBasedMatcher",
    "MatchingRule",
    "LogisticRegressionMatcher",
    "NaiveBayesMatcher",
    "SimilarityEdge",
    "SimilarityGraph",
]
