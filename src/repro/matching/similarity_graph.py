"""The similarity graph produced by the entity matcher.

Nodes are profiles, edges are matched pairs annotated with the similarity
score that the matcher assigned.  The entity clusterer consumes this graph.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.data.ground_truth import canonical_pair


@dataclass(frozen=True)
class SimilarityEdge:
    """One matched pair with its similarity score."""

    profile_a: int
    profile_b: int
    score: float

    @property
    def pair(self) -> tuple[int, int]:
        """The canonical (ordered) pair of the edge."""
        return canonical_pair(self.profile_a, self.profile_b)


class SimilarityGraph:
    """The weighted match graph handed from the matcher to the clusterer."""

    def __init__(self, edges: Iterable[SimilarityEdge] = ()) -> None:
        self._edges: dict[tuple[int, int], SimilarityEdge] = {}
        for edge in edges:
            self.add_edge(edge)

    def add_edge(self, edge: SimilarityEdge) -> None:
        """Add (or overwrite with a higher score) one edge."""
        existing = self._edges.get(edge.pair)
        if existing is None or edge.score > existing.score:
            self._edges[edge.pair] = edge

    def add(self, a: int, b: int, score: float) -> None:
        """Convenience wrapper around :meth:`add_edge`."""
        self.add_edge(SimilarityEdge(a, b, score))

    def __contains__(self, pair: tuple[int, int]) -> bool:
        return canonical_pair(*pair) in self._edges

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[SimilarityEdge]:
        return iter(self._edges.values())

    def pairs(self) -> set[tuple[int, int]]:
        """The set of matched pairs."""
        return set(self._edges)

    def score_of(self, a: int, b: int) -> float | None:
        """Score of pair (a, b), or None if not matched."""
        edge = self._edges.get(canonical_pair(a, b))
        return edge.score if edge else None

    def nodes(self) -> set[int]:
        """All profile ids with at least one matched edge."""
        nodes: set[int] = set()
        for a, b in self._edges:
            nodes.add(a)
            nodes.add(b)
        return nodes

    def edges_above(self, threshold: float) -> "SimilarityGraph":
        """A new graph keeping only edges with score >= threshold."""
        return SimilarityGraph(
            edge for edge in self._edges.values() if edge.score >= threshold
        )

    def __repr__(self) -> str:
        return f"SimilarityGraph(nodes={len(self.nodes())}, edges={len(self)})"
