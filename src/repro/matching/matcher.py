"""Unsupervised matchers: threshold and rule based.

The entity matcher receives candidate pairs from the blocker and labels each
as match / non-match, producing the similarity graph.  Any matcher can be
plugged in (the demo shows Magellan); this module implements the unsupervised
ones, :mod:`repro.matching.classifier` the supervised ones.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass

from repro.data.dataset import ProfileCollection
from repro.data.profile import EntityProfile
from repro.exceptions import MatchingError
from repro.matching.similarity import get_similarity_function
from repro.matching.similarity_graph import SimilarityGraph


class Matcher(ABC):
    """A matcher scores candidate pairs and keeps those deemed matches."""

    @abstractmethod
    def score(self, left: EntityProfile, right: EntityProfile) -> float:
        """Similarity score of one pair in [0, 1]."""

    @abstractmethod
    def is_match(self, left: EntityProfile, right: EntityProfile) -> bool:
        """Decide whether a pair is a match."""

    def match(
        self,
        profiles: ProfileCollection,
        candidate_pairs: Sequence[tuple[int, int]],
    ) -> SimilarityGraph:
        """Score every candidate pair and return the graph of matches."""
        graph = SimilarityGraph()
        for a, b in candidate_pairs:
            left, right = profiles[a], profiles[b]
            if self.is_match(left, right):
                graph.add(a, b, self.score(left, right))
        return graph

    def __call__(
        self,
        profiles: ProfileCollection,
        candidate_pairs: Sequence[tuple[int, int]],
    ) -> SimilarityGraph:
        return self.match(profiles, candidate_pairs)


class ThresholdMatcher(Matcher):
    """Match when a single similarity of the whole-profile text exceeds a threshold.

    Parameters
    ----------
    similarity:
        Name of the similarity function (see
        :data:`repro.matching.similarity.SIMILARITY_FUNCTIONS`).
    threshold:
        Minimum score for a pair to be a match.
    """

    def __init__(self, similarity: str = "jaccard", threshold: float = 0.5) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise MatchingError("threshold must be in [0, 1]")
        self.similarity_name = similarity
        self.similarity = get_similarity_function(similarity)
        self.threshold = threshold

    def score(self, left: EntityProfile, right: EntityProfile) -> float:
        return self.similarity(left.text(), right.text())

    def is_match(self, left: EntityProfile, right: EntityProfile) -> bool:
        return self.score(left, right) >= self.threshold


@dataclass
class MatchingRule:
    """One conjunct of a rule-based matcher.

    ``attribute_left`` / ``attribute_right`` select which attribute of each
    profile to compare (``None`` compares the whole profile text); the rule is
    satisfied when ``similarity(value_left, value_right) >= threshold``.
    """

    similarity: str
    threshold: float
    attribute_left: str | None = None
    attribute_right: str | None = None

    def evaluate(self, left: EntityProfile, right: EntityProfile) -> tuple[bool, float]:
        """Return (satisfied, score) for one pair."""
        function = get_similarity_function(self.similarity)
        text_left = (
            left.text() if self.attribute_left is None else left.value_of(self.attribute_left)
        )
        text_right = (
            right.text()
            if self.attribute_right is None
            else right.value_of(self.attribute_right)
        )
        score = function(text_left, text_right)
        return score >= self.threshold, score


class RuleBasedMatcher(Matcher):
    """Match when every rule of a conjunction is satisfied.

    The pair's score is the mean of the rule scores, so the similarity graph
    still carries a graded value for the clusterer.
    """

    def __init__(self, rules: Sequence[MatchingRule]) -> None:
        if not rules:
            raise MatchingError("RuleBasedMatcher needs at least one rule")
        self.rules = list(rules)

    def score(self, left: EntityProfile, right: EntityProfile) -> float:
        scores = [rule.evaluate(left, right)[1] for rule in self.rules]
        return sum(scores) / len(scores)

    def is_match(self, left: EntityProfile, right: EntityProfile) -> bool:
        return all(rule.evaluate(left, right)[0] for rule in self.rules)
