"""CSR-backed block index — the broadcast payload of the meta-blocking join.

The paper's parallel meta-blocking never materialises the blocking graph as an
edge list: each task receives a compact block index and materialises one node
neighbourhood at a time.  This module is the compact index, stored as
contiguous offset arrays (CSR style, stdlib :mod:`array` only):

* ``node_block_offsets`` / ``node_block_entries`` — the blocks of each node
  (profile → blocks), with the node's source side encoded in the entry so no
  membership scan is ever needed to orient a clean-clean block;
* ``block_offsets`` / ``block_nodes`` / ``block_split`` — the members of each
  block (block → profiles), source-0 members first;
* ``block_inv_cardinality`` / ``block_entropy`` — per-block ``1/||b||`` (ARCS)
  and entropy (BLAST), precomputed once;
* a lazily computed, cached degree vector, so weighting schemes that need the
  neighbour's degree (EJS) or the total edge count read a vector entry instead
  of re-materialising the neighbour's full neighbourhood per edge.

Node ids are dense (0..n-1) and order-isomorphic to the profile ids
(``node_ids`` is sorted), so canonical pair ordering carries over.

The :class:`NeighbourhoodKernel` materialises neighbourhoods into reusable
scratch buffers: per-node accumulators for shared-block count (CBS), summed
reciprocal cardinalities (ARCS) and summed entropies (BLAST), reset in
O(|neighbourhood|) via a touched list.  Both the sequential
:func:`~repro.metablocking.graph.build_blocking_graph` and the parallel
:class:`~repro.metablocking.parallel.ParallelMetaBlocker` run on this kernel,
which is what guarantees their bit-for-bit output equivalence: identical
accumulation order yields identical floats.
"""

from __future__ import annotations

from array import array

from repro.blocking.block import BlockCollection


class CSRBlockIndex:
    """Array-backed block index shared by the sequential and parallel paths.

    Build with :meth:`from_blocks`; the constructor only wires pre-built
    arrays together.
    """

    __slots__ = (
        "node_ids",
        "node_of",
        "node_block_offsets",
        "node_block_entries",
        "node_block_count",
        "block_offsets",
        "block_nodes",
        "block_split",
        "block_cardinality",
        "block_inv_cardinality",
        "block_entropy",
        "total_blocks",
        "clean_clean",
        "_kernel",
        "_degrees",
        "_num_edges",
    )

    def __init__(self) -> None:
        self.node_ids: list[int] = []
        self.node_of: dict[int, int] = {}
        self.node_block_offsets = array("q", [0])
        self.node_block_entries = array("q")
        self.node_block_count = array("q")
        self.block_offsets = array("q", [0])
        self.block_nodes = array("q")
        # Source-0 member count for clean-clean blocks; -1 marks a dirty block
        # whose comparisons pair the member list with itself.
        self.block_split = array("q")
        self.block_cardinality = array("q")
        self.block_inv_cardinality = array("d")
        self.block_entropy = array("d")
        self.total_blocks = 0
        self.clean_clean = False
        self._kernel: "NeighbourhoodKernel | None" = None
        self._degrees: array | None = None
        self._num_edges: int | None = None

    # ------------------------------------------------------------------ build
    @classmethod
    def from_blocks(cls, blocks: BlockCollection) -> "CSRBlockIndex":
        """Build the index from a block collection (one pass over the blocks).

        Blocks that induce no comparison are skipped, exactly like the
        sequential graph builder; ``total_blocks`` still counts them because
        ECBS normalises by the raw collection size.
        """
        index = cls()
        index.clean_clean = blocks.clean_clean
        index.total_blocks = len(blocks)

        valid: list[tuple[list[int], list[int], int, float, bool]] = []
        node_of = index.node_of
        for block in blocks:
            cardinality = block.num_comparisons()
            if cardinality == 0:
                continue
            members0 = sorted(block.profiles_source0)
            members1 = sorted(block.profiles_source1)
            valid.append(
                (members0, members1, cardinality, block.entropy, block.is_clean_clean)
            )
            for profile_id in members0:
                node_of.setdefault(profile_id, -1)
            for profile_id in members1:
                node_of.setdefault(profile_id, -1)

        index.node_ids = sorted(node_of)
        for dense, profile_id in enumerate(index.node_ids):
            node_of[profile_id] = dense
        n = len(index.node_ids)

        per_node_entries: list[list[int]] = [[] for _ in range(n)]
        block_counts = array("q", bytes(8 * n))
        for block_id, (members0, members1, cardinality, entropy, clean) in enumerate(valid):
            index.block_split.append(len(members0) if clean else -1)
            index.block_cardinality.append(cardinality)
            index.block_inv_cardinality.append(1.0 / cardinality)
            index.block_entropy.append(entropy)
            for profile_id in members0:
                dense = node_of[profile_id]
                per_node_entries[dense].append(block_id * 2)
                index.block_nodes.append(dense)
            for profile_id in members1:
                dense = node_of[profile_id]
                per_node_entries[dense].append(block_id * 2 + 1)
                index.block_nodes.append(dense)
            index.block_offsets.append(len(index.block_nodes))
            # Count distinct membership (a node sitting on both sides of one
            # block — degenerate but possible — still counts the block once).
            seen_twice = set(members0) & set(members1)
            for profile_id in members0:
                block_counts[node_of[profile_id]] += 1
            for profile_id in members1:
                if profile_id not in seen_twice:
                    block_counts[node_of[profile_id]] += 1

        for entries in per_node_entries:
            index.node_block_entries.extend(entries)
            index.node_block_offsets.append(len(index.node_block_entries))
        index.node_block_count = block_counts
        return index

    # ------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        """Ship every array plus the cached degree vector, never the kernel.

        The index is the broadcast payload of the parallel meta-blocking;
        each worker process builds its own scratch-buffer kernel on first
        use, so the kernel (and its buffers) stays out of the pickle.
        """
        return {
            slot: getattr(self, slot) for slot in self.__slots__ if slot != "_kernel"
        }

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._kernel = None

    # ------------------------------------------------------------- properties
    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_blocks(self) -> int:
        """Number of comparison-inducing blocks kept in the index."""
        return len(self.block_split)

    # ----------------------------------------------------------------- kernel
    def kernel(self) -> "NeighbourhoodKernel":
        """The (cached) scratch-buffer kernel bound to this index.

        The mini engine runs every task in one process, so the single cached
        kernel is shared by all partitions; tasks materialise neighbourhoods
        strictly one at a time.
        """
        if self._kernel is None:
            self._kernel = NeighbourhoodKernel(self)
        return self._kernel

    def degree_vector(self) -> array:
        """Per-node blocking-graph degree, computed once and cached.

        One kernel sweep over all nodes; every later degree lookup — EJS's
        ``degree_b`` per neighbour, the global edge count — is O(1).

        The sweep runs on a private kernel, never the shared one: a caller
        holding live :meth:`NeighbourhoodKernel.neighbours` results must not
        have its scratch buffers clobbered by a lazy degree computation.
        """
        if self._degrees is None:
            kernel = NeighbourhoodKernel(self)
            degrees = array("q", bytes(8 * self.num_nodes))
            for node in range(self.num_nodes):
                degrees[node] = len(kernel.neighbours(node))
            self._degrees = degrees
        return self._degrees

    def num_edges(self) -> int:
        """Number of distinct blocking-graph edges (from the degree vector)."""
        if self._num_edges is None:
            self._num_edges = sum(self.degree_vector()) // 2
        return self._num_edges


class NeighbourhoodKernel:
    """Materialise one node neighbourhood at a time into reusable buffers.

    After :meth:`neighbours` returns, the per-neighbour aggregates sit in
    ``common_blocks`` / ``arcs`` / ``entropy_sum`` indexed by dense node id;
    they stay valid until the next :meth:`neighbours` call, which resets only
    the previously touched entries.
    """

    __slots__ = ("_index", "common_blocks", "arcs", "entropy_sum", "_touched")

    def __init__(self, index: CSRBlockIndex) -> None:
        n = index.num_nodes
        self._index = index
        self.common_blocks = [0] * n
        self.arcs = [0.0] * n
        self.entropy_sum = [0.0] * n
        self._touched: list[int] = []

    def neighbours(self, node: int) -> list[int]:
        """Fill the scratch buffers for ``node``; return its neighbour list.

        Neighbours appear in first-touch order (ascending block id, member
        order within a block) — the accumulation order is therefore identical
        no matter which code path drives the kernel, keeping float sums
        bit-for-bit reproducible.
        """
        index = self._index
        common, arcs, entropy = self.common_blocks, self.arcs, self.entropy_sum
        touched = self._touched
        for previous in touched:
            common[previous] = 0
            arcs[previous] = 0.0
            entropy[previous] = 0.0
        del touched[:]

        entries = index.node_block_entries
        block_offsets = index.block_offsets
        block_nodes = index.block_nodes
        block_split = index.block_split
        inv_cardinality = index.block_inv_cardinality
        block_entropy = index.block_entropy
        start = index.node_block_offsets[node]
        end = index.node_block_offsets[node + 1]
        for position in range(start, end):
            entry = entries[position]
            block = entry >> 1
            split = block_split[block]
            lo = block_offsets[block]
            hi = block_offsets[block + 1]
            if split >= 0:
                # Clean-clean block: neighbours are the members of the other
                # source; the entry's low bit says which side this node is on.
                if entry & 1:
                    hi = lo + split
                else:
                    lo = lo + split
            inv = inv_cardinality[block]
            block_ent = block_entropy[block]
            for other in block_nodes[lo:hi]:
                if other == node:
                    continue
                if common[other] == 0:
                    touched.append(other)
                common[other] += 1
                arcs[other] += inv
                entropy[other] += block_ent
        return touched
