"""CSR-backed block index — the broadcast payload of the meta-blocking join.

The paper's parallel meta-blocking never materialises the blocking graph as an
edge list: each task receives a compact block index and materialises one node
neighbourhood at a time.  This module is the compact index, stored as
contiguous offset arrays (CSR style, stdlib :mod:`array` buffers):

* ``node_block_offsets`` / ``node_block_entries`` — the blocks of each node
  (profile → blocks), with the node's source side encoded in the entry so no
  membership scan is ever needed to orient a clean-clean block;
* ``block_offsets`` / ``block_nodes`` / ``block_split`` — the members of each
  block (block → profiles), source-0 members first;
* ``block_inv_cardinality`` / ``block_entropy`` — per-block ``1/||b||`` (ARCS)
  and entropy (BLAST), precomputed once;
* a lazily computed, cached degree vector, so weighting schemes that need the
  neighbour's degree (EJS) or the total edge count read a vector entry instead
  of re-materialising the neighbour's full neighbourhood per edge.

Node ids are dense (0..n-1) and order-isomorphic to the profile ids
(``node_ids`` is sorted), so canonical pair ordering carries over.

Neighbourhood materialisation is delegated to a pluggable **kernel backend**
(:mod:`repro.metablocking.backends`): the interpreted
:class:`~repro.metablocking.backends.PythonKernel` (always available) or the
vectorised :class:`~repro.metablocking.backends.NumpyKernel`, selected per
index via ``CSRBlockIndex(backend=...)`` / ``from_blocks(..., backend=...)``,
the ``REPRO_KERNEL_BACKEND`` environment variable, or ``auto`` (numpy when
importable).  Both kernels share one emission order (node-major first-touch)
and one accumulation order, which is what keeps every driving path —
sequential graph builder, parallel weigher, progressive streams — bit-for-bit
equivalent across backends and executors.

Under the numpy backend the index can additionally export its buffers into a
:class:`multiprocessing.shared_memory` segment (:meth:`export_shared`): the
pickle then carries only the segment name and layout, so a process pool maps
the index once per machine instead of deserialising a copy per worker.

Orthogonally to the *kernel* backend, a **buffer backend** decides where the
numeric vectors live (:func:`~repro.metablocking.backends.resolve_buffer_backend`):
``ram`` keeps the stdlib :mod:`array` buffers (the historical behaviour) while
``memmap`` rewrites them into one file-backed :class:`numpy.memmap` buffer
under the managed temp root (:mod:`repro.engine.tmpfiles`), so the OS can page
the index in and out and peak RSS no longer has to hold it.  Both kernels read
either representation through the buffer protocol, so the retained edges are
bit-for-bit identical across buffer backends; lifecycle mirrors the shared
segment (explicit :meth:`close`, GC finalizer backstop, dead-pid crash sweep).
"""

from __future__ import annotations

import weakref
from array import array
from bisect import bisect_left

from repro.blocking.block import BlockCollection
from repro.metablocking import backends as _backends
from repro.metablocking.backends import (
    PythonKernel as NeighbourhoodKernel,  # noqa: F401  (back-compat re-export)
)

# Buffers that travel through the shared-memory segment, with their typecode.
_SHARED_FIELDS = (
    ("node_block_offsets", "q"),
    ("node_block_entries", "q"),
    ("node_block_count", "q"),
    ("block_offsets", "q"),
    ("block_nodes", "q"),
    ("block_split", "q"),
    ("block_cardinality", "q"),
    ("block_inv_cardinality", "d"),
    ("block_entropy", "d"),
)


class CSRBlockIndex:
    """Array-backed block index shared by the sequential and parallel paths.

    Build with :meth:`from_blocks`; the constructor only wires pre-built
    arrays together.  ``backend`` selects the neighbourhood kernel
    (``"auto"`` / ``"python"`` / ``"numpy"``; ``None`` consults
    ``REPRO_KERNEL_BACKEND`` then falls back to ``auto``).
    """

    __slots__ = (
        "node_ids",
        "node_block_offsets",
        "node_block_entries",
        "node_block_count",
        "block_offsets",
        "block_nodes",
        "block_split",
        "block_cardinality",
        "block_inv_cardinality",
        "block_entropy",
        "total_blocks",
        "clean_clean",
        "_backend",
        "_buffer_backend",
        "_node_of",
        "_kernel",
        "_degrees",
        "_num_edges",
        "_plans",
        "_shared",
        "_mmap_path",
        "_mmap_base",
        "_mmap_finalizer",
        "__weakref__",
    )

    def __init__(
        self,
        backend: "str | None" = None,
        buffer_backend: "str | None" = None,
    ) -> None:
        self.node_ids: list[int] = []
        self.node_block_offsets = array("q", [0])
        self.node_block_entries = array("q")
        self.node_block_count = array("q")
        self.block_offsets = array("q", [0])
        self.block_nodes = array("q")
        # Source-0 member count for clean-clean blocks; -1 marks a dirty block
        # whose comparisons pair the member list with itself.
        self.block_split = array("q")
        self.block_cardinality = array("q")
        self.block_inv_cardinality = array("d")
        self.block_entropy = array("d")
        self.total_blocks = 0
        self.clean_clean = False
        self._backend = _backends.resolve_backend_name(backend)
        self._buffer_backend = _backends.resolve_buffer_backend(buffer_backend)
        self._node_of: dict[int, int] | None = {}
        self._kernel = None
        self._degrees: array | None = None
        self._num_edges: int | None = None
        self._plans: dict = {}
        self._shared = None
        self._mmap_path: str | None = None
        self._mmap_base = None
        self._mmap_finalizer = None

    # ------------------------------------------------------------------ build
    @classmethod
    def from_blocks(
        cls,
        blocks: BlockCollection,
        backend: "str | None" = None,
        buffer_backend: "str | None" = None,
        tmp_dir: "str | None" = None,
    ) -> "CSRBlockIndex":
        """Build the index from a block collection (one pass over the blocks).

        Blocks that induce no comparison are skipped, exactly like the
        sequential graph builder; ``total_blocks`` still counts them because
        ECBS normalises by the raw collection size.

        ``buffer_backend`` selects where the numeric vectors end up
        (``"ram"`` / ``"memmap"``; ``None`` consults
        ``REPRO_BUFFER_BACKEND`` then defaults to ram).  Under ``memmap``
        the built vectors are rewritten into one pid-stamped file under the
        managed temp root (``tmp_dir`` → ``REPRO_TMPDIR`` → platform
        default) and the attributes become zero-copy :class:`numpy.memmap`
        views — same values, same emission order, bit-for-bit identical
        retained edges.
        """
        valid: list[tuple[list[int], list[int], int, float, bool]] = []
        for block in blocks:
            cardinality = block.num_comparisons()
            if cardinality == 0:
                continue
            valid.append(
                (
                    sorted(block.profiles_source0),
                    sorted(block.profiles_source1),
                    cardinality,
                    block.entropy,
                    block.is_clean_clean,
                )
            )
        return cls._from_valid_blocks(
            valid,
            clean_clean=blocks.clean_clean,
            total_blocks=len(blocks),
            backend=backend,
            buffer_backend=buffer_backend,
            tmp_dir=tmp_dir,
        )

    @classmethod
    def _from_valid_blocks(
        cls,
        valid: "list[tuple[list[int], list[int], int, float, bool]]",
        *,
        clean_clean: bool,
        total_blocks: int,
        backend: "str | None" = None,
        buffer_backend: "str | None" = None,
        tmp_dir: "str | None" = None,
    ) -> "CSRBlockIndex":
        """Build the index from pre-validated ``(members0, members1,
        cardinality, entropy, clean)`` tuples — the single array builder.

        ``members0`` / ``members1`` must already be sorted and every tuple
        must induce at least one comparison.  :meth:`from_blocks` derives the
        tuples from a :class:`BlockCollection`; the incremental index
        (:class:`IncrementalBlockIndex`) keeps them cached per token and
        recomputes only the touched ones, so compaction routes through the
        exact same construction and is bit-for-bit identical to a
        from-scratch build by design.  On any build error the partially
        constructed index is :meth:`close`\\ d (no leaked memmap buffer).
        """
        index = cls(backend=backend, buffer_backend=buffer_backend)
        try:
            return cls._populate(index, valid, clean_clean, total_blocks, tmp_dir)
        except BaseException:
            index.close()
            raise

    @classmethod
    def _populate(cls, index, valid, clean_clean, total_blocks, tmp_dir):
        index.clean_clean = clean_clean
        index.total_blocks = total_blocks

        node_of = index._node_of
        for members0, members1, _cardinality, _entropy, _clean in valid:
            for profile_id in members0:
                node_of.setdefault(profile_id, -1)
            for profile_id in members1:
                node_of.setdefault(profile_id, -1)

        index.node_ids = sorted(node_of)
        for dense, profile_id in enumerate(index.node_ids):
            node_of[profile_id] = dense
        n = len(index.node_ids)

        per_node_entries: list[list[int]] = [[] for _ in range(n)]
        block_counts = array("q", bytes(8 * n))
        for block_id, (members0, members1, cardinality, entropy, clean) in enumerate(valid):
            index.block_split.append(len(members0) if clean else -1)
            index.block_cardinality.append(cardinality)
            index.block_inv_cardinality.append(1.0 / cardinality)
            index.block_entropy.append(entropy)
            for profile_id in members0:
                dense = node_of[profile_id]
                per_node_entries[dense].append(block_id * 2)
                index.block_nodes.append(dense)
            for profile_id in members1:
                dense = node_of[profile_id]
                per_node_entries[dense].append(block_id * 2 + 1)
                index.block_nodes.append(dense)
            index.block_offsets.append(len(index.block_nodes))
            # Count distinct membership (a node sitting on both sides of one
            # block — degenerate but possible — still counts the block once).
            seen_twice = set(members0) & set(members1)
            for profile_id in members0:
                block_counts[node_of[profile_id]] += 1
            for profile_id in members1:
                if profile_id not in seen_twice:
                    block_counts[node_of[profile_id]] += 1

        for entries in per_node_entries:
            index.node_block_entries.extend(entries)
            index.node_block_offsets.append(len(index.node_block_entries))
        index.node_block_count = block_counts
        if index._buffer_backend == "memmap":
            index._materialise_memmap(tmp_dir)
        return index

    def _materialise_memmap(self, tmp_dir: "str | None" = None) -> None:
        """Rewrite the numeric vectors into one file-backed memmap buffer.

        All nine :data:`_SHARED_FIELDS` vectors (8-byte items, so layout is
        trivially aligned) are packed back-to-back into a single
        ``repro-csrbuf-<pid>-<seq>`` file and the attributes replaced with
        zero-copy views into it.  ``node_ids`` deliberately stays a plain
        Python list: pair tuples are built from it, and keeping it native
        keeps the emitted edges type-identical to the ram backend.  The file
        is unlinked by :meth:`close` (or a GC finalizer backstop) and by the
        dead-pid crash sweep of :mod:`repro.engine.tmpfiles`.
        """
        np = _backends.numpy_or_none()
        from repro.engine import tmpfiles as _tmpfiles

        lengths = [len(getattr(self, fld)) for fld, _tc in _SHARED_FIELDS]
        total_bytes = 8 * sum(lengths)
        path = _tmpfiles.make_artifact_path("csrbuf", tmp_dir)
        try:
            base = np.memmap(
                path, dtype=np.uint8, mode="w+", shape=(max(total_bytes, 1),)
            )
            offset = 0
            for (fld, typecode), length in zip(_SHARED_FIELDS, lengths):
                dtype = np.int64 if typecode == "q" else np.float64
                view = base[offset : offset + 8 * length].view(dtype)
                if length:
                    view[:] = np.frombuffer(getattr(self, fld), dtype=dtype)
                setattr(self, fld, view)
                offset += 8 * length
            base.flush()
        except BaseException:
            # The buffer file never reached a usable state: reclaim it now
            # instead of leaning on the GC finalizer / dead-pid sweep.
            _tmpfiles.discard_artifact(path)
            raise
        self._mmap_path = path
        self._mmap_base = base
        self._mmap_finalizer = weakref.finalize(
            self, _tmpfiles.discard_artifact, path
        )

    # ------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        """Ship every array plus the cached degree vector, never the kernel.

        The index is the broadcast payload of the parallel meta-blocking;
        each worker process builds its own scratch kernel on first use, so
        the kernel (and its buffers / cached sweeps and weight plans) stays
        out of the pickle.  The cached degree vector and the per-block stat
        vectors *do* ship, so workers never redo the one-pass sweeps.

        When the buffers were exported to shared memory the state carries
        only the segment name and field layout — the worker attaches and
        maps, it never deserialises the buffers.

        A memmap-backed index ships its vectors as stdlib arrays again
        (``array(tc, view.tobytes())`` — bit-identical values): the file is
        local to the building process, so the receiver holds a private ram
        copy while ``_buffer_backend`` still records the label.  Process
        pools avoid this copy entirely via :meth:`export_shared`.
        """
        small = {
            "total_blocks": self.total_blocks,
            "clean_clean": self.clean_clean,
            "_backend": self._backend,
            "_buffer_backend": self._buffer_backend,
            "_num_edges": self._num_edges,
        }
        if self._shared is not None and not self._shared.released:
            small["shared_name"] = self._shared.name
            small["shared_layout"] = self._shared.layout
            return small
        state = {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot
            not in (
                "_kernel",
                "_plans",
                "_shared",
                "_mmap_path",
                "_mmap_base",
                "_mmap_finalizer",
                "__weakref__",
            )
        }
        if self._mmap_base is not None:
            for fld, typecode in _SHARED_FIELDS:
                state[fld] = array(typecode, getattr(self, fld).tobytes())
        return state

    def __setstate__(self, state: dict) -> None:
        self._kernel = None
        self._plans = {}
        self._shared = None
        self._mmap_path = None
        self._mmap_base = None
        self._mmap_finalizer = None
        if "shared_name" in state:
            self._attach_shared(state)
            return
        for slot, value in state.items():
            setattr(self, slot, value)

    def _attach_shared(self, state: dict) -> None:
        """Rebuild from a shared-memory reference (worker side, zero-copy)."""
        from repro.metablocking.sharedmem import SharedIndexBuffers

        self._shared = SharedIndexBuffers.attach(
            state["shared_name"], state["shared_layout"]
        )
        views = self._shared.views()
        for field, _typecode in _SHARED_FIELDS:
            setattr(self, field, views[field])
        self.node_ids = views["node_ids"]
        self._degrees = views["degrees"]
        self._node_of = None  # rebuilt lazily; node_ids is the source of truth
        self.total_blocks = state["total_blocks"]
        self.clean_clean = state["clean_clean"]
        self._backend = state["_backend"]
        self._buffer_backend = state.get("_buffer_backend", "ram")
        self._num_edges = state["_num_edges"]

    # -------------------------------------------------------- shared memory
    def export_shared(self):
        """Copy the numeric buffers into one shared-memory segment.

        After export, pickling this index ships only the segment reference;
        process-pool workers attach instead of deserialising.  Requires the
        numpy backend (the worker-side views are ndarrays) and includes the
        degree vector, so it is resolved here if not already cached.

        Idempotent; returns the :class:`SharedIndexBuffers` handle.  The
        segment is unlinked by :meth:`release_shared` (wired to
        ``EngineContext.stop()``) or, as a backstop, when the index is
        garbage collected.
        """
        if self._shared is not None and not self._shared.released:
            return self._shared
        if self.backend != "numpy":
            from repro.exceptions import MetaBlockingError

            raise MetaBlockingError(
                "export_shared() requires the numpy kernel backend"
            )
        import numpy as np

        from repro.metablocking.sharedmem import SharedIndexBuffers

        self.degree_vector()  # ships with the segment — workers never resweep
        fields: dict = {
            field: (getattr(self, field), typecode)
            for field, typecode in _SHARED_FIELDS
        }
        fields["node_ids"] = (np.asarray(self.node_ids, dtype=np.int64), "q")
        fields["degrees"] = (self._degrees, "q")
        self._shared = SharedIndexBuffers.export(fields)
        return self._shared

    def release_shared(self) -> None:
        """Unlink the exported segment (no-op when none was exported)."""
        if self._shared is not None:
            self._shared.release()

    def close(self) -> None:
        """Release every OS-level resource the index holds; idempotent.

        Unlinks the exported shared-memory segment (if any) and the
        memmap buffer file (if the ``memmap`` buffer backend built one).
        A garbage-collected index discards the memmap file through a
        :func:`weakref.finalize` backstop, and a crashed process's file is
        reclaimed by the dead-pid sweep — ``close()`` is simply the prompt
        path.

        Safe on any instance, however incomplete: an index whose build
        failed mid-way (or whose ``__init__`` never ran, e.g. a broken
        unpickle) may miss some slots entirely, so every resource handle is
        read with a default instead of assumed present.
        """
        shared = getattr(self, "_shared", None)
        if shared is not None:
            shared.release()
        finalizer = getattr(self, "_mmap_finalizer", None)
        if finalizer is not None:
            finalizer()
        self._mmap_finalizer = None
        self._mmap_base = None
        self._mmap_path = None

    # ------------------------------------------------------------- properties
    @property
    def backend(self) -> str:
        """The resolved kernel backend of this index (``python`` / ``numpy``)."""
        return self._backend

    @property
    def buffer_backend(self) -> str:
        """The resolved buffer backend of this index (``ram`` / ``memmap``)."""
        return self._buffer_backend

    @property
    def memmap_path(self) -> "str | None":
        """Path of the file-backed buffer, or ``None`` under the ram backend."""
        return self._mmap_path

    @property
    def node_of(self) -> dict[int, int]:
        """profile id → dense node id (rebuilt lazily after a shared attach)."""
        if self._node_of is None:
            ids = self.node_ids
            ids = ids.tolist() if hasattr(ids, "tolist") else ids
            self._node_of = {profile_id: dense for dense, profile_id in enumerate(ids)}
        return self._node_of

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_blocks(self) -> int:
        """Number of comparison-inducing blocks kept in the index."""
        return len(self.block_split)

    # ----------------------------------------------------------------- kernel
    def kernel(self):
        """The (cached) scratch kernel of the selected backend.

        The mini engine runs every task in one process, so the single cached
        kernel is shared by all partitions; tasks materialise neighbourhoods
        strictly one at a time.
        """
        if self._kernel is None:
            self._kernel = _backends.make_kernel(self)
        return self._kernel

    def weight_plan(self, scheme, use_entropy: bool):
        """The (cached) weight plan for one (scheme, use_entropy) job."""
        from repro.metablocking.weights import WeightingScheme

        key = (WeightingScheme.parse(scheme), bool(use_entropy))
        plan = self._plans.get(key)
        if plan is None:
            plan = _backends.make_weight_plan(self, key[0], key[1])
            self._plans[key] = plan
        return plan

    def degree_vector(self):
        """Per-node blocking-graph degree, computed once and cached.

        One kernel sweep over all nodes; every later degree lookup — EJS's
        ``degree_b`` per neighbour, the global edge count — is O(1).  The
        python backend sweeps a private kernel, so a caller holding live
        :meth:`PythonKernel.neighbours` results never has its scratch buffers
        clobbered; the numpy backend reads the cached whole-graph sweep.
        """
        if self._degrees is None:
            self._degrees = self.kernel().degrees()
        return self._degrees

    def num_edges(self) -> int:
        """Number of distinct blocking-graph edges (from the degree vector)."""
        if self._num_edges is None:
            self._num_edges = int(sum(self.degree_vector())) // 2
        return self._num_edges


# --------------------------------------------------------------------------
# Incremental layer
# --------------------------------------------------------------------------


class _TokenState:
    """Mutable per-token block of the incremental index.

    Holds the raw member sets plus the cached, pre-validated build tuple
    (the exact element :meth:`CSRBlockIndex._from_valid_blocks` consumes).
    ``dirty`` marks tokens touched since the tuple was last derived, so a
    compaction re-sorts only the blocks an append actually extended; a
    ``None`` cache means the block currently induces no comparison and is
    skipped, exactly like :meth:`Block.is_valid` filtering in token blocking.
    """

    __slots__ = ("members0", "members1", "dirty", "cached")

    def __init__(self) -> None:
        self.members0: set[int] = set()
        self.members1: set[int] = set()
        self.dirty = True
        self.cached: "tuple | None" = None

    def __getstate__(self):
        return (self.members0, self.members1, self.dirty, self.cached)

    def __setstate__(self, state) -> None:
        self.members0, self.members1, self.dirty, self.cached = state


class AppendDelta:
    """What one :meth:`IncrementalBlockIndex.append_profiles` call touched.

    ``new_profile_ids`` are the appended profiles, ``touched_tokens`` the
    blocking keys they extended and ``touched_profile_ids`` every member of
    a touched block *after* the append (the appended profiles included).
    Because appends only ever add members, the blocking graph only gains
    edges: any edge whose weight can change is incident to a touched
    profile, which is what makes neighbourhood-local re-weighting exact.
    """

    __slots__ = ("new_profile_ids", "touched_tokens", "touched_profile_ids")

    def __init__(self, new_profile_ids, touched_tokens, touched_profile_ids):
        self.new_profile_ids: "tuple[int, ...]" = tuple(new_profile_ids)
        self.touched_tokens: "frozenset[str]" = frozenset(touched_tokens)
        self.touched_profile_ids: "frozenset[int]" = frozenset(touched_profile_ids)

    def __getstate__(self):
        return (self.new_profile_ids, self.touched_tokens, self.touched_profile_ids)

    def __setstate__(self, state) -> None:
        self.new_profile_ids, self.touched_tokens, self.touched_profile_ids = state

    def __repr__(self) -> str:
        return (
            f"AppendDelta(profiles={len(self.new_profile_ids)}, "
            f"tokens={len(self.touched_tokens)}, "
            f"touched={len(self.touched_profile_ids)})"
        )


class IncrementalBlockIndex:
    """Append-only token-blocking index with periodic CSR compaction.

    The batch pipeline rebuilds the whole :class:`CSRBlockIndex` per run;
    this class is the long-lived variant the service layer ingests into.
    :meth:`append_profiles` tokenises new profiles exactly like
    :class:`~repro.blocking.token_blocking.TokenBlocking` (same tokenizer,
    same per-source grouping) and extends the touched token blocks in a
    delta overlay — plain per-token member sets — without rebuilding
    anything.  :meth:`compact` folds the overlay into a fresh contiguous
    CSR: cached build tuples are recomputed *only* for dirty tokens, and
    construction routes through the same
    :meth:`CSRBlockIndex._from_valid_blocks` builder the batch path uses,
    so the compacted index is bit-for-bit identical to
    ``CSRBlockIndex.from_blocks(TokenBlocking(...).block(union))`` on the
    union collection (token blocking emits blocks in sorted-key order and
    keeps only comparison-inducing ones; so does the compactor).

    ``clean_clean`` is declared up front — the incremental collection grows,
    so it cannot be inferred from the data the way
    :attr:`ProfileCollection.is_clean_clean` does; callers must declare the
    task shape and feed matching source ids.  Profile ids must arrive in
    strictly increasing order (the natural ingest order), which keeps "new
    profile" well-defined and rejects duplicate ids early.

    ``compact_every=N`` auto-compacts after every N appended profiles;
    otherwise compaction happens lazily on :meth:`materialise` (the query
    path).  Pickling drops the built CSR — a restored instance rebuilds it
    with one compaction, which the snapshot/restore story of the service
    relies on.
    """

    __slots__ = (
        "clean_clean",
        "min_token_length",
        "remove_stopwords",
        "compact_every",
        "appended_profiles",
        "compactions",
        "_backend",
        "_buffer_backend",
        "_tmp_dir",
        "_tokens",
        "_profile_ids",
        "_last_profile_id",
        "_stale",
        "_since_compact",
        "_csr",
        "__weakref__",
    )

    def __init__(
        self,
        *,
        clean_clean: bool = False,
        min_token_length: int = 1,
        remove_stopwords: bool = False,
        compact_every: "int | None" = None,
        backend: "str | None" = None,
        buffer_backend: "str | None" = None,
        tmp_dir: "str | None" = None,
    ) -> None:
        if compact_every is not None and compact_every < 1:
            from repro.exceptions import DataError

            raise DataError("compact_every must be a positive integer or None")
        self.clean_clean = clean_clean
        self.min_token_length = min_token_length
        self.remove_stopwords = remove_stopwords
        self.compact_every = compact_every
        self.appended_profiles = 0
        self.compactions = 0
        self._backend = backend
        self._buffer_backend = buffer_backend
        self._tmp_dir = tmp_dir
        self._tokens: dict[str, _TokenState] = {}
        self._profile_ids: list[int] = []
        self._last_profile_id = -1
        self._stale = True
        self._since_compact = 0
        self._csr: "CSRBlockIndex | None" = None

    # ------------------------------------------------------------------ ingest
    def append_profiles(self, profiles) -> AppendDelta:
        """Tokenise and index new profiles; return what they touched.

        ``profiles`` is any iterable of
        :class:`~repro.data.profile.EntityProfile`; ids must be strictly
        greater than every previously appended id.  Only the token blocks
        the new profiles belong to are marked dirty — everything else keeps
        its cached build tuple across the next compaction.
        """
        from repro.exceptions import DataError

        new_ids: list[int] = []
        touched: set[str] = set()
        for profile in profiles:
            profile_id = profile.profile_id
            if profile_id <= self._last_profile_id:
                raise DataError(
                    "append_profiles requires strictly increasing profile ids: "
                    f"got {profile_id} after {self._last_profile_id}"
                )
            self._last_profile_id = profile_id
            self._profile_ids.append(profile_id)
            new_ids.append(profile_id)
            # Mirror TokenBlocking._build_collection: in a clean-clean task
            # source 1 fills the right side, everything else the left.
            side1 = self.clean_clean and profile.source_id == 1
            for token in profile.tokens(
                min_length=self.min_token_length,
                remove_stopwords=self.remove_stopwords,
            ):
                state = self._tokens.get(token)
                if state is None:
                    state = _TokenState()
                    self._tokens[token] = state
                (state.members1 if side1 else state.members0).add(profile_id)
                state.dirty = True
                touched.add(token)
        touched_profiles: set[int] = set()
        for token in touched:
            state = self._tokens[token]
            touched_profiles |= state.members0
            touched_profiles |= state.members1
        if new_ids:
            self.appended_profiles += len(new_ids)
            self._since_compact += len(new_ids)
            self._stale = True
        delta = AppendDelta(new_ids, touched, touched_profiles)
        if self.compact_every is not None and self._since_compact >= self.compact_every:
            self.compact()
        return delta

    # ------------------------------------------------------------- compaction
    def _valid_tuple(self, state: _TokenState) -> "tuple | None":
        """The pre-validated build tuple of one token block (None = invalid).

        Cardinality and the entropy default (1.0) mirror
        :meth:`Block.num_comparisons` / the :class:`Block` dataclass, so the
        tuple is exactly what :meth:`CSRBlockIndex.from_blocks` would have
        derived from the equivalent token-blocking output.
        """
        if self.clean_clean:
            cardinality = len(state.members0) * len(state.members1)
        else:
            n = len(state.members0)
            cardinality = n * (n - 1) // 2
        if cardinality == 0:
            return None
        return (
            sorted(state.members0),
            sorted(state.members1),
            cardinality,
            1.0,
            self.clean_clean,
        )

    def compact(self) -> CSRBlockIndex:
        """Fold the delta overlay into a fresh contiguous CSR index.

        Only dirty tokens re-derive their build tuple; the valid tuples are
        then fed in sorted-token order to the shared array builder.  The
        previous CSR (if any) is closed only after the new one is fully
        built, so a failed compaction leaves the old index usable.
        """
        valid: list = []
        for token in sorted(self._tokens):
            state = self._tokens[token]
            if state.dirty:
                state.cached = self._valid_tuple(state)
                state.dirty = False
            if state.cached is not None:
                valid.append(state.cached)
        rebuilt = CSRBlockIndex._from_valid_blocks(
            valid,
            clean_clean=self.clean_clean,
            total_blocks=len(valid),
            backend=self._backend,
            buffer_backend=self._buffer_backend,
            tmp_dir=self._tmp_dir,
        )
        if self._csr is not None:
            self._csr.close()
        self._csr = rebuilt
        self._stale = False
        self._since_compact = 0
        self.compactions += 1
        return rebuilt

    def materialise(self) -> CSRBlockIndex:
        """The current CSR index, compacting first if appends made it stale."""
        if self._csr is None or self._stale:
            return self.compact()
        return self._csr

    # ------------------------------------------------------------- inspection
    @property
    def is_stale(self) -> bool:
        """True when appends happened after the last compaction."""
        return self._stale or self._csr is None

    @property
    def num_profiles(self) -> int:
        """Number of profiles appended so far (tokenless ones included)."""
        return len(self._profile_ids)

    @property
    def num_tokens(self) -> int:
        """Number of distinct blocking keys seen so far."""
        return len(self._tokens)

    @property
    def last_profile_id(self) -> int:
        """Highest profile id appended so far (-1 when empty)."""
        return self._last_profile_id

    def profile_ids(self) -> list[int]:
        """All appended profile ids, in (strictly increasing) ingest order."""
        return list(self._profile_ids)

    def has_profile(self, profile_id: int) -> bool:
        """True when ``profile_id`` was appended (bisect on the sorted ids)."""
        ids = self._profile_ids
        position = bisect_left(ids, profile_id)
        return position < len(ids) and ids[position] == profile_id

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close the built CSR (if any); idempotent, safe when never built."""
        csr = getattr(self, "_csr", None)
        if csr is not None:
            csr.close()
        self._csr = None
        self._stale = True

    # --------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        """Ship the overlay, never the CSR (one compaction rebuilds it)."""
        state = {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in ("_csr", "__weakref__")
        }
        state["_stale"] = True
        return state

    def __setstate__(self, state: dict) -> None:
        self._csr = None
        for slot, value in state.items():
            setattr(self, slot, value)
