"""Pluggable kernel backends for the CSR meta-blocking kernel.

The CSR index (:class:`~repro.metablocking.index.CSRBlockIndex`) stores its
offset/entry/cardinality/entropy buffers as contiguous stdlib :mod:`array`
buffers.  Two interchangeable kernels materialise node neighbourhoods and
edge weights from those buffers:

* :class:`PythonKernel` — the interpreted scratch-buffer kernel that has
  driven every path since the CSR rewrite.  Always available; zero
  dependencies.
* :class:`NumpyKernel` — a vectorised kernel that wraps the same buffers
  zero-copy via ``np.frombuffer`` and replaces the per-block inner loops
  with gather / ``np.bincount`` / ufunc expressions.  Lazily imported and
  only selectable when numpy is importable.

Backend selection (:func:`resolve_backend_name`): an explicit spec wins,
then the ``REPRO_KERNEL_BACKEND`` environment variable, then ``auto`` —
numpy when importable, python otherwise.

**Bit-for-bit parity is the contract.**  Both kernels produce the same
neighbour order (node-major, first-touch), the same integer counts and the
same *float* aggregates to the last ulp, because the numpy kernel fixes its
accumulation order to the Python kernel's:

* arcs / entropy sums accumulate through ``np.bincount(group, weights=...)``
  whose C loop adds occurrences strictly left-to-right — the exact order the
  Python kernel's ``+=`` visits them (a stable key sort never reorders the
  occurrences *within* one (node, neighbour) group);
* per-edge weight expressions use only ``* / + max`` ufuncs whose operand
  order mirrors :func:`~repro.metablocking.weights.compute_edge_weight`
  exactly; the ``log10`` factors of ECBS / EJS depend only on one endpoint,
  so they are precomputed per *node* with ``math.log10`` (the same libm call
  the scalar path makes) and merely gathered per edge — no vectorised
  transcendental ever enters the weight;
* the WEP / WNP threshold sums run through single-target ``np.bincount``
  accumulation in weight-map insertion order, matching ``sum()`` over the
  same floats; CEP / CNP top-k selection sorts by ``(-weight, canonical
  edge rank)`` — pure comparisons, no float arithmetic at all.

The equivalence test grid asserts this parity for every weighting × pruning
× entropy × executor combination, so no tolerance is needed anywhere.
"""

from __future__ import annotations

import math
import os
from array import array
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import MetaBlockingError

ENV_VAR = "REPRO_KERNEL_BACKEND"
BACKEND_CHOICES = ("auto", "python", "numpy")

_numpy_checked = False
_numpy_module: Any = None


def numpy_or_none():
    """The :mod:`numpy` module, imported lazily, or ``None`` if unavailable."""
    global _numpy_checked, _numpy_module
    if not _numpy_checked:
        try:
            import numpy  # noqa: PLC0415 - optional dependency, lazy by design

            _numpy_module = numpy
        except Exception:  # pragma: no cover - exercised in the no-numpy CI leg
            _numpy_module = None
        _numpy_checked = True
    return _numpy_module


def numpy_available() -> bool:
    """True when the numpy backend can be selected."""
    return numpy_or_none() is not None


def resolve_backend_name(spec: "str | None" = None) -> str:
    """Resolve a backend spec to ``"python"`` or ``"numpy"``.

    ``None``/empty consults ``REPRO_KERNEL_BACKEND`` and defaults to
    ``auto``; ``auto`` picks numpy when importable.  Requesting ``numpy``
    outright without numpy installed is an error — silently falling back
    would hide a mis-provisioned worker fleet.
    """
    if spec is None or spec == "":
        spec = os.environ.get(ENV_VAR, "").strip() or "auto"
    if not isinstance(spec, str):
        raise MetaBlockingError(
            f"kernel backend spec must be a string, got {spec!r}"
        )
    name = spec.strip().lower()
    if name == "auto":
        return "numpy" if numpy_available() else "python"
    if name == "python":
        return "python"
    if name == "numpy":
        if not numpy_available():
            raise MetaBlockingError(
                "kernel backend 'numpy' requested but numpy is not importable; "
                "install numpy or select --kernel-backend python/auto"
            )
        return "numpy"
    valid = ", ".join(BACKEND_CHOICES)
    raise MetaBlockingError(
        f"unknown kernel backend {spec!r}; valid backends: {valid}"
    )


def make_kernel(index) -> "PythonKernel | NumpyKernel":
    """Build the scratch kernel matching ``index.backend``."""
    if index.backend == "numpy":
        return NumpyKernel(index)
    return PythonKernel(index)


# ------------------------------------------------------------ buffer backends
BUFFER_ENV_VAR = "REPRO_BUFFER_BACKEND"
BUFFER_CHOICES = ("ram", "memmap")


def resolve_buffer_backend(spec: "str | None" = None) -> str:
    """Resolve a CSR buffer-backend spec to ``"ram"`` or ``"memmap"``.

    ``None``/empty consults ``REPRO_BUFFER_BACKEND`` and defaults to
    ``ram``.  ``memmap`` backs the index's offset/entry vectors with a
    file-backed :class:`numpy.memmap` buffer (see
    :meth:`~repro.metablocking.index.CSRBlockIndex.from_blocks`), so it
    requires numpy — requesting it without numpy is an error, mirroring the
    explicit-``numpy`` kernel rule: silent fallback would hide that the run
    is *not* out-of-core.
    """
    if spec is None or spec == "":
        spec = os.environ.get(BUFFER_ENV_VAR, "").strip() or "ram"
    if not isinstance(spec, str):
        raise MetaBlockingError(
            f"buffer backend spec must be a string, got {spec!r}"
        )
    name = spec.strip().lower()
    if name == "ram":
        return "ram"
    if name == "memmap":
        if not numpy_available():
            raise MetaBlockingError(
                "buffer backend 'memmap' requested but numpy is not "
                "importable; install numpy or select --buffer-backend ram"
            )
        return "memmap"
    valid = ", ".join(BUFFER_CHOICES)
    raise MetaBlockingError(
        f"unknown buffer backend {spec!r}; valid backends: {valid}"
    )


# --------------------------------------------------------------- weight plans
@dataclass
class WeightPlan:
    """Everything one weighting job needs beyond the neighbourhood aggregates.

    Built once per (index, scheme, use_entropy) via
    :meth:`~repro.metablocking.index.CSRBlockIndex.weight_plan` and cached on
    the index, driver- and worker-side alike.  ``log_blocks`` / ``log_degrees``
    are the per-*node* ECBS / EJS factors, precomputed with ``math.log10`` so
    the vectorised per-edge expression never calls a (potentially SIMD-
    drifting) vectorised transcendental.
    """

    scheme: Any  # WeightingScheme; typed loosely to avoid an import cycle
    use_entropy: bool
    total_blocks: int
    degrees: Any = None  # indexable per dense node (EJS only)
    total_edges: int = 0
    log_blocks: Any = None  # ndarray, numpy backend + ECBS only
    log_degrees: Any = None  # ndarray, numpy backend + EJS only


def make_weight_plan(index, scheme, use_entropy: bool) -> WeightPlan:
    """Precompute the per-node vectors of one weighting job."""
    from repro.metablocking.weights import WeightingScheme  # import-cycle guard

    scheme = WeightingScheme.parse(scheme)
    plan = WeightPlan(
        scheme=scheme, use_entropy=use_entropy, total_blocks=index.total_blocks
    )
    if scheme is WeightingScheme.EJS:
        # Degrees resolve on a private sweep, so this is safe to run even
        # while a shared kernel holds live neighbourhood state.
        plan.degrees = index.degree_vector()
        plan.total_edges = index.num_edges()
    if index.backend != "numpy":
        return plan
    np = numpy_or_none()
    n = index.num_nodes
    if scheme is WeightingScheme.ECBS:
        total = plan.total_blocks
        counts = index.node_block_count
        log_blocks = np.zeros(n, dtype=np.float64)
        if total > 0:
            for node in range(n):
                blocks = counts[node]
                if blocks:
                    # Exactly compute_edge_weight's per-endpoint factor.
                    log_blocks[node] = math.log10(max(total / blocks, 1.0) + 1e-12)
        plan.log_blocks = log_blocks
    elif scheme is WeightingScheme.EJS:
        total_edges = plan.total_edges
        degrees = plan.degrees
        log_degrees = np.zeros(n, dtype=np.float64)
        if total_edges > 0:
            for node in range(n):
                degree = degrees[node]
                if degree:
                    log_degrees[node] = math.log10(
                        max(total_edges / degree, 1.0) + 1e-12
                    )
        plan.log_degrees = log_degrees
    return plan


# -------------------------------------------------------------- python kernel
class PythonKernel:
    """Materialise one node neighbourhood at a time into reusable buffers.

    After :meth:`neighbours` returns, the per-neighbour aggregates sit in
    ``common_blocks`` / ``arcs`` / ``entropy_sum`` indexed by dense node id;
    they stay valid until the next :meth:`neighbours` call, which resets only
    the previously touched entries.
    """

    name = "python"

    __slots__ = ("_index", "common_blocks", "arcs", "entropy_sum", "_touched")

    def __init__(self, index) -> None:
        n = index.num_nodes
        self._index = index
        self.common_blocks = [0] * n
        self.arcs = [0.0] * n
        self.entropy_sum = [0.0] * n
        self._touched: list[int] = []

    def neighbours(self, node: int) -> list[int]:
        """Fill the scratch buffers for ``node``; return its neighbour list.

        Neighbours appear in first-touch order (ascending block id, member
        order within a block) — the accumulation order is therefore identical
        no matter which code path drives the kernel, keeping float sums
        bit-for-bit reproducible.
        """
        index = self._index
        common, arcs, entropy = self.common_blocks, self.arcs, self.entropy_sum
        touched = self._touched
        for previous in touched:
            common[previous] = 0
            arcs[previous] = 0.0
            entropy[previous] = 0.0
        del touched[:]

        entries = index.node_block_entries
        block_offsets = index.block_offsets
        block_nodes = index.block_nodes
        block_split = index.block_split
        inv_cardinality = index.block_inv_cardinality
        block_entropy = index.block_entropy
        start = index.node_block_offsets[node]
        end = index.node_block_offsets[node + 1]
        for position in range(start, end):
            entry = entries[position]
            block = entry >> 1
            split = block_split[block]
            lo = block_offsets[block]
            hi = block_offsets[block + 1]
            if split >= 0:
                # Clean-clean block: neighbours are the members of the other
                # source; the entry's low bit says which side this node is on.
                if entry & 1:
                    hi = lo + split
                else:
                    lo = lo + split
            inv = inv_cardinality[block]
            block_ent = block_entropy[block]
            for other in block_nodes[lo:hi]:
                if other == node:
                    continue
                if common[other] == 0:
                    touched.append(other)
                common[other] += 1
                arcs[other] += inv
                entropy[other] += block_ent
        return touched

    # -------------------------------------------------------- edge emission
    def edge_items(self, node: int) -> list[tuple]:
        """``[(other_dense, EdgeInfo)]`` for the upper edges of ``node``.

        Only neighbours with a dense id greater than ``node`` (each edge from
        its lower endpoint, exactly once), in first-touch order; one direct
        pass over the scratch buffers.
        """
        from repro.metablocking.graph import EdgeInfo

        touched = self.neighbours(node)
        common, arcs, entropy = self.common_blocks, self.arcs, self.entropy_sum
        return [
            (other, EdgeInfo(common[other], arcs[other], entropy[other]))
            for other in touched
            if other > node
        ]

    def weighted_edges(self, node: int, plan: WeightPlan) -> list[tuple[int, float]]:
        """``[(other_dense, weight)]`` for the upper edges of ``node``.

        The historical per-edge loop of the parallel edge weigher, shared by
        every consumer so there is exactly one scalar reference path.
        """
        from repro.metablocking.graph import EdgeInfo
        from repro.metablocking.weights import WeightingScheme, compute_edge_weight

        index = self._index
        needs_degrees = plan.scheme is WeightingScheme.EJS
        touched = self.neighbours(node)
        block_counts = index.node_block_count
        common, arcs, entropy = self.common_blocks, self.arcs, self.entropy_sum
        blocks_node = block_counts[node]
        degrees = plan.degrees
        use_entropy = plan.use_entropy
        results: list[tuple[int, float]] = []
        for other in touched:
            if other <= node:
                continue
            info = EdgeInfo(
                common_blocks=common[other],
                arcs=arcs[other],
                entropy_sum=entropy[other],
            )
            weight = compute_edge_weight(
                plan.scheme,
                info,
                blocks_a=blocks_node,
                blocks_b=block_counts[other],
                total_blocks=plan.total_blocks,
                degree_a=degrees[node] if needs_degrees else 0,
                degree_b=degrees[other] if needs_degrees else 0,
                total_edges=plan.total_edges if needs_degrees else 0,
            )
            if use_entropy:
                weight *= info.mean_entropy
            results.append((other, weight))
        return results

    def weighted_edges_by_node(self, plan: WeightPlan) -> list[list[tuple]]:
        """Per dense node, its weighted upper edges as ``((a, b), w)`` pairs."""
        index = self._index
        node_ids = index.node_ids
        per_node: list[list[tuple]] = []
        for node in range(index.num_nodes):
            profile_a = node_ids[node]
            per_node.append(
                [
                    ((profile_a, node_ids[other]), weight)
                    for other, weight in self.weighted_edges(node, plan)
                ]
            )
        return per_node

    def weighted_neighbourhoods(self, nodes, plan: WeightPlan) -> list[list[tuple[int, float]]]:
        """Per requested dense node, ``[(other_dense, weight)]`` over *all*
        its neighbours (both directions), in first-touch order.

        The neighbourhood-local re-weighting entry point: unlike
        :meth:`weighted_edges` the lower direction is included, so a caller
        can refresh every edge incident to a node set without sweeping the
        rest of the graph.  For the endpoint-symmetric schemes (CBS, JS,
        ARCS, with or without the entropy factor) the weight of an edge seen
        from either endpoint is bit-for-bit the canonical emission value:
        the aggregates accumulate over the same shared blocks in the same
        ascending-block order from both sides, and the remaining arithmetic
        is commutative-exact.  ECBS / EJS multiply per-endpoint factors in
        endpoint order, so their lower-direction values may differ in the
        last ulp — callers needing exactness there must re-emit canonically.
        """
        from repro.metablocking.graph import EdgeInfo
        from repro.metablocking.weights import WeightingScheme, compute_edge_weight

        index = self._index
        needs_degrees = plan.scheme is WeightingScheme.EJS
        block_counts = index.node_block_count
        degrees = plan.degrees
        use_entropy = plan.use_entropy
        per_node: list[list[tuple[int, float]]] = []
        for node in nodes:
            touched = self.neighbours(node)
            common, arcs, entropy = self.common_blocks, self.arcs, self.entropy_sum
            blocks_node = block_counts[node]
            results: list[tuple[int, float]] = []
            for other in touched:
                info = EdgeInfo(
                    common_blocks=common[other],
                    arcs=arcs[other],
                    entropy_sum=entropy[other],
                )
                weight = compute_edge_weight(
                    plan.scheme,
                    info,
                    blocks_a=blocks_node,
                    blocks_b=block_counts[other],
                    total_blocks=plan.total_blocks,
                    degree_a=degrees[node] if needs_degrees else 0,
                    degree_b=degrees[other] if needs_degrees else 0,
                    total_edges=plan.total_edges if needs_degrees else 0,
                )
                if use_entropy:
                    weight *= info.mean_entropy
                results.append((other, weight))
            per_node.append(results)
        return per_node

    def degrees(self) -> array:
        """Blocking-graph degree of every node (one full sweep).

        Runs on a private kernel so a caller holding live :meth:`neighbours`
        results never has its scratch buffers clobbered.
        """
        index = self._index
        sweeper = PythonKernel(index)
        degrees = array("q", bytes(8 * index.num_nodes))
        for node in range(index.num_nodes):
            degrees[node] = len(sweeper.neighbours(node))
        return degrees


# --------------------------------------------------------------- numpy kernel
@dataclass
class _Sweep:
    """One vectorised neighbourhood sweep over a set of owner nodes.

    Edges are grouped per owner (owner-major, first-touch order within each
    owner — the Python kernel's emission order exactly), *including* the
    lower-endpoint direction; consumers filter ``other > owner`` when they
    emit each edge once.  ``arcs`` / ``entropies`` are ``None`` when the
    sweep was computed for a job that does not read them (e.g. a CBS weight
    table) — :meth:`NumpyKernel.sweep` recomputes on demand.
    """

    owners: Any  # int64[m] dense owner per edge, non-decreasing
    others: Any  # int64[m] dense neighbour per edge
    common: Any  # int64[m]
    arcs: Any  # float64[m] or None
    entropies: Any  # float64[m] or None
    offsets: Any = None  # int64[k+1] segment bounds per swept node

    def segment(self, position: int) -> tuple[int, int]:
        return int(self.offsets[position]), int(self.offsets[position + 1])

    def has(self, *, need_arcs: bool, need_entropies: bool) -> bool:
        return (self.arcs is not None or not need_arcs) and (
            self.entropies is not None or not need_entropies
        )


class NumpyKernel:
    """Vectorised neighbourhood materialisation over zero-copy buffer views.

    Neighbourhoods are materialised by a gather of the owner's block member
    ranges, grouped per ``(owner, neighbour)`` key with one stable integer
    sort, and aggregated with ``np.bincount`` — see the module docstring for
    why the result is bit-for-bit identical to :class:`PythonKernel`.
    """

    name = "numpy"

    def __init__(self, index) -> None:
        np = numpy_or_none()
        if np is None:  # pragma: no cover - guarded by resolve_backend_name
            raise MetaBlockingError("NumpyKernel requires numpy")
        self._np = np
        self._index = index
        as_view = self._as_view
        self.node_block_offsets = as_view(index.node_block_offsets, np.int64)
        self.node_block_entries = as_view(index.node_block_entries, np.int64)
        self.node_block_count = as_view(index.node_block_count, np.int64)
        self.block_offsets = as_view(index.block_offsets, np.int64)
        self.block_nodes = as_view(index.block_nodes, np.int64)
        self.block_split = as_view(index.block_split, np.int64)
        self.block_inv_cardinality = as_view(index.block_inv_cardinality, np.float64)
        self.block_entropy = as_view(index.block_entropy, np.float64)
        self.node_ids = np.asarray(index.node_ids, dtype=np.int64)
        self._full_sweep: _Sweep | None = None

    def _as_view(self, buffer, dtype):
        """Zero-copy ndarray view over a stdlib array (or a ready ndarray)."""
        np = self._np
        if isinstance(buffer, np.ndarray):
            return buffer
        if len(buffer) == 0:
            return np.empty(0, dtype=dtype)
        return np.frombuffer(buffer, dtype=dtype)

    # ------------------------------------------------------------- the sweep
    def _expand_ranges(self, starts, counts):
        """Concatenated ``arange(start, start + count)`` for every range."""
        np = self._np
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        firsts = np.concatenate(([0], np.cumsum(counts[:-1])))
        return (
            np.arange(total, dtype=np.int64)
            - np.repeat(firsts, counts)
            + np.repeat(starts, counts)
        )

    def sweep(self, nodes=None, *, need_arcs: bool = True, need_entropies: bool = True) -> _Sweep:
        """Materialise the neighbourhoods of ``nodes`` (all nodes if None).

        The whole-graph sweep is computed once and cached; partition sweeps
        (worker tasks) compute only their own nodes, preserving the parallel
        path's work partitioning.  ``need_arcs`` / ``need_entropies`` let
        weight jobs skip the float aggregates their scheme never reads; a
        cached sweep missing a later-needed aggregate is recomputed.
        """
        np = self._np
        if nodes is None:
            cached = self._full_sweep
            if cached is not None:
                if cached.has(need_arcs=need_arcs, need_entropies=need_entropies):
                    return cached
                # Upgrade: keep whatever the cached sweep already carries.
                need_arcs = need_arcs or cached.arcs is not None
                need_entropies = need_entropies or cached.entropies is not None
            self._full_sweep = self._sweep(
                np.arange(self._index.num_nodes),
                need_arcs=need_arcs,
                need_entropies=need_entropies,
            )
            return self._full_sweep
        return self._sweep(
            np.asarray(nodes, dtype=np.int64),
            need_arcs=need_arcs,
            need_entropies=need_entropies,
        )

    def _sweep(self, nodes, *, need_arcs: bool, need_entropies: bool) -> _Sweep:
        np = self._np
        n = self._index.num_nodes
        empty_i = np.empty(0, dtype=np.int64)
        empty_f = np.empty(0, dtype=np.float64)
        if len(nodes) == 0:
            return _Sweep(empty_i, empty_i, empty_i, empty_f, empty_f, np.zeros(1, np.int64))

        # 1. Every (node, block entry) of the swept nodes, node-major.
        entry_counts = self.node_block_offsets[nodes + 1] - self.node_block_offsets[nodes]
        entries = self.node_block_entries[
            self._expand_ranges(self.node_block_offsets[nodes], entry_counts)
        ]
        owner_per_entry = np.repeat(nodes, entry_counts)

        # 2. Member ranges per entry, side-filtered for clean-clean blocks.
        blocks = entries >> 1
        side = entries & 1
        lo = self.block_offsets[blocks]
        hi = self.block_offsets[blocks + 1]
        split = self.block_split[blocks]
        clean = split >= 0
        hi = np.where(clean & (side == 1), lo + split, hi)
        lo = np.where(clean & (side == 0), lo + split, lo)
        counts = hi - lo

        # 3. Occurrence expansion: one row per (owner, co-member) incidence,
        # in exactly the order the Python kernel's nested loop visits them.
        others = self.block_nodes[self._expand_ranges(lo, counts)]
        owners = np.repeat(owner_per_entry, counts)
        occ_inv = (
            np.repeat(self.block_inv_cardinality[blocks], counts) if need_arcs else None
        )
        occ_ent = (
            np.repeat(self.block_entropy[blocks], counts) if need_entropies else None
        )
        self_mask = others != owners
        if not self_mask.all():
            others = others[self_mask]
            owners = owners[self_mask]
            if occ_inv is not None:
                occ_inv = occ_inv[self_mask]
            if occ_ent is not None:
                occ_ent = occ_ent[self_mask]

        # 4. Group by (owner, other).  The stable sort keeps each group's
        # occurrences in original relative order, so accumulating the sorted
        # stream adds the same floats in the same order as the scalar `+=`
        # loop visits them.
        keys = owners * n + others
        if n and n * n <= np.iinfo(np.int32).max:
            keys = keys.astype(np.int32)  # narrower radix sort, same order
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        total = len(sorted_keys)
        if total == 0:
            offsets = np.zeros(len(nodes) + 1, dtype=np.int64)
            return _Sweep(empty_i, empty_i, empty_i, empty_f, empty_f, offsets)
        new_group = np.empty(total, dtype=bool)
        new_group[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_group[1:])
        boundaries = np.flatnonzero(new_group)
        first_occurrence = order[new_group]
        num_groups = len(boundaries)
        common = np.diff(np.concatenate((boundaries, [total])))
        arcs = entropies = None
        if need_arcs or need_entropies:
            group_of_sorted = np.cumsum(new_group) - 1
            if need_arcs:
                arcs = np.bincount(
                    group_of_sorted, weights=occ_inv[order], minlength=num_groups
                )
            if need_entropies:
                entropies = np.bincount(
                    group_of_sorted, weights=occ_ent[order], minlength=num_groups
                )

        # 5. Reorder the groups into owner-major first-touch order (ascending
        # first-occurrence position == the Python kernel's emission order).
        emit_order = np.argsort(first_occurrence, kind="stable")
        first_ordered = first_occurrence[emit_order]
        edge_owners = owners[first_ordered]
        edge_others = others[first_ordered]
        offsets = np.searchsorted(edge_owners, nodes, side="left")
        offsets = np.concatenate((offsets, [len(edge_owners)]))
        return _Sweep(
            owners=edge_owners,
            others=edge_others,
            common=common[emit_order],
            arcs=arcs[emit_order] if arcs is not None else None,
            entropies=entropies[emit_order] if entropies is not None else None,
            offsets=offsets,
        )

    # ------------------------------------------------------------ weights
    def _edge_weights(self, sweep: _Sweep, keep, plan: WeightPlan):
        """The weight vector of ``sweep``'s edges selected by ``keep``.

        A whole-neighbourhood ufunc expression per scheme; every operation
        mirrors the operand order of ``compute_edge_weight`` (see module
        docstring), so the floats come out bit-identical.
        """
        from repro.metablocking.weights import WeightingScheme

        np = self._np
        scheme = plan.scheme
        owners = sweep.owners[keep]
        others = sweep.others[keep]
        cbs = sweep.common[keep].astype(np.float64)
        if scheme is WeightingScheme.CBS:
            weights = cbs
        elif scheme is WeightingScheme.ARCS:
            weights = sweep.arcs[keep]
        elif scheme is WeightingScheme.JS:
            blocks_sum = (
                self.node_block_count[owners] + self.node_block_count[others]
            ).astype(np.float64)
            denominator = blocks_sum - cbs
            weights = np.divide(
                cbs,
                denominator,
                out=np.zeros(len(cbs), dtype=np.float64),
                where=denominator > 0,
            )
        elif scheme is WeightingScheme.ECBS:
            if plan.total_blocks == 0:
                weights = np.zeros(len(cbs), dtype=np.float64)
            else:
                weights = cbs * plan.log_blocks[owners] * plan.log_blocks[others]
        elif scheme is WeightingScheme.EJS:
            blocks_sum = (
                self.node_block_count[owners] + self.node_block_count[others]
            ).astype(np.float64)
            denominator = blocks_sum - cbs
            js = np.divide(
                cbs,
                denominator,
                out=np.zeros(len(cbs), dtype=np.float64),
                where=denominator > 0,
            )
            if plan.total_edges == 0:
                weights = js
            else:
                degrees = self._as_view(plan.degrees, np.int64)
                scaled = js * plan.log_degrees[owners] * plan.log_degrees[others]
                applies = (degrees[owners] > 0) & (degrees[others] > 0)
                weights = np.where(applies, scaled, js)
        else:  # pragma: no cover - the enum is closed
            raise MetaBlockingError(f"unsupported weighting scheme: {scheme}")
        if plan.use_entropy:
            # weight * mean entropy, the exact scalar expression
            # (entropy_sum / common_blocks applied after the base weight).
            weights = weights * (sweep.entropies[keep] / cbs)
        return weights

    def _plan_sweep(self, plan: WeightPlan, nodes=None) -> _Sweep:
        """The sweep for one weight plan, skipping aggregates it never reads."""
        from repro.metablocking.weights import WeightingScheme

        return self.sweep(
            nodes,
            need_arcs=plan.scheme is WeightingScheme.ARCS,
            need_entropies=plan.use_entropy,
        )

    # ----------------------------------------------------------- public API
    def neighbours(self, node: int) -> list[int]:
        """All neighbours of ``node`` in first-touch order (python ints)."""
        sweep = self.sweep(need_arcs=False, need_entropies=False)
        start, end = sweep.segment(node)
        return sweep.others[start:end].tolist()

    def edge_items(self, node: int) -> list[tuple]:
        """``[(other_dense, EdgeInfo)]`` for the upper edges of ``node``."""
        from repro.metablocking.graph import EdgeInfo

        sweep = self.sweep()
        start, end = sweep.segment(node)
        keep = sweep.others[start:end] > node
        return list(
            zip(
                sweep.others[start:end][keep].tolist(),
                map(
                    EdgeInfo,
                    sweep.common[start:end][keep].tolist(),
                    sweep.arcs[start:end][keep].tolist(),
                    sweep.entropies[start:end][keep].tolist(),
                ),
            )
        )

    def weighted_edges(self, node: int, plan: WeightPlan) -> list[tuple[int, float]]:
        """``[(other_dense, weight)]`` for the upper edges of ``node``."""
        np = self._np
        sweep = self._plan_sweep(plan)
        start, end = sweep.segment(node)
        keep = np.zeros(len(sweep.others), dtype=bool)
        keep[start:end] = sweep.others[start:end] > node
        weights = self._edge_weights(sweep, keep, plan)
        return list(zip(sweep.others[keep].tolist(), weights.tolist()))

    def weighted_edges_by_node(self, plan: WeightPlan) -> list[list[tuple]]:
        """Per dense node, its weighted upper edges as ``((a, b), w)`` pairs."""
        np = self._np
        sweep = self._plan_sweep(plan)
        keep = sweep.others > sweep.owners
        pairs, weights = self._pair_records(sweep, keep, plan)
        edges = list(zip(pairs, weights.tolist()))
        offsets = np.cumsum(
            np.concatenate(
                ([0], np.bincount(sweep.owners[keep], minlength=self._index.num_nodes))
            )
        ).tolist()
        return [
            edges[offsets[node] : offsets[node + 1]]
            for node in range(self._index.num_nodes)
        ]

    def _pair_records(self, sweep: _Sweep, keep, plan: WeightPlan):
        """Profile-id pair tuples (python ints) and the weight vector."""
        weights = self._edge_weights(sweep, keep, plan)
        pairs = list(
            zip(
                self.node_ids[sweep.owners[keep]].tolist(),
                self.node_ids[sweep.others[keep]].tolist(),
            )
        )
        return pairs, weights

    def partition_weighted_edges(self, profile_ids, plan: WeightPlan):
        """All ``((a, b), weight)`` records of one node partition, in order.

        One vectorised sweep over the partition's nodes — the worker-side
        fast path of the parallel edge weighing job.  The record stream is
        identical (content and order) to per-node emission.
        """
        np = self._np
        if not profile_ids:
            return []
        dense = np.searchsorted(self.node_ids, np.asarray(profile_ids, dtype=np.int64))
        sweep = self._plan_sweep(plan, dense)
        keep = sweep.others > sweep.owners
        pairs, weights = self._pair_records(sweep, keep, plan)
        return list(zip(pairs, weights.tolist()))

    def weighted_neighbourhoods(self, nodes, plan: WeightPlan) -> list[list[tuple[int, float]]]:
        """Per requested dense node, ``[(other_dense, weight)]`` over *all*
        its neighbours (both directions), in first-touch order.

        ``nodes`` must be ascending (the partial-sweep offsets come from a
        ``searchsorted``).  Same contract as the python kernel's method: the
        values are bit-identical to canonical emission for the
        endpoint-symmetric schemes — the partial sweep visits each owner's
        occurrences in the same ascending-block order the full sweep does.
        """
        np = self._np
        dense = np.asarray(list(nodes), dtype=np.int64)
        if len(dense) == 0:
            return []
        sweep = self._plan_sweep(plan, dense)
        keep = np.ones(len(sweep.others), dtype=bool)
        weights = self._edge_weights(sweep, keep, plan)
        others = sweep.others.tolist()
        weight_list = weights.tolist()
        per_node: list[list[tuple[int, float]]] = []
        for position in range(len(dense)):
            start, end = sweep.segment(position)
            per_node.append(list(zip(others[start:end], weight_list[start:end])))
        return per_node

    def weight_arrays(self, plan: WeightPlan) -> "EdgeWeights":
        """Every edge weight of the graph as aligned dense arrays — no dict.

        The dict-free variant of :meth:`weight_table`: ``mapping`` is
        ``None`` and ``node_ids`` carries the dense→profile-id vector, so
        pair tuples can be materialised lazily per chunk.  This is the
        streaming entry point — the O(E) footprint is three numeric arrays
        (~16 bytes/edge) instead of a dict of tuples (~200 bytes/edge).
        """
        sweep = self._plan_sweep(plan)
        keep = sweep.others > sweep.owners
        weights = self._edge_weights(sweep, keep, plan)
        return EdgeWeights(
            mapping=None,
            a=sweep.owners[keep],
            b=sweep.others[keep],
            w=weights,
            num_nodes=self._index.num_nodes,
            node_ids=self.node_ids,
        )

    def weight_table(self, plan: WeightPlan) -> "EdgeWeights":
        """Every edge weight of the graph, as aligned arrays plus the dict."""
        table = self.weight_arrays(plan)
        # The pair tuples are built lazily inside the zip-of-zips: one pass
        # feeds the dict directly, no intermediate pair list.
        table.mapping = dict(
            zip(
                zip(
                    self.node_ids[table.a].tolist(),
                    self.node_ids[table.b].tolist(),
                ),
                table.w.tolist(),
            )
        )
        return table

    def degrees(self) -> array:
        """Blocking-graph degree of every node, from the (cached) full sweep.

        Only the edge structure is needed, so a cold cache computes the
        cheap aggregate-free sweep.
        """
        np = self._np
        sweep = self.sweep(need_arcs=False, need_entropies=False)
        counts = np.bincount(sweep.owners, minlength=self._index.num_nodes)
        return array("q", counts.tolist())


# ------------------------------------------------------- vectorised pruning
@dataclass
class EdgeWeights:
    """An edge-weight mapping plus the aligned dense arrays it was built from.

    ``mapping`` is the plain ``(a, b) → weight`` dict every existing consumer
    understands (node-major first-touch insertion order); ``a`` / ``b`` / ``w``
    are aligned ndarrays over *dense* node ids so the pruning fast paths skip
    the dict → array conversion entirely.

    A *streaming* table (built by :meth:`NumpyKernel.weight_arrays`) has
    ``mapping=None`` and carries the dense→profile-id ``node_ids`` vector
    instead; consumers materialise python pair tuples chunk by chunk via
    :func:`iter_retained_chunks`, never all at once.
    """

    mapping: "dict | None"
    a: Any
    b: Any
    w: Any
    num_nodes: int
    node_ids: Any = None
    _pairs: "list | None" = field(default=None, repr=False)
    _canonical_rank: Any = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.mapping) if self.mapping is not None else len(self.a)

    @property
    def pairs(self) -> list:
        """The pair tuples aligned with ``w`` (the mapping's key order)."""
        if self._pairs is None:
            if self.mapping is not None:
                self._pairs = list(self.mapping)
            else:
                self._pairs = list(
                    zip(self.node_ids[self.a].tolist(), self.node_ids[self.b].tolist())
                )
        return self._pairs

    def canonical_rank(self):
        """Position of each edge in canonical (sorted-pair) order.

        Ordering by ``(-weight, rank)`` therefore equals the scalar paths'
        ``(-weight, pair)`` tie-break exactly.  Cached: CEP, CNP and the
        vote-stage edge ids all consume it.
        """
        if self._canonical_rank is None:
            np = numpy_or_none()
            order = np.lexsort((self.b, self.a))
            rank = np.empty(len(self.a), dtype=np.int64)
            rank[order] = np.arange(len(self.a), dtype=np.int64)
            self._canonical_rank = rank
        return self._canonical_rank


def _retain_by_mask(table: EdgeWeights, keep) -> dict:
    """The retained-edge dict for a boolean edge mask (insertion order kept)."""
    from itertools import compress

    return dict(compress(table.mapping.items(), keep.tolist()))


def _sequential_sum(np, values):
    """Left-to-right float sum, bit-identical to ``sum()`` over the same list.

    ``np.sum`` uses pairwise summation (different rounding); a single-bin
    weighted ``np.bincount`` accumulates strictly in order instead.
    """
    if len(values) == 0:
        return 0.0
    return float(
        np.bincount(np.zeros(len(values), dtype=np.int64), weights=values, minlength=1)[0]
    )


def _wep_mask(np, table: EdgeWeights):
    """WEP's boolean retention mask: at or above the global mean weight."""
    threshold = _sequential_sum(np, table.w) / len(table)
    return table.w >= threshold


def _cep_order(np, table: EdgeWeights, k: int):
    """CEP's retained edge positions, in ranked ``(-weight, pair)`` order."""
    return np.lexsort((table.canonical_rank(), -table.w))[:k]


def wep_retain(table: EdgeWeights) -> dict:
    """WEP: keep edges at or above the global mean edge weight."""
    np = numpy_or_none()
    if not len(table):
        return {}
    return _retain_by_mask(table, _wep_mask(np, table))


def cep_retain(table: EdgeWeights, k: int) -> dict:
    """CEP: keep the globally top-``k`` edges, ranked ``(-weight, pair)``."""
    np = numpy_or_none()
    if not len(table):
        return {}
    order = _cep_order(np, table, k).tolist()
    pairs, weights = table.pairs, table.w.tolist()
    return {pairs[i]: weights[i] for i in order}


def _interleaved_incidence(np, table: EdgeWeights):
    """The per-node incidence stream in scalar append order.

    The scalar paths append each edge to ``incidence[a]`` then
    ``incidence[b]`` while scanning the weight map; the interleaved
    ``a0, b0, a1, b1, …`` stream reproduces each node's subsequence — and
    therefore every per-node float accumulation order — exactly.
    """
    m = len(table)
    nodes = np.empty(2 * m, dtype=np.int64)
    nodes[0::2] = table.a
    nodes[1::2] = table.b
    return nodes


def _wnp_mask(np, table: EdgeWeights, required: int):
    """WNP's boolean retention mask (per-node mean threshold votes)."""
    nodes = _interleaved_incidence(np, table)
    occurrence_w = np.repeat(table.w, 2)
    sums = np.bincount(nodes, weights=occurrence_w, minlength=table.num_nodes)
    counts = np.bincount(nodes, minlength=table.num_nodes)
    thresholds = sums / np.maximum(counts, 1)
    votes = (table.w >= thresholds[table.a]).astype(np.int64)
    votes += table.w >= thresholds[table.b]
    return votes >= required


def _cnp_mask(np, table: EdgeWeights, k: int, required: int):
    """CNP's boolean retention mask (per-node top-``k`` votes)."""
    m = len(table)
    # Rank the edges once by (-weight, canonical pair order), then sort the
    # interleaved incidence stream by a single (node, edge position) integer
    # key — stable radix sort, no float arithmetic, exact tie-breaks.
    edge_order = np.lexsort((table.canonical_rank(), -table.w))
    edge_position = np.empty(m, dtype=np.int64)
    edge_position[edge_order] = np.arange(m, dtype=np.int64)
    nodes = _interleaved_incidence(np, table)
    occurrence_edge = np.repeat(np.arange(m, dtype=np.int64), 2)
    composite = nodes * m + edge_position[occurrence_edge]
    order = np.argsort(composite, kind="stable")
    sorted_nodes = nodes[order]
    segment_starts = np.searchsorted(sorted_nodes, np.arange(table.num_nodes))
    position_in_node = np.arange(2 * m, dtype=np.int64) - segment_starts[sorted_nodes]
    kept = position_in_node < k
    votes = np.bincount(occurrence_edge[order][kept], minlength=m)
    return votes >= required


def wnp_retain(table: EdgeWeights, required: int) -> dict:
    """WNP: per-node mean threshold; ``required`` endpoint votes retain."""
    np = numpy_or_none()
    if not len(table):
        return {}
    return _retain_by_mask(table, _wnp_mask(np, table, required))


def cnp_retain(table: EdgeWeights, k: int, required: int) -> dict:
    """CNP: every node keeps its top-``k`` incident edges (sort, not heaps)."""
    np = numpy_or_none()
    if not len(table):
        return {}
    return _retain_by_mask(table, _cnp_mask(np, table, k, required))


def supports_strategy(strategy) -> bool:
    """True when the vectorised dispatch covers ``strategy`` exactly.

    Only the *stock* strategy classes qualify — any subclass may override
    ``prune`` or one of its hooks (e.g. ``WeightedNodePruning.
    node_thresholds``), and the fast paths must never silently replace
    customised behaviour.  ``ReciprocalWeightedNodePruning`` is the one
    sanctioned subclass: it only flips the ``reciprocal`` flag.
    """
    from repro.metablocking.pruning import (  # import-cycle guard
        CardinalityEdgePruning,
        CardinalityNodePruning,
        ReciprocalWeightedNodePruning,
        WeightedEdgePruning,
        WeightedNodePruning,
    )

    return type(strategy) in (
        WeightedEdgePruning,
        CardinalityEdgePruning,
        CardinalityNodePruning,
        WeightedNodePruning,
        ReciprocalWeightedNodePruning,
    )


def prune_edge_weights(strategy, table: EdgeWeights, index) -> "dict | None":
    """Vectorised pruning dispatch for the built-in strategies.

    Returns the retained-edge dict, or ``None`` when ``strategy`` is a custom
    subclass the fast paths do not recognise (the caller falls back to the
    scalar ``prune``).  Default ``k`` derivations delegate to the shared
    :func:`~repro.metablocking.pruning.default_cep_k` /
    :func:`~repro.metablocking.pruning.default_cnp_k` formulas.
    """
    from repro.metablocking.pruning import (  # import-cycle guard
        CardinalityEdgePruning,
        CardinalityNodePruning,
        WeightedEdgePruning,
        WeightedNodePruning,
        default_cep_k,
        default_cnp_k,
    )

    if not supports_strategy(strategy):
        return None
    if type(strategy) is WeightedEdgePruning:
        return wep_retain(table)
    if type(strategy) is CardinalityEdgePruning:
        k = strategy.k
        if k is None:
            k = default_cep_k(int(sum(index.node_block_count)))
        return cep_retain(table, k)
    if isinstance(strategy, CardinalityNodePruning):
        k = strategy.k
        if k is None:
            k = default_cnp_k(int(sum(index.node_block_count)), index.num_nodes)
        return cnp_retain(table, k, 2 if strategy.reciprocal else 1)
    return wnp_retain(table, 2 if strategy.reciprocal else 1)


# ----------------------------------------------------------- streamed pruning
DEFAULT_CHUNK_EDGES = 65536


def retained_positions(strategy, table: EdgeWeights, index):
    """Retained edge positions of ``table``, in retention order, or ``None``.

    The streaming counterpart of :func:`prune_edge_weights`: instead of a
    retained-edge dict it returns the *positions* (indices into
    ``table.a/b/w``) of the retained edges, in the exact order the dict
    variant inserts them — emission (node-major first-touch) order for
    WEP/WNP/CNP, ranked ``(-weight, pair)`` order for CEP.  Returns ``None``
    for custom strategy subclasses, exactly like the dict dispatch; both
    dispatches share one retention definition (the mask/order helpers), so
    chunked emission is bit-for-bit the dict's ``items()`` stream.
    """
    from repro.metablocking.pruning import (  # import-cycle guard
        CardinalityEdgePruning,
        CardinalityNodePruning,
        WeightedEdgePruning,
        default_cep_k,
        default_cnp_k,
    )

    np = numpy_or_none()
    if not supports_strategy(strategy):
        return None
    if not len(table):
        return np.empty(0, dtype=np.int64)
    if type(strategy) is WeightedEdgePruning:
        return np.flatnonzero(_wep_mask(np, table))
    if type(strategy) is CardinalityEdgePruning:
        k = strategy.k
        if k is None:
            k = default_cep_k(int(sum(index.node_block_count)))
        return _cep_order(np, table, k)
    if isinstance(strategy, CardinalityNodePruning):
        k = strategy.k
        if k is None:
            k = default_cnp_k(int(sum(index.node_block_count)), index.num_nodes)
        return np.flatnonzero(_cnp_mask(np, table, k, 2 if strategy.reciprocal else 1))
    return np.flatnonzero(_wnp_mask(np, table, 2 if strategy.reciprocal else 1))


def iter_retained_chunks(
    table: EdgeWeights, positions, chunk_edges: int = DEFAULT_CHUNK_EDGES
):
    """Yield the retained edges as bounded lists of ``((a, b), weight)``.

    ``positions`` is a :func:`retained_positions` result; each yielded chunk
    materialises at most ``chunk_edges`` python records (profile-id pair
    tuples and float weights — identical objects to the retained dict's
    ``items()``), so the peak python-object footprint of a consumer that
    processes chunks as they arrive is O(chunk), not O(retained).
    """
    if chunk_edges <= 0:
        raise MetaBlockingError("chunk_edges must be positive")
    node_ids = table.node_ids
    for start in range(0, len(positions), chunk_edges):
        chunk = positions[start : start + chunk_edges]
        yield list(
            zip(
                zip(
                    node_ids[table.a[chunk]].tolist(),
                    node_ids[table.b[chunk]].tolist(),
                ),
                table.w[chunk].tolist(),
            )
        )
