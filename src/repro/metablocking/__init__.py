"""Meta-blocking: blocking graph, edge weighting, pruning, entropy re-weighting."""

from repro.metablocking.backends import (
    NumpyKernel,
    PythonKernel,
    numpy_available,
    resolve_backend_name,
)
from repro.metablocking.graph import BlockingGraph, EdgeInfo, build_blocking_graph
from repro.metablocking.index import CSRBlockIndex, NeighbourhoodKernel
from repro.metablocking.weights import WeightingScheme, compute_edge_weight
from repro.metablocking.pruning import (
    PruningStrategy,
    WeightedEdgePruning,
    WeightedNodePruning,
    CardinalityEdgePruning,
    CardinalityNodePruning,
    ReciprocalWeightedNodePruning,
)
from repro.metablocking.entropy_weighting import apply_entropy_weights
from repro.metablocking.metablocker import MetaBlocker, MetaBlockingResult
from repro.metablocking.parallel import ParallelMetaBlocker

__all__ = [
    "BlockingGraph",
    "EdgeInfo",
    "build_blocking_graph",
    "CSRBlockIndex",
    "NeighbourhoodKernel",
    "PythonKernel",
    "NumpyKernel",
    "numpy_available",
    "resolve_backend_name",
    "WeightingScheme",
    "compute_edge_weight",
    "PruningStrategy",
    "WeightedEdgePruning",
    "WeightedNodePruning",
    "CardinalityEdgePruning",
    "CardinalityNodePruning",
    "ReciprocalWeightedNodePruning",
    "apply_entropy_weights",
    "MetaBlocker",
    "MetaBlockingResult",
    "ParallelMetaBlocker",
]
