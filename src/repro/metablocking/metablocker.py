"""The sequential meta-blocker: weight the graph, (optionally) re-weight by
entropy, prune, return candidate pairs.

This is the reference implementation; :class:`repro.metablocking.parallel.
ParallelMetaBlocker` produces exactly the same output using the broadcast-join
structure SparkER runs on Spark.

Both run on the pluggable kernel backend of the CSR index
(:mod:`repro.metablocking.backends`).  Under the numpy backend the sequential
path skips the dict-of-:class:`EdgeInfo` graph entirely: one vectorised kernel
sweep produces the edge-weight table and the WEP/WNP/CEP/CNP retention runs as
array expressions — with the same floats, the same tie-breaks and therefore
the same retained edges as the interpreted path, to the last bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocking.block import BlockCollection
from repro.metablocking import backends as _backends
from repro.metablocking.entropy_weighting import apply_entropy_weights
from repro.metablocking.graph import BlockingGraph, blocking_graph_from_index
from repro.metablocking.index import CSRBlockIndex
from repro.metablocking.pruning import PruningStrategy, make_pruning_strategy
from repro.metablocking.weights import WeightingScheme, weight_all_edges


@dataclass
class MetaBlockingResult:
    """Output of a meta-blocking run."""

    candidate_pairs: set[tuple[int, int]] = field(default_factory=set)
    retained_edges: dict[tuple[int, int], float] = field(default_factory=dict)
    graph_edges: int = 0
    graph_nodes: int = 0

    @property
    def num_candidates(self) -> int:
        return len(self.candidate_pairs)

    def as_dict(self) -> dict[str, int]:
        """Flat summary used by reports and benchmarks."""
        return {
            "graph_nodes": self.graph_nodes,
            "graph_edges": self.graph_edges,
            "candidate_pairs": self.num_candidates,
        }


class MetaBlocker:
    """Sequential (driver-side) meta-blocking.

    Parameters
    ----------
    weighting:
        Edge weighting scheme (default CBS, the scheme of the paper's toy
        example).
    pruning:
        Pruning strategy or its short name (default WEP: keep edges above the
        average weight, again the paper's toy example).
    use_entropy:
        When True the edge weights are multiplied by the mean entropy of the
        generating blocks before pruning (BLAST).  Has no effect if every
        block carries the default entropy of 1.0.
    kernel_backend:
        Kernel backend spec (``"auto"`` / ``"python"`` / ``"numpy"``;
        ``None`` consults ``REPRO_KERNEL_BACKEND``).
    buffer_backend:
        Where the CSR index buffers live (``"ram"`` / ``"memmap"``; ``None``
        consults ``REPRO_BUFFER_BACKEND``).  ``memmap`` backs them with a
        file under ``tmp_dir`` so the OS can page the index.
    tmp_dir:
        Root for the memmap buffer file (``None`` consults ``REPRO_TMPDIR``).
    """

    def __init__(
        self,
        weighting: str | WeightingScheme = WeightingScheme.CBS,
        pruning: str | PruningStrategy = "wep",
        *,
        use_entropy: bool = False,
        kernel_backend: str | None = None,
        buffer_backend: str | None = None,
        tmp_dir: str | None = None,
    ) -> None:
        self.weighting = WeightingScheme.parse(weighting)
        self.pruning = make_pruning_strategy(pruning)
        self.use_entropy = use_entropy
        self.kernel_backend = kernel_backend
        self.buffer_backend = buffer_backend
        self.tmp_dir = tmp_dir

    def _build_index(self, blocks: BlockCollection) -> CSRBlockIndex:
        return CSRBlockIndex.from_blocks(
            blocks,
            backend=self.kernel_backend,
            buffer_backend=self.buffer_backend,
            tmp_dir=self.tmp_dir,
        )

    def run(self, blocks: BlockCollection) -> MetaBlockingResult:
        """Run meta-blocking over ``blocks`` and return the candidate pairs."""
        index = self._build_index(blocks)
        try:
            if index.backend == "numpy":
                result = self._run_vectorised(index)
                if result is not None:
                    return result
            graph = blocking_graph_from_index(
                index, clean_clean=blocks.clean_clean, num_blocks=len(blocks)
            )
            return self.run_on_graph(graph)
        finally:
            index.close()

    def stream_retained(
        self,
        blocks: BlockCollection,
        chunk_edges: int = _backends.DEFAULT_CHUNK_EDGES,
    ):
        """Yield the retained edges in bounded chunks of ``((a, b), weight)``.

        The streaming counterpart of :meth:`run`: the concatenation of the
        yielded chunks is exactly ``run(blocks).retained_edges.items()`` —
        same edges, same floats, same order.  On the numpy kernel backend
        with a stock pruning strategy no retained-edge dict is ever built:
        the O(E) residual is three dense numeric arrays (and, under the
        ``memmap`` buffer backend, the index pages from disk), so the peak
        python-object footprint is O(chunk).  Custom strategies and the
        interpreted backend fall back to a full :meth:`run` and chunk its
        dict — correct, but not out-of-core.
        """
        index = self._build_index(blocks)
        try:
            if index.backend == "numpy" and _backends.supports_strategy(self.pruning):
                if index.num_nodes == 0:
                    return
                plan = index.weight_plan(self.weighting, self.use_entropy)
                table = index.kernel().weight_arrays(plan)
                positions = _backends.retained_positions(self.pruning, table, index)
                if positions is not None:
                    yield from _backends.iter_retained_chunks(
                        table, positions, chunk_edges
                    )
                    return
            graph = blocking_graph_from_index(
                index, clean_clean=blocks.clean_clean, num_blocks=len(blocks)
            )
            retained = self.run_on_graph(graph).retained_edges
            items = list(retained.items())
            for start in range(0, len(items), chunk_edges):
                yield items[start : start + chunk_edges]
        finally:
            index.close()

    def _run_vectorised(self, index: CSRBlockIndex) -> "MetaBlockingResult | None":
        """The numpy fast path: kernel weight table + array pruning.

        Returns ``None`` for custom pruning strategies the vectorised
        dispatch does not recognise — decided *before* the weight table is
        built, so the fallback never pays for a discarded sweep; the caller
        then runs the graph path (same output either way).
        """
        if index.num_nodes == 0:
            return MetaBlockingResult()
        if not _backends.supports_strategy(self.pruning):
            return None
        plan = index.weight_plan(self.weighting, self.use_entropy)
        table = index.kernel().weight_table(plan)
        retained = _backends.prune_edge_weights(self.pruning, table, index)
        if retained is None:
            return None
        return MetaBlockingResult(
            candidate_pairs=set(retained),
            retained_edges=retained,
            graph_edges=index.num_edges(),
            graph_nodes=index.num_nodes,
        )

    def run_on_graph(self, graph: BlockingGraph) -> MetaBlockingResult:
        """Run weighting + (entropy) + pruning over a prebuilt blocking graph."""
        weights = weight_all_edges(graph, self.weighting)
        if self.use_entropy:
            weights = apply_entropy_weights(graph, weights)
        retained = self.pruning.prune(graph, weights)
        return MetaBlockingResult(
            candidate_pairs=set(retained),
            retained_edges=retained,
            graph_edges=graph.num_edges,
            graph_nodes=graph.num_nodes,
        )

    def __call__(self, blocks: BlockCollection) -> MetaBlockingResult:
        return self.run(blocks)
