"""BLAST entropy re-weighting of the blocking graph.

Each edge of the meta-blocking graph is re-weighted according to the entropy
associated with the blocks that generated it (the entropy of the attribute
partition the blocking key belongs to).  Edges generated inside high-entropy
clusters keep most of their weight; edges generated inside low-entropy
clusters (e.g. prices, years) are damped, so the subsequent pruning removes
more superfluous comparisons than plain schema-agnostic meta-blocking
(Figure 2(c) of the paper).
"""

from __future__ import annotations

from repro.metablocking.graph import BlockingGraph


def apply_entropy_weights(
    graph: BlockingGraph,
    weights: dict[tuple[int, int], float],
) -> dict[tuple[int, int], float]:
    """Multiply each edge weight by the mean entropy of its shared blocks.

    Edges whose blocks carry the default entropy of 1.0 are unchanged, so
    applying this to a schema-agnostic collection is a no-op.
    """
    reweighted: dict[tuple[int, int], float] = {}
    for pair, weight in weights.items():
        info = graph.edges.get(pair)
        factor = info.mean_entropy if info is not None else 1.0
        reweighted[pair] = weight * factor
    return reweighted
