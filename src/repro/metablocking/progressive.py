"""Progressive meta-blocking (extension).

The SparkER authors' related work on *schema-agnostic progressive entity
resolution* (Simonini et al., ICDE 2018, cited as [6] in the demo paper)
emits candidate comparisons in decreasing order of estimated match likelihood
so that, under a limited comparison budget, most true matches are found early.
This module implements the two progressive strategies that build directly on
the meta-blocking graph of this package:

* :class:`ProgressiveSortedComparisons` — weight every edge of the blocking
  graph and emit edges globally sorted by decreasing weight (Progressive
  Global Sorting).
* :class:`ProgressiveNodeScheduling` — order the nodes by the average weight
  of their neighbourhood and emit, for each node in turn, its best unseen
  neighbours first (a simplified Progressive Profile Scheduling).

Both run on the CSR index's kernel backend directly (the interpreted
:class:`~repro.metablocking.backends.PythonKernel` or the vectorised
:class:`~repro.metablocking.backends.NumpyKernel`, selected via
``kernel_backend=``) — one sweep materialising each node's neighbourhood
exactly once, every edge weighted from its lower endpoint — instead of
materialising a full :class:`~repro.metablocking.graph.BlockingGraph` and
re-deriving node statistics from it.  Every kernel fixes the same
accumulation order as the graph builder, so the weights (and therefore the
rankings) are bit-for-bit identical to the graph-based implementation they
replace, whichever backend runs the sweep.

``stream()`` is genuinely lazy: global sorting merges per-node runs through a
heap (:func:`heapq.merge`), so consuming the first *k* comparisons never pays
for a global sort; node scheduling yields node by node, each incident list
sorted exactly once up front.  ``rank()`` is simply ``list(stream())``.  The
benchmark ``bench_extension_progressive.py`` measures recall as a function of
the number of comparisons performed, the paper family's standard
"progressive recall" curve.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

from repro.blocking.block import BlockCollection
from repro.metablocking.index import CSRBlockIndex
from repro.metablocking.weights import WeightingScheme

_Edge = tuple[tuple[int, int], float]


def _edge_rank(item: _Edge) -> tuple[float, tuple[int, int]]:
    """Best first: descending weight, ties broken by canonical pair order."""
    return (-item[1], item[0])


def _weighted_edges_by_node(
    index: CSRBlockIndex, scheme: WeightingScheme
) -> list[list[_Edge]]:
    """One kernel sweep: per dense node, its weighted edges (lower endpoint).

    Every edge appears exactly once, in the node-major first-touch order the
    graph builder uses — weights accumulate in the same order and come out
    float-identical to ``weight_all_edges(build_blocking_graph(blocks))``,
    whichever kernel backend drives the sweep.
    """
    plan = index.weight_plan(scheme, use_entropy=False)
    return index.kernel().weighted_edges_by_node(plan)


class ProgressiveSortedComparisons:
    """Emit candidate pairs in globally decreasing weight order.

    Parameters
    ----------
    weighting:
        Edge weighting scheme used to rank the comparisons.
    """

    def __init__(
        self,
        weighting: str | WeightingScheme = WeightingScheme.CBS,
        *,
        kernel_backend: str | None = None,
        buffer_backend: str | None = None,
    ) -> None:
        self.weighting = WeightingScheme.parse(weighting)
        self.kernel_backend = kernel_backend
        self.buffer_backend = buffer_backend

    def rank(self, blocks: BlockCollection) -> list[tuple[int, int]]:
        """Return every distinct comparison, best first."""
        return list(self.stream(blocks))

    def stream(self, blocks: BlockCollection) -> Iterator[tuple[int, int]]:
        """Iterate the ranked comparisons lazily (heap merge of node runs).

        Each node's emitted edges form one run, sorted by the rank key; the
        runs are merged through a heap, so pulling the best *k* comparisons
        costs O(k log n) pops after the weighting sweep — no global sort.
        """
        index = CSRBlockIndex.from_blocks(
            blocks, backend=self.kernel_backend, buffer_backend=self.buffer_backend
        )
        try:
            iterator = self.stream_index(index)
        finally:
            index.close()
        yield from iterator

    def stream_index(self, index: CSRBlockIndex) -> Iterator[tuple[int, int]]:
        """:meth:`stream` over a caller-owned, already-built index.

        The service layer keeps one long-lived index per collection and
        answers every budgeted match query from it — same ranking, same heap
        merge, but the index is neither rebuilt nor closed here.  The
        weighting sweep runs eagerly (so the caller may close the index as
        soon as this returns); only the merge is lazy.
        """
        runs = [
            sorted(edges, key=_edge_rank)
            for edges in _weighted_edges_by_node(index, self.weighting)
            if edges
        ]

        def _merge() -> Iterator[tuple[int, int]]:
            for pair, _weight in heapq.merge(*runs, key=_edge_rank):
                yield pair

        return _merge()


class ProgressiveNodeScheduling:
    """Emit comparisons node by node, best nodes and best neighbours first."""

    def __init__(
        self,
        weighting: str | WeightingScheme = WeightingScheme.CBS,
        *,
        kernel_backend: str | None = None,
        buffer_backend: str | None = None,
    ) -> None:
        self.weighting = WeightingScheme.parse(weighting)
        self.kernel_backend = kernel_backend
        self.buffer_backend = buffer_backend

    def rank(self, blocks: BlockCollection) -> list[tuple[int, int]]:
        """Return every distinct comparison following the node schedule."""
        return list(self.stream(blocks))

    def stream(self, blocks: BlockCollection) -> Iterator[tuple[int, int]]:
        """Iterate the scheduled comparisons lazily, one node at a time."""
        index = CSRBlockIndex.from_blocks(
            blocks, backend=self.kernel_backend, buffer_backend=self.buffer_backend
        )
        try:
            iterator = self.stream_index(index)
        finally:
            index.close()
        yield from iterator

    def stream_index(self, index: CSRBlockIndex) -> Iterator[tuple[int, int]]:
        """:meth:`stream` over a caller-owned, already-built index.

        Sweep, schedule and per-node sorting all run eagerly (the caller may
        close the index as soon as this returns); the emission loop is lazy.
        """
        per_node = _weighted_edges_by_node(index, self.weighting)

        # Per-node incident edges, built in edge-emission order (the order the
        # node-priority float sums depend on), then each list sorted exactly
        # once up front — not per visit inside the emission loop.
        incident: dict[int, list[_Edge]] = {}
        for edges in per_node:
            for edge in edges:
                pair, _weight = edge
                for node in pair:
                    incident.setdefault(node, []).append(edge)
        priority = {
            node: sum(w for _p, w in edges) / len(edges)
            for node, edges in incident.items()
        }
        for edges in incident.values():
            edges.sort(key=_edge_rank)

        def _emit() -> Iterator[tuple[int, int]]:
            emitted: set[tuple[int, int]] = set()
            for node in sorted(priority, key=lambda n: (-priority[n], n)):
                for pair, _weight in incident[node]:
                    if pair in emitted:
                        continue
                    emitted.add(pair)
                    yield pair

        return _emit()


def progressive_recall_curve(
    ranking: list[tuple[int, int]],
    true_pairs: set[tuple[int, int]],
    *,
    num_points: int = 10,
) -> list[dict[str, float]]:
    """Recall after the first k comparisons, for ``num_points`` budgets.

    Returns rows with ``comparisons`` (the budget) and ``recall`` — the series
    plotted by progressive-ER papers.
    """
    if not ranking or not true_pairs:
        return []
    points = []
    total = len(ranking)
    found = 0
    truth = set(true_pairs)
    checkpoints = {max(1, round(total * (i + 1) / num_points)) for i in range(num_points)}
    for index, pair in enumerate(ranking, start=1):
        if pair in truth:
            found += 1
        if index in checkpoints:
            points.append(
                {"comparisons": index, "recall": round(found / len(truth), 6)}
            )
    return points
