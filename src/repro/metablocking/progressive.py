"""Progressive meta-blocking (extension).

The SparkER authors' related work on *schema-agnostic progressive entity
resolution* (Simonini et al., ICDE 2018, cited as [6] in the demo paper)
emits candidate comparisons in decreasing order of estimated match likelihood
so that, under a limited comparison budget, most true matches are found early.
This module implements the two progressive strategies that build directly on
the meta-blocking graph of this package:

* :class:`ProgressiveSortedComparisons` — weight every edge of the blocking
  graph and emit edges globally sorted by decreasing weight (Progressive
  Global Sorting).
* :class:`ProgressiveNodeScheduling` — order the nodes by the average weight
  of their neighbourhood and emit, for each node in turn, its best unseen
  neighbours first (a simplified Progressive Profile Scheduling).

Both produce a deterministic ranking of candidate pairs; the benchmark
``bench_extension_progressive.py`` measures recall as a function of the number
of comparisons performed, the paper family's standard "progressive recall"
curve.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.blocking.block import BlockCollection
from repro.metablocking.graph import build_blocking_graph
from repro.metablocking.weights import WeightingScheme, weight_all_edges


class ProgressiveSortedComparisons:
    """Emit candidate pairs in globally decreasing weight order.

    Parameters
    ----------
    weighting:
        Edge weighting scheme used to rank the comparisons.
    """

    def __init__(self, weighting: str | WeightingScheme = WeightingScheme.CBS) -> None:
        self.weighting = WeightingScheme.parse(weighting)

    def rank(self, blocks: BlockCollection) -> list[tuple[int, int]]:
        """Return every distinct comparison, best first."""
        graph = build_blocking_graph(blocks)
        weights = weight_all_edges(graph, self.weighting)
        return [
            pair
            for pair, _weight in sorted(weights.items(), key=lambda item: (-item[1], item[0]))
        ]

    def stream(self, blocks: BlockCollection) -> Iterator[tuple[int, int]]:
        """Iterate the ranked comparisons lazily."""
        yield from self.rank(blocks)


class ProgressiveNodeScheduling:
    """Emit comparisons node by node, best nodes and best neighbours first."""

    def __init__(self, weighting: str | WeightingScheme = WeightingScheme.CBS) -> None:
        self.weighting = WeightingScheme.parse(weighting)

    def rank(self, blocks: BlockCollection) -> list[tuple[int, int]]:
        """Return every distinct comparison following the node schedule."""
        graph = build_blocking_graph(blocks)
        weights = weight_all_edges(graph, self.weighting)

        # Per-node incident edges and average weight (the node's "priority").
        incident: dict[int, list[tuple[tuple[int, int], float]]] = {}
        for pair, weight in weights.items():
            for node in pair:
                incident.setdefault(node, []).append((pair, weight))
        priority = {
            node: sum(w for _p, w in edges) / len(edges) for node, edges in incident.items()
        }

        emitted: set[tuple[int, int]] = set()
        ranking: list[tuple[int, int]] = []
        for node in sorted(priority, key=lambda n: (-priority[n], n)):
            for pair, _weight in sorted(incident[node], key=lambda item: (-item[1], item[0])):
                if pair in emitted:
                    continue
                emitted.add(pair)
                ranking.append(pair)
        return ranking

    def stream(self, blocks: BlockCollection) -> Iterator[tuple[int, int]]:
        """Iterate the scheduled comparisons lazily."""
        yield from self.rank(blocks)


def progressive_recall_curve(
    ranking: list[tuple[int, int]],
    true_pairs: set[tuple[int, int]],
    *,
    num_points: int = 10,
) -> list[dict[str, float]]:
    """Recall after the first k comparisons, for ``num_points`` budgets.

    Returns rows with ``comparisons`` (the budget) and ``recall`` — the series
    plotted by progressive-ER papers.
    """
    if not ranking or not true_pairs:
        return []
    points = []
    total = len(ranking)
    found = 0
    truth = set(true_pairs)
    checkpoints = {max(1, round(total * (i + 1) / num_points)) for i in range(num_points)}
    for index, pair in enumerate(ranking, start=1):
        if pair in truth:
            found += 1
        if index in checkpoints:
            points.append(
                {"comparisons": index, "recall": round(found / len(truth), 6)}
            )
    return points
