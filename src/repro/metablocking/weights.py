"""Edge weighting schemes for meta-blocking.

The standard schemes of Papadakis et al. (EDBT 2016), all supported by the
original SparkER:

* **CBS** (Common Blocks Scheme): number of blocks shared by the two profiles.
* **ECBS** (Enhanced CBS): CBS scaled by the rarity of each profile,
  ``CBS * log(B / B_i) * log(B / B_j)`` with ``B`` the total number of blocks.
* **JS** (Jaccard Scheme): ``CBS / (B_i + B_j - CBS)``.
* **EJS** (Enhanced JS): JS scaled by the rarity of each node's degree,
  ``JS * log(E / degree_i) * log(E / degree_j)`` with ``E`` the number of
  graph edges.
* **ARCS** (Aggregate Reciprocal Comparisons Scheme): sum over shared blocks
  of the reciprocal of the block's comparison cardinality.
"""

from __future__ import annotations

import math
from enum import Enum

from repro.exceptions import MetaBlockingError
from repro.metablocking.graph import BlockingGraph, EdgeInfo


class WeightingScheme(str, Enum):
    """Available edge weighting schemes."""

    CBS = "cbs"
    ECBS = "ecbs"
    JS = "js"
    EJS = "ejs"
    ARCS = "arcs"

    @classmethod
    def parse(cls, value: "str | WeightingScheme") -> "WeightingScheme":
        """Parse a scheme name (case insensitive)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except ValueError as exc:
            valid = ", ".join(s.value for s in cls)
            raise MetaBlockingError(
                f"unknown weighting scheme {value!r}; valid schemes: {valid}"
            ) from exc


def compute_edge_weight(
    scheme: WeightingScheme,
    info: EdgeInfo,
    *,
    blocks_a: int,
    blocks_b: int,
    total_blocks: int,
    degree_a: int = 0,
    degree_b: int = 0,
    total_edges: int = 0,
) -> float:
    """Compute the weight of one edge under ``scheme``.

    Parameters
    ----------
    info:
        Aggregate co-occurrence information of the edge.
    blocks_a / blocks_b:
        Number of blocks containing each endpoint.
    total_blocks:
        Number of blocks in the collection (ECBS).
    degree_a / degree_b / total_edges:
        Node degrees and edge count of the blocking graph (EJS only).
    """
    cbs = float(info.common_blocks)
    if scheme is WeightingScheme.CBS:
        return cbs
    if scheme is WeightingScheme.ARCS:
        return info.arcs
    if scheme is WeightingScheme.JS:
        denominator = blocks_a + blocks_b - cbs
        return cbs / denominator if denominator > 0 else 0.0
    if scheme is WeightingScheme.ECBS:
        if blocks_a == 0 or blocks_b == 0 or total_blocks == 0:
            return 0.0
        return (
            cbs
            * math.log10(max(total_blocks / blocks_a, 1.0) + 1e-12)
            * math.log10(max(total_blocks / blocks_b, 1.0) + 1e-12)
        )
    if scheme is WeightingScheme.EJS:
        denominator = blocks_a + blocks_b - cbs
        js = cbs / denominator if denominator > 0 else 0.0
        if degree_a == 0 or degree_b == 0 or total_edges == 0:
            return js
        return (
            js
            * math.log10(max(total_edges / degree_a, 1.0) + 1e-12)
            * math.log10(max(total_edges / degree_b, 1.0) + 1e-12)
        )
    raise MetaBlockingError(f"unsupported weighting scheme: {scheme}")


def weight_all_edges(
    graph: BlockingGraph,
    scheme: "str | WeightingScheme" = WeightingScheme.CBS,
) -> dict[tuple[int, int], float]:
    """Weight every edge of ``graph`` under ``scheme``.

    Returns the mapping (a, b) → weight with pairs in canonical order.
    """
    scheme = WeightingScheme.parse(scheme)
    degrees: dict[int, int] = {}
    if scheme is WeightingScheme.EJS:
        degrees = graph.degrees()

    weights: dict[tuple[int, int], float] = {}
    for (a, b), info in graph.edges.items():
        weights[(a, b)] = compute_edge_weight(
            scheme,
            info,
            blocks_a=graph.blocks_per_profile.get(a, 0),
            blocks_b=graph.blocks_per_profile.get(b, 0),
            total_blocks=graph.num_blocks,
            degree_a=degrees.get(a, 0),
            degree_b=degrees.get(b, 0),
            total_edges=graph.num_edges,
        )
    return weights
