"""Broadcast-join parallel meta-blocking on the mini engine.

The paper (Section 2.1) describes the parallel meta-blocking as *inspired by
the broadcast join*: the nodes of the blocking graph are partitioned, and the
information needed to materialise the neighbourhood of each node (a compact
block index) is broadcast to every partition; each task then materialises one
node neighbourhood at a time, computes the edge weights and applies the
pruning function locally.

This module reproduces that structure on the CSR-backed
:class:`~repro.metablocking.index.CSRBlockIndex`:

1. The CSR index — offset arrays, per-block cardinality/entropy vectors and a
   precomputed degree vector — is built once and shipped via
   :meth:`repro.engine.context.EngineContext.broadcast`.
2. The profile ids are parallelised into an RDD and processed partition by
   partition; every task materialises the neighbourhoods of its nodes through
   the index's scratch-buffer kernel, **exactly once per job**.  Each edge is
   emitted from its lower endpoint only, so no dedup shuffle is needed, and
   degree lookups (EJS) read the broadcast degree vector instead of
   re-materialising the neighbour's neighbourhood per edge.
3. For the node-centric strategies (WNP / CNP) a per-node incident-edge
   adjacency index is built once from the weighted edges and broadcast;
   per-node pruning decisions are combined through a ``reduceByKey`` so that
   OR / AND (reciprocal) semantics match the sequential
   :class:`~repro.metablocking.metablocker.MetaBlocker` exactly.  The vote
   stage ships a *compact wire format*: each task emits ``(edge id, 1)``
   votes — dense integers assigned in canonical pair order — instead of full
   ``((a, b), (weight, count))`` tuples, and the driver rebuilds the retained
   pairs and their weights from the already-collected weight map.  Only tiny
   int pairs cross the shuffle (and, under the process executor, the IPC
   boundary); map-side combine in the workers merges the two endpoint votes
   of an edge before they are ever serialised.

The sequential meta-blocker's graph builder runs on the *same* kernel, with
the same per-edge accumulation order, so the output (retained edges and their
float weights) is equal bit-for-bit; the test-suite asserts this equivalence
across the full weighting × pruning × entropy grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocking.block import BlockCollection
from repro.engine.context import EngineContext
from repro.engine.executors import MultiprocessingExecutor
from repro.exceptions import MetaBlockingError
from repro.metablocking import backends as _backends
from repro.metablocking.graph import EdgeInfo
from repro.metablocking.index import CSRBlockIndex
from repro.metablocking.metablocker import MetaBlockingResult
from repro.metablocking.pruning import (
    CardinalityEdgePruning,
    CardinalityNodePruning,
    PruningStrategy,
    WeightedEdgePruning,
    WeightedNodePruning,
    default_cep_k,
    default_cnp_k,
    make_pruning_strategy,
)
from repro.metablocking.weights import WeightingScheme


@dataclass
class CompactBlockIndex:
    """The dict-of-tuples view of a block collection (legacy index).

    Superseded by :class:`~repro.metablocking.index.CSRBlockIndex` on the hot
    path; kept because its per-call materialisation is the reference point of
    ``benchmarks/bench_metablocking_kernel.py`` and a convenient introspection
    structure.

    ``profile_blocks`` maps each profile id to the ids of the blocks that
    contain it; ``block_members`` maps each block id to its two member-id
    tuples (source 0, source 1); ``block_cardinality`` and ``block_entropy``
    carry the per-block comparison count and entropy; ``profile_source``
    records each profile's source side once, so neighbourhood materialisation
    never scans a member tuple for the profile.
    """

    profile_blocks: dict[int, list[int]] = field(default_factory=dict)
    block_members: dict[int, tuple[tuple[int, ...], tuple[int, ...]]] = field(
        default_factory=dict
    )
    block_cardinality: dict[int, int] = field(default_factory=dict)
    block_entropy: dict[int, float] = field(default_factory=dict)
    profile_source: dict[int, int] = field(default_factory=dict)
    clean_clean: bool = False

    @classmethod
    def from_blocks(cls, blocks: BlockCollection) -> "CompactBlockIndex":
        """Build the index from a block collection."""
        index = cls(clean_clean=blocks.clean_clean)
        for block_id, block in enumerate(blocks):
            cardinality = block.num_comparisons()
            if cardinality == 0:
                continue
            index.block_members[block_id] = (
                tuple(sorted(block.profiles_source0)),
                tuple(sorted(block.profiles_source1)),
            )
            index.block_cardinality[block_id] = cardinality
            index.block_entropy[block_id] = block.entropy
            for profile_id in block.profiles_source0:
                index.profile_source[profile_id] = 0
            for profile_id in block.profiles_source1:
                index.profile_source.setdefault(profile_id, 1)
            for profile_id in block.all_profiles():
                index.profile_blocks.setdefault(profile_id, []).append(block_id)
        return index

    @property
    def num_blocks(self) -> int:
        return len(self.block_members)

    def blocks_of(self, profile_id: int) -> list[int]:
        """Block ids containing ``profile_id``."""
        return self.profile_blocks.get(profile_id, [])

    def neighbourhood(self, profile_id: int) -> dict[int, EdgeInfo]:
        """Materialise the blocking-graph neighbourhood of one node.

        For clean-clean collections only cross-source neighbours are produced;
        for dirty collections every co-occurring profile is a neighbour.
        """
        source0_here = self.profile_source.get(profile_id, 0) == 0
        neighbours: dict[int, EdgeInfo] = {}
        for block_id in self.blocks_of(profile_id):
            members0, members1 = self.block_members[block_id]
            cardinality = self.block_cardinality[block_id]
            entropy = self.block_entropy[block_id]
            if self.clean_clean:
                others = members1 if source0_here else members0
            else:
                others = tuple(m for m in members0 + members1 if m != profile_id)
            for other in others:
                if other == profile_id:
                    continue
                info = neighbours.get(other)
                if info is None:
                    info = EdgeInfo()
                    neighbours[other] = info
                info.common_blocks += 1
                info.arcs += 1.0 / cardinality
                info.entropy_sum += entropy
        return neighbours


def incident_edge_index(
    weights: dict[tuple[int, int], float]
) -> dict[int, list[tuple[tuple[int, int], float]]]:
    """Group the weighted edges by incident node — built once per job.

    Delegates to the sequential pruning strategies' incidence builder so both
    paths share one definition of the per-node list order (the order the WNP
    float sums depend on); the parallel node-pruning tasks then look their
    node up in O(degree) instead of scanning every edge.
    """
    return PruningStrategy._node_incidence(weights)


def edge_id_incidence(
    weights: dict[tuple[int, int], float]
) -> tuple[list[tuple[int, int]], dict[int, list[tuple[int, float]]]]:
    """Compact per-node incidence for the vote-stage wire format.

    Returns ``(edge_list, incidence)``: ``edge_list`` assigns every edge a
    dense integer id in *canonical pair order* (sorted pairs), so ordering by
    ``(-weight, edge_id)`` equals the sequential tie-break by
    ``(-weight, pair)``; ``incidence`` maps each node to its incident
    ``(edge id, weight)`` entries **in weight-map insertion order** — the
    exact order :meth:`PruningStrategy._node_incidence` produces, which the
    WNP per-node float sums depend on bit-for-bit.
    """
    edge_list = sorted(weights)
    edge_ids = {pair: edge_id for edge_id, pair in enumerate(edge_list)}
    incidence: dict[int, list[tuple[int, float]]] = {}
    for pair, weight in weights.items():
        entry = (edge_ids[pair], weight)
        a, b = pair
        incidence.setdefault(a, []).append(entry)
        incidence.setdefault(b, []).append(entry)
    return edge_list, incidence


# ------------------------------------------------------------ task functions
# The per-element functions of the broadcast-join jobs are module-level
# callable classes with bound arguments (not closures), so the fused stage
# chains pickle and the jobs run unchanged on the multiprocessing executor.


class _EdgeWeigher:
    """node → ``[((a, b), weight)]`` for the edges at the node's lower endpoint.

    Each task materialises the node's neighbourhood once through the
    broadcast kernel and emits only the edges whose *lower* endpoint is the
    node, so every edge is produced exactly once with no dedup shuffle.  EJS
    reads both endpoints' degrees and the global edge count from the
    broadcast degree vector — no per-neighbour re-materialisation.  The
    per-edge loop itself lives on the kernel
    (:meth:`~repro.metablocking.backends.PythonKernel.weighted_edges`), so
    there is exactly one scalar reference path for every driver.
    """

    __slots__ = ("broadcast", "scheme", "use_entropy")

    def __init__(self, broadcast, scheme: WeightingScheme, use_entropy: bool) -> None:
        self.broadcast = broadcast
        self.scheme = scheme
        self.use_entropy = use_entropy

    def __call__(self, profile_id: int) -> list[tuple[tuple[int, int], float]]:
        index: CSRBlockIndex = self.broadcast.value
        node = index.node_of[profile_id]
        # The plan resolves degrees (EJS) on a private sweep before the shared
        # kernel materialises this node's neighbourhood; it is cached on the
        # index, so the resolution happens once per process, not per node.
        plan = index.weight_plan(self.scheme, self.use_entropy)
        node_ids = index.node_ids
        return [
            ((profile_id, node_ids[other]), weight)
            for other, weight in index.kernel().weighted_edges(node, plan)
        ]


class _PartitionEdgeWeigher:
    """partition of nodes → the same ``((a, b), weight)`` records, batched.

    The numpy-backend counterpart of :class:`_EdgeWeigher`: one vectorised
    kernel sweep per partition instead of one interpreted loop per node.  The
    emitted record stream — content *and* order — is identical, so the
    collected weight map (and every float sum derived from its insertion
    order) is bit-for-bit the same.
    """

    __slots__ = ("broadcast", "scheme", "use_entropy")

    def __init__(self, broadcast, scheme: WeightingScheme, use_entropy: bool) -> None:
        self.broadcast = broadcast
        self.scheme = scheme
        self.use_entropy = use_entropy

    def __call__(self, profile_ids) -> list[tuple[tuple[int, int], float]]:
        index: CSRBlockIndex = self.broadcast.value
        plan = index.weight_plan(self.scheme, self.use_entropy)
        return index.kernel().partition_weighted_edges(list(profile_ids), plan)


class _NodeDegree:
    """profile id → blocking-graph degree, read from the broadcast vector."""

    __slots__ = ("broadcast",)

    def __init__(self, broadcast) -> None:
        self.broadcast = broadcast

    def __call__(self, profile_id: int) -> int:
        index: CSRBlockIndex = self.broadcast.value
        # int() guards the shared-memory case where the vector is an ndarray:
        # task outputs must stay plain python scalars on the wire.
        return int(index.degree_vector()[index.node_of[profile_id]])


class _WeightedNodeVotes:
    """WNP vote task: retain a node's incident edges above its local mean.

    Emits compact ``(edge id, 1)`` votes — the slim wire format of the vote
    shuffle.  The threshold float sum runs over the incidence list in
    weight-map insertion order, matching the sequential WNP bit-for-bit.
    """

    __slots__ = ("incidence_broadcast",)

    def __init__(self, incidence_broadcast) -> None:
        self.incidence_broadcast = incidence_broadcast

    def __call__(self, node: int) -> list[tuple[int, int]]:
        incident = self.incidence_broadcast.value.get(node)
        if not incident:
            return []
        threshold = sum(w for _e, w in incident) / len(incident)
        return [(edge_id, 1) for edge_id, w in incident if w >= threshold]


class _CardinalityNodeVotes:
    """CNP vote task: retain a node's top-``k`` incident edges.

    Edge ids are canonical-pair-ordered, so the ``(-weight, edge_id)`` rank
    key reproduces the sequential ``(-weight, pair)`` tie-break exactly.
    """

    __slots__ = ("incidence_broadcast", "k")

    def __init__(self, incidence_broadcast, k: int) -> None:
        self.incidence_broadcast = incidence_broadcast
        self.k = k

    def __call__(self, node: int) -> list[tuple[int, int]]:
        incident = self.incidence_broadcast.value.get(node)
        if not incident:
            return []
        ranked = sorted(incident, key=_rank_key)
        return [(edge_id, 1) for edge_id, _w in ranked[: self.k]]


def _rank_key(item: tuple[int, float]) -> tuple[float, int]:
    return (-item[1], item[0])


def _sum_votes(a: int, b: int) -> int:
    """Combine the endpoint vote counts of one edge."""
    return a + b


class ParallelMetaBlocker:
    """Parallel meta-blocking with the broadcast-join structure of SparkER.

    Parameters
    ----------
    context:
        The engine context the jobs run on.
    weighting / pruning / use_entropy:
        Same meaning as for :class:`~repro.metablocking.metablocker.MetaBlocker`.
    kernel_backend / buffer_backend:
        Kernel backend and CSR buffer backend specs, also as for
        :class:`~repro.metablocking.metablocker.MetaBlocker`; the memmap
        buffer file lands under the context's ``tmp_dir``.
    """

    def __init__(
        self,
        context: EngineContext,
        weighting: str | WeightingScheme = WeightingScheme.CBS,
        pruning: str | PruningStrategy = "wnp",
        *,
        use_entropy: bool = False,
        kernel_backend: str | None = None,
        buffer_backend: str | None = None,
    ) -> None:
        self.context = context
        self.weighting = WeightingScheme.parse(weighting)
        self.pruning = make_pruning_strategy(pruning)
        self.use_entropy = use_entropy
        self.kernel_backend = kernel_backend
        self.buffer_backend = buffer_backend

    # ------------------------------------------------------------------ public
    def run(self, blocks: BlockCollection) -> MetaBlockingResult:
        """Run the parallel meta-blocking over ``blocks``."""
        index = CSRBlockIndex.from_blocks(
            blocks,
            backend=self.kernel_backend,
            buffer_backend=self.buffer_backend,
            tmp_dir=getattr(self.context, "tmp_dir", None),
        )
        if index.num_nodes == 0:
            index.close()
            return MetaBlockingResult()
        # Materialise the degree vector driver-side so the broadcast ships the
        # index with degrees precomputed (one kernel sweep, reused everywhere).
        index.degree_vector()
        if index.backend == "numpy" and isinstance(
            self.context.executor, MultiprocessingExecutor
        ):
            # Ship the ndarray buffers through one shared-memory segment: the
            # broadcast pickle then carries only the segment reference, and
            # every pool worker maps the index instead of deserialising a
            # copy.  The broadcast (and its segment) is run-scoped, so the
            # segment is unlinked when this run finishes — with
            # EngineContext.stop() and index garbage collection as backstops
            # for aborted runs.
            index.export_shared()
        broadcast = self.context.broadcast(index)
        node_ids = list(index.node_ids)

        node_rdd = self.context.parallelize(node_ids)

        try:
            if isinstance(self.pruning, WeightedEdgePruning):
                retained = self._run_weighted_edge(node_rdd, broadcast)
            elif isinstance(self.pruning, CardinalityEdgePruning):
                retained = self._run_cardinality_edge(node_rdd, broadcast)
            elif isinstance(self.pruning, CardinalityNodePruning):
                retained = self._run_node_cardinality(node_rdd, broadcast, self.pruning)
            elif isinstance(self.pruning, WeightedNodePruning):
                retained = self._run_node_weighted(node_rdd, broadcast, self.pruning)
            else:
                raise MetaBlockingError(
                    f"unsupported pruning strategy for the parallel meta-blocker: "
                    f"{type(self.pruning).__name__}"
                )

            num_edges = self._count_edges(node_rdd, broadcast)
        finally:
            index.close()
        return MetaBlockingResult(
            candidate_pairs=set(retained),
            retained_edges=retained,
            graph_edges=num_edges,
            graph_nodes=len(node_ids),
        )

    def stream_retained(
        self,
        blocks: BlockCollection,
        chunk_edges: int = _backends.DEFAULT_CHUNK_EDGES,
    ):
        """Yield the retained edges in bounded chunks of ``((a, b), weight)``.

        The concatenation of the chunks equals ``run(blocks).retained_edges
        .items()`` exactly.  The broadcast-join design collects the full
        weight map on the driver (that O(E) dict is inherent to the
        structure, as in SparkER's driver-side collect), so this wrapper
        bounds the *consumer's* footprint, not the driver's — use the
        sequential :meth:`MetaBlocker.stream_retained` numpy path for a
        genuinely O(chunk) pipeline.
        """
        retained = self.run(blocks).retained_edges
        items = list(retained.items())
        for start in range(0, len(items), chunk_edges):
            yield items[start : start + chunk_edges]

    def __call__(self, blocks: BlockCollection) -> MetaBlockingResult:
        return self.run(blocks)

    # -------------------------------------------------------------- internals
    def _edge_weigher(self, broadcast) -> _EdgeWeigher:
        """The picklable node → edge-weights task function of this job."""
        return _EdgeWeigher(broadcast, self.weighting, self.use_entropy)

    def _all_edge_weights(self, node_rdd, broadcast) -> dict[tuple[int, int], float]:
        """Distributed computation of every edge weight (one emission per edge).

        The collected dict preserves the node-major, first-touch edge order —
        the same insertion order the sequential graph builder produces — so
        every downstream float sum (WEP's global mean, WNP's per-node means)
        is bit-for-bit identical to the sequential path.

        Under the numpy backend the per-node task is replaced by a
        per-partition task (one vectorised sweep per partition); the record
        stream, and with it the collected map, is identical.
        """
        # Peek at the private value: a driver-side .value read would inflate
        # the broadcast access metrics without being a real task-side read.
        if broadcast._value.backend == "numpy":
            weigh = _PartitionEdgeWeigher(broadcast, self.weighting, self.use_entropy)
            return node_rdd.mapPartitions(weigh, name="metablocking.weights").collectAsMap()
        weigh = self._edge_weigher(broadcast)
        return node_rdd.flatMap(weigh, name="metablocking.weights").collectAsMap()

    def _count_edges(self, node_rdd, broadcast) -> int:
        total = node_rdd.map(_NodeDegree(broadcast), name="metablocking.degree").sum()
        return total // 2

    # --- strategy-specific drivers ------------------------------------------
    def _run_weighted_edge(self, node_rdd, broadcast) -> dict[tuple[int, int], float]:
        weights = self._all_edge_weights(node_rdd, broadcast)
        if not weights:
            return {}
        threshold = sum(weights.values()) / len(weights)
        return {pair: w for pair, w in weights.items() if w >= threshold}

    def _run_cardinality_edge(self, node_rdd, broadcast) -> dict[tuple[int, int], float]:
        weights = self._all_edge_weights(node_rdd, broadcast)
        if not weights:
            return {}
        pruning: CardinalityEdgePruning = self.pruning  # type: ignore[assignment]
        k = pruning.k
        if k is None:
            index: CSRBlockIndex = broadcast.value
            k = default_cep_k(int(sum(index.node_block_count)))
        ranked = sorted(weights.items(), key=lambda item: (-item[1], item[0]))
        return dict(ranked[:k])

    def _retained_from_votes(
        self,
        votes: dict[int, int],
        edge_list: list[tuple[int, int]],
        weights: dict[tuple[int, int], float],
        required: int,
    ) -> dict[tuple[int, int], float]:
        """Rebuild the retained edges from compact vote counts, driver-side.

        The shuffle only carried edge ids; pairs and their exact float
        weights come back from ``edge_list`` and the collected weight map.
        """
        retained: dict[tuple[int, int], float] = {}
        for edge_id, count in votes.items():
            if count >= required:
                pair = edge_list[edge_id]
                retained[pair] = weights[pair]
        return retained

    def _run_node_weighted(
        self, node_rdd, broadcast, pruning: WeightedNodePruning
    ) -> dict[tuple[int, int], float]:
        weights = self._all_edge_weights(node_rdd, broadcast)
        if not weights:
            return {}
        edge_list, incidence = edge_id_incidence(weights)
        incidence_broadcast = self.context.broadcast(incidence)
        votes = (
            node_rdd.flatMap(_WeightedNodeVotes(incidence_broadcast), name="wnp.votes")
            .reduceByKey(_sum_votes)
            .collectAsMap()
        )
        required = 2 if pruning.reciprocal else 1
        return self._retained_from_votes(votes, edge_list, weights, required)

    def _run_node_cardinality(
        self, node_rdd, broadcast, pruning: CardinalityNodePruning
    ) -> dict[tuple[int, int], float]:
        weights = self._all_edge_weights(node_rdd, broadcast)
        if not weights:
            return {}
        index: CSRBlockIndex = broadcast.value
        k = pruning.k
        if k is None:
            k = default_cnp_k(int(sum(index.node_block_count)), index.num_nodes)
        edge_list, incidence = edge_id_incidence(weights)
        incidence_broadcast = self.context.broadcast(incidence)
        votes = (
            node_rdd.flatMap(
                _CardinalityNodeVotes(incidence_broadcast, k), name="cnp.votes"
            )
            .reduceByKey(_sum_votes)
            .collectAsMap()
        )
        required = 2 if pruning.reciprocal else 1
        return self._retained_from_votes(votes, edge_list, weights, required)


def make_meta_blocker(
    engine: "EngineContext | None" = None,
    *,
    weighting: "str | WeightingScheme" = WeightingScheme.CBS,
    pruning: "str | PruningStrategy" = "wep",
    use_entropy: bool = False,
    kernel_backend: "str | None" = None,
    buffer_backend: "str | None" = None,
    tmp_dir: "str | None" = None,
) -> "ParallelMetaBlocker | MetaBlocker":
    """Build the meta-blocker matching the execution substrate.

    The broadcast-join :class:`ParallelMetaBlocker` when an engine context is
    given, the sequential reference :class:`~repro.metablocking.metablocker.
    MetaBlocker` otherwise — the two are bit-for-bit equivalent, on either
    kernel backend.  Shared by the legacy :class:`repro.core.blocker.Blocker`
    and the pipeline stage adapter.  ``tmp_dir`` roots the memmap buffer
    files of the sequential path; the parallel path takes the engine
    context's ``tmp_dir``.
    """
    from repro.metablocking.metablocker import MetaBlocker

    if engine is not None:
        return ParallelMetaBlocker(
            engine,
            weighting=weighting,
            pruning=pruning,
            use_entropy=use_entropy,
            kernel_backend=kernel_backend,
            buffer_backend=buffer_backend,
        )
    return MetaBlocker(
        weighting=weighting,
        pruning=pruning,
        use_entropy=use_entropy,
        kernel_backend=kernel_backend,
        buffer_backend=buffer_backend,
        tmp_dir=tmp_dir,
    )
