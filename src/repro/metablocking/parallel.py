"""Broadcast-join parallel meta-blocking on the mini engine.

The paper (Section 2.1) describes the parallel meta-blocking as *inspired by
the broadcast join*: the nodes of the blocking graph are partitioned, and the
information needed to materialise the neighbourhood of each node (a compact
block index) is broadcast to every partition; each task then materialises one
node neighbourhood at a time, computes the edge weights and applies the
pruning function locally.

This module reproduces that structure:

1. A compact, serialisable block index (:class:`CompactBlockIndex`) is built
   from the block collection and shipped via
   :meth:`repro.engine.context.EngineContext.broadcast`.
2. The profile ids are parallelised into an RDD and processed partition by
   partition; every task materialises the neighbourhoods of its nodes from the
   broadcast index only.
3. Node-level pruning decisions are combined through a ``reduceByKey`` so that
   OR / AND (reciprocal) semantics match the sequential
   :class:`~repro.metablocking.metablocker.MetaBlocker` exactly.

For the global strategies (WEP / CEP) a first distributed pass computes the
edge weights and the global statistic (mean weight / top-K cut), and a second
pass filters — the same two-job structure the Spark implementation uses.

The output is guaranteed to equal the sequential meta-blocker's output; the
test-suite asserts this equivalence property on random datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocking.block import BlockCollection
from repro.engine.context import EngineContext
from repro.exceptions import MetaBlockingError
from repro.metablocking.metablocker import MetaBlockingResult
from repro.metablocking.pruning import (
    CardinalityEdgePruning,
    CardinalityNodePruning,
    PruningStrategy,
    WeightedEdgePruning,
    WeightedNodePruning,
    make_pruning_strategy,
)
from repro.metablocking.weights import WeightingScheme, compute_edge_weight
from repro.metablocking.graph import EdgeInfo


@dataclass
class CompactBlockIndex:
    """The broadcastable view of a block collection.

    ``profile_blocks`` maps each profile id to the ids of the blocks that
    contain it; ``block_members`` maps each block id to its two member-id
    tuples (source 0, source 1); ``block_cardinality`` and ``block_entropy``
    carry the per-block comparison count and entropy.
    """

    profile_blocks: dict[int, list[int]] = field(default_factory=dict)
    block_members: dict[int, tuple[tuple[int, ...], tuple[int, ...]]] = field(
        default_factory=dict
    )
    block_cardinality: dict[int, int] = field(default_factory=dict)
    block_entropy: dict[int, float] = field(default_factory=dict)
    clean_clean: bool = False

    @classmethod
    def from_blocks(cls, blocks: BlockCollection) -> "CompactBlockIndex":
        """Build the index from a block collection."""
        index = cls(clean_clean=blocks.clean_clean)
        for block_id, block in enumerate(blocks):
            cardinality = block.num_comparisons()
            if cardinality == 0:
                continue
            index.block_members[block_id] = (
                tuple(sorted(block.profiles_source0)),
                tuple(sorted(block.profiles_source1)),
            )
            index.block_cardinality[block_id] = cardinality
            index.block_entropy[block_id] = block.entropy
            for profile_id in block.all_profiles():
                index.profile_blocks.setdefault(profile_id, []).append(block_id)
        return index

    @property
    def num_blocks(self) -> int:
        return len(self.block_members)

    def blocks_of(self, profile_id: int) -> list[int]:
        """Block ids containing ``profile_id``."""
        return self.profile_blocks.get(profile_id, [])

    def neighbourhood(self, profile_id: int) -> dict[int, EdgeInfo]:
        """Materialise the blocking-graph neighbourhood of one node.

        For clean-clean collections only cross-source neighbours are produced;
        for dirty collections every co-occurring profile is a neighbour.
        """
        source0_here = any(
            profile_id in self.block_members[b][0] for b in self.blocks_of(profile_id)
        )
        neighbours: dict[int, EdgeInfo] = {}
        for block_id in self.blocks_of(profile_id):
            members0, members1 = self.block_members[block_id]
            cardinality = self.block_cardinality[block_id]
            entropy = self.block_entropy[block_id]
            if self.clean_clean:
                others = members1 if source0_here else members0
            else:
                others = tuple(m for m in members0 + members1 if m != profile_id)
            for other in others:
                if other == profile_id:
                    continue
                info = neighbours.get(other)
                if info is None:
                    info = EdgeInfo()
                    neighbours[other] = info
                info.common_blocks += 1
                info.arcs += 1.0 / cardinality
                info.entropy_sum += entropy
        return neighbours


class ParallelMetaBlocker:
    """Parallel meta-blocking with the broadcast-join structure of SparkER.

    Parameters
    ----------
    context:
        The engine context the jobs run on.
    weighting / pruning / use_entropy:
        Same meaning as for :class:`~repro.metablocking.metablocker.MetaBlocker`.
    """

    def __init__(
        self,
        context: EngineContext,
        weighting: str | WeightingScheme = WeightingScheme.CBS,
        pruning: str | PruningStrategy = "wnp",
        *,
        use_entropy: bool = False,
    ) -> None:
        self.context = context
        self.weighting = WeightingScheme.parse(weighting)
        self.pruning = make_pruning_strategy(pruning)
        self.use_entropy = use_entropy

    # ------------------------------------------------------------------ public
    def run(self, blocks: BlockCollection) -> MetaBlockingResult:
        """Run the parallel meta-blocking over ``blocks``."""
        index = CompactBlockIndex.from_blocks(blocks)
        broadcast = self.context.broadcast(index)
        node_ids = sorted(index.profile_blocks)
        if not node_ids:
            return MetaBlockingResult()

        node_rdd = self.context.parallelize(node_ids)

        if isinstance(self.pruning, WeightedEdgePruning):
            retained = self._run_weighted_edge(node_rdd, broadcast)
        elif isinstance(self.pruning, CardinalityEdgePruning):
            retained = self._run_cardinality_edge(node_rdd, broadcast)
        elif isinstance(self.pruning, CardinalityNodePruning):
            retained = self._run_node_cardinality(node_rdd, broadcast, self.pruning)
        elif isinstance(self.pruning, WeightedNodePruning):
            retained = self._run_node_weighted(node_rdd, broadcast, self.pruning)
        else:
            raise MetaBlockingError(
                f"unsupported pruning strategy for the parallel meta-blocker: "
                f"{type(self.pruning).__name__}"
            )

        num_edges = self._count_edges(node_rdd, broadcast)
        return MetaBlockingResult(
            candidate_pairs=set(retained),
            retained_edges=retained,
            graph_edges=num_edges,
            graph_nodes=len(node_ids),
        )

    def __call__(self, blocks: BlockCollection) -> MetaBlockingResult:
        return self.run(blocks)

    # -------------------------------------------------------------- internals
    def _edge_weigher(self, broadcast):
        """Return a function node → list of ((a, b), weight) for its edges.

        EJS needs node degrees and the global edge count; those are derived
        from the broadcast index inside the task, which is exactly the
        information the broadcast join ships in SparkER.
        """
        scheme = self.weighting
        use_entropy = self.use_entropy

        def weigh(node: int) -> list[tuple[tuple[int, int], float]]:
            index: CompactBlockIndex = broadcast.value
            neighbourhood = index.neighbourhood(node)
            blocks_node = len(index.blocks_of(node))
            results = []
            degree_node = len(neighbourhood)
            for other, info in neighbourhood.items():
                weight = compute_edge_weight(
                    scheme,
                    info,
                    blocks_a=blocks_node,
                    blocks_b=len(index.blocks_of(other)),
                    total_blocks=index.num_blocks,
                    degree_a=degree_node,
                    degree_b=len(index.neighbourhood(other)),
                    total_edges=0,  # patched below for EJS
                )
                if use_entropy:
                    weight *= info.mean_entropy
                pair = (node, other) if node <= other else (other, node)
                results.append((pair, weight))
            return results

        return weigh

    def _all_edge_weights(self, node_rdd, broadcast) -> dict[tuple[int, int], float]:
        """Distributed computation of every edge weight (each edge from both ends)."""
        if self.weighting is WeightingScheme.EJS:
            # EJS needs the global edge count; compute it first (one extra job),
            # then recompute weights with the correct normalisation driver-side
            # from the per-edge CBS/degree data. We fall back to materialising
            # neighbourhoods once per node and fixing the scale afterwards.
            return self._all_edge_weights_ejs(node_rdd, broadcast)
        weigh = self._edge_weigher(broadcast)
        pairs = node_rdd.flatMap(weigh, name="metablocking.weights")
        # Every edge is produced twice (once per endpoint) with the same weight.
        return pairs.reduceByKey(lambda a, _b: a).collectAsMap()

    def _all_edge_weights_ejs(self, node_rdd, broadcast) -> dict[tuple[int, int], float]:
        """EJS weights: two passes (degrees + edge count, then weighting)."""
        use_entropy = self.use_entropy

        def neighbourhood_stats(node: int) -> list[tuple[tuple[int, int], tuple]]:
            index: CompactBlockIndex = broadcast.value
            neighbourhood = index.neighbourhood(node)
            degree = len(neighbourhood)
            blocks_node = len(index.blocks_of(node))
            out = []
            for other, info in neighbourhood.items():
                pair = (node, other) if node <= other else (other, node)
                out.append((pair, (node, degree, blocks_node, info.common_blocks,
                                   info.arcs, info.entropy_sum)))
            return out

        per_endpoint = node_rdd.flatMap(neighbourhood_stats, name="ejs.stats")
        grouped = per_endpoint.groupByKey().collectAsMap()
        total_edges = len(grouped)
        index: CompactBlockIndex = broadcast.value
        weights: dict[tuple[int, int], float] = {}
        for pair, contributions in grouped.items():
            by_node = {entry[0]: entry for entry in contributions}
            a, b = pair
            entry_a = by_node.get(a)
            entry_b = by_node.get(b)
            reference = entry_a or entry_b
            _node, _degree, _blocks, common, arcs, entropy_sum = reference
            info = EdgeInfo(common_blocks=common, arcs=arcs, entropy_sum=entropy_sum)
            weight = compute_edge_weight(
                WeightingScheme.EJS,
                info,
                blocks_a=len(index.blocks_of(a)),
                blocks_b=len(index.blocks_of(b)),
                total_blocks=index.num_blocks,
                degree_a=entry_a[1] if entry_a else 0,
                degree_b=entry_b[1] if entry_b else 0,
                total_edges=total_edges,
            )
            if use_entropy:
                weight *= info.mean_entropy
            weights[pair] = weight
        return weights

    def _count_edges(self, node_rdd, broadcast) -> int:
        def degree(node: int) -> int:
            index: CompactBlockIndex = broadcast.value
            return len(index.neighbourhood(node))

        total = node_rdd.map(degree, name="metablocking.degree").sum()
        return total // 2

    # --- strategy-specific drivers ------------------------------------------
    def _run_weighted_edge(self, node_rdd, broadcast) -> dict[tuple[int, int], float]:
        weights = self._all_edge_weights(node_rdd, broadcast)
        if not weights:
            return {}
        threshold = sum(weights.values()) / len(weights)
        return {pair: w for pair, w in weights.items() if w >= threshold}

    def _run_cardinality_edge(self, node_rdd, broadcast) -> dict[tuple[int, int], float]:
        weights = self._all_edge_weights(node_rdd, broadcast)
        if not weights:
            return {}
        pruning: CardinalityEdgePruning = self.pruning  # type: ignore[assignment]
        k = pruning.k
        if k is None:
            index: CompactBlockIndex = broadcast.value
            total_assignments = sum(len(v) for v in index.profile_blocks.values())
            k = max(1, total_assignments // 2)
        ranked = sorted(weights.items(), key=lambda item: (-item[1], item[0]))
        return dict(ranked[:k])

    def _run_node_weighted(
        self, node_rdd, broadcast, pruning: WeightedNodePruning
    ) -> dict[tuple[int, int], float]:
        weights = self._all_edge_weights(node_rdd, broadcast)
        if not weights:
            return {}
        weights_broadcast = self.context.broadcast(weights)
        reciprocal = pruning.reciprocal

        def retain(node: int) -> list[tuple[tuple[int, int], tuple[float, int]]]:
            all_weights: dict[tuple[int, int], float] = weights_broadcast.value
            incident = [
                (pair, w) for pair, w in all_weights.items() if node in pair
            ]
            if not incident:
                return []
            threshold = sum(w for _p, w in incident) / len(incident)
            return [
                (pair, (w, 1)) for pair, w in incident if w >= threshold
            ]

        votes = (
            node_rdd.flatMap(retain, name="wnp.votes")
            .reduceByKey(lambda a, b: (a[0], a[1] + b[1]))
            .collectAsMap()
        )
        required = 2 if reciprocal else 1
        return {pair: w for pair, (w, count) in votes.items() if count >= required}

    def _run_node_cardinality(
        self, node_rdd, broadcast, pruning: CardinalityNodePruning
    ) -> dict[tuple[int, int], float]:
        weights = self._all_edge_weights(node_rdd, broadcast)
        if not weights:
            return {}
        index: CompactBlockIndex = broadcast.value
        k = pruning.k
        if k is None:
            num_profiles = max(1, len(index.profile_blocks))
            total_assignments = sum(len(v) for v in index.profile_blocks.values())
            k = max(1, total_assignments // num_profiles - 1)
        weights_broadcast = self.context.broadcast(weights)

        def retain(node: int) -> list[tuple[tuple[int, int], tuple[float, int]]]:
            all_weights: dict[tuple[int, int], float] = weights_broadcast.value
            incident = [
                (pair, w) for pair, w in all_weights.items() if node in pair
            ]
            ranked = sorted(incident, key=lambda item: (-item[1], item[0]))
            return [(pair, (w, 1)) for pair, w in ranked[:k]]

        votes = (
            node_rdd.flatMap(retain, name="cnp.votes")
            .reduceByKey(lambda a, b: (a[0], a[1] + b[1]))
            .collectAsMap()
        )
        required = 2 if pruning.reciprocal else 1
        return {pair: w for pair, (w, count) in votes.items() if count >= required}
