"""The blocking graph.

Profiles are nodes; an (undirected) edge connects two profiles that co-occur
in at least one block.  Every edge carries the aggregate information required
by the different weighting schemes:

* ``common_blocks`` — number of blocks shared by the two profiles (CBS),
* ``arcs`` — sum over shared blocks of ``1 / ||b||`` where ``||b||`` is the
  block's comparison cardinality (ARCS),
* ``entropy_sum`` — sum of the entropies of the shared blocks, used by the
  BLAST entropy re-weighting (the average shared-block entropy multiplies the
  base weight).

Node-level statistics (how many blocks each profile appears in, total block
count) are kept on the graph because JS / ECBS / EJS need them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocking.block import BlockCollection
from repro.data.ground_truth import canonical_pair


@dataclass
class EdgeInfo:
    """Aggregate co-occurrence information of one blocking-graph edge."""

    common_blocks: int = 0
    arcs: float = 0.0
    entropy_sum: float = 0.0

    @property
    def mean_entropy(self) -> float:
        """Average entropy of the blocks shared by the edge's endpoints."""
        if self.common_blocks == 0:
            return 0.0
        return self.entropy_sum / self.common_blocks


@dataclass
class BlockingGraph:
    """The meta-blocking graph of a block collection."""

    edges: dict[tuple[int, int], EdgeInfo] = field(default_factory=dict)
    blocks_per_profile: dict[int, int] = field(default_factory=dict)
    num_blocks: int = 0
    clean_clean: bool = False

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def num_nodes(self) -> int:
        return len(self.blocks_per_profile)

    def nodes(self) -> set[int]:
        """All profile ids that appear in at least one block."""
        return set(self.blocks_per_profile)

    def neighbors(self, profile_id: int) -> dict[int, EdgeInfo]:
        """Return neighbour → edge info of ``profile_id`` (materialised lazily)."""
        result: dict[int, EdgeInfo] = {}
        for (a, b), info in self.edges.items():
            if a == profile_id:
                result[b] = info
            elif b == profile_id:
                result[a] = info
        return result

    def edge(self, a: int, b: int) -> EdgeInfo | None:
        """Return the edge info of pair (a, b), or None if not adjacent."""
        return self.edges.get(canonical_pair(a, b))

    def adjacency(self) -> dict[int, list[tuple[int, EdgeInfo]]]:
        """Full adjacency list (neighbour lists for every node)."""
        adjacency: dict[int, list[tuple[int, EdgeInfo]]] = {
            node: [] for node in self.blocks_per_profile
        }
        for (a, b), info in self.edges.items():
            adjacency.setdefault(a, []).append((b, info))
            adjacency.setdefault(b, []).append((a, info))
        return adjacency


def build_blocking_graph(blocks: BlockCollection) -> BlockingGraph:
    """Materialise the blocking graph of ``blocks``.

    Every comparison of every block contributes to the edge of its pair; the
    contribution records the block's comparison cardinality (for ARCS) and its
    entropy (for BLAST).
    """
    graph = BlockingGraph(clean_clean=blocks.clean_clean, num_blocks=len(blocks))

    for block in blocks:
        cardinality = block.num_comparisons()
        if cardinality == 0:
            continue
        for profile_id in block.all_profiles():
            graph.blocks_per_profile[profile_id] = (
                graph.blocks_per_profile.get(profile_id, 0) + 1
            )
        for a, b in block.comparisons():
            key = canonical_pair(a, b)
            info = graph.edges.get(key)
            if info is None:
                info = EdgeInfo()
                graph.edges[key] = info
            info.common_blocks += 1
            info.arcs += 1.0 / cardinality
            info.entropy_sum += block.entropy

    return graph
