"""The blocking graph.

Profiles are nodes; an (undirected) edge connects two profiles that co-occur
in at least one block.  Every edge carries the aggregate information required
by the different weighting schemes:

* ``common_blocks`` — number of blocks shared by the two profiles (CBS),
* ``arcs`` — sum over shared blocks of ``1 / ||b||`` where ``||b||`` is the
  block's comparison cardinality (ARCS),
* ``entropy_sum`` — sum of the entropies of the shared blocks, used by the
  BLAST entropy re-weighting (the average shared-block entropy multiplies the
  base weight).

Node-level statistics (how many blocks each profile appears in, total block
count) are kept on the graph because JS / ECBS / EJS need them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocking.block import BlockCollection
from repro.data.ground_truth import canonical_pair
from repro.metablocking.index import CSRBlockIndex


@dataclass
class EdgeInfo:
    """Aggregate co-occurrence information of one blocking-graph edge."""

    common_blocks: int = 0
    arcs: float = 0.0
    entropy_sum: float = 0.0

    @property
    def mean_entropy(self) -> float:
        """Average entropy of the blocks shared by the edge's endpoints."""
        if self.common_blocks == 0:
            return 0.0
        return self.entropy_sum / self.common_blocks


@dataclass
class BlockingGraph:
    """The meta-blocking graph of a block collection."""

    edges: dict[tuple[int, int], EdgeInfo] = field(default_factory=dict)
    blocks_per_profile: dict[int, int] = field(default_factory=dict)
    num_blocks: int = 0
    clean_clean: bool = False
    _adjacency: dict[int, list[tuple[int, EdgeInfo]]] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _adjacency_edges: int = field(default=-1, init=False, repr=False, compare=False)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def num_nodes(self) -> int:
        return len(self.blocks_per_profile)

    def nodes(self) -> set[int]:
        """All profile ids that appear in at least one block."""
        return set(self.blocks_per_profile)

    def neighbors(self, profile_id: int) -> dict[int, EdgeInfo]:
        """Return neighbour → edge info of ``profile_id``.

        Served from a cached adjacency index (rebuilt if the edge count
        changed) instead of scanning every edge per lookup.
        """
        return dict(self._adjacency_index().get(profile_id, ()))

    def degrees(self) -> dict[int, int]:
        """Blocking-graph degree of every node that has at least one edge."""
        counts: dict[int, int] = {}
        for a, b in self.edges:
            counts[a] = counts.get(a, 0) + 1
            counts[b] = counts.get(b, 0) + 1
        return counts

    def _adjacency_index(self) -> dict[int, list[tuple[int, EdgeInfo]]]:
        if self._adjacency is None or self._adjacency_edges != len(self.edges):
            self._adjacency = self.adjacency()
            self._adjacency_edges = len(self.edges)
        return self._adjacency

    def edge(self, a: int, b: int) -> EdgeInfo | None:
        """Return the edge info of pair (a, b), or None if not adjacent."""
        return self.edges.get(canonical_pair(a, b))

    def adjacency(self) -> dict[int, list[tuple[int, EdgeInfo]]]:
        """Full adjacency list (neighbour lists for every node)."""
        adjacency: dict[int, list[tuple[int, EdgeInfo]]] = {
            node: [] for node in self.blocks_per_profile
        }
        for (a, b), info in self.edges.items():
            adjacency.setdefault(a, []).append((b, info))
            adjacency.setdefault(b, []).append((a, info))
        return adjacency


def build_blocking_graph(
    blocks: BlockCollection,
    backend: "str | None" = None,
    buffer_backend: "str | None" = None,
) -> BlockingGraph:
    """Materialise the blocking graph of ``blocks``.

    Runs on the CSR index's kernel backend (python or numpy — see
    :mod:`repro.metablocking.backends`), the same kernel the parallel
    meta-blocker broadcasts: each node's neighbourhood is materialised exactly
    once and every edge inserted from its lower endpoint.  Each edge carries
    the block-comparison cardinality sum (ARCS) and entropy sum (BLAST)
    accumulated in ascending block order — both backends fix the same
    accumulation order, so the graph is bit-for-bit identical either way.
    """
    index = CSRBlockIndex.from_blocks(
        blocks, backend=backend, buffer_backend=buffer_backend
    )
    try:
        return blocking_graph_from_index(
            index, clean_clean=blocks.clean_clean, num_blocks=len(blocks)
        )
    finally:
        index.close()


def blocking_graph_from_index(
    index: CSRBlockIndex, *, clean_clean: bool, num_blocks: int
) -> BlockingGraph:
    """Materialise a :class:`BlockingGraph` from a prebuilt CSR index."""
    graph = BlockingGraph(clean_clean=clean_clean, num_blocks=num_blocks)
    node_ids = index.node_ids
    graph.blocks_per_profile = {
        profile_id: index.node_block_count[dense]
        for dense, profile_id in enumerate(node_ids)
    }

    kernel = index.kernel()
    edges = graph.edges
    for node in range(index.num_nodes):
        profile_a = node_ids[node]
        for other, info in kernel.edge_items(node):
            edges[(profile_a, node_ids[other])] = info
    return graph
