"""Pruning strategies for meta-blocking.

Given the weighted blocking graph, a pruning strategy decides which edges
(candidate comparisons) to retain:

* **WEP** — Weighted Edge Pruning: keep edges whose weight is at least the
  global average edge weight (this is the rule of the paper's Figure 1(c)).
* **CEP** — Cardinality Edge Pruning: keep the globally top-K edges, with
  ``K = sum_p |blocks(p)| / 2`` by default.
* **WNP** — Weighted Node Pruning: for every node keep the incident edges
  whose weight is at least that node's local average; an edge survives if it
  is retained by *either* endpoint (OR semantics).
* **Reciprocal WNP** — as WNP but an edge survives only if *both* endpoints
  retain it (AND semantics) — BLAST's pruning rule.
* **CNP** — Cardinality Node Pruning: every node keeps its top-k incident
  edges, ``k = B/|P| - 1`` blocks-per-profile based by default; OR semantics.

All strategies receive the edge weight mapping plus the graph (for node-level
statistics) and return the retained pairs with their weights.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import defaultdict

from repro.exceptions import MetaBlockingError
from repro.metablocking.graph import BlockingGraph


def default_cep_k(total_assignments: int) -> int:
    """CEP's default K: half the total block assignments (Papadakis et al.).

    The single definition shared by the scalar strategy, the parallel driver
    and the vectorised backend fast path — the three must retain the same
    edge set, so the formula must not fork.
    """
    return max(1, total_assignments // 2)


def default_cnp_k(total_assignments: int, num_profiles: int) -> int:
    """CNP's default per-node k: blocks-per-profile minus one (same sharing)."""
    return max(1, math.floor(total_assignments / max(1, num_profiles)) - 1)


class PruningStrategy(ABC):
    """Base class of pruning strategies."""

    @abstractmethod
    def prune(
        self,
        graph: BlockingGraph,
        weights: dict[tuple[int, int], float],
    ) -> dict[tuple[int, int], float]:
        """Return the retained edges (pair → weight)."""

    def __call__(
        self, graph: BlockingGraph, weights: dict[tuple[int, int], float]
    ) -> dict[tuple[int, int], float]:
        return self.prune(graph, weights)

    # ---------------------------------------------------------------- helpers
    @staticmethod
    def _node_incidence(
        weights: dict[tuple[int, int], float]
    ) -> dict[int, list[tuple[tuple[int, int], float]]]:
        """Group the weighted edges by incident node."""
        incidence: dict[int, list[tuple[tuple[int, int], float]]] = defaultdict(list)
        for pair, weight in weights.items():
            a, b = pair
            incidence[a].append((pair, weight))
            incidence[b].append((pair, weight))
        return incidence


class WeightedEdgePruning(PruningStrategy):
    """WEP: keep edges with weight >= the global mean edge weight."""

    def prune(
        self, graph: BlockingGraph, weights: dict[tuple[int, int], float]
    ) -> dict[tuple[int, int], float]:
        if not weights:
            return {}
        threshold = sum(weights.values()) / len(weights)
        return {pair: w for pair, w in weights.items() if w >= threshold}


class CardinalityEdgePruning(PruningStrategy):
    """CEP: keep the globally top-K edges.

    Parameters
    ----------
    k:
        Number of edges to keep; when ``None`` it defaults to half the total
        block assignments (sum of blocks per profile / 2), following
        Papadakis et al.
    """

    def __init__(self, k: int | None = None) -> None:
        if k is not None and k <= 0:
            raise MetaBlockingError("k must be positive when given")
        self.k = k

    def prune(
        self, graph: BlockingGraph, weights: dict[tuple[int, int], float]
    ) -> dict[tuple[int, int], float]:
        if not weights:
            return {}
        k = self.k
        if k is None:
            k = default_cep_k(sum(graph.blocks_per_profile.values()))
        ranked = sorted(weights.items(), key=lambda item: (-item[1], item[0]))
        return dict(ranked[:k])


class WeightedNodePruning(PruningStrategy):
    """WNP: per-node average threshold, edge retained if either endpoint keeps it."""

    def __init__(self, *, reciprocal: bool = False) -> None:
        self.reciprocal = reciprocal

    def node_thresholds(
        self, weights: dict[tuple[int, int], float]
    ) -> dict[int, float]:
        """Average incident edge weight of every node."""
        incidence = self._node_incidence(weights)
        return {
            node: (sum(w for _pair, w in edges) / len(edges)) if edges else 0.0
            for node, edges in incidence.items()
        }

    def prune(
        self, graph: BlockingGraph, weights: dict[tuple[int, int], float]
    ) -> dict[tuple[int, int], float]:
        if not weights:
            return {}
        thresholds = self.node_thresholds(weights)
        retained: dict[tuple[int, int], float] = {}
        for pair, weight in weights.items():
            a, b = pair
            keep_a = weight >= thresholds.get(a, 0.0)
            keep_b = weight >= thresholds.get(b, 0.0)
            keep = (keep_a and keep_b) if self.reciprocal else (keep_a or keep_b)
            if keep:
                retained[pair] = weight
        return retained


class ReciprocalWeightedNodePruning(WeightedNodePruning):
    """Reciprocal WNP (BLAST): both endpoints must retain the edge."""

    def __init__(self) -> None:
        super().__init__(reciprocal=True)


class CardinalityNodePruning(PruningStrategy):
    """CNP: every node keeps its top-k incident edges (OR semantics).

    Parameters
    ----------
    k:
        Edges each node retains; ``None`` uses ``max(1, B/|P| - 1)`` where B is
        the total number of block assignments and |P| the number of profiles.
    reciprocal:
        When True an edge must be in the top-k of both endpoints (AND).
    """

    def __init__(self, k: int | None = None, *, reciprocal: bool = False) -> None:
        if k is not None and k <= 0:
            raise MetaBlockingError("k must be positive when given")
        self.k = k
        self.reciprocal = reciprocal

    def prune(
        self, graph: BlockingGraph, weights: dict[tuple[int, int], float]
    ) -> dict[tuple[int, int], float]:
        if not weights:
            return {}
        k = self.k
        if k is None:
            k = default_cnp_k(
                sum(graph.blocks_per_profile.values()), graph.num_nodes
            )

        incidence = self._node_incidence(weights)
        kept_by_node: dict[int, set[tuple[int, int]]] = {}
        for node, edges in incidence.items():
            ranked = sorted(edges, key=lambda item: (-item[1], item[0]))
            kept_by_node[node] = {pair for pair, _w in ranked[:k]}

        retained: dict[tuple[int, int], float] = {}
        for pair, weight in weights.items():
            a, b = pair
            in_a = pair in kept_by_node.get(a, ())
            in_b = pair in kept_by_node.get(b, ())
            keep = (in_a and in_b) if self.reciprocal else (in_a or in_b)
            if keep:
                retained[pair] = weight
        return retained


_PRUNING_ALIASES = {
    "wep": lambda: WeightedEdgePruning(),
    "cep": lambda: CardinalityEdgePruning(),
    "wnp": lambda: WeightedNodePruning(),
    "rwnp": lambda: ReciprocalWeightedNodePruning(),
    "reciprocal_wnp": lambda: ReciprocalWeightedNodePruning(),
    "cnp": lambda: CardinalityNodePruning(),
}


def make_pruning_strategy(name: "str | PruningStrategy") -> PruningStrategy:
    """Build a pruning strategy from its short name (wep, cep, wnp, rwnp, cnp)."""
    if isinstance(name, PruningStrategy):
        return name
    try:
        return _PRUNING_ALIASES[name.lower()]()
    except KeyError as exc:
        valid = ", ".join(sorted(_PRUNING_ALIASES))
        raise MetaBlockingError(
            f"unknown pruning strategy {name!r}; valid strategies: {valid}"
        ) from exc
