"""Shared-memory transport for the CSR index's numeric buffers.

Under a process executor the broadcast CSR index used to travel *inside* the
pickled stage chain: every worker deserialised a multi-MB copy of the offset
arrays per stage.  With the numpy kernel backend the buffers are plain
``int64`` / ``float64`` blocks, so the driver can instead copy them once into
one :class:`multiprocessing.shared_memory.SharedMemory` segment and ship only
the segment *name* plus a field layout.  Workers attach and wrap each field
as a zero-copy ``np.frombuffer`` view — the index is mapped once per machine,
not pickled per worker.

The generic segment machinery (naming, resource-tracker-safe attach, quiet
close, orphan sweep, attachment cache) lives in :mod:`repro.engine.sharedmem`
and is shared with the shuffle block store; this module keeps only the
numpy-specific layer: packing named numeric fields into one segment and
handing out zero-copy views.

Naming, ownership and unlink responsibilities
---------------------------------------------
* segments are named ``repro-csr-<pid>-<seq>`` (see
  :func:`repro.engine.sharedmem.make_segment_name`); the embedded pid is the
  exporting driver's, which the orphan sweep uses to detect dead owners;
* the driver exports (``create=True``) and owns the segment; it unlinks it in
  :meth:`SharedIndexBuffers.release` — wired to ``EngineContext.stop()``
  through the index's ``release_shared`` hook — and a ``weakref.finalize``
  backstop unlinks on garbage collection / interpreter exit, so no
  ``/dev/shm`` segment outlives the run;
* workers attach (``create=False``) and only ever close their mapping — they
  never unlink; the attach is untracked so a worker's resource tracker never
  claims a name the driver is responsible for unlinking;
* after a pool crash, :func:`sweep_orphaned_segments` unlinks segments whose
  owning process is dead or whose own-pid registration was lost.
"""

from __future__ import annotations

import weakref
from typing import Any

from repro.engine.sharedmem import (
    _handles,
    _live_owned,
    cache_attachment,
    cached_attachment,
    live_segments as _live_engine_segments,
    make_segment_name,
    attach_untracked as _attach_untracked,
    quiet_close as _quiet_close,
    register_owned,
    release_segment as _release_segment,
    sweep_orphaned_segments,
)
from repro.exceptions import MetaBlockingError

__all__ = [
    "SEGMENT_PREFIX",
    "SharedIndexBuffers",
    "live_segments",
    "sweep_orphaned_segments",
]

SEGMENT_KIND = "csr"

SEGMENT_PREFIX = "repro-csr"

_ITEM_SIZE = 8  # both int64 ('q') and float64 ('d') fields


class SharedIndexBuffers:
    """One shared-memory segment holding a set of named numeric fields.

    ``layout`` maps field name → ``(offset_items, length_items, typecode)``
    with typecode ``"q"`` (int64) or ``"d"`` (float64); it is tiny and rides
    in the pickle next to the segment name.
    """

    def __init__(self, shm, layout: dict[str, tuple[int, int, str]], owner: bool) -> None:
        self.shm = shm
        self.layout = layout
        self.owner = owner
        self.name = shm.name
        self._released = False
        self._finalizer = weakref.finalize(self, _release_segment, shm, owner)

    # ------------------------------------------------------------------ build
    @classmethod
    def export(cls, fields: dict[str, tuple[Any, str]]) -> "SharedIndexBuffers":
        """Copy ``fields`` (name → (buffer, typecode)) into a fresh segment."""
        from multiprocessing import shared_memory

        import numpy as np

        layout: dict[str, tuple[int, int, str]] = {}
        offset = 0
        for field, (buffer, typecode) in fields.items():
            length = len(buffer)
            layout[field] = (offset, length, typecode)
            offset += length
        name = make_segment_name(SEGMENT_KIND)
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, offset * _ITEM_SIZE)
        )
        for field, (buffer, typecode) in fields.items():
            start, length, _ = layout[field]
            if not length:
                continue
            view = np.frombuffer(
                shm.buf,
                dtype=np.int64 if typecode == "q" else np.float64,
                count=length,
                offset=start * _ITEM_SIZE,
            )
            # A memmap-backed index hands ndarray views here; everything else
            # is a stdlib array reached through the buffer protocol.
            if isinstance(buffer, np.ndarray):
                view[:] = buffer
            else:
                view[:] = np.frombuffer(buffer, dtype=view.dtype)
            del view  # keep the export handle closable
        # Owner handles are deliberately NOT put in the attachment cache: a
        # cached strong reference would keep an abandoned export alive and
        # defeat the garbage-collection unlink backstop.  A same-process
        # attach of an owned segment simply maps it a second time.
        register_owned(name)
        return cls(shm, layout, owner=True)

    @classmethod
    def attach(cls, name: str, layout: dict[str, tuple[int, int, str]]) -> "SharedIndexBuffers":
        """Attach to an exported segment (cached for the process lifetime)."""
        cached = cached_attachment(name)
        if cached is not None:
            return cached
        try:
            shm = _attach_untracked(name)
        except FileNotFoundError as error:
            raise MetaBlockingError(
                f"shared CSR index segment {name!r} is gone — was the owning "
                f"EngineContext stopped while tasks were still running?"
            ) from error
        handle = cls(shm, layout, owner=False)
        cache_attachment(name, handle)
        return handle

    # ------------------------------------------------------------------ views
    def view(self, field: str):
        """Zero-copy ndarray view of one field."""
        import numpy as np

        start, length, typecode = self.layout[field]
        return np.frombuffer(
            self.shm.buf,
            dtype=np.int64 if typecode == "q" else np.float64,
            count=length,
            offset=start * _ITEM_SIZE,
        )

    def views(self) -> dict[str, Any]:
        """Zero-copy views of every field."""
        return {field: self.view(field) for field in self.layout}

    # -------------------------------------------------------------- lifecycle
    def release(self) -> None:
        """Close the mapping now (and unlink the segment when owning it)."""
        if not self._released:
            self._released = True
            self._finalizer()

    @property
    def released(self) -> bool:
        return self._released

    def __repr__(self) -> str:
        role = "owner" if self.owner else "attached"
        state = "released" if self._released else "live"
        return f"SharedIndexBuffers(name={self.name!r}, {role}, {state})"


def live_segments() -> list[str]:
    """Names of this process's exported CSR segments still in /dev/shm.

    Test helper for the no-leak guarantee; returns an empty list on platforms
    without a /dev/shm view of POSIX shared memory.
    """
    return _live_engine_segments(SEGMENT_KIND)
