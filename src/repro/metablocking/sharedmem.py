"""Shared-memory transport for the CSR index's numeric buffers.

Under a process executor the broadcast CSR index used to travel *inside* the
pickled stage chain: every worker deserialised a multi-MB copy of the offset
arrays per stage.  With the numpy kernel backend the buffers are plain
``int64`` / ``float64`` blocks, so the driver can instead copy them once into
one :class:`multiprocessing.shared_memory.SharedMemory` segment and ship only
the segment *name* plus a field layout.  Workers attach and wrap each field
as a zero-copy ``np.frombuffer`` view — the index is mapped once per machine,
not pickled per worker, which is also the groundwork for the shared-memory
shuffle block store on the roadmap.

Lifecycle
---------
* the driver exports (``create=True``) and owns the segment; it unlinks it in
  :meth:`SharedIndexBuffers.release` — wired to ``EngineContext.stop()``
  through the index's ``release_shared`` hook — and a ``weakref.finalize``
  backstop unlinks on garbage collection / interpreter exit, so no
  ``/dev/shm`` segment outlives the run;
* workers attach (``create=False``) and only ever close their mapping; the
  pool workers share the driver's ``resource_tracker`` (inherited through
  fork, or handed over by the spawn machinery), so the duplicate attach-side
  registration dedups in the tracker's name set and the driver's single
  unlink leaves the tracker clean.
"""

from __future__ import annotations

import itertools
import os
import weakref
from typing import Any

from repro.exceptions import MetaBlockingError

SEGMENT_PREFIX = "repro-csr"

_segment_ids = itertools.count()

_ITEM_SIZE = 8  # both int64 ('q') and float64 ('d') fields

# How many non-owned attachments (beyond the one being attached) a worker
# keeps mapped; older ones are evicted so a long-lived pool serving many
# meta-blocking runs never accumulates mappings.
_KEEP_RECENT_ATTACHMENTS = 2

# Attachment cache, one entry per segment name.  Worker processes serve many
# stages; re-attaching (and re-mmapping) per stage would churn, and letting
# an attachment be garbage collected while zero-copy ndarray views are still
# alive makes ``SharedMemory.__del__`` raise ``BufferError: cannot close
# exported pointers exist``.  Cached handles live until explicit
# :meth:`SharedIndexBuffers.release`, eviction by a newer attachment (see
# ``_KEEP_RECENT_ATTACHMENTS``), or process exit.
_handles: dict[str, "SharedIndexBuffers"] = {}

# Names of segments exported (and still owned) by this process.  The sweep
# after a pool crash uses this as the live set: anything in /dev/shm carrying
# this process's prefix but missing here is an orphan.  Names are registered
# in :meth:`SharedIndexBuffers.export` and dropped by ``_release_segment``
# (explicit release or the GC finalizer backstop), so register/unregister is
# exactly paired with create/unlink.
_live_owned: set[str] = set()


def _attach_untracked(name: str):
    """Attach to a segment without registering it with the resource tracker.

    Only the exporting driver owns (and unlinks) a segment.  An attaching
    pool worker that was forked *before* the driver's resource tracker
    started would otherwise spawn its own tracker, record the name there,
    and warn about a "leaked" segment at exit — after the driver has long
    unlinked it.  Python 3.13 exposes this as ``track=False``; on earlier
    versions the registration hook is stubbed out for the duration of the
    attach (workers are single-threaded per task, so this is race-free).
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name, create=False)
    finally:
        resource_tracker.register = original


def _quiet_close(shm) -> None:
    """Close ``shm`` without tripping over live zero-copy views.

    ``SharedMemory.close()`` raises ``BufferError`` while ndarray views built
    over ``shm.buf`` are alive.  Instead, drop the handle's references and
    close the file descriptor: the memoryview/mmap pair stays referenced by
    the views and is unmapped when the last view dies, and the defused
    ``SharedMemory.__del__`` no-ops instead of spraying ignored exceptions.
    """
    try:
        shm.close()
        return
    except BufferError:
        pass
    shm._buf = None
    shm._mmap = None
    fd = getattr(shm, "_fd", -1)
    if fd >= 0:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover - already closed
            pass
        shm._fd = -1


def _release_segment(shm, owner: bool) -> None:
    """Finalizer body: close the mapping, unlink once if we created it.

    Both steps are idempotent: the run-scoped release, the GC finalizer
    backstop and the post-crash orphan sweep can race over the same segment,
    so a mapping already closed or a name already unlinked (by whichever got
    there first) must be a no-op, never an error.
    """
    _handles.pop(shm.name, None)
    if owner:
        _live_owned.discard(shm.name)
    _quiet_close(shm)
    if owner:
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class SharedIndexBuffers:
    """One shared-memory segment holding a set of named numeric fields.

    ``layout`` maps field name → ``(offset_items, length_items, typecode)``
    with typecode ``"q"`` (int64) or ``"d"`` (float64); it is tiny and rides
    in the pickle next to the segment name.
    """

    def __init__(self, shm, layout: dict[str, tuple[int, int, str]], owner: bool) -> None:
        self.shm = shm
        self.layout = layout
        self.owner = owner
        self.name = shm.name
        self._released = False
        self._finalizer = weakref.finalize(self, _release_segment, shm, owner)

    # ------------------------------------------------------------------ build
    @classmethod
    def export(cls, fields: dict[str, tuple[Any, str]]) -> "SharedIndexBuffers":
        """Copy ``fields`` (name → (buffer, typecode)) into a fresh segment."""
        from multiprocessing import shared_memory

        import numpy as np

        layout: dict[str, tuple[int, int, str]] = {}
        offset = 0
        for field, (buffer, typecode) in fields.items():
            length = len(buffer)
            layout[field] = (offset, length, typecode)
            offset += length
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_segment_ids)}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, offset * _ITEM_SIZE)
        )
        for field, (buffer, typecode) in fields.items():
            start, length, _ = layout[field]
            if not length:
                continue
            view = np.frombuffer(
                shm.buf,
                dtype=np.int64 if typecode == "q" else np.float64,
                count=length,
                offset=start * _ITEM_SIZE,
            )
            view[:] = np.frombuffer(buffer, dtype=view.dtype)
            del view  # keep the export handle closable
        # Owner handles are deliberately NOT put in the attachment cache: a
        # cached strong reference would keep an abandoned export alive and
        # defeat the garbage-collection unlink backstop.  A same-process
        # attach of an owned segment simply maps it a second time.
        _live_owned.add(name)
        return cls(shm, layout, owner=True)

    @classmethod
    def attach(cls, name: str, layout: dict[str, tuple[int, int, str]]) -> "SharedIndexBuffers":
        """Attach to an exported segment (cached for the process lifetime)."""
        cached = _handles.get(name)
        if cached is not None and not cached.released:
            return cached
        try:
            shm = _attach_untracked(name)
        except FileNotFoundError as error:
            raise MetaBlockingError(
                f"shared CSR index segment {name!r} is gone — was the owning "
                f"EngineContext stopped while tasks were still running?"
            ) from error
        # A long-lived pool worker sees one fresh segment per meta-blocking
        # run; evict earlier attachments so the cache never pins more than a
        # handful of mappings.  Evicted handles only drop *this* reference —
        # views handed out earlier keep their mmap alive until they die, and
        # a same-name re-attach simply maps again.
        stale = [
            key
            for key, handle in _handles.items()
            if not handle.owner and key != name
        ]
        for key in stale[:-_KEEP_RECENT_ATTACHMENTS]:
            _handles.pop(key).release()
        handle = cls(shm, layout, owner=False)
        _handles[name] = handle
        return handle

    # ------------------------------------------------------------------ views
    def view(self, field: str):
        """Zero-copy ndarray view of one field."""
        import numpy as np

        start, length, typecode = self.layout[field]
        return np.frombuffer(
            self.shm.buf,
            dtype=np.int64 if typecode == "q" else np.float64,
            count=length,
            offset=start * _ITEM_SIZE,
        )

    def views(self) -> dict[str, Any]:
        """Zero-copy views of every field."""
        return {field: self.view(field) for field in self.layout}

    # -------------------------------------------------------------- lifecycle
    def release(self) -> None:
        """Close the mapping now (and unlink the segment when owning it)."""
        if not self._released:
            self._released = True
            self._finalizer()

    @property
    def released(self) -> bool:
        return self._released

    def __repr__(self) -> str:
        role = "owner" if self.owner else "attached"
        state = "released" if self._released else "live"
        return f"SharedIndexBuffers(name={self.name!r}, {role}, {state})"


def sweep_orphaned_segments() -> list[str]:
    """Unlink orphaned ``repro-csr`` segments; returns the swept names.

    Called by the multiprocessing executor when it rebuilds a pool after a
    worker crash.  Two kinds of orphans are swept:

    * segments carrying *this* process's pid prefix that are no longer in the
      live-owner registry — an export abandoned without release whose
      finalizer never ran (e.g. state torn by a crashed fork);
    * segments of a *dead* process — a previous driver killed before its
      run-scoped release or exit backstop could unlink.

    Segments of other live processes are left alone, so concurrent runs on
    one machine never sweep each other.  Everything is best-effort and
    idempotent: a name unlinked by the owner between listing and sweeping is
    skipped silently.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-POSIX platforms
        return []
    own_pid = os.getpid()
    swept: list[str] = []
    for entry in sorted(os.listdir(shm_dir)):
        if not entry.startswith(f"{SEGMENT_PREFIX}-"):
            continue
        try:
            pid = int(entry.split("-")[2])
        except (IndexError, ValueError):  # pragma: no cover - foreign name
            continue
        if pid == own_pid:
            if entry in _live_owned:
                continue
        else:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                pass  # owner is dead: the segment is an orphan
            except PermissionError:  # pragma: no cover - alive, other user
                continue
            else:
                continue  # owner still alive: not ours to sweep
        try:
            os.unlink(os.path.join(shm_dir, entry))
        except FileNotFoundError:  # pragma: no cover - released mid-sweep
            continue
        except OSError:  # pragma: no cover - defensive
            continue
        swept.append(entry)
    return swept


def live_segments() -> list[str]:
    """Names of this process's exported segments still present in /dev/shm.

    Test helper for the no-leak guarantee; returns an empty list on platforms
    without a /dev/shm view of POSIX shared memory.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-POSIX platforms
        return []
    prefix = f"{SEGMENT_PREFIX}-{os.getpid()}-"
    return sorted(
        entry for entry in os.listdir(shm_dir) if entry.startswith(prefix)
    )
