"""A small asyncio HTTP/1.1 server and JSON router — stdlib only.

The service layer needs exactly four things from HTTP: parse a request line
plus headers plus a ``Content-Length`` body, match the path against a route
table with ``{param}`` segments, run the handler, and write a JSON response.
Pulling in a web framework for that would be the project's first hard
dependency, so this module implements the minimum carefully instead:

* requests bigger than a configurable cap are rejected with 413 before the
  body is read into memory;
* handler exceptions map to structured JSON errors (:class:`repro.exceptions.
  SparkERError` → 400-family, :class:`repro.service.wal.DegradedError` →
  507, anything else → 500) — the connection never just drops;
* every handled request is timed into the app's
  :class:`~repro.service.metrics.ServiceMetrics` under its route *pattern*;
* handlers are callables ``(Request) -> Response`` that may be plain
  synchronous (cheap probes answer inline on the event loop) or coroutine
  functions — the app layer's handlers are coroutines that offload the
  CPU-bound engine work to a bounded worker pool, which is what keeps
  ``healthz`` and warm queries answering while a cold sweep runs;
* in-flight connections are counted so the app can **drain** them (with a
  deadline) before sweeping temp artifacts at shutdown.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import time
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.exceptions import SparkERError
from repro.service.wal import DegradedError

MAX_REQUEST_BYTES = 16 * 1024 * 1024
_MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    507: "Insufficient Storage",
}


class HttpError(Exception):
    """An error with a definite HTTP status, raised by handlers or parsing."""

    def __init__(
        self, status: int, message: str, *, headers: "dict[str, str] | None" = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    path_params: dict[str, str] = field(default_factory=dict)

    def json(self) -> dict:
        """The request body parsed as a JSON object (400 on anything else)."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise HttpError(400, f"invalid JSON body: {error}") from error
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload

    def int_query(self, name: str, default: int, *, minimum: int = 0) -> int:
        """An integer query parameter with a default and a lower bound."""
        raw = self.query.get(name)
        if raw is None or raw == "":
            return default
        try:
            value = int(raw)
        except ValueError as error:
            raise HttpError(400, f"query parameter {name!r} must be an integer") from error
        if value < minimum:
            raise HttpError(400, f"query parameter {name!r} must be >= {minimum}")
        return value


@dataclass
class Response:
    """A JSON response (``payload`` is serialised once, at write time)."""

    payload: object
    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        body = json.dumps(self.payload, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(self.status, "OK")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in self.headers.items()
        )
        head = (
            f"HTTP/1.1 {self.status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n"
        )
        return head.encode("ascii") + body


class Router:
    """Method + ``{param}``-pattern route table."""

    def __init__(self) -> None:
        # (method, tuple-of-segments) preserved in registration order;
        # literal segments must match exactly, "{name}" captures one segment.
        self._routes: list[tuple[str, tuple[str, ...], str, object]] = []

    def add(self, method: str, pattern: str, handler) -> None:
        """Register ``handler`` for ``method pattern``."""
        segments = tuple(segment for segment in pattern.split("/") if segment)
        label = f"{method.upper()} {pattern}"
        self._routes.append((method.upper(), segments, label, handler))

    def match(self, method: str, path: str):
        """Resolve ``(handler, path_params, label)``; raise 404/405."""
        segments = [unquote(segment) for segment in path.split("/") if segment]
        path_found = False
        for route_method, route_segments, label, handler in self._routes:
            if len(route_segments) != len(segments):
                continue
            params: dict[str, str] = {}
            for route_segment, segment in zip(route_segments, segments):
                if route_segment.startswith("{") and route_segment.endswith("}"):
                    params[route_segment[1:-1]] = segment
                elif route_segment != segment:
                    break
            else:
                path_found = True
                if route_method == method.upper():
                    return handler, params, label
        if path_found:
            raise HttpError(405, f"method {method} not allowed for {path}")
        raise HttpError(404, f"no route matches {path}")


class HttpServer:
    """Serve a :class:`Router` over asyncio streams."""

    def __init__(self, router: Router, *, host: str = "127.0.0.1", port: int = 0,
                 metrics=None) -> None:
        self.router = router
        self.host = host
        self.port = port
        self.metrics = metrics
        self._server: "asyncio.AbstractServer | None" = None
        self._active_connections = 0
        self._idle_event: "asyncio.Event | None" = None

    async def start(self) -> None:
        """Bind and start accepting connections (resolves ``port=0``)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting and wait for the listener to close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    @property
    def active_connections(self) -> int:
        return self._active_connections

    def _idle(self) -> asyncio.Event:
        # Created lazily inside the running loop (py3.9 binds the Event's
        # loop at construction time).
        if self._idle_event is None:
            self._idle_event = asyncio.Event()
            self._idle_event.set()
        return self._idle_event

    async def drain(self, timeout: float) -> bool:
        """Wait until every in-flight connection finishes; False on timeout.

        Called by the app after :meth:`stop` (no new connections) so that
        shutdown never sweeps temp artifacts a still-running handler has
        mapped.
        """
        if self._active_connections == 0:
            return True
        try:
            await asyncio.wait_for(self._idle().wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    # ------------------------------------------------------------- internals
    async def _handle_connection(self, reader, writer) -> None:
        idle = self._idle()
        self._active_connections += 1
        idle.clear()
        try:
            await self._handle_one(reader, writer)
        finally:
            self._active_connections -= 1
            if self._active_connections == 0:
                idle.set()

    async def _handle_one(self, reader, writer) -> None:
        label = "unmatched"
        started = time.perf_counter()
        try:
            request = await self._read_request(reader)
            response, label = await self._dispatch(request)
        except HttpError as error:
            response = Response(
                {"error": error.message}, status=error.status, headers=error.headers
            )
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as error:  # noqa: BLE001 - the server must answer
            response = Response({"error": f"internal error: {error}"}, status=500)
        try:
            writer.write(response.encode())
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            if self.metrics is not None:
                self.metrics.observe(
                    label, time.perf_counter() - started, response.status
                )

    async def _dispatch(self, request: Request) -> tuple[Response, str]:
        handler, params, label = self.router.match(request.method, request.path)
        request.path_params = params
        try:
            result = handler(request)
            if inspect.isawaitable(result):
                result = await result
        except HttpError as error:
            return (
                Response(
                    {"error": error.message},
                    status=error.status,
                    headers=error.headers,
                ),
                label,
            )
        except DegradedError as error:
            # The collection's WAL device failed: it keeps serving reads but
            # rejects writes until restarted against a healthy device.
            return Response({"error": str(error)}, status=507), label
        except SparkERError as error:
            # Domain validation errors (bad payloads, duplicate ids, unknown
            # schemes) are the caller's fault, not the server's.
            return Response({"error": str(error)}, status=400), label
        if isinstance(result, Response):
            return result, label
        return Response(result), label

    async def _read_request(self, reader) -> Request:
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > _MAX_HEADER_BYTES:
            raise HttpError(413, "request headers too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError as error:
            raise HttpError(400, f"malformed request line: {lines[0]!r}") from error
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        split = urlsplit(target)
        query = dict(parse_qsl(split.query, keep_blank_values=True))
        length_header = headers.get("content-length", "0")
        try:
            length = int(length_header)
        except ValueError as error:
            raise HttpError(400, "invalid Content-Length") from error
        if length < 0 or length > MAX_REQUEST_BYTES:
            raise HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return Request(
            method=method.upper(),
            path=split.path,
            query=query,
            headers=headers,
            body=body,
        )
