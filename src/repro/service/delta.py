"""Neighbourhood-local incremental meta-blocking.

The batch meta-blocker re-weights and re-prunes the whole blocking graph per
run.  After an append, though, almost nothing changed: appends only ever *add*
block members, so

* a new edge has **both** endpoints among the touched profiles (both sit in a
  touched block);
* an existing edge's weight can change only when an endpoint is touched (the
  shared-block aggregates and the per-endpoint block counts of untouched
  profiles are untouched);
* a node's pruning statistics (WNP mean threshold, CNP top-k set) can change
  only when an incident edge did — i.e. for touched profiles and their
  current neighbours.

:class:`DeltaMetaBlocker` exploits exactly that: it keeps the weighted
adjacency and the per-node pruning state between refreshes, re-sweeps only
the touched nodes through the index's kernel backend
(:meth:`~repro.metablocking.backends.PythonKernel.weighted_neighbourhoods`),
and re-evaluates retention only for edges incident to the affected
neighbourhood.  The retained-edge mapping is maintained **bit-for-bit equal**
to a from-scratch :class:`~repro.metablocking.metablocker.MetaBlocker` run on
the union collection:

* weights of the endpoint-symmetric schemes (CBS, JS, ARCS, optionally
  entropy-scaled) are exact from either endpoint's sweep — the aggregates
  accumulate over the same shared blocks in the same ascending-block order,
  and the remaining arithmetic is commutative-exact;
* WNP thresholds are float sums in the canonical incidence order (edges from
  lower-id neighbours in ascending order, then the node's own emissions in
  first-touch order — exactly the order the batch path's weight-map scan
  appends them), so the recomputed mean is the same float;
* CNP top-k sets are pure ``(-weight, pair)`` sorts — no float accumulation
  at all.

Global schemes (ECBS, EJS — their factors depend on every node) and global
prunings (WEP's global mean, CEP's global top-K) cannot be localised without
approximation, so those configurations transparently fall back to a full
recompute through the same kernel paths (``last_mode`` reports which route a
refresh took).  Every supported (kernel backend × buffer backend) combination
works unchanged — the delta path only talks to the kernel API.
"""

from __future__ import annotations

from repro.metablocking.index import CSRBlockIndex
from repro.metablocking.pruning import (
    CardinalityNodePruning,
    PruningStrategy,
    ReciprocalWeightedNodePruning,
    WeightedNodePruning,
    default_cnp_k,
    make_pruning_strategy,
)
from repro.metablocking.weights import WeightingScheme

#: Schemes whose edge weight is bit-identical computed from either endpoint.
LOCAL_SCHEMES = (
    WeightingScheme.CBS,
    WeightingScheme.JS,
    WeightingScheme.ARCS,
)

#: Stock per-node pruning strategies the local path reproduces exactly.
_LOCAL_PRUNINGS = (
    WeightedNodePruning,
    ReciprocalWeightedNodePruning,
    CardinalityNodePruning,
)


class _IndexStats:
    """Just enough of a :class:`BlockingGraph` for the pruning defaults.

    The stock strategies read only ``blocks_per_profile`` (CEP / CNP default
    k) and ``num_nodes`` (CNP default k); both derive directly from the CSR
    index, so the full graph never has to exist.
    """

    __slots__ = ("blocks_per_profile", "num_nodes")

    def __init__(self, index: CSRBlockIndex) -> None:
        ids = index.node_ids
        counts = index.node_block_count
        self.blocks_per_profile = {
            int(ids[dense]): int(counts[dense]) for dense in range(index.num_nodes)
        }
        self.num_nodes = index.num_nodes


class DeltaMetaBlocker:
    """Maintain the retained candidate edges of a growing index.

    Parameters mirror :class:`~repro.metablocking.metablocker.MetaBlocker`
    (weighting scheme, pruning strategy, entropy flag); the kernel and buffer
    backends are whatever the refreshed index was built with.

    Call :meth:`refresh` with the current (compacted) index and the profile
    ids touched since the previous refresh; read :attr:`retained` afterwards.
    The first refresh always primes with a full recompute.
    """

    def __init__(
        self,
        weighting: "str | WeightingScheme" = WeightingScheme.CBS,
        pruning: "str | PruningStrategy" = "wnp",
        *,
        use_entropy: bool = False,
    ) -> None:
        self.weighting = WeightingScheme.parse(weighting)
        self.pruning = make_pruning_strategy(pruning)
        self.use_entropy = use_entropy
        # type() (not isinstance) deliberately: a custom subclass may
        # override any hook and the local path must not replicate stock
        # behaviour in its place — same rule as the vectorised dispatch.
        self._local_capable = self.weighting in LOCAL_SCHEMES and type(
            self.pruning
        ) in _LOCAL_PRUNINGS
        # pair -> weight, == the batch meta-blocker's retained_edges.
        self.retained: dict[tuple[int, int], float] = {}
        # profile id -> {neighbour profile id -> weight}, both directions.
        self._adj: dict[int, dict[int, float]] = {}
        # profile id -> its upper neighbours in first-touch emission order
        # (the order its own threshold contributions accumulate in).
        self._upper_order: dict[int, list[int]] = {}
        self._thresholds: dict[int, float] = {}
        self._kept: dict[int, set[tuple[int, int]]] = {}
        self._k: "int | None" = None
        self._primed = False
        self.refreshes = 0
        self.full_refreshes = 0
        self.local_refreshes = 0
        self.last_mode: "str | None" = None
        self.last_affected = 0
        self.last_reweighed = 0

    # ---------------------------------------------------------------- public
    @property
    def local_capable(self) -> bool:
        """True when this configuration can refresh neighbourhood-locally."""
        return self._local_capable

    def refresh(
        self,
        index: CSRBlockIndex,
        touched_profile_ids=None,
    ) -> dict[tuple[int, int], float]:
        """Bring :attr:`retained` up to date with ``index``.

        ``touched_profile_ids`` is the union of
        :attr:`~repro.metablocking.index.AppendDelta.touched_profile_ids`
        over every append since the last refresh; ``None`` forces a full
        recompute (as does the first call, a global scheme/pruning, or a
        CNP default-k change).  Returns :attr:`retained`.
        """
        self.refreshes += 1
        if not self._primed or not self._local_capable or touched_profile_ids is None:
            return self._refresh_full(index)
        node_of = index.node_of
        touched = sorted(
            pid for pid in touched_profile_ids if pid in node_of
        )
        if isinstance(self.pruning, CardinalityNodePruning):
            if self._resolve_cnp_k(index) != self._k:
                # The default k moved with the append — every node's top-k
                # may change, so localising would be wrong, not just slow.
                return self._refresh_full(index)
        if not touched:
            # Appends that created no comparison-inducing block (or an empty
            # batch): the blocking graph is unchanged.
            self.local_refreshes += 1
            self.last_mode = "local"
            self.last_affected = 0
            self.last_reweighed = 0
            return self.retained
        return self._refresh_local(index, touched)

    def candidates_of(self, profile_id: int) -> list[tuple[tuple[int, int], float]]:
        """The retained edges incident to one profile, best first."""
        incident = [
            (pair, weight)
            for pair, weight in self.retained.items()
            if profile_id in pair
        ]
        incident.sort(key=lambda item: (-item[1], item[0]))
        return incident

    def stats(self) -> dict:
        """Counters for the service /metrics endpoint."""
        return {
            "weighting": self.weighting.value,
            "pruning": type(self.pruning).__name__,
            "local_capable": self._local_capable,
            "refreshes": self.refreshes,
            "full_refreshes": self.full_refreshes,
            "local_refreshes": self.local_refreshes,
            "last_mode": self.last_mode,
            "last_affected_nodes": self.last_affected,
            "last_reweighed_nodes": self.last_reweighed,
            "retained_edges": len(self.retained),
        }

    # ------------------------------------------------------------- full path
    def _resolve_cnp_k(self, index: CSRBlockIndex) -> int:
        explicit = self.pruning.k
        if explicit is not None:
            return explicit
        return default_cnp_k(int(sum(index.node_block_count)), index.num_nodes)

    def _refresh_full(self, index: CSRBlockIndex) -> dict[tuple[int, int], float]:
        """Recompute everything through the canonical kernel emission."""
        self.full_refreshes += 1
        self.last_mode = "full"
        self.last_affected = index.num_nodes
        self.last_reweighed = index.num_nodes
        plan = index.weight_plan(self.weighting, self.use_entropy)
        per_node = index.kernel().weighted_edges_by_node(plan)
        weights: dict[tuple[int, int], float] = {}
        adj: dict[int, dict[int, float]] = {}
        upper_order: dict[int, list[int]] = {}
        for edges in per_node:
            for pair, weight in edges:
                a, b = pair
                weights[pair] = weight
                if self._local_capable:
                    adj.setdefault(a, {})[b] = weight
                    adj.setdefault(b, {})[a] = weight
                    upper_order.setdefault(a, []).append(b)
        self._adj = adj
        self._upper_order = upper_order
        self._thresholds = {}
        self._kept = {}
        self._k = None
        if self._local_capable:
            if isinstance(self.pruning, CardinalityNodePruning):
                self._k = self._resolve_cnp_k(index)
                incidence = PruningStrategy._node_incidence(weights)
                self._kept = {
                    node: {
                        pair
                        for pair, _w in sorted(
                            edges, key=lambda item: (-item[1], item[0])
                        )[: self._k]
                    }
                    for node, edges in incidence.items()
                }
            else:
                self._thresholds = self.pruning.node_thresholds(weights)
        self.retained = self.pruning.prune(_IndexStats(index), weights)
        self._primed = True
        return self.retained

    # ------------------------------------------------------------ local path
    def _refresh_local(
        self, index: CSRBlockIndex, touched: list[int]
    ) -> dict[tuple[int, int], float]:
        """Re-weight the touched neighbourhood; re-prune only around it."""
        self.local_refreshes += 1
        self.last_mode = "local"
        self.last_reweighed = len(touched)
        node_of = index.node_of
        ids = index.node_ids
        # ``touched`` is ascending in profile-id order and dense ids are
        # order-isomorphic to profile ids, so the dense list is ascending
        # too (the numpy partial sweep requires that).
        dense = [node_of[pid] for pid in touched]
        plan = index.weight_plan(self.weighting, self.use_entropy)
        per_node = index.kernel().weighted_neighbourhoods(dense, plan)

        affected: set[int] = set(touched)
        for pid, edges in zip(touched, per_node):
            mine = self._adj.setdefault(pid, {})
            upper: list[int] = []
            for other_dense, weight in edges:
                other = ids[other_dense]
                mine[other] = weight
                self._adj.setdefault(other, {})[pid] = weight
                if other > pid:
                    upper.append(other)
                affected.add(other)
            self._upper_order[pid] = upper

        if isinstance(self.pruning, CardinalityNodePruning):
            self._update_kept(affected)
        else:
            self._update_thresholds(affected)

        # Re-evaluate retention for every edge incident to the affected
        # neighbourhood; all other edges kept their weight and both their
        # endpoints' pruning statistics, so their verdict stands.
        pairs: set[tuple[int, int]] = set()
        for node in affected:
            for other in self._adj.get(node, ()):  # noqa: B020 - dict iteration
                pairs.add((node, other) if node < other else (other, node))
        reciprocal = getattr(self.pruning, "reciprocal", False)
        if isinstance(self.pruning, CardinalityNodePruning):
            kept = self._kept
            for pair in pairs:
                a, b = pair
                in_a = pair in kept.get(a, ())
                in_b = pair in kept.get(b, ())
                keep = (in_a and in_b) if reciprocal else (in_a or in_b)
                if keep:
                    self.retained[pair] = self._adj[a][b]
                else:
                    self.retained.pop(pair, None)
        else:
            thresholds = self._thresholds
            for pair in pairs:
                a, b = pair
                weight = self._adj[a][b]
                keep_a = weight >= thresholds.get(a, 0.0)
                keep_b = weight >= thresholds.get(b, 0.0)
                keep = (keep_a and keep_b) if reciprocal else (keep_a or keep_b)
                if keep:
                    self.retained[pair] = weight
                else:
                    self.retained.pop(pair, None)
        self.last_affected = len(affected)
        return self.retained

    def _incidence_of(self, node: int) -> list[tuple[tuple[int, int], float]]:
        """``[(pair, weight)]`` of one node in canonical incidence order.

        The batch path appends a node's incident edges while scanning the
        weight map in emission (node-major) order: first the edges owned by
        lower-id neighbours (ascending), then the node's own upper emissions
        in first-touch order.  Threshold float sums must accumulate in
        exactly that order to stay bit-identical.
        """
        adjacency = self._adj.get(node)
        if not adjacency:
            return []
        incidence: list[tuple[tuple[int, int], float]] = []
        for other in sorted(u for u in adjacency if u < node):
            incidence.append(((other, node), adjacency[other]))
        for other in self._upper_order.get(node, ()):
            incidence.append(((node, other), adjacency[other]))
        return incidence

    def _update_thresholds(self, affected: set[int]) -> None:
        for node in affected:
            incidence = self._incidence_of(node)
            if incidence:
                self._thresholds[node] = sum(
                    weight for _pair, weight in incidence
                ) / len(incidence)

    def _update_kept(self, affected: set[int]) -> None:
        k = self._k if self._k is not None else 0
        for node in affected:
            incidence = self._incidence_of(node)
            if incidence:
                ranked = sorted(incidence, key=lambda item: (-item[1], item[0]))
                self._kept[node] = {pair for pair, _w in ranked[:k]}
