"""The ER service application: routes, offload, admission, shutdown.

:class:`ServiceApp` wires a :class:`~repro.service.store.CollectionStore`
onto the HTTP router:

========  =========================================== =======================
Method    Path                                        Purpose
========  =========================================== =======================
GET       ``/healthz``                                liveness + version +
                                                      degraded collections
GET       ``/metrics``                                latency histograms,
                                                      failure counters,
                                                      per-collection stats
GET       ``/collections``                            tenant listing
POST      ``/collections/{name}/profiles``            ingest (creates the
                                                      collection on first use)
GET       ``/collections/{name}/matches/{profile_id}``  progressive matches
                                                      under ``?budget=K``
GET       ``/collections/{name}/candidates/{profile_id}``  retained edges
                                                      (delta meta-blocking)
POST      ``/collections/{name}/snapshot``            checksummed disk
                                                      snapshot + WAL truncate
========  =========================================== =======================

**Execution model.**  Probe routes (``healthz``/``metrics``/``collections``)
answer inline on the event loop; every engine-touching route offloads its
work to a bounded :class:`~concurrent.futures.ThreadPoolExecutor` via
``loop.run_in_executor`` with a per-collection gate (an :class:`asyncio.Lock`
— one engine operation per collection at a time keeps the index/delta state
lock-free, exactly the old serial semantics, while a cold ranking sweep on
one tenant no longer blocks ``healthz``, warm queries or other tenants).
A thread pool rather than the engine's process pool because collection
state is mutable and deliberately unpicklable mid-stream; the engine
kernels drop the GIL in numpy and block on I/O in memmap mode, which is
where the loop's liveness comes from.

**Admission control.**  A global in-flight cap and a per-collection cap
return ``429`` with ``Retry-After`` instead of queuing unboundedly; an
optional per-request deadline returns ``503`` on expiry — the offloaded
thread cannot be cancelled, so the collection gate stays held until it
finishes (a later request can never race a zombie sweep).  A collection
whose WAL device failed answers writes with ``507`` and keeps serving
reads (see :mod:`repro.service.wal`).

**Shutdown ordering.**  Stop accepting, *drain* in-flight connections and
offloaded work under ``drain_timeout``, then close every collection and
sweep owned tmp artifacts (:func:`repro.engine.tmpfiles.
discard_live_artifacts`) — a SIGTERM during a cold sweep must not unlink
buffers the sweep still has mapped, and a killed service must not leak
``repro-*`` files (CI asserts both).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

from repro import __version__
from repro.engine import tmpfiles as _tmpfiles
from repro.exceptions import ConfigurationError
from repro.service.http import HttpError, HttpServer, Request, Response, Router
from repro.service.metrics import ServiceMetrics
from repro.service.store import CollectionStore

_RETRY_AFTER = {"Retry-After": "1"}


class _Gate:
    """Per-collection serialisation point: one engine operation at a time."""

    __slots__ = ("lock", "inflight")

    def __init__(self) -> None:
        self.lock = asyncio.Lock()
        self.inflight = 0


class ServiceApp:
    """One service instance: a store, a router, a server, a worker pool."""

    def __init__(
        self,
        store: "CollectionStore | None" = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_queue_depth: int = 64,
        max_collection_inflight: int = 8,
        request_timeout: "float | None" = None,
        drain_timeout: float = 10.0,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers!r}")
        if max_queue_depth < 1 or max_collection_inflight < 1:
            raise ConfigurationError("admission caps must be >= 1")
        if request_timeout is not None and request_timeout <= 0:
            raise ConfigurationError(
                f"request_timeout must be positive, got {request_timeout!r}"
            )
        if drain_timeout < 0:
            raise ConfigurationError(
                f"drain_timeout must be non-negative, got {drain_timeout!r}"
            )
        self.store = store if store is not None else CollectionStore()
        self.metrics = ServiceMetrics()
        self.workers = workers
        self.max_queue_depth = max_queue_depth
        self.max_collection_inflight = max_collection_inflight
        self.request_timeout = request_timeout
        self.drain_timeout = drain_timeout
        self.router = Router()
        self._register_routes()
        self.server = HttpServer(
            self.router, host=host, port=port, metrics=self.metrics
        )
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service"
        )
        self._gates: dict[str, _Gate] = {}
        self._inflight = 0
        self._closed = False

    # ----------------------------------------------------------------- routes
    def _register_routes(self) -> None:
        add = self.router.add
        add("GET", "/healthz", self._healthz)
        add("GET", "/metrics", self._metrics)
        add("GET", "/collections", self._collections)
        add("POST", "/collections/{name}/profiles", self._ingest)
        add("GET", "/collections/{name}/matches/{profile_id}", self._matches)
        add("GET", "/collections/{name}/candidates/{profile_id}", self._candidates)
        add("POST", "/collections/{name}/snapshot", self._snapshot)

    def _healthz(self, _request: Request) -> dict:
        degraded = self.store.degraded()
        payload = {
            "status": "degraded" if degraded else "ok",
            "version": __version__,
            "collections": len(self.store.names()),
        }
        if degraded:
            payload["degraded_collections"] = degraded
        return payload

    def _metrics(self, _request: Request) -> dict:
        payload = self.metrics.snapshot()
        payload["collections"] = self.store.stats()
        payload["tmp_artifacts"] = len(_tmpfiles.live_artifacts())
        return payload

    def _collections(self, _request: Request) -> dict:
        return {"collections": self.store.stats()}

    # ---------------------------------------------------------------- offload
    async def _offload(self, name: str, call):
        """Run ``call`` on the worker pool under admission control.

        Serialises per collection through the gate lock (the engine state
        stays lock-free), sheds load at the global and per-collection caps
        with ``429``, and enforces the optional per-request deadline with
        ``503``.  On a deadline the thread cannot be cancelled: the gate is
        released only when the zombie finishes, from a done-callback.
        """
        if self._closed:
            raise HttpError(503, "service is shutting down")
        if self._inflight >= self.max_queue_depth:
            raise HttpError(
                429, "service queue is full", headers=_RETRY_AFTER
            )
        gate = self._gates.get(name)
        if gate is None:
            gate = self._gates[name] = _Gate()
        if gate.inflight >= self.max_collection_inflight:
            raise HttpError(
                429,
                f"collection {name!r} has too many requests in flight",
                headers=_RETRY_AFTER,
            )
        loop = asyncio.get_running_loop()
        deadline = (
            None if self.request_timeout is None
            else loop.time() + self.request_timeout
        )
        self._inflight += 1
        gate.inflight += 1
        self.metrics.offload_enter()
        queued = time.perf_counter()
        handed_off = False
        lock_held = False
        try:
            try:
                if deadline is None:
                    await gate.lock.acquire()
                else:
                    await asyncio.wait_for(
                        gate.lock.acquire(), max(0.0, deadline - loop.time())
                    )
            except asyncio.TimeoutError:
                raise HttpError(
                    503,
                    f"deadline expired queueing for collection {name!r}",
                ) from None
            lock_held = True
            self.metrics.observe_offload_wait(time.perf_counter() - queued)
            future = loop.run_in_executor(self._pool, call)
            if deadline is None:
                return await future
            try:
                return await asyncio.wait_for(
                    asyncio.shield(future), max(0.0, deadline - loop.time())
                )
            except asyncio.TimeoutError:
                handed_off = True

                def _finished(f, gate=gate):
                    gate.lock.release()
                    gate.inflight -= 1
                    self._inflight -= 1
                    self.metrics.offload_exit()
                    f.exception()  # late result/error is dropped deliberately

                future.add_done_callback(_finished)
                raise HttpError(
                    503,
                    f"request deadline expired after {self.request_timeout:g}s; "
                    f"the operation finishes in the background",
                ) from None
        finally:
            if not handed_off:
                if lock_held:
                    gate.lock.release()
                gate.inflight -= 1
                self._inflight -= 1
                self.metrics.offload_exit()

    def _reject_degraded(self, collection) -> None:
        if collection.degraded_reason is not None:
            raise HttpError(
                507,
                f"collection {collection.config.name!r} is read-only "
                f"(degraded): {collection.degraded_reason}",
            )

    # --------------------------------------------------------------- handlers
    async def _ingest(self, request: Request) -> Response:
        name = request.path_params["name"]
        payload = request.json()
        collection = self.store.get_or_create(name)
        self._reject_degraded(collection)
        summary = await self._offload(name, lambda: collection.ingest(payload))
        if summary.get("wal_seq") is not None:
            self.metrics.inc("wal_appends")
        summary["collection"] = collection.config.name
        return Response(summary, status=201)

    def _resolve(self, request: Request):
        collection = self.store.get(request.path_params["name"])
        if collection is None:
            raise HttpError(
                404, f"unknown collection {request.path_params['name']!r}"
            )
        try:
            profile_id = int(request.path_params["profile_id"])
        except ValueError as error:
            raise HttpError(400, "profile_id must be an integer") from error
        if not collection.has_profile(profile_id):
            raise HttpError(
                404,
                f"unknown profile {profile_id} in collection "
                f"{collection.config.name!r}",
            )
        return collection, profile_id

    async def _matches(self, request: Request) -> dict:
        collection, profile_id = self._resolve(request)
        budget = request.int_query("budget", 1000, minimum=0)
        payload = await self._offload(
            collection.config.name, lambda: collection.matches(profile_id, budget)
        )
        payload["collection"] = collection.config.name
        return payload

    async def _candidates(self, request: Request) -> dict:
        collection, profile_id = self._resolve(request)
        payload = await self._offload(
            collection.config.name, lambda: collection.candidates(profile_id)
        )
        payload["collection"] = collection.config.name
        return payload

    async def _snapshot(self, request: Request) -> Response:
        name = request.path_params["name"]
        summary = await self._offload(name, lambda: self.store.snapshot(name))
        return Response(summary, status=201)

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        await self.server.start()

    @property
    def port(self) -> int:
        return self.server.port

    async def serve_forever(self) -> None:
        await self.server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, then close and sweep."""
        await self.server.stop()
        await self._drain(self.drain_timeout)
        self.shutdown()

    async def _drain(self, timeout: float) -> bool:
        """Wait for in-flight connections *and* offloaded work, bounded.

        Returns ``False`` when the deadline expired with work still running
        — shutdown proceeds anyway (deliberately bounded), which can race a
        zombie thread only after the operator-chosen drain window.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        drained = await self.server.drain(max(0.0, deadline - loop.time()))
        while self._inflight > 0 and loop.time() < deadline:
            await asyncio.sleep(0.02)
        return drained and self._inflight == 0

    def shutdown(self) -> None:
        """Close collections and sweep owned tmp artifacts (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=False, cancel_futures=True)
        self.store.close_all()
        _tmpfiles.discard_live_artifacts()


async def run_service(app: ServiceApp, *, ready=None, stop_event=None) -> None:
    """Start ``app``, report readiness, serve until ``stop_event`` fires.

    ``ready`` is called with the bound port once the listener is up (the CLI
    prints its parseable "serving on" line from it); ``stop_event`` is an
    :class:`asyncio.Event` — signal handlers set it for graceful shutdown.
    """
    await app.start()
    if ready is not None:
        ready(app.port)
    if stop_event is None:
        stop_event = asyncio.Event()
    try:
        await stop_event.wait()
    finally:
        await app.stop()
