"""The ER service application: routes, lifecycle, graceful shutdown.

:class:`ServiceApp` wires a :class:`~repro.service.store.CollectionStore`
onto the HTTP router:

========  =========================================== =======================
Method    Path                                        Purpose
========  =========================================== =======================
GET       ``/healthz``                                liveness + version
GET       ``/metrics``                                latency histograms,
                                                      engine counters,
                                                      per-collection stats
GET       ``/collections``                            tenant listing
POST      ``/collections/{name}/profiles``            ingest (creates the
                                                      collection on first use)
GET       ``/collections/{name}/matches/{profile_id}``  progressive matches
                                                      under ``?budget=K``
GET       ``/collections/{name}/candidates/{profile_id}``  retained edges
                                                      (delta meta-blocking)
POST      ``/collections/{name}/snapshot``            checksummed disk
                                                      snapshot
========  =========================================== =======================

Shutdown is deliberate: stop accepting, close every collection (releasing
shared-memory and memmap buffers), then sweep every tmp artifact this
process still owns via
:func:`repro.engine.tmpfiles.discard_live_artifacts` — a killed service must
not leak ``repro-*`` files, which the CI smoke test asserts.
"""

from __future__ import annotations

import asyncio

from repro import __version__
from repro.engine import tmpfiles as _tmpfiles
from repro.service.http import HttpError, HttpServer, Request, Response, Router
from repro.service.metrics import ServiceMetrics
from repro.service.store import CollectionStore


class ServiceApp:
    """One service instance: a store, a router, a server."""

    def __init__(
        self,
        store: "CollectionStore | None" = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.store = store if store is not None else CollectionStore()
        self.metrics = ServiceMetrics()
        self.router = Router()
        self._register_routes()
        self.server = HttpServer(
            self.router, host=host, port=port, metrics=self.metrics
        )
        self._closed = False

    # ----------------------------------------------------------------- routes
    def _register_routes(self) -> None:
        add = self.router.add
        add("GET", "/healthz", self._healthz)
        add("GET", "/metrics", self._metrics)
        add("GET", "/collections", self._collections)
        add("POST", "/collections/{name}/profiles", self._ingest)
        add("GET", "/collections/{name}/matches/{profile_id}", self._matches)
        add("GET", "/collections/{name}/candidates/{profile_id}", self._candidates)
        add("POST", "/collections/{name}/snapshot", self._snapshot)

    def _healthz(self, _request: Request) -> dict:
        return {
            "status": "ok",
            "version": __version__,
            "collections": len(self.store.names()),
        }

    def _metrics(self, _request: Request) -> dict:
        payload = self.metrics.snapshot()
        payload["collections"] = self.store.stats()
        payload["tmp_artifacts"] = len(_tmpfiles.live_artifacts())
        return payload

    def _collections(self, _request: Request) -> dict:
        return {"collections": self.store.stats()}

    def _ingest(self, request: Request) -> Response:
        collection = self.store.get_or_create(request.path_params["name"])
        summary = collection.ingest(request.json())
        summary["collection"] = collection.config.name
        return Response(summary, status=201)

    def _resolve(self, request: Request):
        collection = self.store.get(request.path_params["name"])
        if collection is None:
            raise HttpError(
                404, f"unknown collection {request.path_params['name']!r}"
            )
        try:
            profile_id = int(request.path_params["profile_id"])
        except ValueError as error:
            raise HttpError(400, "profile_id must be an integer") from error
        if not collection.has_profile(profile_id):
            raise HttpError(
                404,
                f"unknown profile {profile_id} in collection "
                f"{collection.config.name!r}",
            )
        return collection, profile_id

    def _matches(self, request: Request) -> dict:
        collection, profile_id = self._resolve(request)
        budget = request.int_query("budget", 1000, minimum=0)
        payload = collection.matches(profile_id, budget)
        payload["collection"] = collection.config.name
        return payload

    def _candidates(self, request: Request) -> dict:
        collection, profile_id = self._resolve(request)
        payload = collection.candidates(profile_id)
        payload["collection"] = collection.config.name
        return payload

    def _snapshot(self, request: Request) -> Response:
        summary = self.store.snapshot(request.path_params["name"])
        return Response(summary, status=201)

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        await self.server.start()

    @property
    def port(self) -> int:
        return self.server.port

    async def serve_forever(self) -> None:
        await self.server.serve_forever()

    async def stop(self) -> None:
        await self.server.stop()
        self.shutdown()

    def shutdown(self) -> None:
        """Close collections and sweep owned tmp artifacts (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.store.close_all()
        _tmpfiles.discard_live_artifacts()


async def run_service(app: ServiceApp, *, ready=None, stop_event=None) -> None:
    """Start ``app``, report readiness, serve until ``stop_event`` fires.

    ``ready`` is called with the bound port once the listener is up (the CLI
    prints its parseable "serving on" line from it); ``stop_event`` is an
    :class:`asyncio.Event` — signal handlers set it for graceful shutdown.
    """
    await app.start()
    if ready is not None:
        ready(app.port)
    if stop_event is None:
        stop_event = asyncio.Event()
    try:
        await stop_event.wait()
    finally:
        await app.stop()
