"""Per-collection write-ahead ingest log: append, replay, truncate.

The service's durability contract is simple: **every ingest batch is logged
before it touches the incremental index**, so the state lost by a crash is
exactly the batches whose log record never hit the disk — nothing more.
Startup replay (``CollectionStore.recover``) restores the latest snapshot
and re-applies the WAL tail; ``snapshot`` truncates the log up to the
snapshotted sequence number so the tail stays short.

On-disk format — a flat sequence of self-delimiting records:

======  =====  =======================================================
offset  bytes  field
======  =====  =======================================================
0       8      sequence number (``<Q``, unsigned little-endian)
8       4      payload length ``L`` (``<I``)
12      4      CRC-32 of the payload bytes (``<I``, :func:`zlib.crc32`)
16      L      payload — the raw ingest dict, pickled
======  =====  =======================================================

A **torn tail** (the process died mid-write: short header, short payload,
or CRC mismatch) is detected on replay, truncated off the file and counted
— never fatal.  Replay therefore yields a batch-boundary prefix of the
ingest history: a record is either fully durable or it never happened.

Durability is graded by the ``fsync`` policy:

* ``always`` — ``fsync`` after every append: survives power loss;
* ``batch`` (default) — appends are flushed to the OS (a killed *process*
  loses nothing) but ``fsync`` only on :meth:`sync`/snapshot/close: an OS
  crash can lose the unsynced tail;
* ``off`` — never ``fsync``: fastest, same process-kill guarantee as
  ``batch``.

Truncation rewrites the surviving records into a pid-stamped ``waltmp``
artifact (:mod:`repro.engine.tmpfiles`) and renames it over the log, so a
crash mid-truncate leaves either the complete old log or the complete new
one, plus at most one orphaned temp the startup sweep reclaims.

A WAL device error (``OSError`` on append) flips the owning collection
into **read-only degraded mode**: writes are rejected (HTTP ``507``), reads
keep serving the last consistent state — see
:class:`~repro.service.collection.ServiceCollection`.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib

from repro.engine import tmpfiles as _tmpfiles
from repro.engine.faults import service_fault
from repro.exceptions import ConfigurationError, SparkERError

_HEADER = struct.Struct("<QII")  # sequence number, payload length, payload CRC-32

FSYNC_POLICIES = ("always", "batch", "off")


class DegradedError(SparkERError):
    """A write reached a collection whose WAL device has failed (HTTP 507)."""


class WriteAheadLog:
    """One append-only, CRC-checksummed ingest log file."""

    def __init__(self, path: "str | os.PathLike", *, fsync: str = "batch") -> None:
        if fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"WAL fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.path = os.fspath(path)
        self.fsync = fsync
        self.next_seq = 1
        self.appends = 0
        self.replayed_records = 0
        self.torn_truncations = 0
        self.truncated_records = 0
        self._handle = None
        self._dirty = False

    # ----------------------------------------------------------------- append
    def _append_handle(self):
        if self._handle is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, payload: object) -> int:
        """Write one durable record; returns its sequence number.

        The record is flushed to the OS before returning under every policy
        (process death never loses an acked append); ``fsync`` per the
        policy.  Raises :class:`OSError` on device failure — the caller
        (the collection) maps that to degraded mode.
        """
        service_fault("wal.append")
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        seq = self.next_seq
        record = _HEADER.pack(seq, len(data), zlib.crc32(data)) + data
        handle = self._append_handle()
        handle.write(record)
        handle.flush()
        if self.fsync == "always":
            os.fsync(handle.fileno())
        else:
            self._dirty = True
        self.next_seq = seq + 1
        self.appends += 1
        return seq

    def sync(self) -> None:
        """Force the log to stable storage (no-op under policy ``off``)."""
        if self._dirty and self.fsync != "off" and self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._dirty = False

    def ensure_next_seq(self, floor: int) -> None:
        """Raise the next sequence number to at least ``floor``.

        Recovery calls this with ``applied_seq + 1`` so sequence numbers
        stay strictly increasing across a snapshot-truncated (possibly
        empty) log — replay idempotence depends on it.
        """
        self.next_seq = max(self.next_seq, floor)

    # ----------------------------------------------------------------- replay
    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _scan(self):
        """Parse the file into ``(records, good_end, torn)``.

        ``records`` is ``[(seq, raw_record_bytes, payload_bytes)]`` for every
        intact record, ``good_end`` the offset after the last one, and
        ``torn`` whether trailing bytes failed the length/CRC checks.
        """
        records = []
        good_end = 0
        torn = False
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return records, good_end, torn
        offset = 0
        while offset < len(data):
            if offset + _HEADER.size > len(data):
                torn = True
                break
            seq, length, crc = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > len(data):
                torn = True
                break
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                torn = True
                break
            records.append((seq, data[offset:end], payload))
            good_end = end
            offset = end
        return records, good_end, torn

    def replay(self) -> "list[tuple[int, object]]":
        """Return every intact ``(seq, payload)``; truncate a torn tail.

        A partial final record (the process died mid-write) is cut off the
        file and counted in :attr:`torn_truncations` — the log then ends at
        the last complete record, which is the durability contract: a batch
        is either fully logged or it never happened.
        """
        self._close_handle()
        records, good_end, torn = self._scan()
        if torn:
            with open(self.path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
            self.torn_truncations += 1
        out = []
        for seq, _raw, payload in records:
            out.append((seq, pickle.loads(payload)))
            self.next_seq = max(self.next_seq, seq + 1)
        self.replayed_records += len(out)
        return out

    # --------------------------------------------------------------- truncate
    def truncate_upto(self, seq: int) -> int:
        """Drop every record with sequence number ``<= seq``; return the count.

        Called after a snapshot: records the snapshot already covers are
        dead weight.  The surviving suffix is rewritten into a ``waltmp``
        artifact and atomically renamed over the log — a crash in between
        leaves a complete log either way.
        """
        self._close_handle()
        records, _good_end, torn = self._scan()
        survivors = [(s, raw) for s, raw, _payload in records if s > seq]
        dropped = len(records) - len(survivors)
        if dropped == 0 and not torn and os.path.exists(self.path):
            return 0
        parent = os.path.dirname(self.path) or "."
        os.makedirs(parent, exist_ok=True)
        tmp_path = _tmpfiles.make_artifact_path("waltmp", parent)
        with open(tmp_path, "wb") as handle:
            for _s, raw in survivors:
                handle.write(raw)
            handle.flush()
            os.fsync(handle.fileno())
        service_fault("wal.truncate")
        os.replace(tmp_path, self.path)
        _tmpfiles.release_artifact(tmp_path)
        self.truncated_records += dropped
        return dropped

    # -------------------------------------------------------------- lifecycle
    def size_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def stats(self) -> dict:
        return {
            "path": self.path,
            "fsync": self.fsync,
            "next_seq": self.next_seq,
            "appends": self.appends,
            "replayed_records": self.replayed_records,
            "torn_truncations": self.torn_truncations,
            "truncated_records": self.truncated_records,
            "size_bytes": self.size_bytes(),
        }

    def close(self) -> None:
        """Sync (per policy) and release the file handle (idempotent)."""
        try:
            self.sync()
        except OSError:
            pass
        self._close_handle()

    def __repr__(self) -> str:
        return f"WriteAheadLog(path={self.path!r}, fsync={self.fsync!r})"
