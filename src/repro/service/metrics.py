"""Service-side request metrics: per-endpoint latency histograms.

Thin aggregation over :class:`repro.engine.metrics.LatencyHistogram` — one
histogram and one request/error counter pair per route label, snapshotted by
the ``GET /metrics`` endpoint.  Labels are route *patterns* (e.g.
``POST /collections/{name}/profiles``), not concrete paths, so cardinality is
bounded by the route table.
"""

from __future__ import annotations

import time

from repro.engine.metrics import LatencyHistogram


class ServiceMetrics:
    """Request counters and latency histograms keyed by route label."""

    def __init__(self) -> None:
        self.started_at = time.time()
        self._histograms: dict[str, LatencyHistogram] = {}
        self._requests: dict[str, int] = {}
        self._errors: dict[str, int] = {}

    def observe(self, label: str, seconds: float, status: int) -> None:
        """Record one handled request (5xx statuses count as errors)."""
        histogram = self._histograms.get(label)
        if histogram is None:
            histogram = self._histograms[label] = LatencyHistogram()
        histogram.observe(seconds)
        self._requests[label] = self._requests.get(label, 0) + 1
        if status >= 500:
            self._errors[label] = self._errors.get(label, 0) + 1

    def snapshot(self) -> dict:
        """The /metrics payload fragment for request handling."""
        endpoints = {}
        for label, histogram in sorted(self._histograms.items()):
            summary = histogram.summary()
            summary["requests"] = self._requests.get(label, 0)
            summary["errors"] = self._errors.get(label, 0)
            endpoints[label] = summary
        return {
            "uptime_seconds": max(0.0, time.time() - self.started_at),
            "requests": sum(self._requests.values()),
            "errors": sum(self._errors.values()),
            "endpoints": endpoints,
        }
