"""Service-side request metrics: latency histograms plus failure counters.

Thin aggregation over :class:`repro.engine.metrics.LatencyHistogram` — one
histogram and one request/error counter pair per route label, snapshotted by
the ``GET /metrics`` endpoint.  Labels are route *patterns* (e.g.
``POST /collections/{name}/profiles``), not concrete paths, so cardinality is
bounded by the route table.

The durability/admission layer adds two more surfaces:

* **named counters** (:meth:`ServiceMetrics.inc`) for the failure paths —
  WAL appends / replayed records / torn-tail truncations, and the shed-load
  responses ``429``/``503``/``507`` (counted automatically by
  :meth:`observe`);
* the **offload gauge + wait histogram**: how many requests currently sit
  on the worker pool (and the high-water mark), and how long each waited
  for its collection gate before starting.
"""

from __future__ import annotations

import time

from repro.engine.metrics import LatencyHistogram

_SHED_STATUSES = (429, 503, 507)


class ServiceMetrics:
    """Request counters and latency histograms keyed by route label."""

    def __init__(self) -> None:
        self.started_at = time.time()
        self._histograms: dict[str, LatencyHistogram] = {}
        self._requests: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        self._counters: dict[str, int] = {}
        self._offload_wait = LatencyHistogram()
        self._offload_depth = 0
        self._offload_peak_depth = 0

    def observe(self, label: str, seconds: float, status: int) -> None:
        """Record one handled request (5xx statuses count as errors)."""
        histogram = self._histograms.get(label)
        if histogram is None:
            histogram = self._histograms[label] = LatencyHistogram()
        histogram.observe(seconds)
        self._requests[label] = self._requests.get(label, 0) + 1
        if status >= 500:
            self._errors[label] = self._errors.get(label, 0) + 1
        if status in _SHED_STATUSES:
            self.inc(f"responses_{status}")

    # ------------------------------------------------------- failure counters
    def inc(self, counter: str, amount: int = 1) -> None:
        """Bump a named counter (WAL appends, replays, shed responses, ...)."""
        self._counters[counter] = self._counters.get(counter, 0) + amount

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    # --------------------------------------------------------------- offload
    def offload_enter(self) -> None:
        self._offload_depth += 1
        if self._offload_depth > self._offload_peak_depth:
            self._offload_peak_depth = self._offload_depth

    def offload_exit(self) -> None:
        self._offload_depth -= 1

    def observe_offload_wait(self, seconds: float) -> None:
        """Time one request spent queued for its collection gate."""
        self._offload_wait.observe(seconds)

    def snapshot(self) -> dict:
        """The /metrics payload fragment for request handling."""
        endpoints = {}
        for label, histogram in sorted(self._histograms.items()):
            summary = histogram.summary()
            summary["requests"] = self._requests.get(label, 0)
            summary["errors"] = self._errors.get(label, 0)
            endpoints[label] = summary
        return {
            "uptime_seconds": max(0.0, time.time() - self.started_at),
            "requests": sum(self._requests.values()),
            "errors": sum(self._errors.values()),
            "endpoints": endpoints,
            "counters": dict(sorted(self._counters.items())),
            "offload": {
                "queue_depth": self._offload_depth,
                "peak_queue_depth": self._offload_peak_depth,
                "wait": self._offload_wait.summary(),
            },
        }
