"""Multi-tenant collection store: snapshots, write-ahead logs, recovery.

The store owns every :class:`~repro.service.collection.ServiceCollection` of
a running service and reuses the pipeline's
:class:`~repro.pipeline.checkpoint.PipelineCheckpoint` machinery for
persistence: each collection snapshots into its own checkpoint directory
(``<snapshot_dir>/<name>/``) as an atomic, SHA-256-verified pickle with a
rotated backup.  The incremental index pickles only its delta overlay — a
restored collection rebuilds its CSR with one compaction on first query, so
snapshots stay small and never contain memmap paths from a dead process.

With a ``wal_dir`` every collection also gets a
:class:`~repro.service.wal.WriteAheadLog` (``<wal_dir>/<name>.wal``):
ingests are logged before they apply, ``snapshot`` truncates the log up to
the snapshotted sequence number, and :meth:`CollectionStore.recover` —
the crash-restart entry point — restores snapshots, sweeps orphaned WAL
rewrite temps, and replays each log tail, reconstructing exactly the
pre-crash acked state (a batch-boundary prefix of the ingest history).
"""

from __future__ import annotations

import os

from repro.engine import tmpfiles as _tmpfiles
from repro.engine.faults import service_fault
from repro.exceptions import ConfigurationError
from repro.pipeline.checkpoint import PipelineCheckpoint
from repro.service.collection import (
    CollectionConfig,
    ServiceCollection,
    validate_collection_name,
)
from repro.service.wal import DegradedError, WriteAheadLog

_WAL_SUFFIX = ".wal"


class CollectionStore:
    """Name → :class:`ServiceCollection`, plus snapshot/WAL persistence."""

    def __init__(
        self,
        *,
        snapshot_dir: "str | None" = None,
        wal_dir: "str | None" = None,
        defaults: "dict | None" = None,
    ) -> None:
        self.snapshot_dir = snapshot_dir
        self.wal_dir = wal_dir
        # Config values applied to collections created on first ingest
        # (clean_clean, backends, ...); an explicit CollectionConfig wins.
        self.defaults = dict(defaults or {})
        self._collections: dict[str, ServiceCollection] = {}

    # ----------------------------------------------------------------- access
    def names(self) -> list[str]:
        return sorted(self._collections)

    def get(self, name: str) -> "ServiceCollection | None":
        return self._collections.get(name)

    def get_or_create(self, name: str) -> ServiceCollection:
        """The named collection, created from the store defaults if new."""
        collection = self._collections.get(name)
        if collection is None:
            config = CollectionConfig(name=name, **self.defaults)
            collection = ServiceCollection(config)
            self._collections[name] = collection
        self._attach_wal(collection)
        return collection

    def add(self, collection: ServiceCollection) -> ServiceCollection:
        """Register an explicitly configured collection (name must be free)."""
        name = collection.config.name
        if name in self._collections:
            raise ConfigurationError(f"collection {name!r} already exists")
        self._collections[name] = collection
        self._attach_wal(collection)
        return collection

    def degraded(self) -> dict:
        """Name → reason for every collection in read-only degraded mode."""
        return {
            name: collection.degraded_reason
            for name, collection in sorted(self._collections.items())
            if collection.degraded_reason is not None
        }

    # ------------------------------------------------------------- durability
    def _wal_path(self, name: str) -> str:
        return os.path.join(self.wal_dir, name + _WAL_SUFFIX)

    def _attach_wal(self, collection: ServiceCollection) -> None:
        if not self.wal_dir or collection.wal is not None:
            return
        os.makedirs(self.wal_dir, exist_ok=True)
        policy = collection.config.wal_fsync or "batch"
        collection.attach_wal(
            WriteAheadLog(self._wal_path(collection.config.name), fsync=policy)
        )

    def recover(self) -> dict:
        """Crash-restart entry point: snapshots, temp sweep, WAL replay.

        Restores every readable snapshot, sweeps ``waltmp`` rewrite temps
        orphaned by a crash mid-truncate, then replays each ``<name>.wal``
        tail on top of the restored state — records the snapshot already
        covers (``seq <= wal_applied_seq``) are skipped, so replaying twice
        or after an un-truncated snapshot is idempotent.  Collections that
        only exist as a log (no snapshot yet) are created from the store
        defaults, which is the configuration they were serving with as long
        as the service is restarted with the same spec.

        Returns ``{"restored", "replayed", "torn_truncations", "swept"}``.
        """
        summary: dict = {
            "restored": self.load_snapshots(),
            "replayed": {},
            "torn_truncations": 0,
            "swept": [],
        }
        if self.wal_dir and os.path.isdir(self.wal_dir):
            summary["swept"] = _tmpfiles.sweep_orphaned_artifacts(
                self.wal_dir, kind="waltmp"
            )
            for entry in sorted(os.listdir(self.wal_dir)):
                if not entry.endswith(_WAL_SUFFIX):
                    continue
                name = entry[: -len(_WAL_SUFFIX)]
                validate_collection_name(name)
                collection = self.get_or_create(name)
                wal = collection.wal
                replayed = 0
                for seq, payload in wal.replay():
                    outcome = collection.ingest(payload, replay_seq=seq)
                    if not outcome.get("duplicate"):
                        replayed += 1
                collection.wal_replayed = replayed
                if replayed:
                    summary["replayed"][name] = replayed
                summary["torn_truncations"] += wal.torn_truncations
        # Snapshot-restored collections whose log never existed (or was
        # truncated away) still need a WAL and a continuous sequence floor.
        for collection in self._collections.values():
            self._attach_wal(collection)
            if collection.wal is not None:
                collection.wal.ensure_next_seq(collection.wal_applied_seq + 1)
        return summary

    # -------------------------------------------------------------- snapshots
    def _checkpoint(self, name: str) -> PipelineCheckpoint:
        if not self.snapshot_dir:
            raise ConfigurationError("service started without a snapshot directory")
        validate_collection_name(name)
        return PipelineCheckpoint(os.path.join(self.snapshot_dir, name))

    def snapshot(self, name: str) -> dict:
        """Persist one collection; return where and what was written.

        Order matters for crash safety: sync the WAL, write the checkpoint,
        *then* truncate the log up to the snapshotted sequence number — a
        crash between the last two steps leaves extra log records that
        replay skips as duplicates.
        """
        collection = self._collections.get(name)
        if collection is None:
            raise ConfigurationError(f"unknown collection {name!r}")
        if collection.degraded_reason is not None:
            raise DegradedError(
                f"collection {name!r} is read-only (degraded): "
                f"{collection.degraded_reason}"
            )
        checkpoint = self._checkpoint(name)
        wal = collection.wal
        if wal is not None:
            try:
                wal.sync()
            except OSError as error:
                collection.degraded_reason = f"WAL sync failed: {error}"
                raise DegradedError(
                    f"collection {name!r} entered read-only (degraded) "
                    f"mode: {error}"
                ) from error
        checkpoint.save(collection.snapshot_state())
        service_fault(f"snapshot.save.{name}")
        truncated = 0
        if wal is not None:
            truncated = wal.truncate_upto(collection.wal_applied_seq)
        return {
            "collection": name,
            "path": str(checkpoint.state_path),
            "profiles": collection.index.num_profiles,
            "wal_truncated_records": truncated,
        }

    def load_snapshots(self) -> list[str]:
        """Restore every collection snapshotted under ``snapshot_dir``.

        Returns the restored names.  Collections already registered (e.g.
        preloaded from a spec) are left alone; unreadable snapshots raise —
        refusing to serve half a dataset beats serving it silently.
        """
        if not self.snapshot_dir or not os.path.isdir(self.snapshot_dir):
            return []
        restored = []
        for name in sorted(os.listdir(self.snapshot_dir)):
            if name in self._collections:
                continue
            checkpoint = PipelineCheckpoint(os.path.join(self.snapshot_dir, name))
            if not checkpoint.exists():
                continue
            state = checkpoint.load()
            self._collections[name] = ServiceCollection.restore(state)
            restored.append(name)
        return restored

    # -------------------------------------------------------------- lifecycle
    def close_all(self) -> None:
        """Close every collection (idempotent, never raises per-collection)."""
        for collection in self._collections.values():
            try:
                collection.close()
            except Exception:  # noqa: BLE001 - shutdown must keep sweeping
                pass

    def stats(self) -> dict:
        return {name: c.stats() for name, c in sorted(self._collections.items())}
