"""Multi-tenant collection store with checksummed disk snapshots.

The store owns every :class:`~repro.service.collection.ServiceCollection` of
a running service and reuses the pipeline's
:class:`~repro.pipeline.checkpoint.PipelineCheckpoint` machinery for
persistence: each collection snapshots into its own checkpoint directory
(``<snapshot_dir>/<name>/``) as an atomic, SHA-256-verified pickle with a
rotated backup.  The incremental index pickles only its delta overlay — a
restored collection rebuilds its CSR with one compaction on first query, so
snapshots stay small and never contain memmap paths from a dead process.
"""

from __future__ import annotations

import os

from repro.exceptions import ConfigurationError
from repro.pipeline.checkpoint import PipelineCheckpoint
from repro.service.collection import (
    CollectionConfig,
    ServiceCollection,
    validate_collection_name,
)


class CollectionStore:
    """Name → :class:`ServiceCollection`, plus snapshot/restore."""

    def __init__(
        self,
        *,
        snapshot_dir: "str | None" = None,
        defaults: "dict | None" = None,
    ) -> None:
        self.snapshot_dir = snapshot_dir
        # Config values applied to collections created on first ingest
        # (clean_clean, backends, ...); an explicit CollectionConfig wins.
        self.defaults = dict(defaults or {})
        self._collections: dict[str, ServiceCollection] = {}

    # ----------------------------------------------------------------- access
    def names(self) -> list[str]:
        return sorted(self._collections)

    def get(self, name: str) -> "ServiceCollection | None":
        return self._collections.get(name)

    def get_or_create(self, name: str) -> ServiceCollection:
        """The named collection, created from the store defaults if new."""
        collection = self._collections.get(name)
        if collection is None:
            config = CollectionConfig(name=name, **self.defaults)
            collection = ServiceCollection(config)
            self._collections[name] = collection
        return collection

    def add(self, collection: ServiceCollection) -> ServiceCollection:
        """Register an explicitly configured collection (name must be free)."""
        name = collection.config.name
        if name in self._collections:
            raise ConfigurationError(f"collection {name!r} already exists")
        self._collections[name] = collection
        return collection

    # -------------------------------------------------------------- snapshots
    def _checkpoint(self, name: str) -> PipelineCheckpoint:
        if not self.snapshot_dir:
            raise ConfigurationError("service started without a snapshot directory")
        validate_collection_name(name)
        return PipelineCheckpoint(os.path.join(self.snapshot_dir, name))

    def snapshot(self, name: str) -> dict:
        """Persist one collection; return where and what was written."""
        collection = self._collections.get(name)
        if collection is None:
            raise ConfigurationError(f"unknown collection {name!r}")
        checkpoint = self._checkpoint(name)
        checkpoint.save(collection.snapshot_state())
        return {
            "collection": name,
            "path": str(checkpoint.state_path),
            "profiles": collection.index.num_profiles,
        }

    def load_snapshots(self) -> list[str]:
        """Restore every collection snapshotted under ``snapshot_dir``.

        Returns the restored names.  Collections already registered (e.g.
        preloaded from a spec) are left alone; unreadable snapshots raise —
        refusing to serve half a dataset beats serving it silently.
        """
        if not self.snapshot_dir or not os.path.isdir(self.snapshot_dir):
            return []
        restored = []
        for name in sorted(os.listdir(self.snapshot_dir)):
            if name in self._collections:
                continue
            checkpoint = PipelineCheckpoint(os.path.join(self.snapshot_dir, name))
            if not checkpoint.exists():
                continue
            state = checkpoint.load()
            self._collections[name] = ServiceCollection.restore(state)
            restored.append(name)
        return restored

    # -------------------------------------------------------------- lifecycle
    def close_all(self) -> None:
        """Close every collection (idempotent, never raises per-collection)."""
        for collection in self._collections.values():
            try:
                collection.close()
            except Exception:  # noqa: BLE001 - shutdown must keep sweeping
                pass

    def stats(self) -> dict:
        return {name: c.stats() for name, c in sorted(self._collections.items())}
