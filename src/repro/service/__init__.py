"""ER-as-a-service: a long-lived, queryable resolved-entity store.

The batch library resolves one dataset per run; this package keeps the
blocking index alive between requests.  Profiles stream in through
:meth:`~repro.service.collection.ServiceCollection.ingest` into an
append-only :class:`~repro.metablocking.index.IncrementalBlockIndex`,
candidate edges refresh neighbourhood-locally through the
:class:`~repro.service.delta.DeltaMetaBlocker`, and budgeted match queries
answer from a cached progressive ranking — all exposed over a stdlib-asyncio
HTTP server (:mod:`repro.service.app`) with per-endpoint latency histograms
and checksummed disk snapshots.  ``python -m repro.cli serve`` runs it.

Durability and liveness (see ``docs/SERVICE.md`` § Durability &
degradation): every ingest batch is logged to a per-collection
:class:`~repro.service.wal.WriteAheadLog` before it applies, crash restarts
replay the log tail (:meth:`~repro.service.store.CollectionStore.recover`),
handlers that sweep or rebuild run on a bounded worker pool off the event
loop, and admission control sheds over-limit load with ``429``/``503``
(``507`` when a WAL device error flips a collection read-only).
"""

from repro.service.app import ServiceApp, run_service
from repro.service.collection import CollectionConfig, ServiceCollection
from repro.service.delta import DeltaMetaBlocker
from repro.service.http import HttpError, HttpServer, Request, Response, Router
from repro.service.metrics import ServiceMetrics
from repro.service.store import CollectionStore
from repro.service.wal import FSYNC_POLICIES, DegradedError, WriteAheadLog

__all__ = [
    "CollectionConfig",
    "CollectionStore",
    "DegradedError",
    "DeltaMetaBlocker",
    "FSYNC_POLICIES",
    "HttpError",
    "HttpServer",
    "Request",
    "Response",
    "Router",
    "ServiceApp",
    "ServiceCollection",
    "ServiceMetrics",
    "WriteAheadLog",
    "run_service",
]
