"""One served entity collection: incremental index + delta meta-blocker.

A :class:`ServiceCollection` ties together the pieces a long-lived resolver
needs per tenant:

* an :class:`~repro.metablocking.index.IncrementalBlockIndex` that absorbs
  ingested profiles into a delta overlay and compacts to a bit-exact CSR;
* a :class:`~repro.service.delta.DeltaMetaBlocker` whose retained candidate
  edges are refreshed neighbourhood-locally from the accumulated touched set;
* a cached progressive ranking (:class:`~repro.metablocking.progressive.
  ProgressiveSortedComparisons` / ``ProgressiveNodeScheduling``) so repeated
  budgeted match queries extend one stream prefix instead of re-sweeping.

Everything here is synchronous library code with no HTTP awareness — the
:mod:`repro.service.app` layer maps it onto routes, and tests drive it
directly.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass

from repro.data.profile import EntityProfile
from repro.engine.faults import service_fault
from repro.exceptions import ConfigurationError, DataError
from repro.metablocking.index import IncrementalBlockIndex
from repro.metablocking.progressive import (
    ProgressiveNodeScheduling,
    ProgressiveSortedComparisons,
)
from repro.service.delta import DeltaMetaBlocker
from repro.service.wal import FSYNC_POLICIES, DegradedError, WriteAheadLog

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")

PROGRESSIVE_STRATEGIES = ("sorted", "node")


def validate_collection_name(name: str) -> str:
    """A collection name is a short filesystem- and URL-safe token."""
    if not isinstance(name, str) or not _NAME_PATTERN.match(name):
        raise ConfigurationError(
            "collection name must match [A-Za-z0-9_.-]{1,64}, "
            f"got {name!r}"
        )
    return name


@dataclass
class CollectionConfig:
    """Declarative shape of one served collection."""

    name: str
    clean_clean: bool = False
    weighting: str = "cbs"
    pruning: str = "wnp"
    use_entropy: bool = False
    min_token_length: int = 1
    remove_stopwords: bool = False
    compact_every: "int | None" = None
    kernel_backend: "str | None" = None
    buffer_backend: "str | None" = None
    tmp_dir: "str | None" = None
    progressive: str = "sorted"
    wal_fsync: "str | None" = None

    def __post_init__(self) -> None:
        validate_collection_name(self.name)
        if self.progressive not in PROGRESSIVE_STRATEGIES:
            raise ConfigurationError(
                f"progressive strategy must be one of {PROGRESSIVE_STRATEGIES}, "
                f"got {self.progressive!r}"
            )
        if self.wal_fsync is not None and self.wal_fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"wal_fsync must be one of {FSYNC_POLICIES} or null, "
                f"got {self.wal_fsync!r}"
            )

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "CollectionConfig":
        if not isinstance(payload, dict):
            raise ConfigurationError("collection config must be a mapping")
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - py39 keys view
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown collection config keys: {sorted(unknown)}"
            )
        return cls(**payload)


def _parse_attributes(raw, profile: EntityProfile) -> None:
    if not isinstance(raw, dict):
        raise DataError("profile 'attributes' must be an object of attr -> value")
    for attribute, value in raw.items():
        values = value if isinstance(value, (list, tuple)) else [value]
        for item in values:
            if item is None:
                continue
            if not isinstance(item, (str, int, float, bool)):
                raise DataError(
                    f"attribute {attribute!r} has unsupported value type "
                    f"{type(item).__name__}"
                )
            profile.add(str(attribute), str(item))


class ServiceCollection:
    """A named, queryable, growing entity collection."""

    def __init__(self, config: CollectionConfig) -> None:
        self.config = config
        self.index = IncrementalBlockIndex(
            clean_clean=config.clean_clean,
            min_token_length=config.min_token_length,
            remove_stopwords=config.remove_stopwords,
            compact_every=config.compact_every,
            backend=config.kernel_backend,
            buffer_backend=config.buffer_backend,
            tmp_dir=config.tmp_dir,
        )
        self.delta = DeltaMetaBlocker(
            config.weighting, config.pruning, use_entropy=config.use_entropy
        )
        # Touched profile ids accumulated since the last delta refresh.
        self._pending_touched: set[int] = set()
        # Cached progressive ranking: one stream prefix per index version.
        self._prefix: list[tuple[int, int]] = []
        self._prefix_iter = None
        self._prefix_complete = False
        self.ingests = 0
        self.queries = 0
        # Durability state: wired by the store when a WAL directory is
        # configured.  ``wal_applied_seq`` is the highest log sequence number
        # whose batch reached the index — snapshots persist it, replay skips
        # records at or below it (duplicate idempotence).
        self.wal: "WriteAheadLog | None" = None
        self.wal_applied_seq = 0
        self.wal_replayed = 0
        self.degraded_reason: "str | None" = None

    def attach_wal(self, wal: WriteAheadLog) -> None:
        self.wal = wal

    # ---------------------------------------------------------------- ingest
    def _parse_profiles(self, payload: dict) -> list[EntityProfile]:
        """Fully validate one ingest payload into profiles, pre-apply.

        Every check runs *before* the batch is WAL-logged or applied —
        including the index's strictly-increasing id invariant — so a logged
        record is guaranteed to apply cleanly on replay.
        """
        if not isinstance(payload, dict) or "profiles" not in payload:
            raise DataError("ingest payload must be {'profiles': [...]}")
        raw_profiles = payload["profiles"]
        if not isinstance(raw_profiles, list):
            raise DataError("'profiles' must be a list")
        last_id = self.index.last_profile_id
        next_id = last_id + 1
        profiles: list[EntityProfile] = []
        for position, raw in enumerate(raw_profiles):
            if not isinstance(raw, dict):
                raise DataError(f"profile #{position} must be an object")
            raw_id = raw.get("id")
            if raw_id is None:
                profile_id = next_id
            elif isinstance(raw_id, int) and not isinstance(raw_id, bool):
                profile_id = raw_id
            else:
                raise DataError(f"profile #{position} 'id' must be an integer")
            if profile_id <= last_id:
                raise DataError(
                    "ingest requires strictly increasing profile ids: "
                    f"got {profile_id} after {last_id}"
                )
            source = raw.get("source", 0)
            if source not in (0, 1):
                raise DataError(f"profile #{position} 'source' must be 0 or 1")
            profile = EntityProfile(
                profile_id, str(raw.get("original_id", profile_id)), source
            )
            _parse_attributes(raw.get("attributes", {}), profile)
            profiles.append(profile)
            last_id = profile_id
            next_id = profile_id + 1
        return profiles

    def ingest(self, payload: dict, *, replay_seq: "int | None" = None) -> dict:
        """Append the profiles of one ``POST .../profiles`` payload.

        ``payload`` is ``{"profiles": [{"id"?, "source"?, "attributes"}]}``;
        missing ids are assigned sequentially after the current maximum.
        Returns an ingest summary (counts, id range, touched blocks).

        With a WAL attached the payload is logged durably *before* it
        touches the index; an ``OSError`` from the log flips the collection
        into read-only degraded mode (:class:`DegradedError`, HTTP 507).
        ``replay_seq`` marks a recovery re-application of an already-logged
        record: it skips the WAL write, and records at or below
        :attr:`wal_applied_seq` are ignored (idempotent double replay).
        """
        if replay_seq is not None and replay_seq <= self.wal_applied_seq:
            return {
                "appended": 0,
                "first_id": None,
                "last_id": None,
                "total_profiles": self.index.num_profiles,
                "touched_blocks": 0,
                "touched_profiles": 0,
                "wal_seq": replay_seq,
                "duplicate": True,
            }
        if self.degraded_reason is not None and replay_seq is None:
            raise DegradedError(
                f"collection {self.config.name!r} is read-only (degraded): "
                f"{self.degraded_reason}"
            )
        profiles = self._parse_profiles(payload)
        seq = replay_seq
        if seq is None and self.wal is not None:
            try:
                seq = self.wal.append(payload)
            except OSError as error:
                self.degraded_reason = f"WAL append failed: {error}"
                raise DegradedError(
                    f"collection {self.config.name!r} entered read-only "
                    f"(degraded) mode: {error}"
                ) from error
        service_fault(f"ingest.apply.{self.config.name}")
        delta = self.index.append_profiles(profiles)
        self._pending_touched.update(delta.touched_profile_ids)
        if delta.new_profile_ids:
            # Any append invalidates the cached ranking prefix.
            self._prefix = []
            self._prefix_iter = None
            self._prefix_complete = False
        self.ingests += 1
        if seq is not None:
            self.wal_applied_seq = seq
        service_fault(f"ingest.ack.{self.config.name}")
        return {
            "appended": len(delta.new_profile_ids),
            "first_id": delta.new_profile_ids[0] if delta.new_profile_ids else None,
            "last_id": delta.new_profile_ids[-1] if delta.new_profile_ids else None,
            "total_profiles": self.index.num_profiles,
            "touched_blocks": len(delta.touched_tokens),
            "touched_profiles": len(delta.touched_profile_ids),
            "wal_seq": seq,
        }

    def has_profile(self, profile_id: int) -> bool:
        return self.index.has_profile(profile_id)

    # ---------------------------------------------------------------- queries
    def _progressive(self):
        if self.config.progressive == "node":
            strategy = ProgressiveNodeScheduling
        else:
            strategy = ProgressiveSortedComparisons
        return strategy(
            self.config.weighting,
            kernel_backend=self.config.kernel_backend,
            buffer_backend=self.config.buffer_backend,
        )

    def _ensure_prefix(self, length: int) -> list[tuple[int, int]]:
        """Grow the cached progressive prefix to ``length`` comparisons.

        The prefix is exactly ``list(progressive.stream(blocks))[:length]``
        over the current union collection — the stream is pulled lazily and
        cached, so a second query with a smaller or equal budget does no
        ranking work at all.
        """
        if self._prefix_iter is None and not self._prefix_complete:
            if self.index.is_stale:
                service_fault(f"compact.{self.config.name}")
            index = self.index.materialise()
            self._prefix_iter = self._progressive().stream_index(index)
        while len(self._prefix) < length and not self._prefix_complete:
            try:
                self._prefix.append(next(self._prefix_iter))
            except StopIteration:
                self._prefix_iter = None
                self._prefix_complete = True
        return self._prefix[:length]

    def matches(self, profile_id: int, budget: int) -> dict:
        """Progressive matches for one profile under a comparison budget.

        ``candidates`` is the progressive stream prefix of length ≤ budget
        (the comparisons a budget-``B`` progressive run would schedule);
        ``matches`` filters that prefix to the pairs involving
        ``profile_id``, best first.
        """
        if budget < 0:
            raise DataError("budget must be >= 0")
        self.queries += 1
        service_fault(f"matches.{self.config.name}")
        prefix = self._ensure_prefix(budget)
        matches = [pair for pair in prefix if profile_id in pair]
        return {
            "profile_id": profile_id,
            "budget": budget,
            "scheduled": len(prefix),
            "exhausted": self._prefix_complete and len(self._prefix) <= budget,
            "candidates": [list(pair) for pair in prefix],
            "matches": [list(pair) for pair in matches],
        }

    def candidates(self, profile_id: int) -> dict:
        """Retained meta-blocking edges for one profile, delta-refreshed."""
        self.queries += 1
        if self.index.is_stale:
            service_fault(f"compact.{self.config.name}")
        index = self.index.materialise()
        touched = None if not self.delta.refreshes else frozenset(self._pending_touched)
        self.delta.refresh(index, touched)
        self._pending_touched.clear()
        incident = self.delta.candidates_of(profile_id)
        return {
            "profile_id": profile_id,
            "refresh_mode": self.delta.last_mode,
            "candidates": [
                {"pair": list(pair), "weight": weight} for pair, weight in incident
            ],
        }

    # -------------------------------------------------------------- lifecycle
    def snapshot_state(self) -> dict:
        """The picklable state of this collection (CSR buffers excluded)."""
        return {
            "config": self.config.as_dict(),
            "index": self.index,
            "delta": self.delta,
            "pending_touched": sorted(self._pending_touched),
            "ingests": self.ingests,
            "wal_applied_seq": self.wal_applied_seq,
        }

    @classmethod
    def restore(cls, state: dict) -> "ServiceCollection":
        """Rebuild a collection from :meth:`snapshot_state` output."""
        config = CollectionConfig.from_dict(state["config"])
        collection = cls(config)
        collection.index.close()
        collection.index = state["index"]
        collection.delta = state["delta"]
        collection._pending_touched = set(state.get("pending_touched", ()))
        collection.ingests = int(state.get("ingests", 0))
        collection.wal_applied_seq = int(state.get("wal_applied_seq", 0))
        return collection

    def stats(self) -> dict:
        """Flat stats fragment for the /metrics endpoint."""
        return {
            "config": self.config.as_dict(),
            "profiles": self.index.num_profiles,
            "tokens": self.index.num_tokens,
            "appended_profiles": self.index.appended_profiles,
            "compactions": self.index.compactions,
            "stale": self.index.is_stale,
            "ingests": self.ingests,
            "queries": self.queries,
            "pending_touched": len(self._pending_touched),
            "ranked_prefix": len(self._prefix),
            "delta": self.delta.stats(),
            "degraded": self.degraded_reason,
            "wal": None
            if self.wal is None
            else dict(
                self.wal.stats(),
                applied_seq=self.wal_applied_seq,
                replayed_on_recovery=self.wal_replayed,
            ),
        }

    def close(self) -> None:
        """Release the index buffers and the WAL handle (idempotent)."""
        self._prefix_iter = None
        self.index.close()
        if self.wal is not None:
            self.wal.close()
