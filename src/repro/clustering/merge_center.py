"""Merge-center clustering (Hassanzadeh et al., VLDB 2009).

Like center clustering, but when an edge connects a node already assigned to a
center with another center, the two centers' clusters are merged.  It sits
between center clustering (no merging) and connected components (merge
everything reachable).
"""

from __future__ import annotations

from repro.clustering.base import ClusteringAlgorithm, EntityCluster
from repro.engine.graphx import UnionFind
from repro.matching.similarity_graph import SimilarityGraph


class MergeCenterClustering(ClusteringAlgorithm):
    """Center clustering with merging of connected centers."""

    def cluster(self, graph: SimilarityGraph) -> list[EntityCluster]:
        edges = sorted(graph, key=lambda e: (-e.score, e.pair))
        center_of: dict[int, int] = {}
        is_center: set[int] = set()
        merged = UnionFind()

        for edge in edges:
            a, b = edge.pair
            a_assigned = a in center_of
            b_assigned = b in center_of
            if not a_assigned and not b_assigned:
                center_of[a] = a
                is_center.add(a)
                center_of[b] = a
                merged.union(a, b)
            elif a_assigned and not b_assigned:
                center_of[b] = center_of[a]
                merged.union(center_of[a], b)
            elif b_assigned and not a_assigned:
                center_of[a] = center_of[b]
                merged.union(center_of[b], a)
            else:
                # Both assigned: merge the two centers when either endpoint is
                # itself a center (this is the "merge" step of merge-center).
                if a in is_center or b in is_center:
                    merged.union(center_of[a], center_of[b])

        for node in graph.nodes():
            if node not in center_of:
                center_of[node] = node
            merged.add(node)
            merged.union(node, center_of[node])

        assignment = {node: merged.find(node) for node in center_of}
        return self._build_clusters(assignment)
