"""Connected-components clustering — the algorithm SparkER uses (GraphX).

Based on the transitivity assumption: if p1 matches p2 and p2 matches p3 then
p1, p2, p3 are the same entity.  The distributed variant runs the Pregel-style
hash-min propagation on the mini engine; the default variant uses union-find
driver-side.  Both produce identical clusters.
"""

from __future__ import annotations

from repro.clustering.base import ClusteringAlgorithm, EntityCluster
from repro.engine.context import EngineContext
from repro.engine.graphx import connected_components, pregel_connected_components
from repro.matching.similarity_graph import SimilarityGraph


class ConnectedComponentsClustering(ClusteringAlgorithm):
    """Transitive-closure clustering over the similarity graph.

    Parameters
    ----------
    engine:
        When given, the connected components are computed with the
        Pregel-style distributed algorithm on the mini engine (the GraphX path
        of the original system); otherwise a driver-side union-find is used.
    """

    def __init__(self, engine: EngineContext | None = None) -> None:
        self.engine = engine

    def cluster(self, graph: SimilarityGraph) -> list[EntityCluster]:
        edges = [edge.pair for edge in graph]
        nodes = graph.nodes()
        if self.engine is not None:
            assignment = pregel_connected_components(self.engine, edges, nodes)
        else:
            assignment = connected_components(edges, nodes)
        return self._build_clusters(assignment)
