"""Base classes of the entity clusterer.

The clusterer receives the similarity graph (profiles = nodes, matched pairs =
edges) and partitions the nodes into equivalence clusters; every cluster
represents one real-world entity (Figure 5 of the paper).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.matching.similarity_graph import SimilarityGraph


@dataclass
class EntityCluster:
    """One resolved entity: the set of profile ids that refer to it."""

    cluster_id: int
    members: set[int] = field(default_factory=set)

    @property
    def size(self) -> int:
        return len(self.members)

    def pairs(self) -> set[tuple[int, int]]:
        """Every within-cluster pair (the pairs the cluster asserts as matches)."""
        ordered = sorted(self.members)
        return {
            (a, b)
            for i, a in enumerate(ordered)
            for b in ordered[i + 1 :]
        }

    def __contains__(self, profile_id: int) -> bool:
        return profile_id in self.members

    def __repr__(self) -> str:
        return f"EntityCluster(id={self.cluster_id}, size={self.size})"


def clusters_to_pairs(clusters: Iterable[EntityCluster]) -> set[tuple[int, int]]:
    """Union of the within-cluster pairs of a cluster list."""
    pairs: set[tuple[int, int]] = set()
    for cluster in clusters:
        pairs.update(cluster.pairs())
    return pairs


class ClusteringAlgorithm(ABC):
    """A clustering algorithm maps a similarity graph to entity clusters."""

    @abstractmethod
    def cluster(self, graph: SimilarityGraph) -> list[EntityCluster]:
        """Partition the graph's nodes into entity clusters."""

    def __call__(self, graph: SimilarityGraph) -> list[EntityCluster]:
        return self.cluster(graph)

    @staticmethod
    def _build_clusters(assignment: dict[int, object]) -> list[EntityCluster]:
        """Turn a node → component-label mapping into EntityCluster objects."""
        groups: dict[object, set[int]] = {}
        for node, label in assignment.items():
            groups.setdefault(label, set()).add(node)
        clusters = []
        for index, (_label, members) in enumerate(sorted(groups.items(), key=lambda kv: repr(kv[0]))):
            clusters.append(EntityCluster(cluster_id=index, members=members))
        return clusters
