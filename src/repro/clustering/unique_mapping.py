"""Unique-mapping clustering for clean-clean ER.

In clean-clean ER each source is duplicate-free, so an entity can have at most
one profile per source; clusters therefore have at most two members.  Edges
are taken in descending similarity order and accepted greedily while both
endpoints are still unmatched — a maximum-weight-matching heuristic, the
standard "unique mapping" clusterer of the ER literature.
"""

from __future__ import annotations

from repro.clustering.base import ClusteringAlgorithm, EntityCluster
from repro.matching.similarity_graph import SimilarityGraph


class UniqueMappingClustering(ClusteringAlgorithm):
    """Greedy one-to-one matching of profiles across the two sources."""

    def cluster(self, graph: SimilarityGraph) -> list[EntityCluster]:
        edges = sorted(graph, key=lambda e: (-e.score, e.pair))
        matched: set[int] = set()
        clusters: list[EntityCluster] = []

        for edge in edges:
            a, b = edge.pair
            if a in matched or b in matched:
                continue
            matched.add(a)
            matched.add(b)
            clusters.append(EntityCluster(cluster_id=len(clusters), members={a, b}))

        for node in sorted(graph.nodes()):
            if node not in matched:
                clusters.append(EntityCluster(cluster_id=len(clusters), members={node}))
        return clusters
