"""Center clustering (Hassanzadeh et al., VLDB 2009).

Edges are visited in descending similarity order; the first time a node is
seen it becomes a *center*; other nodes are assigned to the center of the
first strong edge that connects them to one.  Unlike connected components,
center clustering does not chain long weak paths together, which limits the
damage of a single wrong match.
"""

from __future__ import annotations

from repro.clustering.base import ClusteringAlgorithm, EntityCluster
from repro.matching.similarity_graph import SimilarityGraph


class CenterClustering(ClusteringAlgorithm):
    """Greedy center-based clustering over the similarity graph."""

    def cluster(self, graph: SimilarityGraph) -> list[EntityCluster]:
        # Sort edges by descending score, breaking ties deterministically.
        edges = sorted(graph, key=lambda e: (-e.score, e.pair))
        center_of: dict[int, int] = {}
        is_center: set[int] = set()

        for edge in edges:
            a, b = edge.pair
            a_assigned = a in center_of
            b_assigned = b in center_of
            if not a_assigned and not b_assigned:
                # The first endpoint becomes a center, the other joins it.
                center_of[a] = a
                is_center.add(a)
                center_of[b] = a
            elif a_assigned and not b_assigned:
                if a in is_center:
                    center_of[b] = a
                else:
                    center_of[b] = b
                    is_center.add(b)
            elif b_assigned and not a_assigned:
                if b in is_center:
                    center_of[a] = b
                else:
                    center_of[a] = a
                    is_center.add(a)
            # Both already assigned: nothing to do.

        # Singleton nodes (present in the graph but never assigned).
        for node in graph.nodes():
            center_of.setdefault(node, node)

        return self._build_clusters(center_of)
