"""Entity clustering: group matched pairs into entities."""

from repro.clustering.base import EntityCluster, ClusteringAlgorithm
from repro.clustering.connected_components import ConnectedComponentsClustering
from repro.clustering.center_clustering import CenterClustering
from repro.clustering.merge_center import MergeCenterClustering
from repro.clustering.unique_mapping import UniqueMappingClustering
from repro.clustering.registry import make_clustering_algorithm

__all__ = [
    "EntityCluster",
    "ClusteringAlgorithm",
    "ConnectedComponentsClustering",
    "CenterClustering",
    "MergeCenterClustering",
    "UniqueMappingClustering",
    "make_clustering_algorithm",
]
