"""Name-based construction of clustering algorithms."""

from __future__ import annotations

from repro.clustering.base import ClusteringAlgorithm
from repro.clustering.center_clustering import CenterClustering
from repro.clustering.connected_components import ConnectedComponentsClustering
from repro.clustering.merge_center import MergeCenterClustering
from repro.clustering.unique_mapping import UniqueMappingClustering
from repro.engine.context import EngineContext
from repro.exceptions import ClusteringError

_ALGORITHMS = {
    "connected_components": ConnectedComponentsClustering,
    "center": CenterClustering,
    "merge_center": MergeCenterClustering,
    "unique_mapping": UniqueMappingClustering,
}


def make_clustering_algorithm(
    name: "str | ClusteringAlgorithm",
    *,
    engine: EngineContext | None = None,
) -> ClusteringAlgorithm:
    """Build a clustering algorithm from its name.

    Valid names: ``connected_components`` (the paper's default), ``center``,
    ``merge_center``, ``unique_mapping``.
    """
    if isinstance(name, ClusteringAlgorithm):
        return name
    try:
        algorithm_class = _ALGORITHMS[name.lower()]
    except KeyError as exc:
        valid = ", ".join(sorted(_ALGORITHMS))
        raise ClusteringError(
            f"unknown clustering algorithm {name!r}; valid algorithms: {valid}"
        ) from exc
    if algorithm_class is ConnectedComponentsClustering:
        return ConnectedComponentsClustering(engine=engine)
    return algorithm_class()
