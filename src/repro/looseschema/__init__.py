"""Loose-schema generator: LSH attribute partitioning + cluster entropy (BLAST)."""

from repro.looseschema.lsh import AttributeLSH, AttributeProfile, build_attribute_profiles
from repro.looseschema.attribute_partitioning import (
    AttributePartitioner,
    AttributePartitioning,
)
from repro.looseschema.entropy import EntropyExtractor, shannon_entropy

__all__ = [
    "AttributeLSH",
    "AttributeProfile",
    "build_attribute_profiles",
    "AttributePartitioner",
    "AttributePartitioning",
    "EntropyExtractor",
    "shannon_entropy",
]
