"""Attribute partitioning (BLAST loose-schema generator, step 1).

Per the paper (Section 2.1):

1. LSH is applied to attribute values to group attributes by similarity; the
   groups are overlapping.
2. For each attribute only its *most similar* partner is kept, giving pairs of
   similar attributes.
3. The transitive closure of those pairs partitions the attributes into
   non-overlapping clusters.
4. Attributes that appear in no cluster go to a catch-all *blob* partition.

The clustering threshold is the knob exposed in the demo (Figure 6): with the
threshold at its maximum (1.0) no attribute pair survives, every attribute
falls in the blob and the blocking degenerates to schema-agnostic token
blocking; lowering it produces increasingly many clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.dataset import ProfileCollection
from repro.engine.graphx import UnionFind
from repro.exceptions import BlockingError
from repro.looseschema.lsh import AttributeLSH, AttributeProfile, build_attribute_profiles


@dataclass
class AttributePartitioning:
    """The result of attribute partitioning.

    ``clusters`` maps cluster id (1, 2, ...) to the set of (source, attribute)
    members; the blob cluster always has id :attr:`blob_cluster_id` (0) and
    collects every attribute not assigned to a named cluster.
    """

    clusters: dict[int, set[tuple[int, str]]] = field(default_factory=dict)
    blob_cluster_id: int = 0

    def cluster_of(self, attribute: str, source_id: int | None = None) -> int:
        """Return the cluster id of ``attribute`` (blob id when unknown).

        When ``source_id`` is omitted the attribute name is looked up in any
        source, which is convenient because attribute names are unique per
        source in practice.
        """
        for cluster_id, members in self.clusters.items():
            for member_source, member_attribute in members:
                if member_attribute != attribute:
                    continue
                if source_id is None or member_source == source_id:
                    return cluster_id
        return self.blob_cluster_id

    def attribute_to_cluster(self) -> dict[str, int]:
        """Flatten to attribute-name → cluster-id (last cluster wins on clashes)."""
        mapping: dict[str, int] = {}
        for cluster_id, members in self.clusters.items():
            for _source, attribute in members:
                mapping[attribute] = cluster_id
        return mapping

    def non_blob_clusters(self) -> dict[int, set[tuple[int, str]]]:
        """Clusters other than the blob."""
        return {
            cluster_id: members
            for cluster_id, members in self.clusters.items()
            if cluster_id != self.blob_cluster_id
        }

    def num_clusters(self) -> int:
        """Number of clusters including the blob (if non-empty)."""
        return len([c for c, members in self.clusters.items() if members])

    def describe(self) -> list[str]:
        """Human-readable cluster listing (what the demo GUI displays)."""
        lines = []
        for cluster_id in sorted(self.clusters):
            members = self.clusters[cluster_id]
            names = ", ".join(
                f"{attribute} (source {source})" for source, attribute in sorted(members)
            )
            label = "blob" if cluster_id == self.blob_cluster_id else f"cluster {cluster_id}"
            lines.append(f"{label}: {names}")
        return lines

    def move_attribute(self, attribute: str, source_id: int, target_cluster: int) -> None:
        """Manually move an attribute to another cluster (supervised mode).

        This is the operation behind the demo's "modify the clusters" step
        (Figure 6(c)).  The target cluster is created if it does not exist.
        """
        key = (source_id, attribute)
        for members in self.clusters.values():
            members.discard(key)
        self.clusters.setdefault(target_cluster, set()).add(key)


class AttributePartitioner:
    """Builds an :class:`AttributePartitioning` from a profile collection.

    Parameters
    ----------
    threshold:
        Similarity threshold in [0, 1].  Attribute pairs with similarity
        strictly below the threshold are discarded *before* the best-match
        selection; with ``threshold >= 1.0`` every attribute ends up in the
        blob (schema-agnostic behaviour, Figure 6(a)).
    lsh:
        The LSH configuration used to propose candidate attribute pairs.
    """

    def __init__(self, threshold: float = 0.3, lsh: AttributeLSH | None = None) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise BlockingError("threshold must be in [0, 1]")
        self.threshold = threshold
        self.lsh = lsh or AttributeLSH()

    # ------------------------------------------------------------------ public
    def partition(self, profiles: ProfileCollection) -> AttributePartitioning:
        """Run LSH → best match → transitive closure → blob assignment."""
        attribute_profiles = build_attribute_profiles(profiles)
        return self.partition_from_attribute_profiles(attribute_profiles)

    def partition_from_attribute_profiles(
        self, attribute_profiles: dict[tuple[int, str], AttributeProfile]
    ) -> AttributePartitioning:
        """Same as :meth:`partition` but starting from prebuilt attribute profiles."""
        all_attributes = set(attribute_profiles)

        # Degenerate threshold: everything in the blob (Figure 6(a)).
        if self.threshold >= 1.0:
            return AttributePartitioning(clusters={0: set(all_attributes)})

        similarities = self.lsh.similarities(attribute_profiles)
        filtered = {
            pair: similarity
            for pair, similarity in similarities.items()
            if similarity >= self.threshold and similarity > 0.0
        }

        best_pairs = self._best_match_pairs(filtered)
        clusters = self._transitive_closure(best_pairs)

        clustered_attributes = set().union(*clusters) if clusters else set()
        blob = all_attributes - clustered_attributes

        partitioning = AttributePartitioning()
        partitioning.clusters[partitioning.blob_cluster_id] = blob
        for index, members in enumerate(sorted(clusters, key=lambda c: sorted(c)), start=1):
            partitioning.clusters[index] = set(members)
        return partitioning

    # -------------------------------------------------------------- internals
    @staticmethod
    def _best_match_pairs(
        similarities: dict[tuple[tuple[int, str], tuple[int, str]], float]
    ) -> set[tuple[tuple[int, str], tuple[int, str]]]:
        """Keep, for each attribute, only the edge to its most similar partner."""
        best: dict[tuple[int, str], tuple[tuple[int, str], float]] = {}
        for (a, b), similarity in similarities.items():
            if a not in best or similarity > best[a][1]:
                best[a] = (b, similarity)
            if b not in best or similarity > best[b][1]:
                best[b] = (a, similarity)
        pairs: set[tuple[tuple[int, str], tuple[int, str]]] = set()
        for attribute, (partner, _similarity) in best.items():
            pair = tuple(sorted((attribute, partner)))
            pairs.add(pair)  # type: ignore[arg-type]
        return pairs

    @staticmethod
    def _transitive_closure(
        pairs: set[tuple[tuple[int, str], tuple[int, str]]]
    ) -> list[set[tuple[int, str]]]:
        """Union the best-match pairs into non-overlapping clusters."""
        uf = UnionFind()
        for a, b in pairs:
            uf.union(a, b)
        return [set(members) for members in uf.components().values()]


def loose_schema_metrics(
    partitioning: AttributePartitioning, entropies: "dict[int, float]"
) -> "dict[str, object]":
    """The metric dict recorded after loose-schema generation.

    Shared by the legacy :class:`repro.core.blocker.Blocker` and the pipeline
    stage adapter so the facade-vs-pipeline reports stay byte-identical.
    """
    return {
        "clusters": len(partitioning.non_blob_clusters()),
        "blob_attributes": len(
            partitioning.clusters.get(partitioning.blob_cluster_id, set())
        ),
        "entropies": {k: round(v, 3) for k, v in sorted(entropies.items())},
    }
