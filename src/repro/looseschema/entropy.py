"""Entropy extractor (BLAST loose-schema generator, step 2).

Computes the Shannon entropy of each attribute cluster over the distribution
of the tokens appearing in the cluster's values.  Clusters with a high
variability of values (e.g. product names) get high entropy; clusters with few
distinct values (e.g. prices rounded to bands, years, venues) get low entropy.
The BLAST meta-blocking multiplies edge weights by the entropy of the block's
cluster, so equalities found in high-entropy clusters count more.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable

from repro.data.dataset import ProfileCollection
from repro.looseschema.attribute_partitioning import AttributePartitioning
from repro.utils.tokenize import tokenize


def shannon_entropy(counts: Iterable[int]) -> float:
    """Shannon entropy (base 2) of a discrete distribution given by counts."""
    counts = [c for c in counts if c > 0]
    total = sum(counts)
    if total == 0 or len(counts) <= 1:
        return 0.0
    entropy = 0.0
    for count in counts:
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


class EntropyExtractor:
    """Computes per-cluster Shannon entropies.

    Parameters
    ----------
    normalize:
        When True (default) entropies are rescaled so the maximum cluster
        entropy is 1.0, which keeps the entropy factor comparable across
        datasets (the paper's Figure 2 uses values in [0, 1]).
    """

    def __init__(self, *, normalize: bool = True) -> None:
        self.normalize = normalize

    def extract(
        self,
        profiles: ProfileCollection,
        partitioning: AttributePartitioning,
    ) -> dict[int, float]:
        """Return cluster id → entropy for every cluster of ``partitioning``."""
        token_counts: dict[int, Counter] = {
            cluster_id: Counter() for cluster_id in partitioning.clusters
        }
        attribute_cluster = {
            (source, attribute): cluster_id
            for cluster_id, members in partitioning.clusters.items()
            for source, attribute in members
        }

        for profile in profiles:
            for attribute, value in profile.items():
                cluster_id = attribute_cluster.get(
                    (profile.source_id, attribute), partitioning.blob_cluster_id
                )
                if cluster_id not in token_counts:
                    token_counts[cluster_id] = Counter()
                token_counts[cluster_id].update(tokenize(value))

        entropies = {
            cluster_id: shannon_entropy(counter.values())
            for cluster_id, counter in token_counts.items()
        }

        if self.normalize:
            maximum = max(entropies.values(), default=0.0)
            if maximum > 0:
                entropies = {
                    cluster_id: entropy / maximum
                    for cluster_id, entropy in entropies.items()
                }
        return entropies

    def __call__(
        self, profiles: ProfileCollection, partitioning: AttributePartitioning
    ) -> dict[int, float]:
        return self.extract(profiles, partitioning)
