"""LSH over attribute value-token sets.

The loose-schema generator groups *attributes* (not profiles) by the
similarity of the values they contain: two attributes that share many value
tokens (e.g. ``name`` in Abt and ``title`` in Buy) should land in the same
partition.  Exact all-pairs Jaccard over attributes is cheap for tens of
attributes but the paper prescribes an LSH-based algorithm so it scales to
very wide, heterogeneous schemas; this module implements MinHash signatures
with banding, exactly as described.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only; numpy loads with MinHasher
    import numpy as np

from repro.data.dataset import ProfileCollection
from repro.utils.hashing import MinHasher
from repro.utils.tokenize import tokenize


@dataclass
class AttributeProfile:
    """The token set collected for one (source, attribute) pair."""

    source_id: int
    attribute: str
    tokens: set[str] = field(default_factory=set)
    value_counts: dict[str, int] = field(default_factory=dict)

    @property
    def qualified_name(self) -> tuple[int, str]:
        """The (source_id, attribute) key used throughout the loose-schema code."""
        return (self.source_id, self.attribute)

    def add_value(self, value: str) -> None:
        """Record one attribute value: update the token set and value counts."""
        for token in tokenize(value):
            self.tokens.add(token)
            self.value_counts[token] = self.value_counts.get(token, 0) + 1


def build_attribute_profiles(profiles: ProfileCollection) -> dict[tuple[int, str], AttributeProfile]:
    """Collect the token sets of every (source, attribute) pair of a collection."""
    attribute_profiles: dict[tuple[int, str], AttributeProfile] = {}
    for profile in profiles:
        for attribute, value in profile.items():
            key = (profile.source_id, attribute)
            if key not in attribute_profiles:
                attribute_profiles[key] = AttributeProfile(
                    source_id=profile.source_id, attribute=attribute
                )
            attribute_profiles[key].add_value(value)
    return attribute_profiles


class AttributeLSH:
    """MinHash + banding LSH over attribute token sets.

    Parameters
    ----------
    num_perm:
        MinHash signature length.
    num_bands:
        Number of LSH bands (must divide ``num_perm``).  More bands → more
        candidate pairs (higher recall, lower precision of the candidates).
    seed:
        Seed of the MinHash family.
    """

    def __init__(self, num_perm: int = 128, num_bands: int = 32, seed: int = 5) -> None:
        self.hasher = MinHasher(num_perm=num_perm, seed=seed)
        self.num_bands = num_bands

    def signatures(
        self, attribute_profiles: dict[tuple[int, str], AttributeProfile]
    ) -> dict[tuple[int, str], np.ndarray]:
        """Compute MinHash signatures of every attribute profile."""
        return {
            key: self.hasher.signature(profile.tokens)
            for key, profile in attribute_profiles.items()
        }

    def candidate_pairs(
        self, signatures: dict[tuple[int, str], np.ndarray]
    ) -> set[tuple[tuple[int, str], tuple[int, str]]]:
        """Return the attribute pairs that collide in at least one LSH band."""
        buckets: dict[int, list[tuple[int, str]]] = {}
        for key, signature in signatures.items():
            for bucket in self.hasher.bands(signature, self.num_bands):
                buckets.setdefault(bucket, []).append(key)

        candidates: set[tuple[tuple[int, str], tuple[int, str]]] = set()
        for members in buckets.values():
            if len(members) < 2:
                continue
            ordered = sorted(members)
            for i, a in enumerate(ordered):
                for b in ordered[i + 1 :]:
                    candidates.add((a, b))
        return candidates

    def similarities(
        self,
        attribute_profiles: dict[tuple[int, str], AttributeProfile],
        *,
        use_exact: bool = True,
        cross_source_only: bool = True,
    ) -> dict[tuple[tuple[int, str], tuple[int, str]], float]:
        """Similarity of every LSH-candidate attribute pair.

        Parameters
        ----------
        use_exact:
            When True the Jaccard similarity is computed exactly on the token
            sets of candidate pairs (cheap, since LSH already pruned the
            pairs); otherwise the MinHash estimate is used.
        cross_source_only:
            When True only pairs from different sources are returned, which is
            what attribute alignment needs in clean-clean ER.  For dirty ER
            (single source) this flag has no effect.
        """
        signatures = self.signatures(attribute_profiles)
        sources = {key[0] for key in attribute_profiles}
        single_source = len(sources) < 2
        result: dict[tuple[tuple[int, str], tuple[int, str]], float] = {}
        for a, b in self.candidate_pairs(signatures):
            if cross_source_only and not single_source and a[0] == b[0]:
                continue
            if use_exact:
                tokens_a = attribute_profiles[a].tokens
                tokens_b = attribute_profiles[b].tokens
                union = len(tokens_a | tokens_b)
                similarity = len(tokens_a & tokens_b) / union if union else 0.0
            else:
                similarity = MinHasher.estimate_jaccard(signatures[a], signatures[b])
            result[(a, b)] = similarity
        return result
