"""The string-keyed stage registry.

Every built-in stage registers itself under its ``kind`` so pipelines are
buildable from plain dict/JSON specs (``Pipeline.from_spec``) and the CLI can
enumerate what is available (``python -m repro.cli stages``).  Third-party
stages register through the same decorator.
"""

from __future__ import annotations

import inspect

from repro.exceptions import PipelineValidationError
from repro.pipeline.stage import Stage

_REGISTRY: dict[str, type[Stage]] = {}


def register_stage(stage_class: type[Stage]) -> type[Stage]:
    """Class decorator: register ``stage_class`` under its ``kind``."""
    kind = stage_class.kind
    if not kind:
        raise PipelineValidationError(
            f"stage class {stage_class.__name__} declares no kind"
        )
    existing = _REGISTRY.get(kind)
    if existing is not None and existing is not stage_class:
        raise PipelineValidationError(
            f"stage kind {kind!r} is already registered to {existing.__name__}"
        )
    _REGISTRY[kind] = stage_class
    return stage_class


def registered_stages() -> dict[str, type[Stage]]:
    """A copy of the kind → class registry."""
    return dict(_REGISTRY)


def get_stage_class(kind: str) -> type[Stage]:
    """Look up a stage class; raise a helpful error on unknown kinds."""
    try:
        return _REGISTRY[kind]
    except KeyError as exc:
        valid = ", ".join(sorted(_REGISTRY))
        raise PipelineValidationError(
            f"unknown stage kind {kind!r}; registered stages: {valid}"
        ) from exc


def make_stage(kind: str, params: dict[str, object] | None = None) -> Stage:
    """Instantiate the stage registered under ``kind`` with ``params``."""
    stage_class = get_stage_class(kind)
    try:
        return stage_class(**(params or {}))
    except TypeError as exc:
        accepted = ", ".join(stage_parameters(kind)) or "(none)"
        raise PipelineValidationError(
            f"bad parameters for stage {kind!r}: {exc}; accepted: {accepted}"
        ) from exc


def stage_parameters(kind: str) -> dict[str, object]:
    """Name → default mapping of the constructor parameters of ``kind``."""
    stage_class = get_stage_class(kind)
    parameters: dict[str, object] = {}
    for name, parameter in inspect.signature(stage_class.__init__).parameters.items():
        if name == "self" or parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        default = parameter.default
        parameters[name] = None if default is inspect.Parameter.empty else default
    return parameters


def stage_catalog() -> list[dict[str, object]]:
    """One row per registered stage: kind, ports, parameters, summary.

    This is the data behind ``python -m repro.cli stages`` and the README's
    registry table.
    """
    rows: list[dict[str, object]] = []
    for kind in sorted(_REGISTRY):
        stage_class = _REGISTRY[kind]
        doc = inspect.getdoc(stage_class) or ""
        summary = doc.splitlines()[0] if doc else ""
        rows.append(
            {
                "stage": kind,
                "inputs": ", ".join(
                    spec.name if spec.required else f"{spec.name}?"
                    for spec in stage_class.inputs
                ),
                "outputs": ", ".join(spec.name for spec in stage_class.outputs),
                "parameters": ", ".join(
                    f"{name}={default!r}"
                    for name, default in stage_parameters(kind).items()
                ),
                "summary": summary,
            }
        )
    return rows
