"""The keyed artifact store that pipeline stages read from and write to.

Every value a stage produces is an *artifact*: a value stored under a string
*key* and tagged with a *kind* (its logical type).  Stages declare the kinds
they consume and produce (:class:`~repro.pipeline.stage.ArtifactSpec`), which
lets :class:`~repro.pipeline.runner.Pipeline` validate a composition before
anything runs, and lets checkpoint/resume serialise the whole intermediate
state of a run as one object.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.exceptions import PipelineError

# The artifact kinds known to the built-in stages.  A kind is a contract on
# the stored value, not a Python class check: stages that agree on a kind can
# be freely recombined.
PROFILES = "profiles"
PARTITIONING = "partitioning"
CLUSTER_ENTROPIES = "cluster_entropies"
BLOCKS = "blocks"
CANDIDATE_PAIRS = "candidate_pairs"
META_BLOCKING = "meta_blocking"
SIMILARITY_GRAPH = "similarity_graph"
CLUSTERS = "clusters"
ENTITIES = "entities"
EVALUATION = "evaluation"

KNOWN_KINDS = (
    PROFILES,
    PARTITIONING,
    CLUSTER_ENTROPIES,
    BLOCKS,
    CANDIDATE_PAIRS,
    META_BLOCKING,
    SIMILARITY_GRAPH,
    CLUSTERS,
    ENTITIES,
    EVALUATION,
)


class ArtifactStore:
    """A keyed, kind-tagged store of pipeline artifacts.

    Keys default to the kind name (``"blocks"``) but a spec can remap them
    (``"raw_blocks"``, ``"filtered_blocks"``) so several artifacts of the same
    kind coexist in one run.
    """

    def __init__(self) -> None:
        self._values: dict[str, object] = {}
        self._kinds: dict[str, str] = {}

    def put(self, key: str, kind: str, value: object) -> None:
        """Store ``value`` under ``key``, tagged with ``kind``."""
        self._values[key] = value
        self._kinds[key] = kind

    def get(self, key: str, default: object = None) -> object:
        """Return the artifact stored under ``key`` (or ``default``)."""
        return self._values.get(key, default)

    def require(self, key: str) -> object:
        """Return the artifact under ``key``; raise if absent."""
        if key not in self._values:
            raise PipelineError(f"artifact {key!r} is not in the store")
        return self._values[key]

    def kind_of(self, key: str) -> str | None:
        """Return the kind tag of ``key`` (or None when absent)."""
        return self._kinds.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __len__(self) -> int:
        return len(self._values)

    def keys(self) -> Iterator[str]:
        return iter(self._values)

    def items(self) -> Iterator[tuple[str, object]]:
        return iter(self._values.items())

    def manifest(self) -> dict[str, str]:
        """Key → kind mapping of everything stored (for reports and specs)."""
        return dict(self._kinds)

    def __repr__(self) -> str:
        entries = ", ".join(f"{key}:{kind}" for key, kind in sorted(self._kinds.items()))
        return f"ArtifactStore({entries})"
